//! Spam triage: cluster e-mail feature vectors (the paper's Spam workload)
//! to build a triage map — which clusters are spam-dominated? — and show
//! why seeding matters on heavy-tailed features (the Table 2 / Table 6
//! story).
//!
//! Run with: `cargo run --release --example spam_triage`

use scalable_kmeans::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Spambase stand-in: 4601 messages × 58 features; ground-truth
    // labels 0..11 are ham topics, 12..19 spam campaigns.
    let synth = SpamLike::new().generate(1)?;
    let points = synth.dataset.points();
    let truth = synth.dataset.labels().expect("generator labels");
    let k = 20;

    // Heavy-tailed features make Random seeding collapse; show the gap.
    let random = KMeans::params(k)
        .init(InitMethod::Random)
        .seed(3)
        .fit(points)?;
    let parallel = KMeans::params(k).seed(3).fit(points)?; // k-means|| default
    println!("seeding on heavy-tailed features (k = {k}):");
    println!(
        "  Random    final cost {:.3e}  ({} Lloyd iterations)",
        random.cost(),
        random.iterations()
    );
    println!(
        "  k-means|| final cost {:.3e}  ({} Lloyd iterations)",
        parallel.cost(),
        parallel.iterations()
    );
    println!(
        "  cost ratio {:.1}x, purity {:.3} vs {:.3}\n",
        random.cost() / parallel.cost(),
        purity(random.labels(), truth),
        purity(parallel.labels(), truth),
    );

    // Triage map: spam share of each discovered cluster.
    let labels = parallel.labels();
    let mut cluster_total = vec![0usize; k];
    let mut cluster_spam = vec![0usize; k];
    for (i, &c) in labels.iter().enumerate() {
        cluster_total[c as usize] += 1;
        cluster_spam[c as usize] += (truth[i] >= 12) as usize;
    }
    println!("cluster triage map (spam share per cluster):");
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| {
        let ra = cluster_spam[a] as f64 / cluster_total[a].max(1) as f64;
        let rb = cluster_spam[b] as f64 / cluster_total[b].max(1) as f64;
        rb.partial_cmp(&ra).unwrap()
    });
    for &c in &order {
        let share = cluster_spam[c] as f64 / cluster_total[c].max(1) as f64;
        let verdict = if share > 0.8 {
            "quarantine"
        } else if share > 0.4 {
            "review"
        } else {
            "deliver"
        };
        println!(
            "  cluster {c:>2}: {:>4} msgs, spam share {share:>5.2} -> {verdict}",
            cluster_total[c]
        );
    }
    Ok(())
}
