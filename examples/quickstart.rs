//! Quickstart: cluster the paper's GaussMixture benchmark with k-means||
//! seeding and compare against Random and k-means++ — Table 1 in thirty
//! lines.
//!
//! Run with: `cargo run --release --example quickstart`

use scalable_kmeans::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // §4.1: 50 unit-variance Gaussians in 15 dimensions, centers drawn
    // from N(0, 10·I), 10 000 points.
    let synth = GaussMixture::new(50).center_variance(10.0).generate(42)?;
    let points = synth.dataset.points();
    println!(
        "dataset: {} points x {} dims, {} true components",
        points.len(),
        points.dim(),
        synth.true_centers.len()
    );

    for (name, init) in [
        ("Random    ", InitMethod::Random),
        ("k-means++ ", InitMethod::KMeansPlusPlus),
        (
            "k-means|| ",
            InitMethod::KMeansParallel(KMeansParallelConfig::default()), // ℓ=2k, r=5
        ),
    ] {
        let model = KMeans::params(50).init(init).seed(7).fit(points)?;
        println!(
            "{name} seed cost {:>10.3e}   final cost {:>10.3e}   lloyd iters {:>3}   nmi {:.3}",
            model.init_stats().seed_cost,
            model.cost(),
            model.iterations(),
            nmi(model.labels(), synth.dataset.labels().expect("labeled")),
        );
    }
    println!("\nk-means|| matches k-means++ quality in 6 passes instead of 50.");
    Ok(())
}
