//! Streaming pipeline: cluster a dataset that arrives one record at a
//! time, three ways — the design space the paper's related work covers:
//!
//! 1. **Batch k-means||** (this paper): needs the full data resident, pays
//!    `1 + r` passes, best quality.
//! 2. **Partition** (Ailon et al.): one conceptual pass over groups, huge
//!    intermediate set.
//! 3. **Coreset tree** (StreamKM++-style): true streaming, sublinear
//!    memory, one pass.
//!
//! Run with: `cargo run --release --example streaming_pipeline`

use scalable_kmeans::core::cost::potential;
use scalable_kmeans::prelude::*;
use scalable_kmeans::streaming::CoresetTree;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 25;
    let n = 40_000;
    println!("simulated stream: {n} KDD-style records, k = {k}\n");
    let synth = KddLike::new(n).generate(11)?;
    let points = synth.dataset.points();
    let exec = Executor::new(Parallelism::Auto);

    // 1. Batch k-means|| — the reference point.
    let start = Instant::now();
    let batch = KMeans::params(k).max_iterations(20).seed(3).fit(points)?;
    let batch_time = start.elapsed();

    // 2. Partition over the (materialized) stream.
    let start = Instant::now();
    let partition = partition_init(points, k, &PartitionConfig::default(), 3, &exec)?;
    let partition_cost = potential(points, &partition.centers, &exec);
    let partition_time = start.elapsed();

    // 3. Coreset tree: feed records one at a time, never holding more
    //    than O(coreset · log n) weighted representatives.
    let start = Instant::now();
    let mut tree = CoresetTree::new(points.dim(), 400, 3)?;
    for row in points.rows() {
        tree.insert(row)?;
    }
    let stream_centers = tree.cluster(k)?;
    let stream_cost = potential(points, &stream_centers, &exec);
    let stream_time = start.elapsed();

    println!("method        cost          memory (working set)       time");
    println!(
        "k-means||     {:>10.3e}   full dataset ({} rows)    {batch_time:.2?}",
        batch.cost(),
        n
    );
    println!(
        "Partition     {:>10.3e}   coreset of {} centers     {partition_time:.2?}",
        partition_cost, partition.intermediate_centers
    );
    println!(
        "coreset tree  {:>10.3e}   {} representatives         {stream_time:.2?}",
        stream_cost,
        tree.representatives()
    );
    println!(
        "\nreading: one true streaming pass costs ~{:.1}x the batch k-means|| cost\n\
         while holding {}x less data in memory.",
        stream_cost / batch.cost(),
        n / tree.representatives().max(1)
    );
    Ok(())
}
