//! §3.5 as a runnable artifact: one full k-means|| seeding executed
//! *inside the MapReduce programming model* — sampling in mappers, φ
//! aggregation in a reducer — with the job accounting (records read,
//! pairs shuffled, idealized cluster time) the paper reasons about.
//!
//! > "Step 4 is very simple in MapReduce: each mapper can sample
//! > independently [...] each mapper working on an input partition X′ ⊆ X
//! > can compute φ_X′(C) and the reducer can simply add these values."
//!
//! Run with: `cargo run --release --example mapreduce_rounds`

use scalable_kmeans::core::distance::nearest;
use scalable_kmeans::core::init::weighted_kmeanspp;
use scalable_kmeans::par::mapreduce::{run as mr_run, JobStats};
use scalable_kmeans::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 20;
    let rounds = 5;
    let oversampling = 2.0 * k as f64;
    let synth = GaussMixture::new(k).center_variance(100.0).generate(31)?;
    let points = synth.dataset.points();
    let n = points.len();
    let exec = Executor::new(Parallelism::Auto).with_shard_size(1024);
    let records: Vec<usize> = (0..n).collect();
    let mut pipeline = JobStats::default();

    // Step 1: one uniform center (driver side).
    let mut rng = Rng::derive(7, &[0]);
    let mut centers = points.select(&[rng.range_usize(n)]);

    // Steps 2–6: each round is ONE MapReduce job. Every mapper, given the
    // (small, broadcast) center set, emits its partition's φ contribution
    // and its sampled candidates; the reducer aggregates both.
    for round in 0..rounds {
        // Job A: compute φ_X(C) (the paper's Step 2 / per-round update).
        let phi_job = mr_run(
            &exec,
            &records,
            |_, &i, emit| emit.emit((), nearest(points.row(i), &centers).1),
            |_, values| values.iter().sum::<f64>(),
        );
        let phi = phi_job.results[0].1;
        pipeline.absorb(&phi_job.stats);

        // Job B: Bernoulli-sample candidates, p = ℓ·d²/φ, independently
        // per mapper (deterministic per (seed, round, record)).
        let sample_job = mr_run(
            &exec,
            &records,
            |_, &i, emit| {
                let d2 = nearest(points.row(i), &centers).1;
                let mut point_rng = Rng::derive(7, &[1, round as u64, i as u64]);
                if point_rng.bernoulli(oversampling * d2 / phi) {
                    emit.emit((), i);
                }
            },
            |_, values| values,
        );
        let new_indices: Vec<usize> = sample_job
            .results
            .first()
            .map(|(_, v)| v.clone())
            .unwrap_or_default();
        pipeline.absorb(&sample_job.stats);
        for &i in &new_indices {
            centers.push(points.row(i))?;
        }
        println!(
            "round {round}: phi = {phi:.3e}, sampled {:>3} candidates (total {:>3})",
            new_indices.len(),
            centers.len()
        );
    }

    // Step 7: weights, again one job (mapper emits nearest-candidate id).
    let weight_job = mr_run(
        &exec,
        &records,
        |_, &i, emit| emit.emit(nearest(points.row(i), &centers).0 as u32, 1u64),
        |_, ones| ones.len() as f64,
    );
    pipeline.absorb(&weight_job.stats);
    let mut weights = vec![0.0f64; centers.len()];
    for (center_id, w) in &weight_job.results {
        weights[*center_id as usize] = *w;
    }

    // Step 8: recluster on "a single machine" (the driver).
    let seeds = weighted_kmeanspp(&centers, &weights, k, &mut rng)?;
    let seed_cost = scalable_kmeans::core::cost::potential(points, &seeds, &exec);

    println!(
        "\nreclustered {} weighted candidates -> {k} seeds",
        centers.len()
    );
    println!("seed cost: {seed_cost:.3e}");
    println!(
        "\npipeline accounting ({} jobs over {} records):",
        2 * rounds + 1,
        n
    );
    println!("  map tasks           {}", pipeline.map_tasks);
    println!("  records read        {}", pipeline.records_in);
    println!("  pairs shuffled      {}", pipeline.pairs_shuffled);
    println!(
        "  idealized time on 8 / 64 / 1968 mappers: {:?} / {:?} / {:?}",
        pipeline.model_time(exec.workers(), 8),
        pipeline.model_time(exec.workers(), 64),
        pipeline.model_time(exec.workers(), 1968),
    );
    println!(
        "\nreading: only {} candidate ids crossed rounds; the per-record phi pairs\n\
         ({} total here) collapse to one partial sum per mapper under a combiner,\n\
         as the paper assumes — the reason k-means|| parallelizes where\n\
         k-means++ cannot.",
        centers.len(),
        pipeline.pairs_shuffled
    );
    Ok(())
}
