//! Network-intrusion clustering at scale: the paper's KDDCup1999 scenario.
//! Compares Random, Partition (the streaming baseline), and k-means|| on a
//! KDD-shaped workload, then uses the fitted model to flag anomalous
//! connections — the Tables 3–5 story as an application.
//!
//! Run with: `cargo run --release --example network_intrusion [-- n]`

use scalable_kmeans::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(50_000);
    let k = 30;
    println!("generating KDD-shaped traffic: {n} connection records x 42 features");
    let synth = KddLike::new(n).generate(9)?;
    let points = synth.dataset.points();
    let exec = Executor::new(Parallelism::Auto);

    // --- seeding comparison -------------------------------------------------
    let mut report = Vec::new();
    for (name, init) in [
        ("Random", Some(InitMethod::Random)),
        ("k-means||", Some(InitMethod::default())),
        ("Partition", None),
    ] {
        let start = Instant::now();
        let (cost, candidates) = match init {
            Some(init) => {
                let model = KMeans::params(k)
                    .init(init)
                    .max_iterations(20) // the paper caps parallel Lloyd at 20
                    .seed(4)
                    .fit(points)?;
                (model.cost(), model.init_stats().candidates)
            }
            None => {
                let result = partition_init(points, k, &PartitionConfig::default(), 4, &exec)?;
                let lloyd = LloydConfig {
                    max_iterations: 20,
                    tol: 0.0,
                };
                let out = kmeans_core::lloyd::lloyd(points, &result.centers, &lloyd, &exec)?;
                (out.cost, result.intermediate_centers)
            }
        };
        report.push((name, cost, candidates, start.elapsed()));
    }
    println!("\nmethod       final cost     intermediate centers   time");
    for (name, cost, candidates, time) in &report {
        println!("{name:<12} {cost:>11.3e}   {candidates:>18}   {time:.2?}");
    }

    // --- anomaly flagging ---------------------------------------------------
    // Distance to the nearest center is an anomaly score: rare attack
    // classes sit far from every dominant-traffic center.
    let model = KMeans::params(k).max_iterations(20).seed(4).fit(points)?;
    let truth = synth.dataset.labels().expect("generator labels");
    let mut scored: Vec<(f64, bool)> = points
        .rows()
        .enumerate()
        .map(|(i, row)| {
            let d2 = kmeans_core::distance::nearest(row, model.centers()).1;
            // Classes 3.. are the rare attack profiles.
            (d2, truth[i] >= 3)
        })
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let top = n / 100; // flag the top 1 %
    let hits = scored[..top].iter().filter(|(_, rare)| *rare).count();
    let total_rare = scored.iter().filter(|(_, rare)| *rare).count();
    println!(
        "\nanomaly flagging: top 1% by distance-to-center captures {hits}/{top} flagged \
         records as rare-class ({} rare records total, base rate {:.2}%)",
        total_rare,
        100.0 * total_rare as f64 / n as f64
    );
    Ok(())
}
