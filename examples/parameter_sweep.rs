//! Parameter sweep: §5.3's quality/running-time trade-off in miniature.
//! Sweeps the oversampling factor ℓ/k and round count r of k-means|| on
//! GaussMixture, printing a cost matrix plus the passes each setting pays —
//! the interpolation between Random (r = 0 end) and k-means++ (many tiny
//! rounds).
//!
//! Run with: `cargo run --release --example parameter_sweep`

use scalable_kmeans::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 50;
    let synth = GaussMixture::new(k).center_variance(10.0).generate(2)?;
    let points = synth.dataset.points();
    let factors = [0.5, 1.0, 2.0, 4.0];
    let rounds = [1usize, 2, 3, 5, 8];
    let seeds: Vec<u64> = (10..15).collect(); // median of 5

    // Baseline: k-means++ (k passes).
    let pp: Vec<f64> = seeds
        .iter()
        .map(|&s| {
            Ok::<f64, KMeansError>(
                KMeans::params(k)
                    .init(InitMethod::KMeansPlusPlus)
                    .seed(s)
                    .fit(points)?
                    .cost(),
            )
        })
        .collect::<Result<_, _>>()?;
    let pp_median = kmeans_util::stats::median(&pp).expect("non-empty");

    println!("final cost (median of {} seeds), k = {k}:", seeds.len());
    print!("{:>8}", "r\\l/k");
    for f in factors {
        print!("{f:>12}");
    }
    println!("{:>10}", "passes");
    for r in rounds {
        print!("{r:>8}");
        for f in factors {
            let costs: Vec<f64> = seeds
                .iter()
                .map(|&s| {
                    Ok::<f64, KMeansError>(
                        KMeans::params(k)
                            .init(InitMethod::KMeansParallel(
                                KMeansParallelConfig::default()
                                    .oversampling_factor(f)
                                    .rounds(r),
                            ))
                            .seed(s)
                            .fit(points)?
                            .cost(),
                    )
                })
                .collect::<Result<_, _>>()?;
            print!(
                "{:>12.4e}",
                kmeans_util::stats::median(&costs).expect("non-empty")
            );
        }
        println!("{:>10}", 1 + r); // 1 initial pass + r rounds
    }
    println!(
        "{:>8}{:>12.4e}   <- k-means++ ({k} passes)",
        "++", pp_median
    );
    println!(
        "\nreading: r*l >= k reaches k-means++ quality; extra rounds/oversampling buy\n\
         little beyond r = 5 (the paper's recommendation), at 1/{}th the passes.",
        k / 6
    );
    Ok(())
}
