//! # scalable-kmeans
//!
//! A from-scratch Rust reproduction of **"Scalable K-Means++"** (Bahmani,
//! Moseley, Vattani, Kumar & Vassilvitskii, PVLDB 5(7), 2012) — the
//! **k-means||** initialization algorithm, its baselines, and the full
//! experimental evaluation.
//!
//! This crate is the facade over the workspace:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`cluster`] (`kmeans-cluster`) | coordinator/worker distributed runtime: checksummed wire protocol, TCP + loopback transports, `fit_distributed` |
//! | [`core`] (`kmeans-core`) | k-means\|\|, k-means++, Random seeding, Lloyd's iteration, mini-batch k-means, the backend-generic round drivers, metrics, the [`KMeans`] pipeline |
//! | [`data`] (`kmeans-data`) | `PointMatrix` storage, the GaussMixture / SpamLike / KddLike generators, CSV I/O, the `SKMMDL01` model file |
//! | [`obs`] (`kmeans-obs`) | flight recorder: structured spans + counters behind a `Clock`, log2 latency histograms with exact quantiles, Chrome trace JSON, Prometheus text rendering |
//! | [`par`] (`kmeans-par`) | deterministic shard executor + MapReduce-model simulator |
//! | [`serve`] (`kmeans-serve`) | online assignment service: micro-batching engine, `SKS1` protocol, TCP/loopback server + client, atomic model hot-swap |
//! | [`streaming`] (`kmeans-streaming`) | the Partition baseline (Ailon et al.), k-means#, a coreset tree |
//! | [`util`] (`kmeans-util`) | portable RNG, weighted sampling, statistics |
//!
//! ## Quickstart
//!
//! ```
//! use scalable_kmeans::prelude::*;
//!
//! // The paper's synthetic benchmark: 50 Gaussians in 15 dimensions.
//! let synth = GaussMixture::new(50).center_variance(10.0).generate(42)?;
//!
//! // k-means|| seeding (ℓ = 2k, r = 5) followed by Lloyd's iteration.
//! let model = KMeans::params(50).seed(7).fit(synth.dataset.points())?;
//!
//! println!("final cost      = {:.3e}", model.cost());
//! println!("seed cost       = {:.3e}", model.init_stats().seed_cost);
//! println!("lloyd iterations= {}", model.iterations());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Out of core
//!
//! Datasets larger than memory stream through the
//! [`ChunkedSource`](kmeans_data::ChunkedSource) layer — one scan per
//! k-means|| round or Lloyd iteration, bit-identical to the in-memory
//! fit (see `docs/ARCHITECTURE.md`). This is the README's headline
//! example, compiled here so it cannot rot:
//!
//! ```
//! use scalable_kmeans::prelude::*;
//!
//! let synth = GaussMixture::new(16).points(8_192).generate(1)?;
//! let path = std::env::temp_dir().join("readme_oocore.skmb");
//! write_block_file(&path, synth.dataset.points(), 1_024)?;
//!
//! // 256 KiB budget vs ~1 MiB of features: the data is never fully resident.
//! let source = BlockFileSource::open(&path, 256 * 1024)?;
//! let model = KMeans::params(16).seed(7).data_source(source).fit_chunked()?;
//!
//! // Bit-identical to the in-memory fit on the same seed:
//! let reference = KMeans::params(16).seed(7).fit(synth.dataset.points())?;
//! assert_eq!(model.centers(), reference.centers());
//! std::fs::remove_file(path)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Reproduce the paper's tables and figures with the `kmeans-bench`
//! binaries (`cargo run -p kmeans-bench --release --bin table1`, …); see
//! DESIGN.md for the experiment index and EXPERIMENTS.md for measured
//! results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use kmeans_cluster as cluster;
pub use kmeans_core as core;
pub use kmeans_data as data;
pub use kmeans_obs as obs;
pub use kmeans_par as par;
pub use kmeans_serve as serve;
pub use kmeans_streaming as streaming;
pub use kmeans_util as util;

pub use kmeans_core::{
    InitMethod, Initializer, KMeans, KMeansError, KMeansModel, KMeansParallelConfig, LloydConfig,
    RefineResult, Refiner,
};

/// Convenient glob-import surface for applications.
pub mod prelude {
    pub use kmeans_cluster::{
        Cluster, ClusterBackend, DistInit, DistRefine, FitDistributed, Worker as ClusterWorker,
    };
    pub use kmeans_core::accel::{hamerly_lloyd, HamerlyResult};
    pub use kmeans_core::driver::{BackendKind, ChunkedBackend, InMemoryBackend, RoundBackend};
    pub use kmeans_core::init::{
        InitMethod, KMeansParallelConfig, Oversampling, Recluster, Rounds, SamplingMode, TopUp,
    };
    pub use kmeans_core::lloyd::LloydConfig;
    pub use kmeans_core::metrics::{adjusted_rand_index, nmi, purity, silhouette_sampled};
    pub use kmeans_core::minibatch::MiniBatchConfig;
    pub use kmeans_core::model::{KMeans, KMeansModel};
    pub use kmeans_core::pipeline::{
        AfkMc2, HamerlyLloyd, Initializer, Lloyd, MiniBatch, NoRefine, RefineResult, Refiner,
    };
    pub use kmeans_core::KMeansError;
    pub use kmeans_data::synth::{GaussMixture, KddLike, SpamLike};
    pub use kmeans_data::{
        write_block_file, BlockFileSource, BlockFileWriter, ChunkedSource, CsvSource, Dataset,
        InMemorySource, PointMatrix, Residency,
    };
    pub use kmeans_obs::{FakeClock, HistogramSummary, LatencyHistogram, MonotonicClock, Recorder};
    pub use kmeans_par::{Executor, Parallelism};
    pub use kmeans_serve::{ServeClient, ServeEngine, TcpServeServer};
    pub use kmeans_streaming::partition::{partition_init, PartitionConfig};
    pub use kmeans_streaming::{Coreset, Partition};
    pub use kmeans_util::Rng;
}
