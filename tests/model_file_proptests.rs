//! Property tests for the `SKMMDL01` model image (the persistence half
//! of the serving tier): random records round-trip bitwise; adversarial
//! bytes — flips, truncations, forged header sizes, garbage — draw typed
//! `DataError`s, never panics, and never an allocation from a forged
//! count (the same defensive discipline as the `SKW1`/`SKS1` frames).

use proptest::collection::vec;
use proptest::prelude::*;
use scalable_kmeans::data::{decode_model, encode_model, ModelRecord, PointMatrix};

const NAMES: &[&str] = &["kmeans-par", "kmeans++", "random", "lloyd", "minibatch", ""];

fn record_from(dim: usize, floats: &[f64], ints: &[u64], converged: bool) -> ModelRecord {
    let rows = (floats.len() / dim).max(1);
    let flat: Vec<f64> = (0..rows * dim)
        .map(|i| floats.get(i).copied().unwrap_or(1.5))
        .collect();
    let get = |i: usize| ints.get(i).copied().unwrap_or(7);
    ModelRecord {
        centers: PointMatrix::from_flat(flat, dim).unwrap(),
        cost: floats.first().copied().unwrap_or(0.25),
        seed_cost: floats.last().copied().unwrap_or(0.5),
        distance_computations: get(0),
        pruned_by_norm_bound: get(1),
        iterations: get(2),
        init_rounds: get(3) as u32,
        init_passes: get(4) as u32,
        init_candidates: get(5),
        converged,
        init_name: NAMES[get(6) as usize % NAMES.len()].to_string(),
        refiner_name: NAMES[get(7) as usize % NAMES.len()].to_string(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_records_round_trip_bitwise(
        dim in 1usize..6,
        floats in vec(-1e12f64..1e12, 1..60),
        ints in vec(any::<u64>(), 1..10),
        converged in any::<u64>(),
    ) {
        let record = record_from(dim, &floats, &ints, converged % 2 == 1);
        let image = encode_model(&record).unwrap();
        let back = decode_model(&image).unwrap();
        prop_assert_eq!(&back, &record);
        let bits = |r: &ModelRecord| -> Vec<u64> {
            r.centers.as_slice().iter().map(|v| v.to_bits()).collect()
        };
        prop_assert_eq!(bits(&back), bits(&record));
    }

    #[test]
    fn any_byte_flip_is_detected(
        dim in 1usize..5,
        floats in vec(-1e6f64..1e6, 1..40),
        ints in vec(0u64..1_000_000, 1..10),
        pos_frac in 0.0f64..1.0,
        flip in 1u64..256,
    ) {
        // The trailing checksum covers everything after the magic, so a
        // real flip anywhere in the image must be rejected.
        let record = record_from(dim, &floats, &ints, false);
        let mut image = encode_model(&record).unwrap();
        let pos = ((image.len() as f64) * pos_frac) as usize % image.len();
        image[pos] ^= flip as u8;
        prop_assert!(decode_model(&image).is_err(), "flip at {} accepted", pos);
    }

    #[test]
    fn truncations_are_typed_errors(
        dim in 1usize..5,
        floats in vec(-1e6f64..1e6, 1..40),
        cut_frac in 0.0f64..1.0,
    ) {
        let record = record_from(dim, &floats, &[], true);
        let image = encode_model(&record).unwrap();
        let cut = ((image.len() as f64) * cut_frac) as usize;
        prop_assert!(decode_model(&image[..cut.min(image.len() - 1)]).is_err());
    }

    #[test]
    fn forged_header_sizes_never_over_allocate(
        dim in 1usize..5,
        floats in vec(-1e6f64..1e6, 1..40),
        forged_dim in any::<u64>(),
        forged_k in any::<u64>(),
    ) {
        // Header sizes are untrusted: promising far more center rows than
        // the image holds must fail checked size arithmetic (before any
        // allocation), not grow a Vec toward the declared product.
        let record = record_from(dim, &floats, &[], false);
        let mut image = encode_model(&record).unwrap();
        image[8..12].copy_from_slice(&((forged_dim % u32::MAX as u64) as u32 + 1).to_le_bytes());
        image[12..16].copy_from_slice(&((forged_k % u32::MAX as u64) as u32 + 1).to_le_bytes());
        match decode_model(&image) {
            Err(_) => {}
            Ok(back) => {
                // Only reachable when the forgery restored the original
                // header (and with it the checksum).
                prop_assert_eq!(back, record);
            }
        }
    }

    #[test]
    fn garbage_never_panics(bytes in vec(any::<u64>(), 0..64)) {
        let garbage: Vec<u8> = bytes.iter().flat_map(|b| b.to_le_bytes()).collect();
        let _ = decode_model(&garbage);
        // With the magic in place the rest is still untrusted.
        let mut with_magic = b"SKMMDL01".to_vec();
        with_magic.extend_from_slice(&garbage);
        let _ = decode_model(&with_magic);
    }
}
