//! The serving parity contract: answers from `skm serve`'s engine must
//! be **bit-identical** to the local `KMeansModel::predict`/`cost_of` on
//! the same model — for any batch size, client count, server thread
//! count, and transport (loopback or real TCP) — and across hot-swaps,
//! where every reply must be consistent with exactly one model revision.
//! Mid-request disconnects surface as typed errors, never hangs or
//! panics (style of `tests/failure_injection.rs`).

use scalable_kmeans::cluster::protocol::WireError;
use scalable_kmeans::cluster::transport::{TcpTransport, Transport};
use scalable_kmeans::cluster::{ClusterError, WireMessage};
use scalable_kmeans::data::{load_model_file, ModelRecord};
use scalable_kmeans::prelude::*;
use scalable_kmeans::serve::{
    spawn_loopback_serve, spawn_tcp_serve, ServeClient, ServeEngine, ServeMessage, TcpServeServer,
};
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const IO: Option<Duration> = Some(Duration::from_secs(30));

fn dataset(seed: u64) -> PointMatrix {
    GaussMixture::new(6)
        .points(600)
        .center_variance(80.0)
        .generate(seed)
        .unwrap()
        .dataset
        .points()
        .clone()
}

fn fitted(points: &PointMatrix, seed: u64) -> KMeansModel {
    KMeans::params(6)
        .seed(seed)
        .parallelism(Parallelism::Sequential)
        .fit(points)
        .unwrap()
}

/// Rows `range` of `points` as an owned matrix (a client's query batch).
fn rows(points: &PointMatrix, range: std::ops::Range<usize>) -> PointMatrix {
    let d = points.dim();
    PointMatrix::from_flat(
        points.as_slice()[range.start * d..range.end * d].to_vec(),
        d,
    )
    .unwrap()
}

/// Asserts one served prediction against the local model, bitwise.
fn assert_parity(local: &KMeansModel, query: &PointMatrix, labels: &[u32], cost: f64) {
    assert_eq!(labels, local.predict(query).unwrap(), "labels diverged");
    assert_eq!(
        cost.to_bits(),
        local.cost_of(query).unwrap().to_bits(),
        "cost diverged: served {cost:?} vs local {:?}",
        local.cost_of(query).unwrap()
    );
}

#[test]
fn served_answers_are_bit_identical_over_loopback_and_tcp() {
    let data = dataset(7);
    let model = fitted(&data, 3);

    // Through the SKMMDL01 file boundary — the exact record `skm serve`
    // would load.
    let dir = std::env::temp_dir().join(format!(
        "skm_serve_parity_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.skmm");
    model.save(&path).unwrap();
    let record = load_model_file(&path).unwrap();
    std::fs::remove_file(&path).unwrap();

    // Server thread counts × batch caps; the local reference stays on a
    // sequential executor — parity must hold regardless.
    for (parallelism, cap) in [
        (Parallelism::Sequential, 5),
        (Parallelism::Threads(3), 5),
        (Parallelism::Threads(2), 1 << 16),
    ] {
        let engine =
            ServeEngine::with_batch_cap(record.clone(), Executor::new(parallelism), cap).unwrap();

        // Loopback transport.
        let (transport, loop_handle) = spawn_loopback_serve(&engine);
        let mut client = ServeClient::handshake(transport).unwrap();
        assert_eq!(client.info().revision, 1);
        assert_eq!(client.info().k, 6);
        assert_eq!(client.info().dim as usize, data.dim());
        for size in [1usize, 7, 64, 300] {
            let query = rows(&data, 0..size);
            let prediction = client.predict(&query).unwrap();
            assert_eq!(prediction.revision, 1);
            assert_parity(&model, &query, &prediction.labels, prediction.cost);
            let (revision, cost) = client.cost_of(&query).unwrap();
            assert_eq!(revision, 1);
            assert_eq!(cost.to_bits(), prediction.cost.to_bits());
        }
        drop(client); // hang up: the session must end cleanly
        loop_handle.join().unwrap().unwrap();

        // Real TCP.
        let (addr, tcp_handle) = spawn_tcp_serve(engine.clone(), IO).unwrap();
        let mut client = ServeClient::connect(&addr.to_string(), IO).unwrap();
        for (start, size) in [(0usize, 1usize), (13, 17), (100, 256)] {
            let query = rows(&data, start..start + size);
            let prediction = client.predict(&query).unwrap();
            assert_parity(&model, &query, &prediction.labels, prediction.cost);
        }
        client.shutdown().unwrap();
        tcp_handle.join().unwrap().unwrap();
    }
}

#[test]
fn concurrent_clients_coalesce_into_shared_batches_bit_identically() {
    let data = dataset(11);
    let model = fitted(&data, 5);
    let record = model.to_record();

    // A small batch cap plus parallel clients forces multi-request
    // batches (and cap-splitting) through one kernel.
    let engine =
        ServeEngine::with_batch_cap(record.clone(), Executor::new(Parallelism::Threads(2)), 64)
            .unwrap();
    let (addr, handle) = spawn_tcp_serve(engine, IO).unwrap();

    const CLIENTS: usize = 4;
    const REQUESTS: usize = 8;
    let data = Arc::new(data);
    let mut workers = Vec::new();
    let mut expected_points = 0u64;
    for t in 0..CLIENTS {
        for i in 0..REQUESTS {
            expected_points += (1 + 29 * t + 7 * i) as u64;
        }
        let data = Arc::clone(&data);
        let record = record.clone();
        let addr = addr.to_string();
        workers.push(std::thread::spawn(move || {
            let local = KMeansModel::from_record(record, Executor::new(Parallelism::Sequential));
            let mut client = ServeClient::connect(&addr, IO).unwrap();
            for i in 0..REQUESTS {
                let size = 1 + 29 * t + 7 * i;
                let query = rows(&data, t..t + size);
                let prediction = client.predict(&query).unwrap();
                assert_eq!(prediction.revision, 1);
                assert_parity(&local, &query, &prediction.labels, prediction.cost);
            }
        }));
    }
    for w in workers {
        w.join().unwrap();
    }

    let mut client = ServeClient::connect(&addr.to_string(), IO).unwrap();
    let stats = client.fetch_stats().unwrap();
    assert_eq!(stats.revision, 1);
    assert_eq!(stats.requests, (CLIENTS * REQUESTS) as u64);
    assert_eq!(stats.points, expected_points);
    assert!(stats.batches >= 1 && stats.batches <= stats.requests);
    assert!(stats.max_batch_points >= 1);
    assert!(stats.distance_computations > 0);
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn hot_swap_under_load_keeps_every_reply_on_exactly_one_revision() {
    let data = dataset(23);
    let model_a = fitted(&data, 1);
    let model_b = fitted(&data, 2);
    assert_ne!(
        model_a.centers().as_slice(),
        model_b.centers().as_slice(),
        "swap test needs distinguishable models"
    );

    let engine = ServeEngine::with_batch_cap(
        model_a.to_record(),
        Executor::new(Parallelism::Threads(2)),
        128,
    )
    .unwrap();
    let (addr, handle) = spawn_tcp_serve(engine, IO).unwrap();

    // Every in-flight reply must match exactly one of the two local
    // models, selected by its revision tag — never a mixture.
    let query = rows(&data, 40..140);
    let expected_a = (
        model_a.predict(&query).unwrap(),
        model_a.cost_of(&query).unwrap().to_bits(),
    );
    let expected_b = (
        model_b.predict(&query).unwrap(),
        model_b.cost_of(&query).unwrap().to_bits(),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for _ in 0..3 {
        let stop = Arc::clone(&stop);
        let addr = addr.to_string();
        let query = query.clone();
        let expected_a = expected_a.clone();
        let expected_b = expected_b.clone();
        workers.push(std::thread::spawn(move || {
            let mut client = ServeClient::connect(&addr, IO).unwrap();
            let (mut on_a, mut on_b) = (0u64, 0u64);
            while !stop.load(Ordering::Relaxed) {
                let p = client.predict(&query).unwrap();
                let expected = match p.revision {
                    1 => {
                        on_a += 1;
                        &expected_a
                    }
                    2 => {
                        on_b += 1;
                        &expected_b
                    }
                    other => panic!("reply tagged with unknown revision {other}"),
                };
                assert_eq!(p.labels, expected.0, "labels off-revision");
                assert_eq!(p.cost.to_bits(), expected.1, "cost off-revision");
            }
            (on_a, on_b)
        }));
    }

    let mut admin = ServeClient::connect(&addr.to_string(), IO).unwrap();
    // Let the load run on revision 1 for a moment, then swap.
    for _ in 0..5 {
        assert_eq!(admin.predict(&query).unwrap().revision, 1);
    }
    let revision = admin.swap_model(&model_b.to_record()).unwrap();
    assert_eq!(revision, 2);
    assert_eq!(admin.info().revision, 2);
    // Post-swap answers come from the new model.
    let p = admin.predict(&query).unwrap();
    assert_eq!(p.revision, 2);
    assert_eq!(p.labels, expected_b.0);
    assert_eq!(p.cost.to_bits(), expected_b.1);

    stop.store(true, Ordering::Relaxed);
    let mut total_b = 0;
    for w in workers {
        let (_, on_b) = w.join().unwrap();
        total_b += on_b;
    }
    // The workers kept running past the swap, so at least the final
    // stretch ran on revision 2 (the admin's own revision-2 reply above
    // proves the swap landed mid-load).
    let stats = admin.fetch_stats().unwrap();
    assert_eq!(stats.swaps, 1);
    assert_eq!(stats.revision, 2);
    let _ = total_b; // revision-2 worker replies are timing-dependent

    admin.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn swapping_garbage_is_a_typed_error_and_the_session_survives() {
    let data = dataset(31);
    let model = fitted(&data, 9);
    let engine =
        ServeEngine::new(model.to_record(), Executor::new(Parallelism::Sequential)).unwrap();
    let (addr, handle) = spawn_tcp_serve(engine, IO).unwrap();

    let stream = TcpStream::connect(addr).unwrap();
    let mut transport = TcpTransport::<ServeMessage>::new(stream, IO).unwrap();
    transport
        .send(&ServeMessage::SwapModel {
            model: b"definitely not SKMMDL01".to_vec(),
        })
        .unwrap();
    match transport.recv().unwrap() {
        ServeMessage::Error(WireError::Data(_)) => {}
        other => panic!("expected a typed Data error, got {other:?}"),
    }
    // Same session keeps answering; the installed model is undisturbed.
    transport.send(&ServeMessage::Hello).unwrap();
    match transport.recv().unwrap() {
        ServeMessage::ModelInfo { revision, k, .. } => {
            assert_eq!(revision, 1);
            assert_eq!(k, 6);
        }
        other => panic!("expected ModelInfo, got {other:?}"),
    }
    drop(transport);

    let client = ServeClient::connect(&addr.to_string(), IO).unwrap();
    assert_eq!(client.info().revision, 1);
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn mid_request_disconnects_are_typed_never_hangs() {
    let data = dataset(41);
    let model = fitted(&data, 4);
    let record = model.to_record();

    // (a) A client that vanishes mid-frame doesn't take the daemon down:
    // the next client gets bit-identical service.
    let engine = ServeEngine::new(record.clone(), Executor::new(Parallelism::Sequential)).unwrap();
    let (addr, handle) = spawn_tcp_serve(engine, IO).unwrap();
    {
        let mut s = TcpStream::connect(addr).unwrap();
        // Valid magic, Predict tag, then half a length prefix — gone.
        s.write_all(b"SKS1\x03\xff\xff").unwrap();
    }
    let mut client = ServeClient::connect(&addr.to_string(), IO).unwrap();
    let query = rows(&data, 0..50);
    let prediction = client.predict(&query).unwrap();
    assert_parity(&model, &query, &prediction.labels, prediction.cost);
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();

    // (b) A corrupted frame is a typed frame error at the server.
    let engine = ServeEngine::new(record.clone(), Executor::new(Parallelism::Sequential)).unwrap();
    let server = TcpServeServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let once = std::thread::spawn(move || server.serve(engine, IO, true));
    let mut s = TcpStream::connect(addr).unwrap();
    let mut frame = ServeMessage::Hello.encode_frame();
    *frame.last_mut().unwrap() ^= 0xff; // break the checksum
    s.write_all(&frame).unwrap();
    s.flush().unwrap();
    let err = once.join().unwrap().unwrap_err();
    assert!(matches!(err, ClusterError::Frame(_)), "{err:?}");
    drop(s);

    // (c) A server that vanishes mid-request is a typed client error.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let gone = listener.local_addr().unwrap();
    let drop_first = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        drop(stream);
    });
    let err = ServeClient::connect(&gone.to_string(), IO).unwrap_err();
    assert!(
        matches!(err, ClusterError::Disconnected | ClusterError::Io(_)),
        "{err:?}"
    );
    drop_first.join().unwrap();
}

#[test]
fn chunked_predict_concatenates_byte_identical_labels() {
    let data = dataset(61);
    let model = fitted(&data, 7);
    let expected = model.predict(&data).unwrap();

    // A server whose batch cap is far smaller than the input: the client
    // must stream bounded chunks, and the concatenation must be the
    // labels of one giant predict, byte for byte — for chunk sizes that
    // divide the input, don't divide it, and degenerate to one point.
    let engine = ServeEngine::with_batch_cap(
        model.to_record(),
        Executor::new(Parallelism::Threads(2)),
        64,
    )
    .unwrap();
    let (addr, handle) = spawn_tcp_serve(engine, IO).unwrap();
    let mut client = ServeClient::connect(&addr.to_string(), IO).unwrap();
    assert_eq!(client.info().batch_cap, 64);
    for chunk in [64usize, 37, 1, 599, 600, 100_000] {
        let p = client.predict_chunked(&data, chunk).unwrap();
        assert_eq!(p.revision, 1);
        assert_eq!(p.labels, expected, "chunk size {chunk} changed labels");
    }
    // The advertised cap is the natural chunk size the CLI defaults to.
    let p = client
        .predict_chunked(&data, client.info().batch_cap as usize)
        .unwrap();
    assert_eq!(p.labels, expected);
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn model_record_survives_the_file_and_wire_boundary_bitwise() {
    let data = dataset(53);
    let model = fitted(&data, 8);
    let record = model.to_record();
    let image = scalable_kmeans::data::encode_model(&record).unwrap();
    let back: ModelRecord = scalable_kmeans::data::decode_model(&image).unwrap();
    assert_eq!(back, record);
    assert_eq!(
        back.centers
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        record
            .centers
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
    );
}
