//! Ablation A4: the determinism guarantee — every public entry point must
//! produce bit-identical results for any worker count (logical shards make
//! the shard layout, not the thread schedule, the source of randomness).

use scalable_kmeans::prelude::*;

fn dataset() -> kmeans_data::dataset::SyntheticDataset {
    GaussMixture::new(12)
        .points(3_000)
        .center_variance(10.0)
        .generate(77)
        .unwrap()
}

#[test]
fn full_pipeline_invariant_to_thread_count() {
    let synth = dataset();
    let points = synth.dataset.points();
    let fit = |par: Parallelism| {
        KMeans::params(12)
            .seed(5)
            .parallelism(par)
            .shard_size(256)
            .fit(points)
            .unwrap()
    };
    let reference = fit(Parallelism::Sequential);
    for threads in [2, 3, 5, 16] {
        let got = fit(Parallelism::Threads(threads));
        assert_eq!(got.labels(), reference.labels(), "threads={threads}");
        assert_eq!(got.centers(), reference.centers(), "threads={threads}");
        assert_eq!(
            got.cost().to_bits(),
            reference.cost().to_bits(),
            "threads={threads}"
        );
        assert_eq!(got.iterations(), reference.iterations());
        assert_eq!(
            got.init_stats().candidates,
            reference.init_stats().candidates
        );
    }
}

#[test]
fn partition_baseline_invariant_to_thread_count() {
    let synth = dataset();
    let points = synth.dataset.points();
    let run = |par: Parallelism| {
        let exec = Executor::new(par).with_shard_size(256);
        partition_init(points, 8, &PartitionConfig::default(), 21, &exec).unwrap()
    };
    let reference = run(Parallelism::Sequential);
    for threads in [2, 7] {
        let got = run(Parallelism::Threads(threads));
        assert_eq!(got.centers, reference.centers);
        assert_eq!(got.intermediate_centers, reference.intermediate_centers);
    }
}

#[test]
fn exact_l_sampling_invariant_to_thread_count() {
    let synth = dataset();
    let points = synth.dataset.points();
    let fit = |par: Parallelism| {
        KMeans::params(12)
            .init(InitMethod::KMeansParallel(
                KMeansParallelConfig::default().sampling(SamplingMode::ExactL),
            ))
            .seed(6)
            .parallelism(par)
            .shard_size(128)
            .fit(points)
            .unwrap()
    };
    let reference = fit(Parallelism::Sequential);
    let got = fit(Parallelism::Threads(4));
    assert_eq!(got.centers(), reference.centers());
    assert_eq!(got.labels(), reference.labels());
}

#[test]
fn shard_size_is_part_of_the_reproducibility_key() {
    // Changing the *shard size* may legitimately change sampling outcomes
    // (per-shard RNG streams); the API documents this. Verify both runs are
    // internally consistent and valid rather than identical.
    let synth = dataset();
    let points = synth.dataset.points();
    let fit = |shard: usize| {
        KMeans::params(12)
            .seed(5)
            .parallelism(Parallelism::Sequential)
            .shard_size(shard)
            .fit(points)
            .unwrap()
    };
    let a = fit(128);
    let b = fit(512);
    assert_eq!(a.k(), b.k());
    assert!(a.cost() > 0.0 && b.cost() > 0.0);
}

#[test]
fn speedup_is_observable_on_multicore() {
    // Soft check: with 2+ cores, the parallel executor should not be
    // dramatically slower than sequential on a chunky job (guards against
    // pathological contention in the shard queue). Uses wall time with a
    // generous factor to stay robust on loaded CI machines.
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    if cores < 2 {
        return;
    }
    let synth = GaussMixture::new(40)
        .points(60_000)
        .center_variance(10.0)
        .generate(5)
        .unwrap();
    let points = synth.dataset.points();
    let time = |par: Parallelism| {
        let exec = Executor::new(par);
        let start = std::time::Instant::now();
        for _ in 0..3 {
            scalable_kmeans::core::cost::potential(points, &synth.true_centers, &exec);
        }
        start.elapsed().as_secs_f64()
    };
    let seq = time(Parallelism::Sequential);
    let par = time(Parallelism::Threads(cores));
    assert!(
        par < seq * 1.5,
        "parallel potential pass pathologically slow: seq {seq:.3}s par {par:.3}s"
    );
}
