//! Property tests for the `SKMCKPT1` round-checkpoint file and the
//! resume machinery on top of it: random journals round-trip bitwise;
//! adversarial bytes — flips, truncations, forged record lengths,
//! garbage — draw typed errors, never panics, never a forged-count
//! allocation (the `SKMMDL01`/`SKW1` defensive discipline); and a fit
//! resumed from a journal truncated at *any* round finishes
//! bit-identically to the uninterrupted fit — including the end-to-end
//! story of a fit crashing mid-job and being re-run against the
//! persisted checkpoint file.

use proptest::collection::vec;
use proptest::prelude::*;
use scalable_kmeans::cluster::fault::tag;
use scalable_kmeans::cluster::{
    spawn_loopback_worker, spawn_loopback_worker_with_faults, Cluster, ClusterError, FaultAction,
    FitDistributed, RoundCheckpoint, Transport,
};
use scalable_kmeans::core::model::{KMeans, KMeansModel};
use scalable_kmeans::data::synth::GaussMixture;
use scalable_kmeans::data::{
    decode_checkpoint, encode_checkpoint, is_checkpoint_file, load_checkpoint_file,
    save_checkpoint_file, CheckpointMeta, CheckpointRecord, InMemorySource, PointMatrix,
};
use scalable_kmeans::par::Parallelism;

// --- codec fuzzing --------------------------------------------------------

fn meta_from(ints: &[u64]) -> CheckpointMeta {
    let get = |i: usize| ints.get(i).copied().unwrap_or(3);
    CheckpointMeta {
        seed: get(0),
        k: get(1),
        global_n: get(2),
        shard_size: get(3),
        dim: get(4) as u32,
    }
}

fn records_from(raw: &[(u8, u64, Vec<u8>)]) -> Vec<CheckpointRecord> {
    raw.iter()
        .map(|(kind, fingerprint, payload)| CheckpointRecord {
            kind: *kind,
            fingerprint: *fingerprint,
            payload: payload.clone(),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_journals_round_trip_bitwise(
        ints in vec(any::<u64>(), 1..6),
        raw in vec((any::<u8>(), any::<u64>(), vec(any::<u8>(), 0..80)), 0..12),
    ) {
        let meta = meta_from(&ints);
        let records = records_from(&raw);
        let image = encode_checkpoint(&meta, &records).unwrap();
        let (back_meta, back_records) = decode_checkpoint(&image).unwrap();
        prop_assert_eq!(back_meta, meta);
        prop_assert_eq!(back_records, records);
    }

    #[test]
    fn any_byte_flip_is_detected(
        ints in vec(any::<u64>(), 1..6),
        raw in vec((any::<u8>(), any::<u64>(), vec(any::<u8>(), 0..40)), 0..8),
        pos_frac in 0.0f64..1.0,
        flip in 1u64..256,
    ) {
        // The trailing checksum covers everything after the magic, and
        // the magic itself is pinned — a real flip anywhere must reject.
        let meta = meta_from(&ints);
        let records = records_from(&raw);
        let mut image = encode_checkpoint(&meta, &records).unwrap();
        let pos = ((image.len() as f64) * pos_frac) as usize % image.len();
        image[pos] ^= flip as u8;
        prop_assert!(decode_checkpoint(&image).is_err(), "flip at {} accepted", pos);
    }

    #[test]
    fn truncations_are_typed_errors(
        ints in vec(any::<u64>(), 1..6),
        raw in vec((any::<u8>(), any::<u64>(), vec(any::<u8>(), 0..40)), 1..8),
        cut_frac in 0.0f64..1.0,
    ) {
        let meta = meta_from(&ints);
        let records = records_from(&raw);
        let image = encode_checkpoint(&meta, &records).unwrap();
        let cut = ((image.len() as f64) * cut_frac) as usize;
        prop_assert!(decode_checkpoint(&image[..cut.min(image.len() - 1)]).is_err());
    }

    #[test]
    fn forged_record_lengths_never_over_allocate(
        ints in vec(any::<u64>(), 1..6),
        payload in vec(any::<u8>(), 1..40),
        forged in any::<u64>(),
    ) {
        // The first record's length field sits right after the header
        // (kind u8 + fingerprint u64). Forging it to promise more bytes
        // than the file holds must fail checked arithmetic before any
        // allocation; if the forgery happens to restore the original
        // bytes the checksum still has the final say.
        let meta = meta_from(&ints);
        let records = records_from(&[(8, 0xfeed, payload)]);
        let mut image = encode_checkpoint(&meta, &records).unwrap();
        let len_at = 56 + 1 + 8;
        image[len_at..len_at + 8].copy_from_slice(&forged.to_le_bytes());
        match decode_checkpoint(&image) {
            Err(_) => {}
            Ok((m, r)) => {
                prop_assert_eq!(m, meta);
                prop_assert_eq!(r, records);
            }
        }
    }

    #[test]
    fn garbage_never_panics(bytes in vec(any::<u64>(), 0..64)) {
        let garbage: Vec<u8> = bytes.iter().flat_map(|b| b.to_le_bytes()).collect();
        let _ = decode_checkpoint(&garbage);
        let mut with_magic = b"SKMCKPT1".to_vec();
        with_magic.extend_from_slice(&garbage);
        let _ = decode_checkpoint(&with_magic);
    }
}

// --- resume parity --------------------------------------------------------

const N: usize = 192;
const K: usize = 6;
const SHARD: usize = 16;

fn gauss() -> PointMatrix {
    GaussMixture::new(K)
        .points(N)
        .center_variance(50.0)
        .generate(11)
        .unwrap()
        .dataset
        .into_parts()
        .1
}

fn slice_rows(points: &PointMatrix, start: usize, rows: usize) -> PointMatrix {
    let dim = points.dim();
    PointMatrix::from_flat(
        points.as_slice()[start * dim..(start + rows) * dim].to_vec(),
        dim,
    )
    .unwrap()
}

type WorkerHandle = std::thread::JoinHandle<Result<(), ClusterError>>;

fn loopback_cluster(points: &PointMatrix, workers: usize) -> (Cluster, Vec<WorkerHandle>) {
    let per = points.len() / workers;
    let mut transports: Vec<Box<dyn Transport>> = Vec::new();
    let mut handles = Vec::new();
    for w in 0..workers {
        let rows = if w + 1 == workers {
            points.len() - w * per
        } else {
            per
        };
        let source = InMemorySource::new(slice_rows(points, w * per, rows), 3).unwrap();
        let (t, h) = spawn_loopback_worker(source, Parallelism::Sequential);
        transports.push(Box::new(t));
        handles.push(h);
    }
    (Cluster::new(transports).unwrap(), handles)
}

fn meta_for(points: &PointMatrix, seed: u64) -> CheckpointMeta {
    CheckpointMeta {
        seed,
        k: K as u64,
        global_n: points.len() as u64,
        shard_size: SHARD as u64,
        dim: points.dim() as u32,
    }
}

fn assert_same_fit(a: &KMeansModel, b: &KMeansModel, what: &str) {
    assert_eq!(a.centers(), b.centers(), "{what}: centers");
    assert_eq!(a.labels(), b.labels(), "{what}: labels");
    assert_eq!(a.cost().to_bits(), b.cost().to_bits(), "{what}: cost");
    assert_eq!(a.iterations(), b.iterations(), "{what}: iterations");
    assert_eq!(
        a.init_stats().seed_cost.to_bits(),
        b.init_stats().seed_cost.to_bits(),
        "{what}: seed cost"
    );
}

/// Resuming from the journal truncated at *every* possible round — the
/// deterministic superset of "random r" — reproduces the uninterrupted
/// fit bit for bit and re-fills the journal to the same length.
#[test]
fn resume_from_every_truncation_point_is_bit_identical() {
    let points = gauss();
    let builder = KMeans::params(K).seed(42).shard_size(SHARD);
    let reference = builder.clone().fit(&points).unwrap();

    let mut full = RoundCheckpoint::new(meta_for(&points, 42));
    let (mut cluster, handles) = loopback_cluster(&points, 2);
    let uninterrupted = builder
        .clone()
        .fit_distributed_resumable(&mut cluster, &mut full)
        .unwrap();
    cluster.shutdown();
    for h in handles {
        h.join().unwrap().unwrap();
    }
    assert_same_fit(&reference, &uninterrupted, "journaled fit vs in-memory");
    // Fused rounds: one journal record per compound round, so the floor
    // is lower than the old one-record-per-primitive journal (first
    // gather + init+sample + 4 update+sample + update+weights + potential
    // = 8 before any Lloyd assignment).
    assert!(full.len() > 8, "expected a multi-round journal, got {}", full.len());

    for r in 0..=full.len() {
        let mut partial = full.clone();
        partial.truncate(r);
        let (mut cluster, handles) = loopback_cluster(&points, 2);
        let resumed = builder
            .clone()
            .fit_distributed_resumable(&mut cluster, &mut partial)
            .unwrap_or_else(|e| panic!("resume at round {r}: {e}"));
        cluster.shutdown();
        for h in handles {
            h.join().unwrap().unwrap();
        }
        assert_same_fit(&reference, &resumed, &format!("resume at round {r}"));
        assert_eq!(
            partial.len(),
            full.len(),
            "resume at round {r} must re-fill the journal"
        );
    }
}

/// A journal bound to a different job (wrong seed) is rejected with a
/// typed error before any round runs.
#[test]
fn foreign_journal_is_rejected() {
    let points = gauss();
    let (mut cluster, handles) = loopback_cluster(&points, 2);
    let mut wrong_seed = RoundCheckpoint::new(meta_for(&points, 43));
    let err = KMeans::params(K)
        .seed(42)
        .shard_size(SHARD)
        .fit_distributed_resumable(&mut cluster, &mut wrong_seed)
        .unwrap_err();
    assert!(err.to_string().contains("different job"), "{err}");
    cluster.shutdown();
    for h in handles {
        h.join().unwrap().unwrap();
    }
}

/// The crash-resume story end to end, through the *file*: a checkpointed
/// fit dies mid-job (scripted worker death, no recovery armed), leaving
/// an `SKMCKPT1` file of the completed rounds; re-running the same fit
/// against a healthy cluster resumes from the file, finishes
/// bit-identically, and cleans the file up. A tampered copy of the
/// crash file (one fingerprint bit flipped) is rejected as a typed
/// error.
#[test]
fn crashed_fit_resumes_from_its_checkpoint_file() {
    let points = gauss();
    let builder = KMeans::params(K).seed(42).shard_size(SHARD);
    let reference = builder.clone().fit(&points).unwrap();
    let dir = std::env::temp_dir().join("kmeans_ckpt_resume");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fit.skmc");
    let _ = std::fs::remove_file(&path);

    // Run 1: worker 1 dies at the first Lloyd assignment; no recovery is
    // armed, so the fit fails — after journaling every completed round.
    let per = points.len() / 2;
    let mut transports: Vec<Box<dyn Transport>> = Vec::new();
    let mut handles = Vec::new();
    for (w, (start, rows)) in [(0, per), (per, points.len() - per)]
        .into_iter()
        .enumerate()
    {
        let source = InMemorySource::new(slice_rows(&points, start, rows), 3).unwrap();
        let script = if w == 1 {
            vec![FaultAction::KillOnRecv {
                tag: tag::ASSIGN,
                occurrence: 1,
            }]
        } else {
            vec![]
        };
        let (t, h) = spawn_loopback_worker_with_faults(source, Parallelism::Sequential, script);
        transports.push(Box::new(t));
        handles.push(h);
    }
    let mut cluster = Cluster::new(transports).unwrap();
    let err = builder
        .clone()
        .fit_distributed_checkpointed(&mut cluster, &path)
        .unwrap_err();
    assert!(err.to_string().contains("disconnected"), "{err}");
    drop(cluster);
    for h in handles {
        let _ = h.join().unwrap();
    }
    assert!(path.exists(), "the crash must leave a checkpoint behind");
    assert!(is_checkpoint_file(&path));
    let (meta, records) = load_checkpoint_file(&path).unwrap();
    assert_eq!(meta, meta_for(&points, 42));
    assert!(!records.is_empty());

    // A tampered copy — one flipped fingerprint bit mid-journal — is a
    // typed mismatch error on resume, not silent divergence.
    let tampered_path = dir.join("tampered.skmc");
    let mut tampered = records.clone();
    let mid = tampered.len() / 2;
    tampered[mid].fingerprint ^= 1;
    save_checkpoint_file(&tampered_path, &meta, &tampered).unwrap();
    let (mut cluster, handles) = loopback_cluster(&points, 2);
    let err = builder
        .clone()
        .fit_distributed_checkpointed(&mut cluster, &tampered_path)
        .unwrap_err();
    assert!(err.to_string().contains("does not match"), "{err}");
    cluster.shutdown();
    for h in handles {
        h.join().unwrap().unwrap();
    }
    let _ = std::fs::remove_file(&tampered_path);

    // Run 2: same command, healthy cluster — resumes from the file,
    // matches the never-crashed fit, and removes the checkpoint.
    let (mut cluster, handles) = loopback_cluster(&points, 2);
    let resumed = builder
        .fit_distributed_checkpointed(&mut cluster, &path)
        .unwrap();
    cluster.shutdown();
    for h in handles {
        h.join().unwrap().unwrap();
    }
    assert_same_fit(&reference, &resumed, "file-backed resume");
    assert!(
        !path.exists(),
        "a completed fit must clean up its checkpoint"
    );
}
