//! Empirical validation of the paper's analysis (§6).
//!
//! **Theorem 2**: with `α = exp(−(1 − e^{−ℓ/2k})) ≈ e^{−ℓ/2k}`, one round
//! of Algorithm 2 satisfies
//!
//! ```text
//! E[φ_X(C ∪ C′)] ≤ 8·φ* + ((1 + α)/2)·φ_X(C)
//! ```
//!
//! **Corollary 3**: after `i` rounds,
//! `E[φ⁽ⁱ⁾] ≤ ((1+α)/2)ⁱ·ψ + (16/(1−α))·φ*`.
//!
//! We cannot observe expectations, but we can average the one-round
//! contraction over many seeds and check the bound empirically, using the
//! generator's ground-truth centers to upper-estimate `φ*` (the true
//! optimum is below the truth-center cost, which only makes the checked
//! bound *tighter*... so we check against the Theorem's RHS computed with
//! the truth-center estimate, which is a legitimate upper bound on 8φ*'s
//! contribution only if φ* ≤ φ_truth — which holds by optimality).

use scalable_kmeans::core::cost::{potential, CostTracker};
use scalable_kmeans::prelude::*;

/// Runs Steps 1–6 of Algorithm 2 manually, recording φ after each round.
fn phi_trajectory(points: &PointMatrix, l: f64, rounds: usize, seed: u64) -> Vec<f64> {
    let exec = Executor::new(Parallelism::Sequential);
    let mut rng = Rng::derive(seed, &[90]);
    let first = rng.range_usize(points.len());
    let mut centers = points.select(&[first]);
    let mut tracker = CostTracker::new(points, &centers, &exec);
    let mut traj = vec![tracker.potential()];
    for _ in 0..rounds {
        let phi = tracker.potential();
        if phi <= 0.0 {
            traj.push(0.0);
            continue;
        }
        let mut new_rows: Vec<usize> = Vec::new();
        for (i, &d2) in tracker.d2().iter().enumerate() {
            if rng.bernoulli(l * d2 / phi) {
                new_rows.push(i);
            }
        }
        let from = centers.len();
        for &i in &new_rows {
            centers.push(points.row(i)).unwrap();
        }
        tracker.update(&centers, from, &exec);
        traj.push(tracker.potential());
    }
    traj
}

#[test]
fn theorem_2_one_round_contraction_holds_on_average() {
    // GaussMixture with known structure; φ* estimated from truth centers.
    let k = 20;
    let synth = GaussMixture::new(k)
        .points(3_000)
        .center_variance(16.0)
        .generate(5)
        .unwrap();
    let points = synth.dataset.points();
    let exec = Executor::new(Parallelism::Sequential);
    let phi_star_upper = potential(points, &synth.true_centers, &exec);

    let l = 2.0 * k as f64;
    let alpha = (-(1.0 - (-l / (2.0 * k as f64)).exp())).exp();
    let seeds = 40u64;
    // Average the realized one-round ratio over many seeds, per round.
    let rounds = 4;
    let mut avg_after = vec![0.0f64; rounds];
    let mut avg_before = vec![0.0f64; rounds];
    for s in 0..seeds {
        let traj = phi_trajectory(points, l, rounds, s);
        for r in 0..rounds {
            avg_before[r] += traj[r] / seeds as f64;
            avg_after[r] += traj[r + 1] / seeds as f64;
        }
    }
    for r in 0..rounds {
        let bound = 8.0 * phi_star_upper + 0.5 * (1.0 + alpha) * avg_before[r];
        assert!(
            avg_after[r] <= bound,
            "round {r}: E[φ'] ≈ {:.3e} exceeds Theorem 2 bound {:.3e} \
             (E[φ] ≈ {:.3e}, 8φ*≤{:.3e})",
            avg_after[r],
            bound,
            avg_before[r],
            8.0 * phi_star_upper
        );
    }
}

#[test]
fn corollary_3_geometric_decay_to_constant_factor() {
    // After O(log ψ) rounds the trajectory should flatten near O(φ*):
    // check that 8 rounds with ℓ = 2k bring φ within a constant factor
    // (≤ 16/(1−α) + slack) of the truth-center cost, from ψ that starts
    // orders of magnitude higher.
    let k = 20;
    let synth = GaussMixture::new(k)
        .points(3_000)
        .center_variance(100.0)
        .generate(6)
        .unwrap();
    let points = synth.dataset.points();
    let exec = Executor::new(Parallelism::Sequential);
    let phi_star_upper = potential(points, &synth.true_centers, &exec);

    let l = 2.0 * k as f64;
    let alpha: f64 = (-(1.0 - (-l / (2.0 * k as f64)).exp())).exp();
    let constant = 16.0 / (1.0 - alpha);

    let mut finals = Vec::new();
    let mut initials = Vec::new();
    for s in 0..15 {
        let traj = phi_trajectory(points, l, 8, s);
        initials.push(traj[0]);
        finals.push(*traj.last().unwrap());
    }
    let mean_initial: f64 = initials.iter().sum::<f64>() / initials.len() as f64;
    let mean_final: f64 = finals.iter().sum::<f64>() / finals.len() as f64;
    // The contraction term (1+α)/2)^8 · ψ is negligible after 8 rounds,
    // so the corollary predicts E[φ] ≲ 16/(1−α) · φ*.
    assert!(
        mean_final <= constant * phi_star_upper,
        "after 8 rounds φ ≈ {mean_final:.3e} exceeds (16/(1−α))·φ* = {:.3e}",
        constant * phi_star_upper
    );
    // And the decay is real: orders of magnitude below ψ.
    assert!(
        mean_final < mean_initial / 50.0,
        "no geometric decay: ψ ≈ {mean_initial:.3e} → {mean_final:.3e}"
    );
}

#[test]
fn expected_samples_per_round_is_l() {
    // Algorithm 2 samples each point with p = ℓ·d²/φ, so the expected
    // round size is ≤ ℓ (exactly ℓ when no p clamps at 1).
    let k = 10;
    let synth = GaussMixture::new(k)
        .points(5_000)
        .center_variance(25.0)
        .generate(7)
        .unwrap();
    let points = synth.dataset.points();
    let l = 3.0 * k as f64;
    let mut first_round_sizes = Vec::new();
    for s in 0..30 {
        let traj_len_before = phi_trajectory(points, l, 1, s).len();
        assert_eq!(traj_len_before, 2);
        // Re-derive the count by re-running the sampling (same derivation).
        let exec = Executor::new(Parallelism::Sequential);
        let mut rng = Rng::derive(s, &[90]);
        let first = rng.range_usize(points.len());
        let centers = points.select(&[first]);
        let tracker = CostTracker::new(points, &centers, &exec);
        let phi = tracker.potential();
        let count = tracker
            .d2()
            .iter()
            .filter(|&&d2| rng.bernoulli(l * d2 / phi))
            .count();
        first_round_sizes.push(count as f64);
    }
    let mean = first_round_sizes.iter().sum::<f64>() / first_round_sizes.len() as f64;
    // 5σ window around ℓ = 30 (per-round variance ≤ ℓ).
    let sigma = (l / first_round_sizes.len() as f64).sqrt();
    assert!(
        (mean - l).abs() < 5.0 * sigma + 1.0,
        "mean round size {mean} far from ℓ = {l}"
    );
}
