//! Fault-tolerance acceptance tests: scripted worker deaths at every
//! round type of the distributed conversation, injected deterministically
//! with [`FaultTransport`] — and every recovered fit must be
//! **bit-identical** to the zero-failure fit (centers, labels, cost,
//! iteration history, distance accounting). Also pinned here: the
//! elasticity paths (a replacement worker adopted mid-job over TCP, a
//! worker restarted on the *same* address, a worker that starts late) and
//! the bounded-failure contract (a fault during recovery itself is a
//! typed error, never a hang).

use scalable_kmeans::cluster::fault::tag;
use scalable_kmeans::cluster::{
    spawn_loopback_worker, spawn_loopback_worker_with_faults, spawn_tcp_worker,
    spawn_tcp_worker_with_faults, Cluster, ClusterError, FaultAction, FitDistributed, RetryPolicy,
    TcpTransport, TcpWorkerServer, Transport, Worker,
};
use scalable_kmeans::core::init::KMeansParallelConfig;
use scalable_kmeans::core::model::{KMeans, KMeansModel};
use scalable_kmeans::core::pipeline::{KMeansParallel, NoRefine};
use scalable_kmeans::data::synth::GaussMixture;
use scalable_kmeans::data::{InMemorySource, PointMatrix};
use scalable_kmeans::par::Parallelism;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const N: usize = 192;
const K: usize = 6;
const SHARD: usize = 16;

type WorkerHandle = std::thread::JoinHandle<Result<(), ClusterError>>;
type SharedHandles = Arc<Mutex<Vec<WorkerHandle>>>;

fn gauss() -> PointMatrix {
    GaussMixture::new(K)
        .points(N)
        .center_variance(50.0)
        .generate(11)
        .unwrap()
        .dataset
        .into_parts()
        .1
}

fn slice_rows(points: &PointMatrix, start: usize, rows: usize) -> PointMatrix {
    let dim = points.dim();
    PointMatrix::from_flat(
        points.as_slice()[start * dim..(start + rows) * dim].to_vec(),
        dim,
    )
    .unwrap()
}

fn even_slices(n: usize, workers: usize) -> Vec<(usize, usize)> {
    let per = n / workers;
    (0..workers)
        .map(|w| {
            let rows = if w + 1 == workers { n - w * per } else { per };
            (w * per, rows)
        })
        .collect()
}

fn assert_bit_identical(reference: &KMeansModel, got: &KMeansModel, what: &str) {
    assert_eq!(reference.centers(), got.centers(), "{what}: centers");
    assert_eq!(reference.labels(), got.labels(), "{what}: labels");
    assert_eq!(
        reference.cost().to_bits(),
        got.cost().to_bits(),
        "{what}: cost"
    );
    assert_eq!(
        reference.iterations(),
        got.iterations(),
        "{what}: iterations"
    );
    assert_eq!(
        reference.history().len(),
        got.history().len(),
        "{what}: history length"
    );
    for (i, (a, b)) in reference.history().iter().zip(got.history()).enumerate() {
        assert_eq!(
            a.reassigned, b.reassigned,
            "{what}: history[{i}] reassigned"
        );
        assert_eq!(a.reseeded, b.reseeded, "{what}: history[{i}] reseeded");
        assert_eq!(
            a.cost.to_bits(),
            b.cost.to_bits(),
            "{what}: history[{i}] cost"
        );
    }
    assert_eq!(
        reference.init_stats().seed_cost.to_bits(),
        got.init_stats().seed_cost.to_bits(),
        "{what}: seed cost"
    );
    assert_eq!(
        reference.distance_computations(),
        got.distance_computations(),
        "{what}: distance accounting"
    );
}

/// Spawns a loopback cluster over even slices of `points`, wrapping the
/// workers named in `scripts` with fault scripts, and arms recovery with
/// a supplier that respawns a healthy worker over the slot's slice.
/// Returns the cluster, the original worker handles (scripted ones end
/// in `Err` once their fault fires), and the replacement handles the
/// supplier accumulates.
fn recovering_loopback_cluster(
    points: &PointMatrix,
    workers: usize,
    scripts: &[(usize, Vec<FaultAction>)],
) -> (Cluster, Vec<WorkerHandle>, SharedHandles) {
    let slices = even_slices(points.len(), workers);
    let mut transports: Vec<Box<dyn Transport>> = Vec::new();
    let mut originals = Vec::new();
    for (w, &(start, rows)) in slices.iter().enumerate() {
        let source = InMemorySource::new(slice_rows(points, start, rows), 3).unwrap();
        let script = scripts
            .iter()
            .find(|(slot, _)| *slot == w)
            .map(|(_, s)| s.clone())
            .unwrap_or_default();
        let (t, h) = spawn_loopback_worker_with_faults(source, Parallelism::Sequential, script);
        transports.push(Box::new(t));
        originals.push(h);
    }
    let mut cluster = Cluster::new(transports).unwrap();
    let replacements: SharedHandles = Arc::new(Mutex::new(Vec::new()));
    let supplier_handles = Arc::clone(&replacements);
    let supplier_points = points.clone();
    cluster.set_recovery(
        Box::new(move |slot| {
            let (start, rows) = slices[slot];
            let shard = slice_rows(&supplier_points, start, rows);
            let source = InMemorySource::new(shard, 3).unwrap();
            let (t, h) = spawn_loopback_worker(source, Parallelism::Sequential);
            supplier_handles.lock().unwrap().push(h);
            Ok(Box::new(t))
        }),
        RetryPolicy::fixed(3, Duration::from_millis(1)),
    );
    (cluster, originals, replacements)
}

fn drain(replacements: &SharedHandles) {
    for h in replacements.lock().unwrap().drain(..) {
        h.join().unwrap().unwrap();
    }
}

/// The kill grid: workers die at each round type of the default
/// k-means|| + Lloyd conversation — on the request (`KillOnRecv`: the
/// machine crashed before doing the round's work) and on the reply
/// (`KillOnSend`: it crashed after the work, before the reply escaped) —
/// across {2, 4}-worker clusters. Every worker carries the script, so
/// every worker the round touches dies at once (point gathers only reach
/// the rows' owners; broadcasts kill the whole fleet). Every recovered
/// fit is bit-identical to the in-memory fit.
#[test]
fn killing_workers_at_each_round_type_recovers_bit_identically() {
    let points = gauss();
    let reference = KMeans::params(K)
        .seed(42)
        .shard_size(SHARD)
        .fit(&points)
        .unwrap();
    // The fused conversation sends six Compound frames per fit (one
    // init+sample, four update+sample, one update+weights), so the old
    // per-primitive tags never appear on the wire as top-level frames;
    // the grid keys on Compound occurrences instead. Labels ride the
    // final (stable) assignment reply, so the old fetch-labels round is
    // now the last ASSIGN occurrence.
    let final_assign = reference.iterations() as u32;
    let grid: Vec<(&str, FaultAction)> = vec![
        (
            "gather-rows request",
            FaultAction::KillOnRecv {
                tag: tag::GATHER_ROWS,
                occurrence: 1,
            },
        ),
        (
            "init+sample compound request",
            FaultAction::KillOnRecv {
                tag: tag::COMPOUND,
                occurrence: 1,
            },
        ),
        (
            "mid update+sample compound request",
            FaultAction::KillOnRecv {
                tag: tag::COMPOUND,
                occurrence: 3,
            },
        ),
        (
            "update+weights compound request",
            FaultAction::KillOnRecv {
                tag: tag::COMPOUND,
                occurrence: 6,
            },
        ),
        (
            "assign request",
            FaultAction::KillOnRecv {
                tag: tag::ASSIGN,
                occurrence: 1,
            },
        ),
        (
            "final label-shipping assign",
            FaultAction::KillOnRecv {
                tag: tag::ASSIGN,
                occurrence: final_assign,
            },
        ),
        (
            "compound reply lost",
            FaultAction::KillOnSend {
                tag: tag::COMPOUND,
                occurrence: 2,
            },
        ),
        (
            "potential reply lost",
            FaultAction::KillOnSend {
                tag: tag::SHARD_SUMS,
                occurrence: 1,
            },
        ),
        (
            "partials reply lost",
            FaultAction::KillOnSend {
                tag: tag::PARTIALS,
                occurrence: 1,
            },
        ),
    ];
    for workers in [2usize, 4] {
        for (what, action) in &grid {
            let scripts: Vec<(usize, Vec<FaultAction>)> =
                (0..workers).map(|w| (w, vec![*action])).collect();
            let (mut cluster, originals, replacements) =
                recovering_loopback_cluster(&points, workers, &scripts);
            let got = KMeans::params(K)
                .seed(42)
                .shard_size(SHARD)
                .fit_distributed(&mut cluster)
                .unwrap_or_else(|e| panic!("{workers} workers, {what}: {e}"));
            cluster.shutdown();
            // A recv-path kill looks like a coordinator hang-up to the
            // worker (clean exit); a send-path kill errors its thread.
            // Either way the thread must have ended — join all of them.
            for h in originals {
                let _ = h.join().unwrap();
            }
            assert!(
                !replacements.lock().unwrap().is_empty(),
                "{workers} workers, {what}: the scripted fault never fired (no recovery ran)"
            );
            drain(&replacements);
            assert_bit_identical(&reference, &got, &format!("{workers} workers, {what}"));
        }
    }
}

/// The acceptance pin from the issue: a 4-worker fit survives three
/// scripted deaths at three *distinct* round types (seeding sample,
/// Lloyd assignment, final label fetch) on three different workers, and
/// still reproduces the zero-failure fit bit for bit.
#[test]
fn four_workers_survive_three_deaths_at_distinct_rounds() {
    let points = gauss();
    let reference = KMeans::params(K)
        .seed(42)
        .shard_size(SHARD)
        .fit(&points)
        .unwrap();
    // Deaths at: the seeding round (first fused init+sample compound),
    // the first Lloyd assignment, and the final stable assignment (the
    // one whose reply carries the labels home).
    let scripts = vec![
        (
            1usize,
            vec![FaultAction::KillOnRecv {
                tag: tag::COMPOUND,
                occurrence: 1,
            }],
        ),
        (
            2,
            vec![FaultAction::KillOnRecv {
                tag: tag::ASSIGN,
                occurrence: 1,
            }],
        ),
        (
            3,
            vec![FaultAction::KillOnRecv {
                tag: tag::ASSIGN,
                occurrence: reference.iterations() as u32,
            }],
        ),
    ];
    let (mut cluster, originals, replacements) = recovering_loopback_cluster(&points, 4, &scripts);
    let got = KMeans::params(K)
        .seed(42)
        .shard_size(SHARD)
        .fit_distributed(&mut cluster)
        .unwrap();
    cluster.shutdown();
    for (w, h) in originals.into_iter().enumerate() {
        let outcome = h.join().unwrap();
        if w == 0 {
            outcome.unwrap(); // the untouched worker retires cleanly
        }
    }
    assert_eq!(
        replacements.lock().unwrap().len(),
        3,
        "each scripted death must trigger exactly one adoption"
    );
    drain(&replacements);
    assert_bit_identical(&reference, &got, "three deaths at distinct rounds");
}

/// All but one worker die *simultaneously* (same round, same trigger) —
/// the worst survivable failure short of total loss — and the fit still
/// recovers bit-identically.
#[test]
fn all_but_one_worker_dying_at_once_recovers() {
    let points = gauss();
    let reference = KMeans::params(K)
        .seed(42)
        .shard_size(SHARD)
        .fit(&points)
        .unwrap();
    // The second fused update+sample compound round.
    let die = vec![FaultAction::KillOnRecv {
        tag: tag::COMPOUND,
        occurrence: 2,
    }];
    let scripts: Vec<(usize, Vec<FaultAction>)> = (1..4).map(|w| (w, die.clone())).collect();
    let (mut cluster, originals, replacements) = recovering_loopback_cluster(&points, 4, &scripts);
    let got = KMeans::params(K)
        .seed(42)
        .shard_size(SHARD)
        .fit_distributed(&mut cluster)
        .unwrap();
    cluster.shutdown();
    for (w, h) in originals.into_iter().enumerate() {
        let outcome = h.join().unwrap();
        if w == 0 {
            outcome.unwrap();
        }
    }
    assert_eq!(
        replacements.lock().unwrap().len(),
        3,
        "all three scripted deaths must trigger adoptions"
    );
    drain(&replacements);
    assert_bit_identical(&reference, &got, "w-1 simultaneous deaths");
}

/// The O(n) D² top-up gather (ℓ < k forces it) recovers like every other
/// round, and a slow worker (delayed reply) is *not* treated as dead.
#[test]
fn topup_gather_death_and_delayed_replies() {
    let points = gauss();
    let base = || {
        KMeans::params(K)
            .init(KMeansParallel(
                KMeansParallelConfig::default()
                    .oversampling_factor(0.1)
                    .rounds(1),
            ))
            .refine(NoRefine)
            .seed(3)
            .shard_size(SHARD)
    };
    let reference = base().fit(&points).unwrap();

    let (mut cluster, originals, replacements) = recovering_loopback_cluster(
        &points,
        2,
        &[(
            1,
            vec![FaultAction::KillOnRecv {
                tag: tag::GATHER_D2,
                occurrence: 1,
            }],
        )],
    );
    let got = base().fit_distributed(&mut cluster).unwrap();
    cluster.shutdown();
    for h in originals {
        let _ = h.join().unwrap();
    }
    assert_eq!(
        replacements.lock().unwrap().len(),
        1,
        "the D² gather death must trigger one adoption"
    );
    drain(&replacements);
    assert_bit_identical(&reference, &got, "D² top-up gather death");

    // A delayed reply stalls the round but kills nothing: no recovery
    // runs, the original workers retire cleanly, results are identical.
    let (mut cluster, originals, replacements) = recovering_loopback_cluster(
        &points,
        2,
        &[(
            1,
            vec![FaultAction::DelayOnSend {
                tag: tag::SHARD_SUMS,
                occurrence: 1,
                delay: Duration::from_millis(50),
            }],
        )],
    );
    let got = base().fit_distributed(&mut cluster).unwrap();
    cluster.shutdown();
    for h in originals {
        h.join().unwrap().unwrap();
    }
    assert!(
        replacements.lock().unwrap().is_empty(),
        "no recovery expected"
    );
    assert_bit_identical(&reference, &got, "delayed reply");
}

/// A worker dying *during* recovery (every replacement the supplier
/// offers dies the same way) exhausts the bounded retry schedule and
/// surfaces as a typed error — never a hang, never a panic.
#[test]
fn death_during_recovery_is_a_typed_error_not_a_hang() {
    let points = gauss();
    let slices = even_slices(points.len(), 2);
    // The fused init+sample compound. The replacements below key on the
    // same tag: catch-up replays no tracker segments for a death during
    // init (the round had not committed), so the first frame a doomed
    // replacement sees after Plan is the re-asked Compound itself.
    let die_at_init = vec![FaultAction::KillOnRecv {
        tag: tag::COMPOUND,
        occurrence: 1,
    }];
    let mut transports: Vec<Box<dyn Transport>> = Vec::new();
    let mut handles = Vec::new();
    for (w, &(start, rows)) in slices.iter().enumerate() {
        let source = InMemorySource::new(slice_rows(&points, start, rows), 3).unwrap();
        let script = if w == 1 { die_at_init.clone() } else { vec![] };
        let (t, h) = spawn_loopback_worker_with_faults(source, Parallelism::Sequential, script);
        transports.push(Box::new(t));
        handles.push(h);
    }
    let mut cluster = Cluster::new(transports).unwrap();
    let doomed: SharedHandles = Arc::new(Mutex::new(Vec::new()));
    let supplier_handles = Arc::clone(&doomed);
    let supplier_points = points.clone();
    cluster.set_recovery(
        Box::new(move |slot| {
            let (start, rows) = slices[slot];
            let source = InMemorySource::new(slice_rows(&supplier_points, start, rows), 3).unwrap();
            // Every replacement is scripted to die at the same round.
            let (t, h) = spawn_loopback_worker_with_faults(
                source,
                Parallelism::Sequential,
                vec![FaultAction::KillOnRecv {
                    tag: tag::COMPOUND,
                    occurrence: 1,
                }],
            );
            supplier_handles.lock().unwrap().push(h);
            Ok(Box::new(t))
        }),
        RetryPolicy::fixed(3, Duration::from_millis(1)),
    );
    let start = std::time::Instant::now();
    let err = KMeans::params(K)
        .seed(42)
        .shard_size(SHARD)
        .fit_distributed(&mut cluster)
        .unwrap_err();
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "recovery exhaustion must be bounded"
    );
    assert!(
        err.to_string().contains("not recovered"),
        "expected a recovery-exhaustion error, got: {err}"
    );
    // The retry schedule is bounded: exactly `attempts` replacements were
    // tried, each of which died during its own catch-up.
    assert_eq!(doomed.lock().unwrap().len(), 3);
    for h in doomed.lock().unwrap().drain(..) {
        let _ = h.join().unwrap();
    }
}

/// TCP elasticity: a worker ships half a reply frame over a real socket
/// and dies; the coordinator sees a typed frame error, asks the supplier
/// for a replacement (a brand-new `skm worker`-style process on a fresh
/// port), catches it up, and finishes bit-identically. Exercised for
/// both a plain Partials reply and a fused Compound reply (a death in
/// the middle of a multi-message round).
#[test]
fn tcp_worker_truncating_mid_frame_is_replaced_and_caught_up() {
    let points = gauss();
    let reference = KMeans::params(K)
        .seed(5)
        .shard_size(SHARD)
        .fit(&points)
        .unwrap();
    let timeout = Some(Duration::from_secs(30));
    let slices = even_slices(points.len(), 2);

    let truncations: Vec<(&str, FaultAction)> = vec![
        (
            "tcp mid-frame truncation (partials)",
            FaultAction::TruncateOnSend {
                tag: tag::PARTIALS,
                occurrence: 1,
                keep: 10,
            },
        ),
        (
            "tcp mid-frame truncation (compound reply)",
            FaultAction::TruncateOnSend {
                tag: tag::COMPOUND,
                occurrence: 2,
                keep: 10,
            },
        ),
    ];
    for (what, action) in truncations {
        let mut addrs = Vec::new();
        let mut originals = Vec::new();
        for (w, &(start, rows)) in slices.iter().enumerate() {
            let source = InMemorySource::new(slice_rows(&points, start, rows), 5).unwrap();
            let script = if w == 1 { vec![action] } else { vec![] };
            let (addr, h) =
                spawn_tcp_worker_with_faults(source, Parallelism::Sequential, timeout, script)
                    .unwrap();
            addrs.push(addr.to_string());
            originals.push(h);
        }
        let mut cluster = Cluster::connect(&addrs, timeout).unwrap();
        let replacements: SharedHandles = Arc::new(Mutex::new(Vec::new()));
        let supplier_handles = Arc::clone(&replacements);
        let supplier_points = points.clone();
        let supplier_slices = slices.clone();
        cluster.set_recovery(
            Box::new(move |slot| {
                let (start, rows) = supplier_slices[slot];
                let source =
                    InMemorySource::new(slice_rows(&supplier_points, start, rows), 5).unwrap();
                let (addr, h) = spawn_tcp_worker(source, Parallelism::Sequential, timeout)
                    .map_err(ClusterError::Io)?;
                supplier_handles.lock().unwrap().push(h);
                let stream = std::net::TcpStream::connect(addr).map_err(ClusterError::Io)?;
                Ok(Box::new(TcpTransport::new(stream, timeout)?))
            }),
            RetryPolicy::fixed(5, Duration::from_millis(10)),
        );
        let got = KMeans::params(K)
            .seed(5)
            .shard_size(SHARD)
            .fit_distributed(&mut cluster)
            .unwrap_or_else(|e| panic!("{what}: {e}"));
        cluster.shutdown();
        let mut originals = originals;
        assert!(originals.pop().unwrap().join().unwrap().is_err());
        originals.pop().unwrap().join().unwrap().unwrap();
        drain(&replacements);
        assert_bit_identical(&reference, &got, what);
    }
}

/// The operational re-join story end to end: `Cluster::connect`'s default
/// recovery redials the worker's *original address*, so restarting
/// `skm worker` on the same port mid-job is all an operator has to do. A
/// standby thread plays the restarted worker: it waits for the port to
/// free up, rebinds it, and serves the same shard.
#[test]
fn worker_restarted_on_same_address_is_adopted() {
    let points = gauss();
    let reference = KMeans::params(K)
        .seed(7)
        .shard_size(SHARD)
        .fit(&points)
        .unwrap();
    let timeout = Some(Duration::from_secs(30));
    let slices = even_slices(points.len(), 2);

    let mut addrs = Vec::new();
    let mut originals = Vec::new();
    for (w, &(start, rows)) in slices.iter().enumerate() {
        let source = InMemorySource::new(slice_rows(&points, start, rows), 5).unwrap();
        let script = if w == 1 {
            vec![FaultAction::KillOnRecv {
                tag: tag::ASSIGN,
                occurrence: 1,
            }]
        } else {
            vec![]
        };
        let (addr, h) =
            spawn_tcp_worker_with_faults(source, Parallelism::Sequential, timeout, script).unwrap();
        addrs.push(addr.to_string());
        originals.push(h);
    }

    // The "operator": restart the dead worker on its original address as
    // soon as the port frees up.
    let restart_addr = addrs[1].clone();
    let (start, rows) = slices[1];
    let restart_shard = slice_rows(&points, start, rows);
    let standby = std::thread::spawn(move || -> Result<(), ClusterError> {
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        loop {
            match TcpWorkerServer::bind(&restart_addr) {
                Ok(server) => {
                    let source = InMemorySource::new(restart_shard, 5).unwrap();
                    return server.serve(
                        Worker::new(source, Parallelism::Sequential),
                        timeout,
                        true,
                    );
                }
                Err(e) if std::time::Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(ClusterError::Io(e)),
            }
        }
    });

    let mut cluster = Cluster::connect_with_retry(
        &addrs,
        timeout,
        RetryPolicy::fixed(100, Duration::from_millis(100)),
    )
    .unwrap();
    let got = KMeans::params(K)
        .seed(7)
        .shard_size(SHARD)
        .fit_distributed(&mut cluster)
        .unwrap();
    cluster.shutdown();
    for h in originals {
        let _ = h.join().unwrap();
    }
    // The standby only returns Ok if the port freed up (the scripted
    // death fired) and a coordinator session ran against it (adoption).
    standby.join().unwrap().unwrap();
    assert_bit_identical(&reference, &got, "same-address restart");
}

/// A worker that has not even *started* when the coordinator dials is
/// waited for: `connect_with_retry` keeps redialing with backoff instead
/// of failing on the first refused connection.
#[test]
fn late_starting_worker_is_waited_for() {
    let points = gauss();
    let reference = KMeans::params(K)
        .seed(9)
        .shard_size(SHARD)
        .fit(&points)
        .unwrap();
    let timeout = Some(Duration::from_secs(30));
    let slices = even_slices(points.len(), 2);

    // Worker 0 is up immediately.
    let source0 = InMemorySource::new(slice_rows(&points, slices[0].0, slices[0].1), 5).unwrap();
    let (addr0, h0) = spawn_tcp_worker(source0, Parallelism::Sequential, timeout).unwrap();

    // Worker 1's address exists, but nothing listens there yet.
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr1 = probe.local_addr().unwrap().to_string();
    drop(probe);
    let late_shard = slice_rows(&points, slices[1].0, slices[1].1);
    let late_addr = addr1.clone();
    let h1 = std::thread::spawn(move || -> Result<(), ClusterError> {
        std::thread::sleep(Duration::from_millis(400));
        let server = TcpWorkerServer::bind(&late_addr).map_err(ClusterError::Io)?;
        let source = InMemorySource::new(late_shard, 5).unwrap();
        server.serve(Worker::new(source, Parallelism::Sequential), timeout, true)
    });

    let mut cluster = Cluster::connect_with_retry(
        &[addr0.to_string(), addr1],
        timeout,
        RetryPolicy::fixed(100, Duration::from_millis(100)),
    )
    .unwrap();
    let got = KMeans::params(K)
        .seed(9)
        .shard_size(SHARD)
        .fit_distributed(&mut cluster)
        .unwrap();
    cluster.shutdown();
    h0.join().unwrap().unwrap();
    h1.join().unwrap().unwrap();
    assert_bit_identical(&reference, &got, "late-starting worker");
}
