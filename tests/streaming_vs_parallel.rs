//! Cross-crate comparisons: k-means|| vs the streaming baselines
//! (the Table 5 shape at test scale) and the coreset-tree extension.

use scalable_kmeans::prelude::*;
use scalable_kmeans::streaming::CoresetTree;

#[test]
fn intermediate_set_sizes_follow_table_5_ordering() {
    // Partition's coreset must be far larger than k-means||'s candidate
    // set at the same (n, k) — the mechanism behind its slower Table 4
    // times.
    let synth = KddLike::new(20_000).generate(4).unwrap();
    let points = synth.dataset.points();
    let k = 30;
    let exec = Executor::new(Parallelism::Auto);

    let partition = partition_init(points, k, &PartitionConfig::default(), 1, &exec).unwrap();
    let parallel = InitMethod::default().run(points, k, 1, &exec).unwrap();
    assert!(
        partition.intermediate_centers > 10 * parallel.stats.candidates,
        "Partition {} vs k-means|| {} intermediate centers",
        partition.intermediate_centers,
        parallel.stats.candidates
    );
}

#[test]
fn both_methods_beat_random_on_kdd_shape() {
    let synth = KddLike::new(10_000).generate(6).unwrap();
    let points = synth.dataset.points();
    let k = 25;
    let exec = Executor::new(Parallelism::Auto);
    let seed_cost =
        |centers: &PointMatrix| scalable_kmeans::core::cost::potential(points, centers, &exec);

    let partition = partition_init(points, k, &PartitionConfig::default(), 2, &exec).unwrap();
    let parallel = InitMethod::default().run(points, k, 2, &exec).unwrap();
    let random = InitMethod::Random.run(points, k, 2, &exec).unwrap();
    let partition_cost = seed_cost(&partition.centers);
    assert!(partition_cost < random.stats.seed_cost / 10.0);
    assert!(parallel.stats.seed_cost < random.stats.seed_cost / 10.0);
}

#[test]
fn coreset_tree_single_pass_is_competitive() {
    // Stream a mixture through the coreset tree; its k centers should be
    // within a small factor of the batch k-means|| result.
    let synth = GaussMixture::new(10)
        .points(20_000)
        .center_variance(100.0)
        .generate(8)
        .unwrap();
    let points = synth.dataset.points();
    let exec = Executor::new(Parallelism::Auto);

    let mut tree = CoresetTree::new(points.dim(), 200, 3).unwrap();
    for row in points.rows() {
        tree.insert(row).unwrap();
    }
    let stream_centers = tree.cluster(10).unwrap();
    let stream_cost = scalable_kmeans::core::cost::potential(points, &stream_centers, &exec);

    let batch = KMeans::params(10).seed(3).fit(points).unwrap();
    assert!(
        stream_cost < 3.0 * batch.cost(),
        "coreset clustering {stream_cost:.3e} vs batch {:.3e}",
        batch.cost()
    );
    // Memory held stayed sublinear.
    assert!(tree.representatives() < 2_000);
}

#[test]
fn mapreduce_model_expresses_the_phi_aggregation() {
    // §3.5: "each mapper working on an input partition X′ can compute
    // φ_X′(C) and the reducer can simply add these values". Express exactly
    // that with the MapReduce model and check it equals the direct pass.
    use scalable_kmeans::par::mapreduce::run as mr_run;
    let synth = GaussMixture::new(5).points(2_000).generate(9).unwrap();
    let points = synth.dataset.points();
    let centers = synth.true_centers.clone();
    let exec = Executor::new(Parallelism::Auto).with_shard_size(256);

    let records: Vec<usize> = (0..points.len()).collect();
    let out = mr_run(
        &exec,
        &records,
        |_, &i, emit| {
            let d2 = scalable_kmeans::core::distance::nearest(points.row(i), &centers).1;
            emit.emit((), d2);
        },
        |_, values| values.iter().sum::<f64>(),
    );
    let phi_mr = out.results[0].1;
    let phi_direct = scalable_kmeans::core::cost::potential(points, &centers, &exec);
    assert!(
        (phi_mr - phi_direct).abs() < 1e-6 * phi_direct,
        "MapReduce φ {phi_mr} vs direct {phi_direct}"
    );
    assert_eq!(out.stats.records_in, 2_000);
    assert!(out.stats.map_tasks >= 2);
}
