//! Failure injection: every public entry point must reject malformed
//! input with a typed error (never panic, never return garbage).

use scalable_kmeans::prelude::*;
use scalable_kmeans::KMeansError;

fn valid_points() -> PointMatrix {
    PointMatrix::from_flat((0..60).map(|i| i as f64).collect(), 2).unwrap()
}

#[test]
fn non_finite_coordinates_are_rejected_everywhere() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let points = PointMatrix::from_flat(vec![0.0, 1.0, bad, 3.0, 4.0, 5.0], 2).unwrap();
        let err = KMeans::params(2).fit(&points).unwrap_err();
        assert!(
            matches!(err, KMeansError::NonFiniteData { point: 1, dim: 0 }),
            "{bad}: {err:?}"
        );
        for init in [InitMethod::Random, InitMethod::KMeansPlusPlus] {
            let exec = Executor::new(Parallelism::Sequential);
            assert!(matches!(
                init.run(&points, 2, 0, &exec),
                Err(KMeansError::NonFiniteData { .. })
            ));
        }
    }
}

#[test]
fn k_bounds_are_enforced() {
    let points = valid_points();
    assert!(matches!(
        KMeans::params(0).fit(&points),
        Err(KMeansError::InvalidK { k: 0, .. })
    ));
    assert!(matches!(
        KMeans::params(31).fit(&points),
        Err(KMeansError::InvalidK { k: 31, n: 30 })
    ));
    // Exactly n clusters is legal.
    let model = KMeans::params(30)
        .parallelism(Parallelism::Sequential)
        .fit(&points)
        .unwrap();
    assert_eq!(model.k(), 30);
    assert_eq!(model.cost(), 0.0);
}

#[test]
fn empty_input_is_rejected() {
    let empty = PointMatrix::new(3);
    assert!(matches!(
        KMeans::params(1).fit(&empty),
        Err(KMeansError::EmptyInput)
    ));
    let exec = Executor::new(Parallelism::Sequential);
    assert!(partition_init(&empty, 1, &PartitionConfig::default(), 0, &exec).is_err());
}

#[test]
fn invalid_configurations_are_rejected() {
    let points = valid_points();
    // Zero rounds.
    let err = KMeans::params(3)
        .init(InitMethod::KMeansParallel(
            KMeansParallelConfig::default().rounds(0),
        ))
        .fit(&points)
        .unwrap_err();
    assert!(matches!(err, KMeansError::InvalidConfig(_)));
    // Negative oversampling.
    let err = KMeans::params(3)
        .init(InitMethod::KMeansParallel(
            KMeansParallelConfig::default().oversampling_factor(-1.0),
        ))
        .fit(&points)
        .unwrap_err();
    assert!(matches!(err, KMeansError::InvalidConfig(_)));
    // Zero Lloyd iterations.
    let err = KMeans::params(3)
        .max_iterations(0)
        .fit(&points)
        .unwrap_err();
    assert!(matches!(err, KMeansError::InvalidConfig(_)));
    // Negative tolerance.
    let err = KMeans::params(3).tol(-0.5).fit(&points).unwrap_err();
    assert!(matches!(err, KMeansError::InvalidConfig(_)));
}

#[test]
fn degenerate_data_survives_the_full_pipeline() {
    // All-identical points: every center coincides; cost 0; no panic.
    let points = PointMatrix::from_flat(vec![7.0; 100], 2).unwrap();
    for init in [
        InitMethod::Random,
        InitMethod::KMeansPlusPlus,
        InitMethod::default(),
    ] {
        let model = KMeans::params(5)
            .init(init.clone())
            .parallelism(Parallelism::Sequential)
            .fit(&points)
            .unwrap();
        assert_eq!(model.k(), 5, "{init:?}");
        assert_eq!(model.cost(), 0.0, "{init:?}");
    }
}

#[test]
fn single_point_single_cluster() {
    let points = PointMatrix::from_flat(vec![1.0, 2.0, 3.0], 3).unwrap();
    let model = KMeans::params(1)
        .parallelism(Parallelism::Sequential)
        .fit(&points)
        .unwrap();
    assert_eq!(model.labels(), &[0]);
    assert_eq!(model.cost(), 0.0);
    assert_eq!(model.centers().row(0), points.row(0));
}

#[test]
fn csv_failure_paths_are_typed() {
    use scalable_kmeans::data::io::{read_csv_from, LabelColumn};
    use scalable_kmeans::data::DataError;
    // Garbage mid-file.
    let err = read_csv_from("1,2\nx,y\n".as_bytes(), "t", LabelColumn::None).unwrap_err();
    assert!(matches!(err, DataError::Parse { line: 2, .. }));
    // Ragged row.
    let err = read_csv_from("1,2\n3\n".as_bytes(), "t", LabelColumn::None).unwrap_err();
    assert!(matches!(err, DataError::Parse { line: 2, .. }));
    // Fractional label.
    let err = read_csv_from("1,2,0.5\n".as_bytes(), "t", LabelColumn::Last).unwrap_err();
    assert!(matches!(err, DataError::Parse { .. }));
    // Completely empty.
    let err = read_csv_from("".as_bytes(), "t", LabelColumn::None).unwrap_err();
    assert!(matches!(err, DataError::Empty));
}

#[test]
fn predict_and_cost_of_enforce_dimensions() {
    let model = KMeans::params(2)
        .parallelism(Parallelism::Sequential)
        .fit(&valid_points())
        .unwrap();
    let wrong = PointMatrix::from_flat(vec![1.0, 2.0, 3.0], 3).unwrap();
    assert!(matches!(
        model.predict(&wrong),
        Err(KMeansError::DimensionMismatch {
            expected: 2,
            got: 3
        })
    ));
    assert!(model.cost_of(&wrong).is_err());
}

#[test]
fn hamerly_rejects_what_lloyd_rejects() {
    use scalable_kmeans::core::accel::hamerly_lloyd;
    use scalable_kmeans::core::lloyd::lloyd;
    let exec = Executor::new(Parallelism::Sequential);
    let points = valid_points();
    let init = PointMatrix::from_flat(vec![0.0], 1).unwrap(); // wrong dim
    let config = LloydConfig::default();
    assert!(lloyd(&points, &init, &config, &exec).is_err());
    assert!(hamerly_lloyd(&points, &init, &config, &exec).is_err());
    let empty = PointMatrix::new(2);
    let seed = points.select(&[0]);
    assert!(lloyd(&empty, &seed, &config, &exec).is_err());
    assert!(hamerly_lloyd(&empty, &seed, &config, &exec).is_err());
}

#[test]
fn generator_parameter_validation() {
    assert!(GaussMixture::new(0).generate(0).is_err());
    assert!(GaussMixture::new(2).points(0).generate(0).is_err());
    assert!(SpamLike::new().points(0).generate(0).is_err());
    assert!(SpamLike::new().spam_fraction(-0.1).generate(0).is_err());
    assert!(KddLike::new(0).generate(0).is_err());
    use scalable_kmeans::data::transform::subsample;
    let d = GaussMixture::new(2).points(10).generate(0).unwrap().dataset;
    assert!(subsample(&d, 2.0, 0).is_err());
}
