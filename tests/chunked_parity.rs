//! Out-of-core acceptance tests: chunked fits are **bit-identical** to the
//! in-memory pipeline (same data, seed, executor — any block size), and a
//! dataset larger than the configured memory budget streams within budget,
//! asserted via the block reader's peak-resident accounting.

use kmeans_core::init::KMeansParallelConfig;
use kmeans_core::minibatch::MiniBatchConfig;
use kmeans_core::model::{KMeans, KMeansModel};
use kmeans_core::pipeline::{
    Initializer, KMeansPlusPlus, Lloyd, MiniBatch, NoRefine, Random, Refiner,
};
use kmeans_core::KMeansError;
use kmeans_data::synth::GaussMixture;
use kmeans_data::{
    write_block_file, BlockFileSource, ChunkedSource, CsvSource, InMemorySource, PointMatrix,
};
use kmeans_par::Parallelism;
use std::sync::Arc;

fn gauss(n: usize, k: usize, seed: u64) -> PointMatrix {
    GaussMixture::new(k)
        .points(n)
        .center_variance(50.0)
        .generate(seed)
        .unwrap()
        .dataset
        .into_parts()
        .1
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("kmeans_chunked_parity");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn assert_models_bit_identical(mem: &KMeansModel, chunked: &KMeansModel, what: &str) {
    assert_eq!(mem.centers(), chunked.centers(), "{what}: centers");
    assert_eq!(mem.labels(), chunked.labels(), "{what}: labels");
    assert_eq!(
        mem.cost().to_bits(),
        chunked.cost().to_bits(),
        "{what}: cost"
    );
    assert_eq!(
        mem.init_stats().seed_cost.to_bits(),
        chunked.init_stats().seed_cost.to_bits(),
        "{what}: seed cost"
    );
    assert_eq!(mem.iterations(), chunked.iterations(), "{what}: iterations");
    assert_eq!(
        mem.distance_computations(),
        chunked.distance_computations(),
        "{what}: distance accounting"
    );
}

/// The acceptance grid: every chunked-capable seeder × refiner, fitted
/// through the builder both ways, must agree bit-for-bit — across block
/// sizes that do *not* divide the shard size, and across thread counts.
#[test]
fn builder_grid_is_bit_identical_across_block_sizes_and_threads() {
    let points = gauss(900, 6, 11);
    let inits: Vec<(&str, Arc<dyn Initializer>)> = vec![
        ("random", Arc::new(Random)),
        ("kmeans++", Arc::new(KMeansPlusPlus)),
        (
            "kmeans-par",
            Arc::new(kmeans_core::pipeline::KMeansParallel::default()),
        ),
        (
            "kmeans-par-exact",
            Arc::new(kmeans_core::pipeline::KMeansParallel(
                KMeansParallelConfig::default().sampling(kmeans_core::init::SamplingMode::ExactL),
            )),
        ),
        (
            "coreset",
            Arc::new(kmeans_streaming::Coreset { coreset_size: 64 }),
        ),
    ];
    let refiners: Vec<(&str, Arc<dyn Refiner>)> = vec![
        ("lloyd", Arc::new(Lloyd::default())),
        (
            "minibatch",
            Arc::new(MiniBatch(MiniBatchConfig {
                batch_size: 64,
                iterations: 25,
            })),
        ),
        ("none", Arc::new(NoRefine)),
    ];
    for (init_name, init) in &inits {
        for (refine_name, refiner) in &refiners {
            let exec = kmeans_par::Executor::new(Parallelism::Threads(3)).with_shard_size(64);
            let mem_init = init.init(&points, None, 6, 42, &exec).unwrap();
            let mem = refiner
                .refine(&points, None, &mem_init.centers, 42, &exec)
                .unwrap();
            for block_rows in [97, 512, 2048] {
                let source = InMemorySource::new(points.clone(), block_rows).unwrap();
                let chunked_init = init.init_chunked(&source, 6, 42, &exec).unwrap();
                assert_eq!(
                    mem_init.centers, chunked_init.centers,
                    "{init_name} seeds, block_rows {block_rows}"
                );
                let chunked = refiner
                    .refine_chunked(&source, &chunked_init.centers, 42, &exec)
                    .unwrap();
                assert_eq!(
                    mem.centers, chunked.centers,
                    "{init_name}+{refine_name}, block_rows {block_rows}"
                );
                assert_eq!(mem.labels, chunked.labels, "{init_name}+{refine_name}");
                assert_eq!(mem.cost.to_bits(), chunked.cost.to_bits());
            }
        }
    }
}

/// End-to-end builder parity: default pipeline (k-means|| + Lloyd).
#[test]
fn fit_chunked_matches_fit_through_the_builder() {
    let points = gauss(1200, 8, 3);
    for threads in [Parallelism::Sequential, Parallelism::Threads(4)] {
        let base = KMeans::params(8)
            .seed(7)
            .shard_size(128)
            .parallelism(threads);
        let mem = base.clone().fit(&points).unwrap();
        for block_rows in [75, 1024] {
            let chunked = base
                .clone()
                .data_source(InMemorySource::new(points.clone(), block_rows).unwrap())
                .fit_chunked()
                .unwrap();
            assert_models_bit_identical(
                &mem,
                &chunked,
                &format!("default pipeline, block_rows {block_rows}"),
            );
        }
    }
}

/// The out-of-core acceptance criterion: a dataset larger than the memory
/// budget completes, never exceeds the budget (peak-resident accounting),
/// and still reproduces the in-memory centers bit-for-bit.
#[test]
fn block_file_run_stays_within_budget_and_matches_in_memory() {
    let points = gauss(4096, 10, 5); // 4096 × 15 × 8 B = 491 520 B payload
    let path = tmp("oocore.skmb");
    write_block_file(&path, &points, 512).unwrap(); // 61 440 B per block

    let budget = 64 * 1024; // far below the 480 KiB payload
    let source = BlockFileSource::open(&path, budget).unwrap();
    assert!(
        source.payload_bytes() > budget,
        "dataset must exceed budget"
    );

    let base = KMeans::params(10).seed(13).shard_size(256);
    let mem = base.clone().fit(&points).unwrap();
    let chunked = base
        .clone()
        .data_source_shared(Arc::new(source))
        .fit_chunked()
        .unwrap();
    assert_models_bit_identical(&mem, &chunked, "block file");

    // Re-open to read the final accounting off a fresh run (the builder
    // consumed the first handle's Arc clone — inspect via a shared one).
    let source = Arc::new(BlockFileSource::open(&path, budget).unwrap());
    let model = base
        .data_source_shared(Arc::clone(&source) as Arc<dyn ChunkedSource>)
        .fit_chunked()
        .unwrap();
    assert_eq!(model.centers(), mem.centers());
    let r = source.residency();
    assert!(r.loads > 0, "must actually stream blocks");
    assert!(
        r.peak_bytes <= budget,
        "peak resident {} exceeds budget {budget}",
        r.peak_bytes
    );
    assert!(
        r.peak_bytes < source.payload_bytes(),
        "peak {} not smaller than payload {}",
        r.peak_bytes,
        source.payload_bytes()
    );
    std::fs::remove_file(path).unwrap();
}

/// CSV-backed chunked fits agree with the in-memory fit of the parsed file.
#[test]
fn csv_source_matches_in_memory() {
    let points = gauss(600, 5, 21);
    let path = tmp("oocore.csv");
    let dataset = kmeans_data::Dataset::new("parity", points.clone());
    kmeans_data::io::write_csv(&path, &dataset).unwrap();

    let base = KMeans::params(5).seed(2).shard_size(64);
    let mem = base.clone().fit(&points).unwrap();
    let source = CsvSource::open(&path, 128, kmeans_data::io::LabelColumn::None).unwrap();
    let chunked = base.data_source(source).fit_chunked().unwrap();
    assert_models_bit_identical(&mem, &chunked, "csv source");
    std::fs::remove_file(path).unwrap();
}

/// The streaming Partition seeder is a deliberate exception to bit-parity
/// (no global shuffle out of core): it must still be deterministic per
/// seed, block-size invariant, and produce a sane clustering.
#[test]
fn chunked_partition_is_deterministic_and_covers_blobs() {
    let points = gauss(1000, 4, 8);
    let exec = kmeans_par::Executor::sequential();
    let seeder = kmeans_streaming::Partition::default();
    let a = seeder
        .init_chunked(
            &InMemorySource::new(points.clone(), 100).unwrap(),
            4,
            5,
            &exec,
        )
        .unwrap();
    let b = seeder
        .init_chunked(
            &InMemorySource::new(points.clone(), 333).unwrap(),
            4,
            5,
            &exec,
        )
        .unwrap();
    assert_eq!(a.centers, b.centers, "block size must not change results");
    assert_eq!(a.centers.len(), 4);
    assert!(a.stats.candidates > 4, "intermediate coreset recorded");
    // Refines fine downstream.
    let r = Lloyd::default()
        .refine_chunked(
            &InMemorySource::new(points.clone(), 100).unwrap(),
            &a.centers,
            5,
            &exec,
        )
        .unwrap();
    assert!(r.converged);
    assert!(r.cost <= a.stats.seed_cost + 1e-9);
}

/// Stages without a chunked formulation reject with the shared typed
/// error, as do weighted chunked fits and a missing data source.
#[test]
fn unsupported_chunked_paths_fail_loudly() {
    let points = gauss(200, 3, 1);
    let source = InMemorySource::new(points.clone(), 50).unwrap();
    let exec = kmeans_par::Executor::sequential();

    let err = kmeans_core::pipeline::AfkMc2::default()
        .init_chunked(&source, 3, 0, &exec)
        .unwrap_err();
    assert!(err.to_string().contains("afk-mc2 does not support chunked"));
    let seed = Random.init_chunked(&source, 3, 0, &exec).unwrap();
    let err = kmeans_core::pipeline::HamerlyLloyd::default()
        .refine_chunked(&source, &seed.centers, 0, &exec)
        .unwrap_err();
    assert!(err.to_string().contains("hamerly does not support chunked"));

    let err = KMeans::params(3).fit_chunked().unwrap_err();
    assert!(matches!(err, KMeansError::InvalidConfig(_)), "{err}");
    assert!(err.to_string().contains("no data source"));

    let w = vec![1.0; points.len()];
    let err = KMeans::params(3)
        .weights(&w)
        .data_source(source)
        .fit_chunked()
        .unwrap_err();
    assert!(err.to_string().contains("weighted"), "{err}");
}

/// Chunked sources propagate the same input-contract errors as the
/// in-memory validators: NaN coordinates are reported with their global
/// point index, and k out of range is rejected.
#[test]
fn chunked_input_contract_matches_in_memory() {
    let mut m = PointMatrix::new(2);
    for i in 0..40 {
        m.push(&[i as f64, 0.0]).unwrap();
    }
    m.push(&[f64::NAN, 1.0]).unwrap();
    for i in 0..9 {
        m.push(&[i as f64, 5.0]).unwrap();
    }
    let exec = kmeans_par::Executor::sequential();
    let source = InMemorySource::new(m.clone(), 7).unwrap();
    let mem_err = kmeans_core::pipeline::KMeansParallel::default()
        .init(&m, None, 3, 0, &exec)
        .unwrap_err();
    let chunked_err = kmeans_core::pipeline::KMeansParallel::default()
        .init_chunked(&source, 3, 0, &exec)
        .unwrap_err();
    assert_eq!(mem_err, chunked_err);
    assert_eq!(mem_err, KMeansError::NonFiniteData { point: 40, dim: 0 });
    assert!(matches!(
        KMeansPlusPlus.init_chunked(&source, 0, 0, &exec),
        Err(KMeansError::InvalidK { .. })
    ));
}
