//! Property tests for the observability layer (`kmeans-obs`): the log2
//! latency histogram's quantiles pinned against a brute-force
//! sort-the-samples oracle, Chrome trace JSON surviving adversarial
//! strings through a write→parse round trip, and span streams being a
//! pure function of the clock script under a [`FakeClock`].

use proptest::collection::vec;
use proptest::prelude::*;
use scalable_kmeans::obs::{
    arg_f64, arg_str, arg_u64, parse_chrome_trace, write_chrome_trace, FakeClock, LatencyHistogram,
    Recorder, SpanEvent,
};

/// The oracle twin of the histogram's bucket geometry: the largest value
/// sharing a log2 bucket with `v` (0 and 1 share bucket 0).
fn oracle_bucket_upper(v: u64) -> u64 {
    if v <= 1 {
        1
    } else {
        let i = 63 - v.leading_zeros() as usize;
        if i >= 63 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }
}

/// What `quantile(q)` must return, derived from the sorted samples
/// alone: the bucket upper bound of the nearest-rank sample, clamped to
/// the observed maximum.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    let sample = sorted[rank as usize - 1];
    oracle_bucket_upper(sample).min(*sorted.last().unwrap())
}

/// Spreads raw `u64`s across every scale (shifting by a value-derived
/// amount), so the buckets from 0 to 63 all see traffic.
fn mixed_scale(raw: Vec<u64>) -> Vec<u64> {
    raw.into_iter().map(|v| v >> (v % 64)).collect()
}

/// A short adversarial string off a palette of JSON-hostile characters.
fn hostile_string(codes: &[u64]) -> String {
    const PALETTE: &[char] = &[
        '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{1f}', '/', ' ', 'a', 'z', '0', 'φ', '≈', '😀',
        '{', '}', '[', ']', ',', ':',
    ];
    codes
        .iter()
        .map(|&c| PALETTE[c as usize % PALETTE.len()])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_quantiles_match_the_sort_oracle(
        raw in vec(any::<u64>(), 1..200),
    ) {
        let samples = mixed_scale(raw);
        let mut hist = LatencyHistogram::new();
        let mut sorted = samples.clone();
        for &s in &samples {
            hist.record(s);
        }
        sorted.sort_unstable();

        prop_assert_eq!(hist.count(), samples.len() as u64);
        prop_assert_eq!(hist.max(), *sorted.last().unwrap());
        prop_assert_eq!(hist.min(), Some(sorted[0]));
        let exact_sum = samples.iter().fold(0u64, |a, &b| a.saturating_add(b));
        prop_assert_eq!(hist.sum(), exact_sum);

        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let got = hist.quantile(q);
            let want = oracle_quantile(&sorted, q);
            prop_assert_eq!(
                got, want,
                "q={} over {} samples: histogram {} vs oracle {}",
                q, sorted.len(), got, want
            );
            // Never below the true ranked sample, never above the max.
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            prop_assert!(got >= sorted[rank - 1]);
            prop_assert!(got <= hist.max());
        }
        let summary = hist.summary();
        prop_assert_eq!(summary.p50_ns, hist.quantile(0.5));
        prop_assert_eq!(summary.p99_ns, hist.quantile(0.99));
        prop_assert_eq!(summary.p999_ns, hist.quantile(0.999));
        prop_assert_eq!(summary.max_ns, hist.max());
    }

    #[test]
    fn merged_histograms_equal_the_concatenated_histogram(
        raw_a in vec(any::<u64>(), 0..80),
        raw_b in vec(any::<u64>(), 1..80),
    ) {
        let (a, b) = (mixed_scale(raw_a), mixed_scale(raw_b));
        let mut merged = LatencyHistogram::new();
        let mut other = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for &s in &a {
            merged.record(s);
            whole.record(s);
        }
        for &s in &b {
            other.record(s);
            whole.record(s);
        }
        merged.merge(&other);
        prop_assert_eq!(&merged, &whole);
        prop_assert_eq!(merged.summary(), whole.summary());
    }

    #[test]
    fn trace_documents_round_trip_for_adversarial_strings(
        name_codes in vec(any::<u64>(), 0..12),
        cat_codes in vec(any::<u64>(), 0..6),
        arg_codes in vec(any::<u64>(), 0..10),
        start_ns in 0u64..(1 << 50),
        dur_ns in 0u64..(1 << 40),
        count in any::<u64>(),
        measure in -1e6f64..1e6,
    ) {
        // Keep the float non-integral so the parser's "non-negative
        // integer numbers become U64" rule cannot legitimately retype it.
        let measure = if measure.fract() == 0.0 { measure + 0.5 } else { measure };
        let events = vec![
            SpanEvent {
                name: hostile_string(&name_codes),
                cat: hostile_string(&cat_codes),
                start_ns,
                dur_ns,
                args: vec![
                    arg_u64("count", count),
                    arg_f64("measure", measure),
                    arg_str(&hostile_string(&arg_codes), &hostile_string(&name_codes)),
                ],
            },
            // A zero-duration instant rides along in every case.
            SpanEvent {
                name: hostile_string(&arg_codes),
                cat: "cluster".into(),
                start_ns: start_ns.saturating_add(dur_ns),
                dur_ns: 0,
                args: vec![arg_str("addr", "127.0.0.1:0")],
            },
        ];
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &events).unwrap();
        let text = String::from_utf8(buf).expect("trace writer emitted invalid UTF-8");
        let parsed = parse_chrome_trace(&text)
            .unwrap_or_else(|e| panic!("unparseable trace: {e}\n{text}"));
        prop_assert_eq!(parsed, events);
    }

    #[test]
    fn fake_clock_spans_are_a_pure_function_of_the_script(
        script in vec(0u64..1_000_000, 1..20),
        start in 0u64..(1 << 40),
    ) {
        let run = |script: &[u64]| -> Vec<SpanEvent> {
            let clock = FakeClock::new(start);
            let recorder = Recorder::with_clock(clock.clone());
            for (i, &step) in script.iter().enumerate() {
                let span = recorder.start();
                clock.advance(step);
                recorder.span(span, &format!("step{i}"), "test", || {
                    vec![arg_u64("step", step)]
                });
                recorder.add("steps", 1);
            }
            recorder.events()
        };
        let first = run(&script);
        let second = run(&script);
        prop_assert_eq!(&first, &second);

        // The scripted durations come back exactly; spans tile the clock.
        let mut expected_start = start;
        for (ev, &step) in first.iter().zip(&script) {
            prop_assert_eq!(ev.start_ns, expected_start);
            prop_assert_eq!(ev.dur_ns, step);
            expected_start += step;
        }
    }
}
