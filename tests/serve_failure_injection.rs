//! Deterministic fault injection for the serving tier, in the style of
//! `tests/cluster_failure_injection.rs`: every overload, deadline, drain,
//! and replica-death scenario is scripted — no sleeps standing in for
//! load, no real clocks standing in for deadlines — and every client
//! outcome must be a typed error or a bit-identical answer, never a hang,
//! a panic, or a lost admitted request.
//!
//! The levers: [`ServeEngine::pause`] freezes the batcher so queue depth
//! is exact, `FakeClock` drives deadline expiry, and the cluster
//! runtime's `FaultTransport` (instantiated over `SKS1` frames by
//! `kmeans_serve::fault`) kills replicas at exact `(tag, occurrence)`
//! triggers.

use scalable_kmeans::cluster::fault::FaultAction;
use scalable_kmeans::cluster::protocol::WireError;
use scalable_kmeans::cluster::transport::{LoopbackTransport, Transport};
use scalable_kmeans::cluster::{ClusterError, RetryPolicy};
use scalable_kmeans::prelude::*;
use scalable_kmeans::serve::fault::tag;
use scalable_kmeans::serve::{
    spawn_loopback_serve, spawn_loopback_serve_with_faults, spawn_tcp_serve,
    spawn_tcp_serve_with_faults, EngineConfig, ServeClient, ServeEngine, ServeMessage,
};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const IO: Option<Duration> = Some(Duration::from_secs(30));

fn dataset(seed: u64) -> PointMatrix {
    GaussMixture::new(5)
        .points(400)
        .center_variance(60.0)
        .generate(seed)
        .unwrap()
        .dataset
        .points()
        .clone()
}

fn fitted(points: &PointMatrix, seed: u64) -> KMeansModel {
    KMeans::params(5)
        .seed(seed)
        .parallelism(Parallelism::Sequential)
        .fit(points)
        .unwrap()
}

fn rows(points: &PointMatrix, range: std::ops::Range<usize>) -> PointMatrix {
    let d = points.dim();
    PointMatrix::from_flat(
        points.as_slice()[range.start * d..range.end * d].to_vec(),
        d,
    )
    .unwrap()
}

fn engine_with(model: &KMeansModel, config: EngineConfig) -> ServeEngine {
    ServeEngine::with_config(
        model.to_record(),
        Executor::new(Parallelism::Sequential),
        config,
    )
    .unwrap()
}

/// Spins until `cond` holds (bounded; deterministic conditions only).
fn spin_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

/// A failover supplier over a fixed pool of pre-spawned loopback
/// replicas: each (re)dial consumes the next one; an exhausted pool is a
/// typed `Disconnected`, exactly like a replica list with nothing alive.
fn pooled_supplier(
    replicas: Vec<LoopbackTransport<ServeMessage>>,
) -> Box<dyn FnMut(u32) -> Result<LoopbackTransport<ServeMessage>, ClusterError> + Send> {
    let pool = Arc::new(Mutex::new(replicas.into_iter().collect::<VecDeque<_>>()));
    Box::new(move |_attempt| {
        pool.lock()
            .unwrap()
            .pop_front()
            .ok_or(ClusterError::Disconnected)
    })
}

#[test]
fn overload_is_shed_typed_on_the_wire_and_admitted_work_completes() {
    let data = dataset(7);
    let model = fitted(&data, 3);
    let admitted_query = rows(&data, 0..60);
    let shed_query = rows(&data, 100..110);

    let engine = engine_with(
        &model,
        EngineConfig {
            queue_cap: admitted_query.len(),
            ..EngineConfig::default()
        },
    );
    // Freeze the batcher so "the server is busy" is a scripted state,
    // not a race: the first request is admitted (fills the queue
    // exactly), the second must be shed before it ever reaches a kernel.
    let paused = engine.pause();

    let (admitted_side, admitted_handle) = spawn_loopback_serve(&engine);
    let admitted_expected = model.predict(&admitted_query).unwrap();
    let admitted = std::thread::spawn(move || {
        let mut client = ServeClient::handshake(admitted_side).unwrap();
        client.predict(&admitted_query).unwrap()
    });
    spin_until("the first request to be admitted", || {
        engine.queued_points() == engine.queue_cap()
    });

    // Over the wire, the shed is a typed Error frame carrying the queue
    // telemetry — the client can see *why* and *how far over*.
    let (mut raw, shed_handle) = spawn_loopback_serve(&engine);
    raw.send(&ServeMessage::Predict {
        points: shed_query,
        deadline_ms: None,
    })
    .unwrap();
    match raw.recv().unwrap() {
        ServeMessage::Error(WireError::Overloaded { queued_points, cap }) => {
            assert_eq!(queued_points, engine.queue_cap());
            assert_eq!(cap, engine.queue_cap());
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }

    // Shedding never cancels admitted work: unfreeze and the first
    // request completes bit-identically to the local model.
    drop(paused);
    let prediction = admitted.join().unwrap();
    assert_eq!(prediction.labels, admitted_expected);

    let stats = engine.stats();
    assert_eq!(stats.shed_requests, 1);
    assert_eq!(stats.shed_points, 10);
    assert_eq!(stats.queued_points, 0);

    drop(raw);
    admitted_handle.join().unwrap().unwrap();
    shed_handle.join().unwrap().unwrap();
}

#[test]
fn expired_deadline_is_typed_on_the_wire_and_never_reaches_the_kernel() {
    let data = dataset(11);
    let model = fitted(&data, 5);
    let clock = Arc::new(FakeClock::new(0));
    let engine = engine_with(
        &model,
        EngineConfig {
            clock: Arc::clone(&clock) as Arc<dyn scalable_kmeans::obs::Clock>,
            ..EngineConfig::default()
        },
    );
    let paused = engine.pause();

    let (mut raw, handle) = spawn_loopback_serve(&engine);
    raw.send(&ServeMessage::Predict {
        points: rows(&data, 0..40),
        deadline_ms: Some(5),
    })
    .unwrap();
    spin_until("the deadline request to be admitted", || {
        engine.queued_points() > 0
    });

    // The budget expires while the request is still queued; on dequeue
    // the batcher must answer typed, without running the sweep.
    let sweeps_before = engine.stats().distance_computations;
    clock.advance(6_000_000); // 6 ms > the 5 ms budget
    drop(paused);
    match raw.recv().unwrap() {
        ServeMessage::Error(WireError::DeadlineExceeded { budget_ms }) => {
            assert_eq!(budget_ms, 5)
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let stats = engine.stats();
    assert_eq!(stats.deadline_exceeded, 1);
    assert_eq!(stats.distance_computations, sweeps_before);

    // An unexpired deadline on the same session still gets real service.
    raw.send(&ServeMessage::Predict {
        points: rows(&data, 0..40),
        deadline_ms: Some(1_000),
    })
    .unwrap();
    match raw.recv().unwrap() {
        ServeMessage::Labels { labels, .. } => {
            assert_eq!(labels, model.predict(&rows(&data, 0..40)).unwrap())
        }
        other => panic!("expected Labels, got {other:?}"),
    }
    drop(raw);
    handle.join().unwrap().unwrap();
}

#[test]
fn drain_answers_every_admitted_request_and_rejects_new_ones_typed() {
    let data = dataset(17);
    let model = fitted(&data, 2);
    let engine = engine_with(&model, EngineConfig::default());
    let paused = engine.pause();

    let admitted_query = rows(&data, 0..80);
    let admitted_expected = model.predict(&admitted_query).unwrap();
    let (admitted_side, admitted_handle) = spawn_loopback_serve(&engine);
    let admitted = std::thread::spawn(move || {
        let mut client = ServeClient::handshake(admitted_side).unwrap();
        client.predict(&admitted_query).unwrap()
    });
    spin_until("the pre-drain request to be admitted", || {
        engine.queued_points() > 0
    });

    // Drain: the wire reply reports the points still owed; readiness and
    // admission flip immediately, but nothing admitted is cancelled.
    let (mut admin, admin_handle) = spawn_loopback_serve(&engine);
    admin.send(&ServeMessage::Drain).unwrap();
    match admin.recv().unwrap() {
        ServeMessage::DrainOk { queued_points } => assert_eq!(queued_points, 80),
        other => panic!("expected DrainOk, got {other:?}"),
    }
    assert!(engine.is_draining());
    assert!(!engine.is_drained(), "drained early: admitted work pending");

    admin
        .send(&ServeMessage::Predict {
            points: rows(&data, 0..5),
            deadline_ms: None,
        })
        .unwrap();
    match admin.recv().unwrap() {
        ServeMessage::Error(WireError::Draining) => {}
        other => panic!("expected Draining, got {other:?}"),
    }

    drop(paused);
    let prediction = admitted.join().unwrap();
    assert_eq!(prediction.labels, admitted_expected, "admitted reply lost");
    spin_until("the drain to complete", || engine.is_drained());

    let stats = engine.stats();
    assert_eq!(stats.drain_rejected, 1);
    assert!(stats.draining);
    assert_eq!(stats.queued_points, 0);

    drop(admin);
    admitted_handle.join().unwrap().unwrap();
    admin_handle.join().unwrap().unwrap();
}

#[test]
fn tcp_drain_exits_the_daemon_with_zero_admitted_loss() {
    let data = dataset(23);
    let model = fitted(&data, 4);
    let engine = engine_with(&model, EngineConfig::default());
    let paused = engine.pause();
    let (addr, handle) = spawn_tcp_serve(engine.clone(), IO).unwrap();

    let admitted_query = rows(&data, 10..90);
    let admitted_expected = model.predict(&admitted_query).unwrap();
    let worker_addr = addr.to_string();
    let admitted = std::thread::spawn(move || {
        let mut client = ServeClient::connect(&worker_addr, IO).unwrap();
        client.predict(&admitted_query).unwrap()
    });
    spin_until("the TCP request to be admitted", || {
        engine.queued_points() > 0
    });

    let mut admin = ServeClient::connect(&addr.to_string(), IO).unwrap();
    assert_eq!(admin.drain().unwrap(), 80);

    // In-flight work finishes bit-identically, then the daemon exits on
    // its own — the rolling-restart contract: drain, wait, replace.
    drop(paused);
    let prediction = admitted.join().unwrap();
    assert_eq!(prediction.labels, admitted_expected);
    handle.join().unwrap().unwrap();
}

#[test]
fn client_fails_over_to_the_next_replica_when_one_dies_mid_reply() {
    let data = dataset(31);
    let model = fitted(&data, 6);
    let query = rows(&data, 0..70);
    let expected = model.predict(&query).unwrap();

    // Replica 1 crashes before its first Labels reply leaves the
    // machine; replica 2 is healthy. Both serve the same model, so the
    // replayed request must return the same bits.
    let engine1 = engine_with(&model, EngineConfig::default());
    let engine2 = engine_with(&model, EngineConfig::default());
    let (faulty_side, faulty_handle) = spawn_loopback_serve_with_faults(
        &engine1,
        vec![FaultAction::KillOnSend {
            tag: tag::LABELS,
            occurrence: 1,
        }],
    );
    let (healthy_side, healthy_handle) = spawn_loopback_serve(&engine2);

    let mut client = ServeClient::with_failover(
        pooled_supplier(vec![faulty_side, healthy_side]),
        RetryPolicy::fixed(3, Duration::from_millis(1)),
    )
    .unwrap();
    let prediction = client.predict(&query).unwrap();
    assert_eq!(prediction.labels, expected, "failover changed the answer");

    // The dead replica did admit the request before crashing; the
    // survivor actually served it.
    assert!(faulty_handle.join().unwrap().is_err(), "fault never fired");
    assert_eq!(engine2.stats().requests, 1);
    drop(client);
    healthy_handle.join().unwrap().unwrap();
}

#[test]
fn client_fails_over_from_a_draining_replica_transparently() {
    let data = dataset(37);
    let model = fitted(&data, 8);
    let query = rows(&data, 5..55);
    let expected = model.predict(&query).unwrap();

    let engine1 = engine_with(&model, EngineConfig::default());
    let engine2 = engine_with(&model, EngineConfig::default());
    engine1.drain();
    let (draining_side, draining_handle) = spawn_loopback_serve(&engine1);
    let (healthy_side, healthy_handle) = spawn_loopback_serve(&engine2);

    // The draining replica still answers the handshake (drain is not
    // death), but sheds the predict typed — which the failover client
    // turns into a transparent re-dial, not a user-visible error.
    let mut client = ServeClient::with_failover(
        pooled_supplier(vec![draining_side, healthy_side]),
        RetryPolicy::fixed(3, Duration::from_millis(1)),
    )
    .unwrap();
    let prediction = client.predict(&query).unwrap();
    assert_eq!(prediction.labels, expected);
    assert_eq!(engine1.stats().drain_rejected, 1);
    assert_eq!(engine2.stats().requests, 1);
    drop(client);
    draining_handle.join().unwrap().unwrap();
    healthy_handle.join().unwrap().unwrap();
}

#[test]
fn replica_exhaustion_is_a_typed_error_never_a_hang() {
    let data = dataset(41);
    let model = fitted(&data, 9);
    let engine = engine_with(&model, EngineConfig::default());

    // The only replica eats the predict request and dies; every redial
    // finds an empty pool. The client must give up after its bounded
    // retry budget with a typed transport error — promptly.
    let (only_side, only_handle) = spawn_loopback_serve_with_faults(
        &engine,
        vec![FaultAction::KillOnRecv {
            tag: tag::PREDICT,
            occurrence: 1,
        }],
    );
    let mut client = ServeClient::with_failover(
        pooled_supplier(vec![only_side]),
        RetryPolicy::fixed(4, Duration::from_millis(5)),
    )
    .unwrap();
    let started = Instant::now();
    let err = client.predict(&rows(&data, 0..30)).unwrap_err();
    assert!(
        matches!(err, ClusterError::Disconnected | ClusterError::Io(_)),
        "{err:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "retry budget was not bounded: {:?}",
        started.elapsed()
    );
    // The dead replica's session sees the kill as a hangup (clean exit);
    // the point is it never answered and the client still terminated.
    only_handle.join().unwrap().unwrap();
}

#[test]
fn tcp_replica_set_survives_a_mid_frame_crash_bit_identically() {
    let data = dataset(43);
    let model = fitted(&data, 12);
    let query = rows(&data, 20..120);
    let expected = model.predict(&query).unwrap();
    let expected_cost = model.cost_of(&query).unwrap();

    // Replica 1 ships 6 bytes of its first Labels frame and dies — a
    // real mid-frame crash over a real socket. Replica 2 is healthy.
    let engine1 = engine_with(&model, EngineConfig::default());
    let engine2 = engine_with(&model, EngineConfig::default());
    let (addr1, faulty_handle) = spawn_tcp_serve_with_faults(
        &engine1,
        IO,
        vec![FaultAction::TruncateOnSend {
            tag: tag::LABELS,
            occurrence: 1,
            keep: 6,
        }],
    )
    .unwrap();
    let (addr2, healthy_handle) = spawn_tcp_serve(engine2.clone(), IO).unwrap();

    let mut client = ServeClient::connect_any(
        &[addr1.to_string(), addr2.to_string()],
        IO,
        RetryPolicy::fixed(4, Duration::from_millis(10)),
    )
    .unwrap();
    let prediction = client.predict(&query).unwrap();
    assert_eq!(prediction.labels, expected, "failover changed the labels");
    let (_, cost) = client.cost_of(&query).unwrap();
    assert_eq!(cost.to_bits(), expected_cost.to_bits());

    assert!(faulty_handle.join().unwrap().is_err(), "fault never fired");
    client.shutdown().unwrap();
    healthy_handle.join().unwrap().unwrap();
}
