//! Cross-crate property-based tests: pipeline invariants that must hold
//! for arbitrary data, k, and seeds.

use proptest::prelude::*;
use scalable_kmeans::prelude::*;

/// Strategy: a small random dataset (n points × d dims, values bounded).
fn datasets() -> impl Strategy<Value = PointMatrix> {
    (2usize..40, 1usize..6).prop_flat_map(|(n, d)| {
        proptest::collection::vec(-1e3f64..1e3, n * d)
            .prop_map(move |flat| PointMatrix::from_flat(flat, d).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fit_always_returns_k_consistent_clusters(
        points in datasets(),
        seed in 0u64..500,
    ) {
        let k = 1 + (seed as usize % points.len().min(8));
        let model = KMeans::params(k)
            .seed(seed)
            .parallelism(Parallelism::Sequential)
            .max_iterations(20)
            .fit(&points)
            .unwrap();
        prop_assert_eq!(model.k(), k);
        prop_assert_eq!(model.labels().len(), points.len());
        prop_assert!(model.labels().iter().all(|&l| (l as usize) < k));
        prop_assert!(model.cost().is_finite());
        prop_assert!(model.cost() >= 0.0);
        // Lloyd never worsens the seed.
        prop_assert!(model.cost() <= model.init_stats().seed_cost + 1e-9);
        // The reported cost matches a recomputation from labels/centers.
        let mut recomputed = 0.0;
        for (i, row) in points.rows().enumerate() {
            let c = model.centers().row(model.labels()[i] as usize);
            recomputed += row.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum::<f64>();
        }
        // Labels are nearest-assignments, so recomputed == cost.
        prop_assert!(
            (model.cost() - recomputed).abs() <= 1e-6 * (1.0 + recomputed),
            "cost {} vs recomputed {}", model.cost(), recomputed
        );
    }

    #[test]
    fn every_init_produces_k_in_bounds_centers(
        points in datasets(),
        seed in 0u64..200,
        method_pick in 0usize..3,
    ) {
        let k = 1 + (seed as usize % points.len().min(5));
        let method = match method_pick {
            0 => InitMethod::Random,
            1 => InitMethod::KMeansPlusPlus,
            _ => InitMethod::default(),
        };
        let exec = Executor::new(Parallelism::Sequential);
        let result = method.run(&points, k, seed, &exec).unwrap();
        prop_assert_eq!(result.centers.len(), k);
        prop_assert_eq!(result.centers.dim(), points.dim());
        prop_assert!(result.stats.seed_cost.is_finite());
        prop_assert!(result.stats.seed_cost >= 0.0);
        prop_assert!(result.stats.candidates >= k);
        // Seeds are actual data points for all three methods (before any
        // reclustering they are selected rows; reclustering also selects
        // rows of the candidate set).
        for c in result.centers.rows() {
            let found = points.rows().any(|row| row == c);
            prop_assert!(found, "center not a data point");
        }
    }

    #[test]
    fn seeding_is_deterministic_per_seed(points in datasets(), seed in 0u64..100) {
        let k = 1 + (seed as usize % points.len().min(4));
        let exec = Executor::new(Parallelism::Sequential);
        let a = InitMethod::default().run(&points, k, seed, &exec).unwrap();
        let b = InitMethod::default().run(&points, k, seed, &exec).unwrap();
        prop_assert_eq!(a.centers, b.centers);
    }

    #[test]
    fn lloyd_cost_is_monotone_for_arbitrary_input(
        points in datasets(),
        seed in 0u64..100,
    ) {
        let k = 1 + (seed as usize % points.len().min(4));
        let exec = Executor::new(Parallelism::Sequential);
        let init = InitMethod::Random.run(&points, k, seed, &exec).unwrap();
        let result = scalable_kmeans::core::lloyd::lloyd(
            &points,
            &init.centers,
            &LloydConfig { max_iterations: 25, tol: 0.0 },
            &exec,
        )
        .unwrap();
        for w in result.history.windows(2) {
            // Reseeding may transiently raise cost; skip those steps.
            if w[1].reseeded == 0 && w[0].reseeded == 0 {
                prop_assert!(
                    w[1].cost <= w[0].cost + 1e-9 * (1.0 + w[0].cost),
                    "cost increased {} -> {}", w[0].cost, w[1].cost
                );
            }
        }
    }

    #[test]
    fn generators_are_seed_deterministic(n in 10usize..200, seed in 0u64..50) {
        let a = KddLike::new(n).generate(seed).unwrap();
        let b = KddLike::new(n).generate(seed).unwrap();
        prop_assert_eq!(a.dataset.points(), b.dataset.points());
        let c = SpamLike::new().points(n).generate(seed).unwrap();
        let d = SpamLike::new().points(n).generate(seed).unwrap();
        prop_assert_eq!(c.dataset.points(), d.dataset.points());
    }

    #[test]
    fn csv_round_trip_preserves_generated_data(n in 2usize..60, seed in 0u64..30) {
        use scalable_kmeans::data::io::{read_csv_from, write_csv_to, LabelColumn};
        let synth = GaussMixture::new(2).points(n).dim(3).generate(seed).unwrap();
        let mut buf = Vec::new();
        write_csv_to(&mut buf, &synth.dataset).unwrap();
        let read = read_csv_from(buf.as_slice(), "t", LabelColumn::Last).unwrap();
        prop_assert_eq!(read.labels().unwrap(), synth.dataset.labels().unwrap());
        // f64 `{}` formatting is shortest-round-trip, so values are exact.
        prop_assert_eq!(read.points(), synth.dataset.points());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Hamerly's accelerated Lloyd is an *exact* algorithm: on arbitrary
    /// data it must converge to the same assignment as plain Lloyd when
    /// both start from the same seeds (up to floating-point coincidences,
    /// which the generator's continuous values make measure-zero).
    #[test]
    fn hamerly_is_equivalent_to_lloyd(points in datasets(), seed in 0u64..100) {
        use scalable_kmeans::core::accel::hamerly_lloyd;
        use scalable_kmeans::core::lloyd::lloyd;
        let k = 1 + (seed as usize % points.len().min(5));
        let exec = Executor::new(Parallelism::Sequential);
        let init = InitMethod::KMeansPlusPlus.run(&points, k, seed, &exec).unwrap();
        let config = LloydConfig { max_iterations: 60, tol: 0.0 };
        let plain = lloyd(&points, &init.centers, &config, &exec).unwrap();
        let fast = hamerly_lloyd(&points, &init.centers, &config, &exec).unwrap();
        prop_assert_eq!(fast.converged, plain.converged);
        if plain.converged {
            prop_assert_eq!(&fast.labels, &plain.labels);
            prop_assert!(
                (fast.cost - plain.cost).abs() <= 1e-6 * (1.0 + plain.cost),
                "cost {} vs {}", fast.cost, plain.cost
            );
        }
        // Pruning never exceeds the plain-Lloyd distance budget.
        let budget = (points.len() * k) as u64 * fast.iterations as u64
            + (k * k) as u64 * fast.iterations as u64
            + (points.len() * k) as u64; // final exact pass
        prop_assert!(fast.distance_computations <= budget + k as u64 * fast.iterations as u64);
    }
}
