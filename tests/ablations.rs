//! Ablations A1 (sampling mode) and A2 (reclustering method), plus the
//! top-up policy comparison backing Figures 5.2/5.3.

use scalable_kmeans::prelude::*;

fn heavy_mixture() -> kmeans_data::dataset::SyntheticDataset {
    GaussMixture::new(25)
        .points(4_000)
        .center_variance(100.0)
        .generate(13)
        .unwrap()
}

fn median_cost(points: &PointMatrix, k: usize, config: KMeansParallelConfig) -> f64 {
    let costs: Vec<f64> = (0..7)
        .map(|s| {
            KMeans::params(k)
                .init(InitMethod::KMeansParallel(config))
                .seed(s)
                .fit(points)
                .unwrap()
                .cost()
        })
        .collect();
    kmeans_util::stats::median(&costs).unwrap()
}

#[test]
fn a1_bernoulli_and_exact_l_reach_comparable_seed_quality() {
    // §5.3 introduces exact-ℓ sampling "to reduce the variance" of the
    // intermediate set size — the *seeding distribution* is the same, so
    // median seed costs must be comparable. (Final costs after Lloyd are
    // dominated by local-optimum luck and are not the right comparison.)
    let synth = heavy_mixture();
    let points = synth.dataset.points();
    let median_seed = |mode: SamplingMode| {
        let exec = Executor::new(Parallelism::Sequential);
        let costs: Vec<f64> = (0..9)
            .map(|s| {
                InitMethod::KMeansParallel(KMeansParallelConfig::default().sampling(mode))
                    .run(points, 25, s, &exec)
                    .unwrap()
                    .stats
                    .seed_cost
            })
            .collect();
        kmeans_util::stats::median(&costs).unwrap()
    };
    let bernoulli = median_seed(SamplingMode::Bernoulli);
    let exact = median_seed(SamplingMode::ExactL);
    let ratio = bernoulli / exact;
    assert!(
        (1.0 / 3.0..3.0).contains(&ratio),
        "sampling modes diverge: bernoulli {bernoulli:.3e} vs exact {exact:.3e}"
    );
}

#[test]
fn a2_weighted_recluster_beats_uniform_recluster() {
    // Imbalanced mixture: most candidates come from far-spread regions, so
    // ignoring the weights when reclustering loses the mass structure.
    let mut points = PointMatrix::new(1);
    let mut rng = Rng::new(3);
    for _ in 0..3_000 {
        points.push(&[rng.normal()]).unwrap();
    }
    for c in 1..=5 {
        for _ in 0..30 {
            points.push(&[c as f64 * 1e4 + rng.normal()]).unwrap();
        }
    }
    let weighted = median_cost(
        &points,
        6,
        KMeansParallelConfig::default()
            .oversampling_factor(5.0)
            .recluster(Recluster::WeightedKMeansPlusPlus),
    );
    let uniform = median_cost(
        &points,
        6,
        KMeansParallelConfig::default()
            .oversampling_factor(5.0)
            .recluster(Recluster::Uniform),
    );
    assert!(
        weighted <= uniform,
        "weighted recluster {weighted:.3e} worse than uniform {uniform:.3e}"
    );
}

#[test]
fn a2_lloyd_refined_recluster_does_not_hurt() {
    let synth = heavy_mixture();
    let points = synth.dataset.points();
    let plain = median_cost(points, 25, KMeansParallelConfig::default());
    let refined = median_cost(
        points,
        25,
        KMeansParallelConfig::default().recluster(Recluster::Refined {
            lloyd_iterations: 10,
        }),
    );
    assert!(
        refined < 1.5 * plain,
        "refined recluster {refined:.3e} much worse than plain {plain:.3e}"
    );
}

#[test]
fn topup_policies_agree_when_sampling_is_sufficient() {
    // With r·ℓ ≫ k the top-up never triggers, so the policies coincide.
    let synth = heavy_mixture();
    let points = synth.dataset.points();
    let d2 = KMeans::params(10)
        .init(InitMethod::KMeansParallel(
            KMeansParallelConfig::default().topup(TopUp::D2Continue),
        ))
        .seed(42)
        .fit(points)
        .unwrap();
    let uni = KMeans::params(10)
        .init(InitMethod::KMeansParallel(
            KMeansParallelConfig::default().topup(TopUp::Uniform),
        ))
        .seed(42)
        .fit(points)
        .unwrap();
    assert_eq!(d2.centers(), uni.centers());
}

#[test]
fn oversampling_grid_improves_single_round_quality() {
    // Figure 5.1's oversampling effect: at r = 1, larger ℓ helps.
    let synth = heavy_mixture();
    let points = synth.dataset.points();
    let small = median_cost(
        points,
        25,
        KMeansParallelConfig::default()
            .oversampling_factor(1.0)
            .rounds(1)
            .topup(TopUp::Uniform),
    );
    let large = median_cost(
        points,
        25,
        KMeansParallelConfig::default()
            .oversampling_factor(8.0)
            .rounds(1)
            .topup(TopUp::Uniform),
    );
    assert!(
        large <= small * 1.2,
        "8x oversampling {large:.3e} not better than 1x {small:.3e} at r=1"
    );
}
