//! End-to-end pipeline tests across all three paper workloads.

use scalable_kmeans::prelude::*;

#[test]
fn gauss_mixture_pipeline_recovers_structure() {
    let synth = GaussMixture::new(20)
        .points(4_000)
        .center_variance(100.0) // well separated
        .generate(11)
        .unwrap();
    let points = synth.dataset.points();
    let model = KMeans::params(20).seed(5).fit(points).unwrap();
    assert_eq!(model.k(), 20);
    assert!(model.converged());
    // Well-separated mixture: the clustering should align with the truth.
    let score = nmi(model.labels(), synth.dataset.labels().unwrap());
    assert!(score > 0.9, "NMI {score}");
    // Final cost ≈ n·d (unit variance clusters), far below the seed cost
    // of a random assignment.
    let nd = (points.len() * points.dim()) as f64;
    assert!(model.cost() < 1.5 * nd, "cost {} vs n·d {nd}", model.cost());
}

#[test]
fn quality_ordering_matches_table_1() {
    // Median final cost over several seeds: Random ≫ {k-means++, k-means||}
    // on a spread-out mixture (the paper's R = 100 column).
    let synth = GaussMixture::new(30)
        .points(3_000)
        .center_variance(100.0)
        .generate(3)
        .unwrap();
    let points = synth.dataset.points();
    let median_cost = |init: InitMethod| {
        let costs: Vec<f64> = (0..5)
            .map(|s| {
                KMeans::params(30)
                    .init(init.clone())
                    .seed(s)
                    .fit(points)
                    .unwrap()
                    .cost()
            })
            .collect();
        kmeans_util::stats::median(&costs).unwrap()
    };
    let random = median_cost(InitMethod::Random);
    let pp = median_cost(InitMethod::KMeansPlusPlus);
    let par = median_cost(InitMethod::default());
    assert!(
        random > 2.0 * pp,
        "Random {random:.3e} not clearly worse than k-means++ {pp:.3e}"
    );
    assert!(
        par < 1.5 * pp,
        "k-means|| {par:.3e} much worse than k-means++ {pp:.3e}"
    );
}

#[test]
fn spam_pipeline_handles_heavy_tails() {
    let synth = SpamLike::new().points(1_500).generate(7).unwrap();
    let points = synth.dataset.points();
    let model = KMeans::params(20).seed(2).fit(points).unwrap();
    assert_eq!(model.labels().len(), 1_500);
    // Heavy-tailed features: k-means|| must still beat Random by a lot.
    let random = KMeans::params(20)
        .init(InitMethod::Random)
        .max_iterations(50)
        .seed(2)
        .fit(points)
        .unwrap();
    assert!(
        model.cost() < random.cost(),
        "k-means|| {:.3e} vs Random {:.3e}",
        model.cost(),
        random.cost()
    );
}

#[test]
fn kdd_pipeline_covers_rare_clusters() {
    let synth = KddLike::new(8_000).generate(5).unwrap();
    let points = synth.dataset.points();
    let par = KMeans::params(25)
        .max_iterations(10)
        .seed(1)
        .fit(points)
        .unwrap();
    let random = KMeans::params(25)
        .init(InitMethod::Random)
        .max_iterations(10)
        .seed(1)
        .fit(points)
        .unwrap();
    // The Table 3 headline at miniature scale: orders of magnitude.
    assert!(
        random.cost() > 10.0 * par.cost(),
        "Random {:.3e} vs k-means|| {:.3e}",
        random.cost(),
        par.cost()
    );
}

#[test]
fn predict_is_consistent_with_training_assignment() {
    let synth = GaussMixture::new(5).points(500).generate(1).unwrap();
    let points = synth.dataset.points();
    let model = KMeans::params(5).seed(9).fit(points).unwrap();
    let re_predicted = model.predict(points).unwrap();
    assert_eq!(re_predicted, model.labels());
    let queries = synth.true_centers.clone();
    let labels = model.predict(&queries).unwrap();
    assert_eq!(labels.len(), 5);
}

#[test]
fn minibatch_refinement_composes_with_parallel_seeding() {
    use scalable_kmeans::core::minibatch::{minibatch_kmeans, MiniBatchConfig};
    let synth = GaussMixture::new(10)
        .points(5_000)
        .center_variance(50.0)
        .generate(2)
        .unwrap();
    let points = synth.dataset.points();
    let exec = Executor::new(Parallelism::Auto);
    let init = InitMethod::default().run(points, 10, 3, &exec).unwrap();
    let refined = minibatch_kmeans(
        points,
        &init.centers,
        &MiniBatchConfig {
            batch_size: 256,
            iterations: 150,
        },
        4,
    )
    .unwrap();
    let before = init.stats.seed_cost;
    let after = scalable_kmeans::core::cost::potential(points, &refined, &exec);
    assert!(
        after < before,
        "mini-batch refinement regressed: {before:.3e} -> {after:.3e}"
    );
}
