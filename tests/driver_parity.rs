//! Backend-equivalence acceptance tests for the round-driver layer: the
//! **same** driver function (`kmeans_core::driver`) executed on an
//! `InMemoryBackend`, a `ChunkedBackend`, and a loopback `ClusterBackend`
//! must produce bit-identical results — over random n/d/k, block sizes,
//! {1, 2, 4} workers, and sequential vs multi-threaded executors —
//! including the newly unlocked distributed mini-batch path and
//! NaN-error parity (the same `NonFiniteData { global point }` from
//! every backend).

use proptest::prelude::*;
use scalable_kmeans::cluster::{
    spawn_loopback_worker, Cluster, ClusterBackend, FitDistributed, Transport,
};
use scalable_kmeans::core::driver::{
    drive_kmeans_parallel, drive_lloyd, drive_minibatch, drive_random_init, ChunkedBackend,
    InMemoryBackend, RoundBackend,
};
use scalable_kmeans::core::init::{kmeans_parallel, KMeansParallelConfig, SamplingMode};
use scalable_kmeans::core::lloyd::{lloyd, LloydConfig, LloydResult};
use scalable_kmeans::core::minibatch::{minibatch_kmeans_traced, MiniBatchConfig};
use scalable_kmeans::core::model::KMeans;
use scalable_kmeans::core::pipeline::MiniBatch;
use scalable_kmeans::core::KMeansError;
use scalable_kmeans::data::{InMemorySource, PointMatrix};
use scalable_kmeans::par::{Executor, Parallelism};

/// Executor shard size for the whole grid. With n < 1024 the required
/// worker alignment (`sum_shard_size_for`) equals SHARD, so any cut on a
/// 16-row boundary is a valid worker split.
const SHARD: usize = 16;

fn slice_rows(points: &PointMatrix, start: usize, rows: usize) -> PointMatrix {
    let dim = points.dim();
    PointMatrix::from_flat(
        points.as_slice()[start * dim..(start + rows) * dim].to_vec(),
        dim,
    )
    .unwrap()
}

type WorkerHandles =
    Vec<std::thread::JoinHandle<Result<(), scalable_kmeans::cluster::ClusterError>>>;

/// Spawns `workers` loopback workers over contiguous, 16-row-aligned
/// slices of `points` and connects them as a cluster.
fn loopback_cluster(
    points: &PointMatrix,
    workers: usize,
    block_rows: usize,
    parallelism: Parallelism,
) -> (Cluster, WorkerHandles) {
    let n = points.len();
    let base = ((n / workers) / SHARD * SHARD).max(SHARD);
    let mut transports: Vec<Box<dyn Transport>> = Vec::new();
    let mut handles = Vec::new();
    for w in 0..workers {
        let start = w * base;
        let rows = if w + 1 == workers { n - start } else { base };
        let source = InMemorySource::new(slice_rows(points, start, rows), block_rows).unwrap();
        let (transport, handle) = spawn_loopback_worker(source, parallelism);
        transports.push(Box::new(transport));
        handles.push(handle);
    }
    (Cluster::new(transports).unwrap(), handles)
}

fn shutdown(mut cluster: Cluster, handles: WorkerHandles) {
    cluster.shutdown();
    for h in handles {
        h.join().unwrap().unwrap();
    }
}

fn gauss(n: usize, d: usize, seed: u64) -> PointMatrix {
    let mut rng = scalable_kmeans::util::Rng::new(seed);
    let mut m = PointMatrix::new(d);
    let mut row = vec![0.0; d];
    for i in 0..n {
        let c = (i % 3) as f64 * 60.0;
        for slot in row.iter_mut() {
            *slot = c + rng.normal() * 2.0;
        }
        m.push(&row).unwrap();
    }
    m
}

fn assert_lloyd_bits(a: &LloydResult, b: &LloydResult, what: &str) {
    assert_eq!(a.centers, b.centers, "{what}: centers");
    assert_eq!(a.labels, b.labels, "{what}: labels");
    assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "{what}: cost");
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(a.assign_passes, b.assign_passes, "{what}: passes");
    assert_eq!(
        a.pruned_by_norm_bound, b.pruned_by_norm_bound,
        "{what}: kernel prune counters"
    );
    for (x, y) in a.history.iter().zip(&b.history) {
        assert_eq!(x.cost.to_bits(), y.cost.to_bits(), "{what}: history cost");
        assert_eq!(x.reassigned, y.reassigned, "{what}: history reassigned");
        assert_eq!(x.reseeded, y.reseeded, "{what}: history reseeded");
    }
}

/// One full seeding + refinement through the drivers on every backend.
fn run_grid_point(
    points: &PointMatrix,
    k: usize,
    seed: u64,
    block_rows: usize,
    parallelism: Parallelism,
    config: &KMeansParallelConfig,
) {
    let exec = Executor::new(parallelism).with_shard_size(SHARD);

    // Reference: the public in-memory entry points (thin wrappers over
    // the drivers on InMemoryBackend).
    let (ref_centers, ref_stats) = kmeans_parallel(points, k, config, seed, &exec).unwrap();
    let ref_lloyd = lloyd(points, &ref_centers, &LloydConfig::default(), &exec).unwrap();

    // Chunked backend, same drivers.
    let source = InMemorySource::new(points.clone(), block_rows).unwrap();
    let mut chunked = ChunkedBackend::new(&source, &exec);
    let (c_centers, c_stats) = drive_kmeans_parallel(&mut chunked, k, config, seed).unwrap();
    assert_eq!(c_centers, ref_centers, "chunked seeds, blocks {block_rows}");
    assert_eq!(c_stats.candidates, ref_stats.candidates);
    assert_eq!(c_stats.rounds, ref_stats.rounds);
    let c_lloyd = drive_lloyd(&mut chunked, &c_centers, &LloydConfig::default()).unwrap();
    assert_lloyd_bits(
        &c_lloyd,
        &ref_lloyd,
        &format!("chunked, blocks {block_rows}"),
    );

    // Cluster backend over loopback workers, same drivers.
    for workers in [1usize, 2, 4] {
        let (mut cluster, handles) = loopback_cluster(points, workers, block_rows, parallelism);
        cluster.plan(SHARD).unwrap();
        {
            let mut backend = ClusterBackend::new(&mut cluster);
            let (d_centers, d_stats) =
                drive_kmeans_parallel(&mut backend, k, config, seed).unwrap();
            assert_eq!(d_centers, ref_centers, "dist seeds, {workers} workers");
            assert_eq!(d_stats.candidates, ref_stats.candidates);
            let d_lloyd = drive_lloyd(&mut backend, &d_centers, &LloydConfig::default()).unwrap();
            assert_lloyd_bits(&d_lloyd, &ref_lloyd, &format!("dist, {workers} workers"));
        }
        shutdown(cluster, handles);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The acceptance grid: random n/d/k × block size × worker count ×
    /// executor parallelism, k-means|| (Bernoulli) + Lloyd, all three
    /// backends bit-identical — kernel counters included (the wire now
    /// carries them).
    #[test]
    fn backends_agree_bit_for_bit(
        n in 70usize..150,
        d in 1usize..5,
        k in 2usize..7,
        seed in 0u64..1000,
        block_pick in 0usize..4,
        threaded in any::<bool>(),
    ) {
        let block_rows = [3usize, 16, 37, 128][block_pick];
        let points = gauss(n, d, seed ^ 0x5eed);
        let parallelism = if threaded { Parallelism::Threads(4) } else { Parallelism::Sequential };
        run_grid_point(
            &points, k, seed, block_rows, parallelism,
            &KMeansParallelConfig::default(),
        );
    }

    /// Random seeding and the exact-ℓ sampling mode agree across
    /// backends too (one worker grid point each; the full worker grid is
    /// covered above).
    #[test]
    fn random_and_exact_l_agree(
        n in 70usize..130,
        d in 1usize..4,
        k in 2usize..6,
        seed in 0u64..500,
    ) {
        let points = gauss(n, d, seed ^ 0xab);
        let exec = Executor::sequential().with_shard_size(SHARD);

        let mut mem = InMemoryBackend::new(&points, &exec);
        let (mem_random, _) = drive_random_init(&mut mem, k, seed).unwrap();
        let exact = KMeansParallelConfig::default().sampling(SamplingMode::ExactL);
        let (mem_exact, _) = kmeans_parallel(&points, k, &exact, seed, &exec).unwrap();

        let source = InMemorySource::new(points.clone(), 23).unwrap();
        let mut chunked = ChunkedBackend::new(&source, &exec);
        let (c_random, _) = drive_random_init(&mut chunked, k, seed).unwrap();
        prop_assert_eq!(&c_random, &mem_random);
        let mut chunked = ChunkedBackend::new(&source, &exec);
        let (c_exact, _) = drive_kmeans_parallel(&mut chunked, k, &exact, seed).unwrap();
        prop_assert_eq!(&c_exact, &mem_exact);

        let (mut cluster, handles) = loopback_cluster(&points, 2, 5, Parallelism::Sequential);
        cluster.plan(SHARD).unwrap();
        {
            let mut backend = ClusterBackend::new(&mut cluster);
            let (d_random, _) = drive_random_init(&mut backend, k, seed).unwrap();
            prop_assert_eq!(&d_random, &mem_random);
        }
        {
            let mut backend = ClusterBackend::new(&mut cluster);
            let (d_exact, _) = drive_kmeans_parallel(&mut backend, k, &exact, seed).unwrap();
            prop_assert_eq!(&d_exact, &mem_exact);
        }
        shutdown(cluster, handles);
    }

    /// Mini-batch refinement — previously a typed rejection on the
    /// distributed path — now runs through the same driver on every
    /// backend, bit-identically.
    #[test]
    fn minibatch_agrees_across_backends(
        n in 70usize..150,
        d in 1usize..4,
        k in 2usize..6,
        seed in 0u64..500,
        block_pick in 0usize..3,
    ) {
        let block_rows = [2usize, 19, 64][block_pick];
        let points = gauss(n, d, seed ^ 0xbeef);
        let init = {
            let exec = Executor::sequential().with_shard_size(SHARD);
            let mut mem = InMemoryBackend::new(&points, &exec);
            drive_random_init(&mut mem, k, seed).unwrap().0
        };
        let config = MiniBatchConfig { batch_size: 24, iterations: 15 };
        let (reference, ref_stats) =
            minibatch_kmeans_traced(&points, &init, &config, seed).unwrap();

        let exec = Executor::sequential().with_shard_size(SHARD);
        let source = InMemorySource::new(points.clone(), block_rows).unwrap();
        let mut chunked = ChunkedBackend::new(&source, &exec);
        let (c_centers, c_stats) =
            drive_minibatch(&mut chunked, &init, &config, seed).unwrap();
        prop_assert_eq!(&c_centers, &reference);
        prop_assert_eq!(c_stats, ref_stats);

        for workers in [2usize, 4] {
            let (mut cluster, handles) =
                loopback_cluster(&points, workers, block_rows, Parallelism::Sequential);
            cluster.plan(SHARD).unwrap();
            {
                let mut backend = ClusterBackend::new(&mut cluster);
                let (d_centers, d_stats) =
                    drive_minibatch(&mut backend, &init, &config, seed).unwrap();
                prop_assert_eq!(&d_centers, &reference);
                prop_assert_eq!(d_stats, ref_stats);
            }
            shutdown(cluster, handles);
        }
    }
}

/// The acceptance criterion from the issue, end to end through the
/// builder: `KMeans::params(k).refine(MiniBatch…).fit_distributed(…)`
/// succeeds with bit-parity against the single-node mini-batch path —
/// measured kernel counters included, now that workers ship them.
#[test]
fn builder_distributed_minibatch_matches_single_node() {
    let points = gauss(192, 3, 7);
    let base = KMeans::params(5)
        .refine(MiniBatch(MiniBatchConfig {
            batch_size: 32,
            iterations: 20,
        }))
        .seed(11)
        .shard_size(SHARD)
        .parallelism(Parallelism::Sequential);
    let mem = base.clone().fit(&points).unwrap();
    let chunked = base
        .clone()
        .data_source(InMemorySource::new(points.clone(), 41).unwrap())
        .fit_chunked()
        .unwrap();
    assert_eq!(mem.centers(), chunked.centers());
    assert_eq!(mem.cost().to_bits(), chunked.cost().to_bits());
    for workers in [1usize, 2, 4] {
        let (mut cluster, handles) = loopback_cluster(&points, workers, 7, Parallelism::Threads(2));
        let dist = base.clone().fit_distributed(&mut cluster).unwrap();
        shutdown(cluster, handles);
        let what = format!("{workers} workers");
        assert_eq!(mem.centers(), dist.centers(), "{what}: centers");
        assert_eq!(mem.labels(), dist.labels(), "{what}: labels");
        assert_eq!(mem.cost().to_bits(), dist.cost().to_bits(), "{what}: cost");
        assert_eq!(
            mem.distance_computations(),
            dist.distance_computations(),
            "{what}: distance accounting"
        );
        assert_eq!(
            mem.pruned_by_norm_bound(),
            dist.pruned_by_norm_bound(),
            "{what}: kernel counters over the wire"
        );
        assert_eq!(dist.refiner_name(), "minibatch");
    }
}

/// Lloyd through the builder now reports identical measured kernel
/// counters on all three execution modes (the distributed frontend used
/// to hard-code 0 — workers ship their counters in the partials frames).
#[test]
fn distributed_kernel_counters_match_single_node() {
    // k ≥ 8 so the batch kernel's pruned sweep engages (below 8
    // candidates it scans canonically and the counters stay 0).
    let points = gauss(192, 4, 3);
    let base = KMeans::params(9)
        .seed(5)
        .shard_size(SHARD)
        .parallelism(Parallelism::Sequential);
    let mem = base.clone().fit(&points).unwrap();
    assert!(
        mem.pruned_by_norm_bound() > 0,
        "workload must exercise the kernel's pruning for this test to bite"
    );
    let (mut cluster, handles) = loopback_cluster(&points, 3, 8, Parallelism::Sequential);
    let dist = base.clone().fit_distributed(&mut cluster).unwrap();
    shutdown(cluster, handles);
    assert_eq!(mem.pruned_by_norm_bound(), dist.pruned_by_norm_bound());
    assert_eq!(mem.cost().to_bits(), dist.cost().to_bits());
}

/// NaN-error parity: every backend reports the *same* typed
/// `NonFiniteData` with the global point index, from the same driver.
#[test]
fn non_finite_data_errors_identically_on_every_backend() {
    let mut points = gauss(96, 3, 9);
    points.row_mut(70)[2] = f64::NAN;
    let expected = KMeansError::NonFiniteData { point: 70, dim: 2 };
    let config = KMeansParallelConfig::default();
    let exec = Executor::sequential().with_shard_size(SHARD);

    let mut mem = InMemoryBackend::new(&points, &exec);
    assert_eq!(
        drive_kmeans_parallel(&mut mem, 4, &config, 1).unwrap_err(),
        expected
    );

    let source = InMemorySource::new(points.clone(), 11).unwrap();
    let mut chunked = ChunkedBackend::new(&source, &exec);
    assert_eq!(
        drive_kmeans_parallel(&mut chunked, 4, &config, 1).unwrap_err(),
        expected
    );

    for workers in [2usize, 4] {
        let (mut cluster, handles) = loopback_cluster(&points, workers, 6, Parallelism::Sequential);
        cluster.plan(SHARD).unwrap();
        {
            let mut backend = ClusterBackend::new(&mut cluster);
            assert_eq!(
                drive_kmeans_parallel(&mut backend, 4, &config, 1).unwrap_err(),
                expected,
                "{workers} workers"
            );
        }
        shutdown(cluster, handles);
    }
}

/// A remote backend has no local source, so k-means++ (and every other
/// local-only stage) rejects with the distributed typed error even when
/// invoked through the generic entry point.
#[test]
fn local_only_stages_reject_the_cluster_backend() {
    use scalable_kmeans::core::pipeline::{Initializer, KMeansPlusPlus};
    let points = gauss(64, 2, 1);
    let (mut cluster, handles) = loopback_cluster(&points, 2, 8, Parallelism::Sequential);
    cluster.plan(SHARD).unwrap();
    {
        let mut backend = ClusterBackend::new(&mut cluster);
        let err = KMeansPlusPlus.init_backend(&mut backend, 3, 0).unwrap_err();
        assert!(
            err.to_string().contains("does not support distributed"),
            "{err}"
        );
        assert!(!backend.is_empty());
    }
    shutdown(cluster, handles);
}
