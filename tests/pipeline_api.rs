//! Pipeline-API contract tests: per-algorithm parity against the
//! pre-refactor entry points (bit-for-bit per seed), plus the full
//! Initializer×Refiner grid through the `KMeans` builder — including
//! weighted fits and thread-count invariance.

use scalable_kmeans::core::pipeline;
use scalable_kmeans::prelude::*;
use scalable_kmeans::streaming::CoresetTree;

fn mixture(k: usize, n: usize, seed: u64) -> PointMatrix {
    GaussMixture::new(k)
        .points(n)
        .center_variance(40.0)
        .generate(seed)
        .unwrap()
        .dataset
        .into_parts()
        .1
}

// ---------------------------------------------------------------------------
// Parity: every Initializer matches its legacy free-function entry point
// bit-for-bit for a fixed seed.
// ---------------------------------------------------------------------------

#[test]
fn random_initializer_parity() {
    use scalable_kmeans::core::init::random_init;
    let points = mixture(6, 800, 1);
    let exec = Executor::new(Parallelism::Sequential);
    for seed in 0..5u64 {
        let via_trait = pipeline::Random
            .init(&points, None, 6, seed, &exec)
            .unwrap();
        let mut rng = Rng::derive(seed, &[20]);
        let direct = random_init(&points, 6, &mut rng).unwrap();
        assert_eq!(via_trait.centers, direct, "seed {seed}");
        // And the legacy enum path routes through the same impl.
        let via_enum = InitMethod::Random.run(&points, 6, seed, &exec).unwrap();
        assert_eq!(via_enum.centers, direct, "seed {seed}");
    }
}

#[test]
fn kmeanspp_initializer_parity() {
    use scalable_kmeans::core::init::kmeanspp;
    let points = mixture(6, 800, 2);
    let exec = Executor::new(Parallelism::Sequential);
    for seed in 0..5u64 {
        let via_trait = pipeline::KMeansPlusPlus
            .init(&points, None, 6, seed, &exec)
            .unwrap();
        let mut rng = Rng::derive(seed, &[21]);
        let direct = kmeanspp(&points, 6, &mut rng, &exec).unwrap();
        assert_eq!(via_trait.centers, direct, "seed {seed}");
        let via_enum = InitMethod::KMeansPlusPlus
            .run(&points, 6, seed, &exec)
            .unwrap();
        assert_eq!(via_enum.centers, direct, "seed {seed}");
    }
}

#[test]
fn kmeans_parallel_initializer_parity() {
    use scalable_kmeans::core::init::kmeans_parallel;
    let points = mixture(8, 1_200, 3);
    let exec = Executor::new(Parallelism::Sequential);
    let config = KMeansParallelConfig::default();
    for seed in 0..5u64 {
        let via_trait = pipeline::KMeansParallel(config)
            .init(&points, None, 8, seed, &exec)
            .unwrap();
        let (direct, direct_stats) = kmeans_parallel(&points, 8, &config, seed, &exec).unwrap();
        assert_eq!(via_trait.centers, direct, "seed {seed}");
        assert_eq!(via_trait.stats.candidates, direct_stats.candidates);
        assert_eq!(via_trait.stats.passes, direct_stats.passes);
        let via_enum = InitMethod::KMeansParallel(config)
            .run(&points, 8, seed, &exec)
            .unwrap();
        assert_eq!(via_enum.centers, direct, "seed {seed}");
    }
}

#[test]
fn afk_mc2_initializer_parity() {
    use scalable_kmeans::core::init::afk_mc2;
    let points = mixture(5, 700, 4);
    let exec = Executor::new(Parallelism::Sequential);
    for seed in 0..5u64 {
        let via_trait = AfkMc2 { chain_length: 50 }
            .init(&points, None, 5, seed, &exec)
            .unwrap();
        let mut rng = Rng::derive(seed, &[22]);
        let direct = afk_mc2(&points, 5, 50, &mut rng, &exec).unwrap();
        assert_eq!(via_trait.centers, direct, "seed {seed}");
    }
}

#[test]
fn partition_initializer_parity() {
    let points = mixture(6, 1_500, 5);
    let exec = Executor::new(Parallelism::Sequential);
    for seed in 0..3u64 {
        let via_trait = Partition::default()
            .init(&points, None, 6, seed, &exec)
            .unwrap();
        let direct = partition_init(&points, 6, &PartitionConfig::default(), seed, &exec).unwrap();
        assert_eq!(via_trait.centers, direct.centers, "seed {seed}");
        assert_eq!(via_trait.stats.candidates, direct.intermediate_centers);
    }
}

#[test]
fn coreset_initializer_parity() {
    let points = mixture(4, 900, 6);
    let exec = Executor::new(Parallelism::Sequential);
    for seed in 0..3u64 {
        let via_trait = Coreset { coreset_size: 64 }
            .init(&points, None, 4, seed, &exec)
            .unwrap();
        let mut tree = CoresetTree::new(points.dim(), 64, seed).unwrap();
        for row in points.rows() {
            tree.insert(row).unwrap();
        }
        let direct = tree.cluster(4).unwrap();
        assert_eq!(via_trait.centers, direct, "seed {seed}");
    }
}

// ---------------------------------------------------------------------------
// Parity: every Refiner matches its legacy free-function entry point.
// ---------------------------------------------------------------------------

#[test]
fn lloyd_refiner_parity() {
    use scalable_kmeans::core::lloyd::lloyd;
    let points = mixture(6, 1_000, 7);
    let exec = Executor::new(Parallelism::Sequential);
    for seed in 0..3u64 {
        let init = InitMethod::KMeansPlusPlus
            .run(&points, 6, seed, &exec)
            .unwrap();
        let config = LloydConfig::default();
        let via_trait = Lloyd(config)
            .refine(&points, None, &init.centers, seed, &exec)
            .unwrap();
        let direct = lloyd(&points, &init.centers, &config, &exec).unwrap();
        assert_eq!(via_trait.centers, direct.centers, "seed {seed}");
        assert_eq!(via_trait.labels, direct.labels);
        assert_eq!(via_trait.cost.to_bits(), direct.cost.to_bits());
        assert_eq!(via_trait.iterations, direct.iterations);
        assert_eq!(via_trait.converged, direct.converged);
    }
}

#[test]
fn hamerly_refiner_parity() {
    use scalable_kmeans::core::accel::hamerly_lloyd;
    let points = mixture(6, 1_000, 8);
    let exec = Executor::new(Parallelism::Sequential);
    for seed in 0..3u64 {
        let init = InitMethod::KMeansPlusPlus
            .run(&points, 6, seed, &exec)
            .unwrap();
        let config = LloydConfig::default();
        let via_trait = HamerlyLloyd(config)
            .refine(&points, None, &init.centers, seed, &exec)
            .unwrap();
        let direct = hamerly_lloyd(&points, &init.centers, &config, &exec).unwrap();
        assert_eq!(via_trait.centers, direct.centers, "seed {seed}");
        assert_eq!(via_trait.labels, direct.labels);
        assert_eq!(via_trait.cost.to_bits(), direct.cost.to_bits());
        // The trait adds the closing pass to the measured counter.
        assert_eq!(
            via_trait.distance_computations,
            direct.distance_computations + (points.len() * 6) as u64
        );
    }
}

#[test]
fn minibatch_refiner_parity() {
    use scalable_kmeans::core::minibatch::minibatch_kmeans;
    let points = mixture(5, 900, 9);
    let exec = Executor::new(Parallelism::Sequential);
    let config = MiniBatchConfig {
        batch_size: 128,
        iterations: 60,
    };
    for seed in 0..3u64 {
        let init = InitMethod::Random.run(&points, 5, seed, &exec).unwrap();
        let via_trait = MiniBatch(config)
            .refine(&points, None, &init.centers, seed, &exec)
            .unwrap();
        let direct = minibatch_kmeans(&points, &init.centers, &config, seed).unwrap();
        assert_eq!(via_trait.centers, direct, "seed {seed}");
    }
}

#[test]
fn weighted_stage_parity() {
    use scalable_kmeans::core::init::weighted_kmeanspp;
    use scalable_kmeans::core::lloyd::weighted_lloyd;
    let points = mixture(4, 500, 10);
    let weights: Vec<f64> = (0..points.len()).map(|i| 1.0 + (i % 7) as f64).collect();
    let exec = Executor::new(Parallelism::Sequential);
    for seed in 0..3u64 {
        // Weighted k-means++ through the trait == the free function.
        let via_trait = pipeline::KMeansPlusPlus
            .init(&points, Some(&weights), 4, seed, &exec)
            .unwrap();
        let mut rng = Rng::derive(seed, &[21]);
        let direct = weighted_kmeanspp(&points, &weights, 4, &mut rng).unwrap();
        assert_eq!(via_trait.centers, direct, "seed {seed}");
        // Weighted Lloyd through the trait == the free function.
        let refined = Lloyd(LloydConfig::default())
            .refine(&points, Some(&weights), &direct, seed, &exec)
            .unwrap();
        let direct_centers = weighted_lloyd(&points, &weights, direct.clone(), 300);
        assert_eq!(refined.centers, direct_centers, "seed {seed}");
        assert!(refined.cost.is_finite());
    }
}

// ---------------------------------------------------------------------------
// The full Initializer × Refiner grid through the builder.
// ---------------------------------------------------------------------------

fn all_initializers() -> Vec<(&'static str, Box<dyn Initializer>)> {
    vec![
        ("random", Box::new(pipeline::Random)),
        ("kmeans++", Box::new(pipeline::KMeansPlusPlus)),
        (
            "kmeans-par",
            Box::new(pipeline::KMeansParallel(KMeansParallelConfig::default())),
        ),
        ("afk-mc2", Box::new(AfkMc2 { chain_length: 40 })),
        ("partition", Box::new(Partition::default())),
        ("coreset", Box::new(Coreset { coreset_size: 64 })),
    ]
}

fn fit_grid_cell(
    points: &PointMatrix,
    k: usize,
    init_name: &str,
    refine_name: &str,
    par: Parallelism,
) -> KMeansModel {
    let builder = KMeans::params(k).seed(17).parallelism(par).shard_size(256);
    let builder = match init_name {
        "random" => builder.init(pipeline::Random),
        "kmeans++" => builder.init(pipeline::KMeansPlusPlus),
        "kmeans-par" => builder.init(pipeline::KMeansParallel(KMeansParallelConfig::default())),
        "afk-mc2" => builder.init(AfkMc2 { chain_length: 40 }),
        "partition" => builder.init(Partition::default()),
        "coreset" => builder.init(Coreset { coreset_size: 64 }),
        other => panic!("unknown init {other}"),
    };
    let builder = match refine_name {
        "lloyd" => builder.refine(Lloyd(LloydConfig::default())),
        "hamerly" => builder.refine(HamerlyLloyd(LloydConfig::default())),
        "minibatch" => builder.refine(MiniBatch(MiniBatchConfig {
            batch_size: 128,
            iterations: 50,
        })),
        "none" => builder.refine(NoRefine),
        other => panic!("unknown refiner {other}"),
    };
    builder.fit(points).unwrap()
}

#[test]
fn every_initializer_composes_with_every_refiner() {
    let points = mixture(6, 1_200, 11);
    let refiners = ["lloyd", "hamerly", "minibatch", "none"];
    for (init_name, _) in all_initializers() {
        for refine_name in refiners {
            let model = fit_grid_cell(&points, 6, init_name, refine_name, Parallelism::Sequential);
            assert_eq!(model.k(), 6, "{init_name}+{refine_name}");
            assert_eq!(model.labels().len(), points.len());
            assert!(model.cost().is_finite() && model.cost() >= 0.0);
            assert!(model.distance_computations() > 0);
            assert_eq!(model.init_name(), init_name);
            assert_eq!(model.refiner_name(), refine_name);
            // A refined model never reports a cost above its seed cost
            // (mini-batch at this budget included, on separated data).
            if refine_name != "none" {
                assert!(
                    model.cost() <= model.init_stats().seed_cost * 1.001 + 1e-9,
                    "{init_name}+{refine_name}: {} vs seed {}",
                    model.cost(),
                    model.init_stats().seed_cost
                );
            }
        }
    }
}

#[test]
fn grid_is_thread_count_invariant() {
    let points = mixture(5, 900, 12);
    for (init_name, _) in all_initializers() {
        for refine_name in ["lloyd", "hamerly", "none"] {
            let seq = fit_grid_cell(&points, 5, init_name, refine_name, Parallelism::Sequential);
            let par = fit_grid_cell(&points, 5, init_name, refine_name, Parallelism::Threads(4));
            assert_eq!(seq.labels(), par.labels(), "{init_name}+{refine_name}");
            assert_eq!(seq.centers(), par.centers(), "{init_name}+{refine_name}");
            assert_eq!(
                seq.cost().to_bits(),
                par.cost().to_bits(),
                "{init_name}+{refine_name}"
            );
        }
    }
}

#[test]
fn weighted_grid_through_builder() {
    let points = mixture(4, 600, 13);
    let weights: Vec<f64> = (0..points.len()).map(|i| 0.5 + (i % 5) as f64).collect();
    // The weight-capable grid: {random, kmeans++} × {lloyd, none}.
    for init_name in ["random", "kmeans++"] {
        for refine_name in ["lloyd", "none"] {
            let builder = KMeans::params(4)
                .weights(&weights)
                .seed(23)
                .parallelism(Parallelism::Sequential);
            let builder = match init_name {
                "random" => builder.init(pipeline::Random),
                _ => builder.init(pipeline::KMeansPlusPlus),
            };
            let builder = match refine_name {
                "lloyd" => builder.refine(Lloyd(LloydConfig::default())),
                _ => builder.refine(NoRefine),
            };
            let model = builder.fit(&points).unwrap();
            assert_eq!(model.k(), 4, "{init_name}+{refine_name}");
            assert!(model.cost().is_finite());
            // Weighted cost of the final centers recomputes identically.
            let direct =
                scalable_kmeans::core::cost::weighted_potential(&points, &weights, model.centers());
            assert!(
                (model.cost() - direct).abs() <= 1e-9 * (1.0 + direct),
                "{init_name}+{refine_name}: {} vs {}",
                model.cost(),
                direct
            );
        }
    }
    // Weight-incapable stages reject the same builder configuration.
    let err = KMeans::params(4)
        .weights(&weights)
        .parallelism(Parallelism::Sequential)
        .fit(&points)
        .unwrap_err();
    assert!(matches!(err, KMeansError::InvalidConfig(_)));
}

#[test]
fn seed_only_refiner_reports_seed_cost() {
    let points = mixture(5, 800, 14);
    for (init_name, _) in all_initializers() {
        let model = fit_grid_cell(&points, 5, init_name, "none", Parallelism::Sequential);
        assert_eq!(model.iterations(), 0, "{init_name}");
        assert!(model.converged());
        assert!(
            (model.cost() - model.init_stats().seed_cost).abs() <= 1e-9 * (1.0 + model.cost()),
            "{init_name}: {} vs seed {}",
            model.cost(),
            model.init_stats().seed_cost
        );
    }
}

#[test]
fn hamerly_equals_lloyd_across_all_seeders() {
    let points = mixture(6, 1_000, 15);
    for (init_name, _) in all_initializers() {
        let plain = fit_grid_cell(&points, 6, init_name, "lloyd", Parallelism::Sequential);
        let fast = fit_grid_cell(&points, 6, init_name, "hamerly", Parallelism::Sequential);
        assert_eq!(plain.labels(), fast.labels(), "{init_name}");
        assert!(
            (plain.cost() - fast.cost()).abs() <= 1e-6 * (1.0 + plain.cost()),
            "{init_name}: {} vs {}",
            plain.cost(),
            fast.cost()
        );
        // Pruning is real once bounds amortize over several iterations;
        // from a near-converged seed (1–2 Lloyd steps) the first full
        // pass plus the k² center distances dominate, so only assert the
        // ratio when there was work to prune.
        if plain.iterations() >= 4 {
            assert!(
                fast.distance_computations() < plain.distance_computations(),
                "{init_name}: hamerly {} vs lloyd {} over {} iterations",
                fast.distance_computations(),
                plain.distance_computations(),
                plain.iterations()
            );
        }
    }
}

#[test]
fn init_method_converts_into_boxed_initializer() {
    let points = mixture(3, 300, 16);
    let exec = Executor::new(Parallelism::Sequential);
    let boxed: Box<dyn Initializer> = InitMethod::KMeansPlusPlus.into();
    let via_box = boxed.init(&points, None, 3, 5, &exec).unwrap();
    let via_enum = InitMethod::KMeansPlusPlus
        .run(&points, 3, 5, &exec)
        .unwrap();
    assert_eq!(via_box.centers, via_enum.centers);
}
