//! Distributed acceptance tests: `fit_distributed` over a worker cluster
//! is **bit-identical** to the single-node `fit` and `fit_chunked` on the
//! concatenated worker data — for a grid of worker counts × worker-local
//! block sizes × executor parallelism, over the loopback transport; the
//! TCP transport (real sockets over 127.0.0.1, block-file shards from
//! `shard_block_file`) passes the same assertion; and a worker vanishing
//! mid-round surfaces as a typed error, never a hang.

use scalable_kmeans::cluster::dist::dist_lloyd;
use scalable_kmeans::cluster::{
    spawn_loopback_worker, spawn_tcp_worker, Cluster, FitDistributed, Message, Transport,
};
use scalable_kmeans::core::init::{KMeansParallelConfig, SamplingMode};
use scalable_kmeans::core::lloyd::{lloyd, LloydConfig};
use scalable_kmeans::core::model::{KMeans, KMeansModel};
use scalable_kmeans::core::pipeline::{KMeansParallel, NoRefine, Random};
use scalable_kmeans::core::KMeansError;
use scalable_kmeans::data::synth::GaussMixture;
use scalable_kmeans::data::{
    shard_block_file, write_block_file, BlockFileSource, InMemorySource, PointMatrix,
};
use scalable_kmeans::par::{Executor, Parallelism};

const N: usize = 192;
const K: usize = 6;
const SHARD: usize = 16;

fn gauss() -> PointMatrix {
    GaussMixture::new(K)
        .points(N)
        .center_variance(50.0)
        .generate(11)
        .unwrap()
        .dataset
        .into_parts()
        .1
}

fn slice_rows(points: &PointMatrix, start: usize, rows: usize) -> PointMatrix {
    let dim = points.dim();
    PointMatrix::from_flat(
        points.as_slice()[start * dim..(start + rows) * dim].to_vec(),
        dim,
    )
    .unwrap()
}

/// Spawns `workers` loopback workers over contiguous even slices of
/// `points` and connects them as a cluster.
fn loopback_cluster(
    points: &PointMatrix,
    workers: usize,
    block_rows: usize,
    parallelism: Parallelism,
) -> (
    Cluster,
    Vec<std::thread::JoinHandle<Result<(), scalable_kmeans::cluster::ClusterError>>>,
) {
    let per = points.len() / workers;
    let mut transports: Vec<Box<dyn Transport>> = Vec::new();
    let mut handles = Vec::new();
    for w in 0..workers {
        let rows = if w + 1 == workers {
            points.len() - w * per
        } else {
            per
        };
        let shard = slice_rows(points, w * per, rows);
        let source = InMemorySource::new(shard, block_rows).unwrap();
        let (transport, handle) = spawn_loopback_worker(source, parallelism);
        transports.push(Box::new(transport));
        handles.push(handle);
    }
    (Cluster::new(transports).unwrap(), handles)
}

fn assert_models_bit_identical(mem: &KMeansModel, dist: &KMeansModel, what: &str) {
    assert_eq!(mem.centers(), dist.centers(), "{what}: centers");
    assert_eq!(mem.labels(), dist.labels(), "{what}: labels");
    assert_eq!(mem.cost().to_bits(), dist.cost().to_bits(), "{what}: cost");
    assert_eq!(
        mem.init_stats().seed_cost.to_bits(),
        dist.init_stats().seed_cost.to_bits(),
        "{what}: seed cost"
    );
    assert_eq!(
        mem.init_stats().candidates,
        dist.init_stats().candidates,
        "{what}: candidates"
    );
    assert_eq!(
        mem.init_stats().passes,
        dist.init_stats().passes,
        "{what}: passes"
    );
    assert_eq!(mem.iterations(), dist.iterations(), "{what}: iterations");
    assert_eq!(
        mem.distance_computations(),
        dist.distance_computations(),
        "{what}: distance accounting"
    );
}

/// The acceptance grid: {1, 2, 4} workers × {2, 3}-row worker blocks ×
/// {sequential, 4-thread} executors, k-means|| + Lloyd, all bit-identical
/// to both single-node paths.
#[test]
fn loopback_grid_matches_fit_and_fit_chunked() {
    let points = gauss();
    for parallelism in [Parallelism::Sequential, Parallelism::Threads(4)] {
        let base = KMeans::params(K)
            .seed(42)
            .shard_size(SHARD)
            .parallelism(parallelism);
        let mem = base.clone().fit(&points).unwrap();
        let chunked = base
            .clone()
            .data_source(InMemorySource::new(points.clone(), 37).unwrap())
            .fit_chunked()
            .unwrap();
        assert_models_bit_identical(&mem, &chunked, "chunked baseline");
        for workers in [1usize, 2, 4] {
            for block_rows in [2usize, 3] {
                let (mut cluster, handles) =
                    loopback_cluster(&points, workers, block_rows, parallelism);
                let dist = base.clone().fit_distributed(&mut cluster).unwrap();
                assert!(cluster.data_passes() > 0);
                assert!(cluster.bytes_sent() > 0 && cluster.bytes_received() > 0);
                cluster.shutdown();
                for h in handles {
                    h.join().unwrap().unwrap();
                }
                let what = format!("{workers} workers, blocks of {block_rows}, {parallelism:?}");
                assert_models_bit_identical(&mem, &dist, &what);
                assert_eq!(dist.init_name(), "kmeans-par");
                assert_eq!(dist.refiner_name(), "lloyd");
            }
        }
    }
}

/// The other distributed stages agree too: random seeding, seed-only
/// refinement, and the exact-ℓ sampling mode.
#[test]
fn other_stages_match_single_node() {
    let points = gauss();
    let cases: Vec<(&str, KMeans)> = vec![
        (
            "random+none",
            KMeans::params(K)
                .init(Random)
                .refine(NoRefine)
                .seed(7)
                .shard_size(SHARD),
        ),
        (
            "exact-l+lloyd",
            KMeans::params(K)
                .init(KMeansParallel(
                    KMeansParallelConfig::default().sampling(SamplingMode::ExactL),
                ))
                .seed(9)
                .shard_size(SHARD),
        ),
        (
            "topup+none",
            // ℓ = 0.1k, one round: forces the D² top-up (the O(n) gather
            // path) to fire and still agree bitwise.
            KMeans::params(K)
                .init(KMeansParallel(
                    KMeansParallelConfig::default()
                        .oversampling_factor(0.1)
                        .rounds(1),
                ))
                .refine(NoRefine)
                .seed(3)
                .shard_size(SHARD),
        ),
    ];
    for (what, base) in cases {
        let base = base.parallelism(Parallelism::Sequential);
        let mem = base.clone().fit(&points).unwrap();
        let (mut cluster, handles) = loopback_cluster(&points, 4, 5, Parallelism::Sequential);
        let dist = base.clone().fit_distributed(&mut cluster).unwrap();
        cluster.shutdown();
        for h in handles {
            h.join().unwrap().unwrap();
        }
        assert_models_bit_identical(&mem, &dist, what);
    }
}

/// Real sockets, real shard files: `skm shard`-style block-file shards
/// served by TCP workers over 127.0.0.1 reproduce the in-memory fit bit
/// for bit (one grid point of the loopback matrix).
#[test]
fn tcp_block_file_workers_match_in_memory() {
    let points = gauss();
    let dir = std::env::temp_dir().join("kmeans_dist_parity");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("tcp_input.skmb");
    write_block_file(&input, &points, 32).unwrap();
    let prefix = dir.join("tcp_shard").to_string_lossy().into_owned();
    let manifest = shard_block_file(&input, &prefix, 2, 96).unwrap();
    assert_eq!(manifest.shards.len(), 2);

    let timeout = Some(std::time::Duration::from_secs(30));
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for entry in &manifest.shards {
        // A 2-block budget: the worker really streams its shard.
        let budget = 2 * (32 * points.dim() * 8) as u64;
        let source = BlockFileSource::open(&entry.path, budget).unwrap();
        let (addr, handle) = spawn_tcp_worker(source, Parallelism::Threads(2), timeout).unwrap();
        addrs.push(addr.to_string());
        handles.push(handle);
    }
    let mut cluster = Cluster::connect(&addrs, timeout).unwrap();

    let base = KMeans::params(K).seed(5).shard_size(SHARD);
    let mem = base.clone().fit(&points).unwrap();
    let dist = base.fit_distributed(&mut cluster).unwrap();
    // Workers really streamed from disk within budget.
    let stats = cluster.fetch_stats().unwrap();
    cluster.shutdown();
    for h in handles {
        h.join().unwrap().unwrap();
    }
    assert_models_bit_identical(&mem, &dist, "tcp block-file workers");
    for (i, s) in stats.iter().enumerate() {
        assert!(s.loads > 0, "worker {i} never touched its block file");
        assert!(
            s.peak_bytes <= s.budget_bytes,
            "worker {i} exceeded its residency budget"
        );
    }
    let _ = std::fs::remove_file(input);
}

/// Distributed Lloyd reproduces the empty-cluster repair (farthest-point
/// reseeding, fetched back from the owning worker) bit for bit.
#[test]
fn dist_lloyd_reseeds_empty_clusters_like_single_node() {
    let points = gauss();
    // Two centers glued far away force empty clusters on pass one.
    let mut init = PointMatrix::new(points.dim());
    init.push(points.row(0)).unwrap();
    init.push(&vec![-9e5; points.dim()]).unwrap();
    init.push(&vec![-9e5; points.dim()]).unwrap();
    let exec = Executor::new(Parallelism::Threads(3)).with_shard_size(SHARD);
    let reference = lloyd(&points, &init, &LloydConfig::default(), &exec).unwrap();
    assert!(reference.history[0].reseeded >= 1, "setup must reseed");

    let (mut cluster, handles) = loopback_cluster(&points, 4, 7, Parallelism::Threads(3));
    cluster.plan(SHARD).unwrap();
    let got = dist_lloyd(&mut cluster, &init, &LloydConfig::default()).unwrap();
    cluster.shutdown();
    for h in handles {
        h.join().unwrap().unwrap();
    }
    assert_eq!(got.centers, reference.centers);
    assert_eq!(got.labels, reference.labels);
    assert_eq!(got.cost.to_bits(), reference.cost.to_bits());
    assert_eq!(got.iterations, reference.iterations);
    assert_eq!(got.assign_passes, reference.assign_passes);
    assert_eq!(got.history.len(), reference.history.len());
    for (a, b) in got.history.iter().zip(&reference.history) {
        assert_eq!(a.reassigned, b.reassigned);
        assert_eq!(a.reseeded, b.reseeded);
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
    }
}

/// A worker dying mid-round is a typed error, not a hang: the fake worker
/// answers the handshake and then drops its end of the connection.
#[test]
fn worker_disconnect_mid_round_is_a_typed_error() {
    let (coordinator_side, mut worker_side) = scalable_kmeans::cluster::loopback_pair();
    let fake = std::thread::spawn(move || {
        worker_side
            .send(&Message::Hello { rows: 192, dim: 15 })
            .unwrap();
        // Answer the plan, then vanish before the first data pass.
        match worker_side.recv().unwrap() {
            Message::Plan { .. } => worker_side.send(&Message::PlanOk).unwrap(),
            other => panic!("expected Plan, got {other:?}"),
        }
        drop(worker_side);
    });
    let mut cluster = Cluster::new(vec![Box::new(coordinator_side)]).unwrap();
    let err = KMeans::params(K)
        .seed(1)
        .shard_size(SHARD)
        .fit_distributed(&mut cluster)
        .unwrap_err();
    fake.join().unwrap();
    assert!(
        matches!(err, KMeansError::Data(_)),
        "expected a transport error, got {err:?}"
    );
    assert!(err.to_string().contains("disconnected"), "{err}");
}

/// Misaligned worker boundaries are rejected with the remedy in the
/// message, and unsupported stages reject with the shared typed error.
#[test]
fn misalignment_and_unsupported_stages_fail_loudly() {
    let points = gauss();
    // 100/92 split: worker 1 starts at row 100, not on the 16-row grid.
    let mut transports: Vec<Box<dyn Transport>> = Vec::new();
    let mut handles = Vec::new();
    for (start, rows) in [(0usize, 100usize), (100, 92)] {
        let source = InMemorySource::new(slice_rows(&points, start, rows), 10).unwrap();
        let (t, h) = spawn_loopback_worker(source, Parallelism::Sequential);
        transports.push(Box::new(t));
        handles.push(h);
    }
    let mut cluster = Cluster::new(transports).unwrap();
    let err = KMeans::params(K)
        .seed(1)
        .shard_size(SHARD)
        .fit_distributed(&mut cluster)
        .unwrap_err();
    assert!(err.to_string().contains("not a multiple"), "{err}");
    // The session is still healthy: an aligned plan after the rejection
    // works (96/96 would be aligned; here just shut down cleanly).
    cluster.shutdown();
    for h in handles {
        h.join().unwrap().unwrap();
    }

    // Stages without a distributed realization reject.
    let (mut cluster, handles) = loopback_cluster(&points, 2, 8, Parallelism::Sequential);
    let err = KMeans::params(K)
        .init(scalable_kmeans::core::pipeline::AfkMc2::default())
        .fit_distributed(&mut cluster)
        .unwrap_err();
    assert!(
        err.to_string().contains("does not support distributed"),
        "{err}"
    );
    let err = KMeans::params(K)
        .refine(scalable_kmeans::core::pipeline::HamerlyLloyd::default())
        .fit_distributed(&mut cluster)
        .unwrap_err();
    assert!(
        err.to_string().contains("does not support distributed"),
        "{err}"
    );
    let err = KMeans::params(K)
        .weights(&vec![1.0; N])
        .fit_distributed(&mut cluster)
        .unwrap_err();
    assert!(err.to_string().contains("weighted"), "{err}");
    cluster.shutdown();
    for h in handles {
        h.join().unwrap().unwrap();
    }
}

/// A NaN coordinate on one worker surfaces as the *same* typed error a
/// single-node fit reports, with the global point index.
#[test]
fn non_finite_data_reports_global_index() {
    let mut points = gauss();
    points.row_mut(100)[1] = f64::NAN;
    let mem_err = KMeans::params(K)
        .seed(1)
        .shard_size(SHARD)
        .fit(&points)
        .unwrap_err();
    assert_eq!(mem_err, KMeansError::NonFiniteData { point: 100, dim: 1 });

    let (mut cluster, handles) = loopback_cluster(&points, 4, 6, Parallelism::Sequential);
    let dist_err = KMeans::params(K)
        .seed(1)
        .shard_size(SHARD)
        .fit_distributed(&mut cluster)
        .unwrap_err();
    cluster.shutdown();
    for h in handles {
        h.join().unwrap().unwrap();
    }
    assert_eq!(dist_err, mem_err);
}
