//! Flight-recorder acceptance tests: instrumentation is **observation
//! only**. A fit run with an enabled [`Recorder`] produces bit-identical
//! centers, labels, and cost to the same fit without one — across the
//! in-memory, chunked, and distributed backends — while the recorded
//! timeline actually covers the work (stage spans account for the wall
//! clock, round spans nest inside stages, distributed rounds carry
//! wire-byte deltas).

use scalable_kmeans::cluster::{spawn_loopback_worker, Cluster, FitDistributed, Transport};
use scalable_kmeans::data::synth::GaussMixture;
use scalable_kmeans::data::{InMemorySource, PointMatrix};
use scalable_kmeans::obs::{Recorder, SpanEvent};
use scalable_kmeans::par::Parallelism;
use scalable_kmeans::KMeans;

const N: usize = 192;
const K: usize = 5;

fn gauss() -> PointMatrix {
    GaussMixture::new(K)
        .points(N)
        .center_variance(50.0)
        .generate(23)
        .unwrap()
        .dataset
        .into_parts()
        .1
}

fn builder() -> KMeans {
    KMeans::params(K)
        .seed(13)
        .parallelism(Parallelism::Sequential)
        .shard_size(32)
}

fn slice_rows(points: &PointMatrix, start: usize, rows: usize) -> PointMatrix {
    let dim = points.dim();
    PointMatrix::from_flat(
        points.as_slice()[start * dim..(start + rows) * dim].to_vec(),
        dim,
    )
    .unwrap()
}

fn assert_identical(
    plain: &scalable_kmeans::KMeansModel,
    traced: &scalable_kmeans::KMeansModel,
    what: &str,
) {
    assert_eq!(plain.centers(), traced.centers(), "{what}: centers");
    assert_eq!(plain.labels(), traced.labels(), "{what}: labels");
    assert_eq!(
        plain.cost().to_bits(),
        traced.cost().to_bits(),
        "{what}: cost"
    );
    assert_eq!(
        plain.distance_computations(),
        traced.distance_computations(),
        "{what}: distance computations"
    );
}

/// Stage spans (`fit` category) must account for nearly the whole
/// timeline, and round spans must nest inside them — otherwise the
/// trace misrepresents where the time went.
fn assert_timeline_covers_the_fit(events: &[SpanEvent], what: &str) {
    assert!(!events.is_empty(), "{what}: empty timeline");
    let first = events.iter().map(|e| e.start_ns).min().unwrap();
    let last = events.iter().map(|e| e.start_ns + e.dur_ns).max().unwrap();
    let wall = last - first;
    let stage_sum: u64 = events
        .iter()
        .filter(|e| e.cat == "fit")
        .map(|e| e.dur_ns)
        .sum();
    let round_sum: u64 = events
        .iter()
        .filter(|e| e.cat == "round")
        .map(|e| e.dur_ns)
        .sum();
    assert!(
        events.iter().filter(|e| e.cat == "fit").count() == 2,
        "{what}: expected exactly stage:init + stage:refine"
    );
    assert!(
        round_sum <= stage_sum,
        "{what}: round spans ({round_sum} ns) exceed the stages that \
         contain them ({stage_sum} ns)"
    );
    // The only un-spanned wall time is the recorder bookkeeping between
    // the two stage spans: a 10%-of-wall (floored at 1 ms) allowance.
    let slack = (wall / 10).max(1_000_000);
    assert!(
        stage_sum + slack >= wall,
        "{what}: stages cover {stage_sum} of {wall} ns (slack {slack})"
    );
    for e in events.iter().filter(|e| e.cat == "round") {
        assert!(
            e.start_ns >= first && e.start_ns + e.dur_ns <= last,
            "{what}: round span '{}' outside the timeline",
            e.name
        );
    }
}

#[test]
fn traced_in_memory_fit_is_bit_identical_and_fully_spanned() {
    let points = gauss();
    let plain = builder().fit(&points).unwrap();
    let recorder = Recorder::monotonic();
    let traced = builder().recorder(recorder.clone()).fit(&points).unwrap();
    assert_identical(&plain, &traced, "in-memory");

    let events = recorder.events();
    assert_timeline_covers_the_fit(&events, "in-memory");
    for name in [
        "tracker_init+sample",
        "tracker_update+sample",
        "tracker_update+weights",
        "assign",
        "potential",
    ] {
        assert!(
            events.iter().any(|e| e.cat == "round" && e.name == name),
            "in-memory: no '{name}' round span"
        );
    }
    // Every round span names its backend.
    assert!(events.iter().filter(|e| e.cat == "round").all(|e| e
        .args
        .iter()
        .any(|(n, v)| n == "backend"
            && matches!(v, scalable_kmeans::obs::ArgValue::Str(s) if s == "in-memory"))));
}

#[test]
fn traced_chunked_fit_is_bit_identical() {
    let points = gauss();
    let plain = builder().fit(&points).unwrap();
    let recorder = Recorder::monotonic();
    let source = InMemorySource::new(points, 48).unwrap();
    let traced = builder()
        .recorder(recorder.clone())
        .data_source(source)
        .fit_chunked()
        .unwrap();
    assert_identical(&plain, &traced, "chunked");
    let events = recorder.events();
    assert_timeline_covers_the_fit(&events, "chunked");
    assert!(events.iter().any(|e| e.cat == "round"
        && e.name == "assign"
        && e.args.iter().any(|(n, v)| n == "backend"
            && matches!(v, scalable_kmeans::obs::ArgValue::Str(s) if s == "chunked"))));
}

#[test]
fn traced_distributed_fit_is_bit_identical_and_counts_wire_bytes() {
    let points = gauss();
    let plain = builder().fit(&points).unwrap();

    let mut transports: Vec<Box<dyn Transport>> = Vec::new();
    let mut handles = Vec::new();
    for w in 0..3 {
        let shard = slice_rows(&points, w * 64, 64);
        let source = InMemorySource::new(shard, 32).unwrap();
        let (transport, handle) = spawn_loopback_worker(source, Parallelism::Sequential);
        transports.push(Box::new(transport));
        handles.push(handle);
    }
    let mut cluster = Cluster::new(transports).unwrap();
    let recorder = Recorder::monotonic();
    cluster.set_recorder(recorder.clone());
    let traced = builder()
        .recorder(recorder.clone())
        .fit_distributed(&mut cluster)
        .unwrap();
    let wire_total = cluster.bytes_sent() + cluster.bytes_received();
    cluster.shutdown();
    for h in handles {
        h.join().unwrap().unwrap();
    }
    assert_identical(&plain, &traced, "distributed");

    let events = recorder.events();
    assert_timeline_covers_the_fit(&events, "distributed");
    // Round spans carry monotone wire-byte deltas that never overshoot
    // the cluster's own totals.
    let wire_sum: u64 = events
        .iter()
        .filter(|e| e.cat == "round")
        .filter_map(|e| {
            e.args.iter().find_map(|(n, v)| match v {
                scalable_kmeans::obs::ArgValue::U64(b) if n == "wire_bytes" => Some(*b),
                _ => None,
            })
        })
        .sum();
    assert!(wire_sum > 0, "no wire bytes attributed to any round");
    assert!(
        wire_sum <= wire_total,
        "round spans claim {wire_sum} wire bytes but the cluster only moved {wire_total}"
    );
    // The fused compound rounds are themselves spanned, and each carries
    // a non-zero share of the wire (a compound request and its compound
    // reply both cross the socket inside the span).
    for name in ["tracker_init+sample", "tracker_update+sample", "tracker_update+weights"] {
        let fused_bytes: u64 = events
            .iter()
            .filter(|e| e.cat == "round" && e.name == name)
            .filter_map(|e| {
                e.args.iter().find_map(|(n, v)| match v {
                    scalable_kmeans::obs::ArgValue::U64(b) if n == "wire_bytes" => Some(*b),
                    _ => None,
                })
            })
            .sum();
        assert!(
            fused_bytes > 0,
            "fused round '{name}' attributed no wire bytes"
        );
    }
    // The coordinator tier interleaves on the same timeline.
    assert!(events
        .iter()
        .any(|e| e.cat == "cluster" && e.name.starts_with("broadcast:")));
}

#[test]
fn disabled_recorder_is_the_default_and_records_nothing() {
    let points = gauss();
    let recorder = Recorder::disabled();
    let model = builder().recorder(recorder.clone()).fit(&points).unwrap();
    assert_identical(&builder().fit(&points).unwrap(), &model, "disabled");
    assert!(recorder.events().is_empty());
    assert!(!builder().configured_recorder().is_enabled());
}
