//! Bit-parity of the batch assignment kernel (`kmeans_core::kernel`)
//! against the scalar per-point path, across random shapes, duplicate
//! centers, non-finite inputs, and ulp-adversarial near-ties.
//!
//! These tests are meaningful in **both** build profiles: release-mode
//! FP contraction or vectorization differences are exactly what they
//! would catch, so CI runs them in debug *and* release explicitly.
#![recursion_limit = "256"]

use kmeans_core::assign::assign_and_sum;
use kmeans_core::chunked::assign_and_sum_chunked;
use kmeans_core::distance::{nearest, sq_dist_bounded};
use kmeans_core::kernel::{AssignKernel, KernelStats};
use kmeans_data::{InMemorySource, PointMatrix};
use kmeans_par::Executor;
use proptest::prelude::*;

fn scalar_assign(points: &PointMatrix, centers: &PointMatrix) -> (Vec<u32>, Vec<f64>) {
    points
        .rows()
        .map(|row| {
            let (c, d2) = nearest(row, centers);
            (c as u32, d2)
        })
        .unzip()
}

/// The scalar suffix scan of the cost trackers, verbatim.
fn scalar_update(
    points: &PointMatrix,
    centers: &PointMatrix,
    from: usize,
    labels: &mut [u32],
    d2: &mut [f64],
) {
    for (i, row) in points.rows().enumerate() {
        let mut best = d2[i];
        let mut best_id = u32::MAX;
        for c in from..centers.len() {
            let dist = sq_dist_bounded(row, centers.row(c), best);
            if dist < best {
                best = dist;
                best_id = c as u32;
            }
        }
        if best_id != u32::MAX {
            d2[i] = best;
            labels[i] = best_id;
        }
    }
}

fn assert_assign_matches(points: &PointMatrix, centers: &PointMatrix) -> KernelStats {
    let (ref_labels, ref_d2) = scalar_assign(points, centers);
    let kernel = AssignKernel::new(centers);
    let n = points.len();
    let mut labels = vec![u32::MAX; n];
    let mut d2 = vec![-1.0f64; n];
    let stats = kernel.assign(points, 0..n, &mut labels, &mut d2);
    assert_eq!(labels, ref_labels, "labels diverged");
    let bits: Vec<u64> = d2.iter().map(|v| v.to_bits()).collect();
    let ref_bits: Vec<u64> = ref_d2.iter().map(|v| v.to_bits()).collect();
    assert_eq!(bits, ref_bits, "d2 bits diverged");
    assert_eq!(
        stats.distance_computations + stats.pruned_by_norm_bound,
        (n * centers.len()) as u64,
        "every pair must be computed or pruned exactly once"
    );
    stats
}

/// A dataset plus center set of arbitrary small shape; centers include
/// deliberate duplicates and rows copied from the data (exact-tie bait).
fn workloads() -> impl Strategy<Value = (PointMatrix, PointMatrix)> {
    (1usize..24, 1usize..10, 1usize..24, 0u64..1 << 20).prop_map(|(n, d, k, salt)| {
        let mut rng = kmeans_util::Rng::new(salt);
        let mut points = PointMatrix::new(d);
        for _ in 0..n {
            let row: Vec<f64> = (0..d).map(|_| (rng.normal() * 8.0).round() / 4.0).collect();
            points.push(&row).unwrap();
        }
        let mut centers = PointMatrix::new(d);
        for i in 0..k {
            // A third of the centers are duplicates of data rows or of
            // earlier centers — exact ties with low/high index variants.
            match i % 3 {
                0 if i > 0 => {
                    let src = centers.row(rng.range_usize(i)).to_vec();
                    centers.push(&src).unwrap();
                }
                1 => {
                    let src = points.row(rng.range_usize(n)).to_vec();
                    centers.push(&src).unwrap();
                }
                _ => {
                    let row: Vec<f64> =
                        (0..d).map(|_| (rng.normal() * 8.0).round() / 4.0).collect();
                    centers.push(&row).unwrap();
                }
            }
        }
        (points, centers)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn assign_is_bit_identical_for_random_shapes((points, centers) in workloads()) {
        assert_assign_matches(&points, &centers);
    }

    #[test]
    fn update_is_bit_identical_for_random_suffixes(
        (points, centers) in workloads(),
        split in 0usize..64,
    ) {
        let from = split % (centers.len() + 1);
        // Carried state from a full assignment over the prefix (or a
        // fresh state when from == 0).
        let n = points.len();
        let mut labels = vec![0u32; n];
        let mut d2 = vec![f64::INFINITY; n];
        if from > 0 {
            let prefix = PointMatrix::from_flat(
                centers.as_slice()[..from * centers.dim()].to_vec(),
                centers.dim(),
            )
            .unwrap();
            let (l, dd) = scalar_assign(&points, &prefix);
            labels = l;
            d2 = dd;
        }
        let (mut ref_labels, mut ref_d2) = (labels.clone(), d2.clone());
        scalar_update(&points, &centers, from, &mut ref_labels, &mut ref_d2);
        let kernel = AssignKernel::suffix(&centers, from);
        kernel.update(&points, 0..n, &mut labels, &mut d2);
        prop_assert_eq!(labels, ref_labels);
        let bits: Vec<u64> = d2.iter().map(|v| v.to_bits()).collect();
        let ref_bits: Vec<u64> = ref_d2.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(bits, ref_bits);
    }

    #[test]
    fn non_finite_coordinates_keep_parity(
        (mut points, mut centers) in workloads(),
        poison in 0u64..1 << 16,
    ) {
        // Sprinkle NaN/±∞ into both sides, deterministically per case.
        let specials = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
        let pd = points.dim();
        let slot = (poison as usize) % (points.len() * pd);
        points.row_mut(slot / pd)[slot % pd] = specials[(poison as usize) % 3];
        let cd = centers.dim();
        let slot = (poison as usize / 3) % (centers.len() * cd);
        centers.row_mut(slot / cd)[slot % cd] = specials[(poison as usize / 7) % 3];
        assert_assign_matches(&points, &centers);
    }
}

/// Adversarial pruning safety: centers placed within a few ulps of the
/// best distance, including exact duplicates at distance 0, in the 1-D
/// and 2-D geometries where the coordinate/norm bounds are *tight* (the
/// bound equals the distance up to rounding, so an unsound margin would
/// flip winners here first).
#[test]
fn pruning_never_skips_ulp_near_winners() {
    let mut rng = kmeans_util::Rng::new(42);
    for d in [1usize, 2] {
        for case in 0..200u64 {
            let a = 1.0 + (case as f64) * 0.125;
            let r = 0.5 + (case as f64 % 7.0) * 0.25;
            let mut centers = PointMatrix::new(d);
            // A ladder of centers at distance r from the query, each a
            // few ulps apart, on both sides, in scrambled index order —
            // plus exact duplicates of the query itself for distance-0
            // ties.
            let mut values = Vec::new();
            for ulps in 0..6 {
                let mut lo = a - r;
                let mut hi = a + r;
                for _ in 0..ulps {
                    lo = lo.next_up();
                    hi = hi.next_down();
                }
                values.push(lo);
                values.push(hi);
            }
            if case % 3 == 0 {
                values.push(a); // exact duplicate (distance 0)
                values.push(a);
            }
            // Scramble so low/high indices interleave across near-ties.
            for i in (1..values.len()).rev() {
                values.swap(i, rng.range_usize(i + 1));
            }
            for &v in &values {
                let mut row = vec![v; d];
                if d > 1 {
                    row[1] = a; // distance concentrated in coordinate 0
                }
                centers.push(&row).unwrap();
            }
            let query = PointMatrix::from_flat(vec![a; d], d).unwrap();
            assert_assign_matches(&query, &centers);
        }
    }
}

/// The kernel's work counters are identical however the rows are grouped
/// — and identical between the in-memory and chunked assignment passes,
/// for any block size and thread count.
#[test]
fn stats_match_across_in_memory_and_chunked_paths() {
    let mut rng = kmeans_util::Rng::new(7);
    let mut points = PointMatrix::new(5);
    for _ in 0..300 {
        let row: Vec<f64> = (0..5).map(|_| rng.normal() * 20.0).collect();
        points.push(&row).unwrap();
    }
    let mut centers = PointMatrix::new(5);
    for _ in 0..24 {
        let row: Vec<f64> = (0..5).map(|_| rng.normal() * 20.0).collect();
        centers.push(&row).unwrap();
    }
    let exec = Executor::sequential().with_shard_size(32);
    let (ref_labels, ref_sums) = assign_and_sum(&points, &centers, &exec);
    assert!(
        ref_sums.stats.pruned_by_norm_bound > 0,
        "workload must exercise pruning: {:?}",
        ref_sums.stats
    );
    for block_rows in [1usize, 7, 64, 300] {
        for threads in [1usize, 3] {
            let exec = if threads == 1 {
                Executor::sequential().with_shard_size(32)
            } else {
                Executor::new(kmeans_par::Parallelism::Threads(threads)).with_shard_size(32)
            };
            let source = InMemorySource::new(points.clone(), block_rows).unwrap();
            let (labels, sums) = assign_and_sum_chunked(&source, &centers, &exec).unwrap();
            assert_eq!(
                labels, ref_labels,
                "block_rows {block_rows} threads {threads}"
            );
            assert_eq!(
                sums.stats, ref_sums.stats,
                "kernel stats diverged: block_rows {block_rows} threads {threads}"
            );
            assert_eq!(sums.cost.to_bits(), ref_sums.cost.to_bits());
        }
    }
}

/// d == 1 exercises the degenerate secondary feature (inert), and the
/// unroll-tail paths of the canonical distance.
#[test]
fn tiny_dimensions_and_counts() {
    for d in 1..5usize {
        for k in 1..12usize {
            let mut rng = kmeans_util::Rng::new((d * 31 + k) as u64);
            let mut points = PointMatrix::new(d);
            for _ in 0..17 {
                let row: Vec<f64> = (0..d).map(|_| rng.normal()).collect();
                points.push(&row).unwrap();
            }
            let mut centers = PointMatrix::new(d);
            for _ in 0..k {
                let row: Vec<f64> = (0..d).map(|_| rng.normal()).collect();
                centers.push(&row).unwrap();
            }
            assert_assign_matches(&points, &centers);
        }
    }
}
