//! k-means# (Ailon, Jaiswal & Monteleoni, 2009): the over-seeding
//! subroutine inside the Partition baseline.
//!
//! The paper describes it as "a variant of k-means++ that selects 3 log k
//! points in each iteration (traditional k-means++ selects only a single
//! point)". Starting from one uniform center it runs `k` rounds, each
//! drawing `⌈3·ln k⌉` points i.i.d. from the current D² distribution, for
//! `O(k log k)` centers total and a constant-factor bicriteria guarantee.

use kmeans_core::distance::sq_dist_bounded;
use kmeans_core::KMeansError;
use kmeans_data::PointMatrix;
use kmeans_util::sampling::weighted_pick;
use kmeans_util::Rng;

/// Number of D² draws per round for a given `k`: `⌈3·ln k⌉`, at least 1.
pub fn draws_per_round(k: usize) -> usize {
    ((3.0 * (k as f64).ln()).ceil() as usize).max(1)
}

/// Runs k-means# on `points`, returning `O(k log k)` centers (duplicates
/// collapsed — draws are i.i.d. so the same index can repeat within a
/// round; repeats add nothing to a center *set*).
///
/// Sequential by design: Partition runs one instance per group, and the
/// groups are what parallelize.
pub fn kmeans_sharp(
    points: &PointMatrix,
    k: usize,
    rng: &mut Rng,
) -> Result<PointMatrix, KMeansError> {
    if points.is_empty() {
        return Err(KMeansError::EmptyInput);
    }
    if k == 0 {
        return Err(KMeansError::InvalidK { k, n: points.len() });
    }
    let n = points.len();
    let per_round = draws_per_round(k);

    let first = rng.range_usize(n);
    let mut chosen: Vec<usize> = vec![first];
    let mut centers = points.select(&chosen);
    let mut d2: Vec<f64> = points
        .rows()
        .map(|row| kmeans_core::distance::sq_dist(row, centers.row(0)))
        .collect();
    let mut total: f64 = d2.iter().sum();

    for _round in 0..k {
        if total <= 0.0 {
            break; // all points coincide with a chosen center
        }
        // Draw i.i.d. from the round-frozen distribution (the algorithm
        // updates D² only between rounds).
        let mut round_new: Vec<usize> = Vec::with_capacity(per_round);
        for _ in 0..per_round {
            if let Some(idx) = weighted_pick(&d2, total, rng) {
                round_new.push(idx);
            }
        }
        round_new.sort_unstable();
        round_new.dedup();
        for &idx in &round_new {
            if d2[idx] == 0.0 {
                continue; // duplicate of an existing center value
            }
            centers.push(points.row(idx)).expect("dims match");
            chosen.push(idx);
            let new_center = points.row(idx).to_vec();
            for (i, row) in points.rows().enumerate() {
                let d = sq_dist_bounded(row, &new_center, d2[i]);
                if d < d2[i] {
                    total -= d2[i] - d;
                    d2[i] = d;
                }
            }
        }
        // Guard against negative drift from the incremental total.
        if total < 0.0 {
            total = d2.iter().sum();
        }
    }
    Ok(centers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmeans_core::cost::potential;
    use kmeans_par::Executor;

    fn blobs(n_per: usize, centers: &[f64]) -> PointMatrix {
        let mut m = PointMatrix::new(1);
        for &c in centers {
            for i in 0..n_per {
                m.push(&[c + i as f64 * 1e-3]).unwrap();
            }
        }
        m
    }

    #[test]
    fn draws_per_round_formula() {
        assert_eq!(draws_per_round(1), 1); // ln 1 = 0 → clamp
        assert_eq!(draws_per_round(2), 3); // ceil(3·0.693) = 3
        assert_eq!(draws_per_round(500), 19); // ceil(3·6.215)
        assert_eq!(draws_per_round(1000), 21); // ceil(3·6.908)
    }

    #[test]
    fn produces_order_k_log_k_centers() {
        let points = blobs(500, &[0.0, 100.0, 200.0, 300.0]);
        let k = 10;
        let centers = kmeans_sharp(&points, k, &mut Rng::new(1)).unwrap();
        let expected = 1 + k * draws_per_round(k); // upper bound (pre-dedup)
        assert!(centers.len() > k, "too few: {}", centers.len());
        assert!(
            centers.len() <= expected,
            "too many: {} > {expected}",
            centers.len()
        );
    }

    #[test]
    fn covers_blobs_with_low_potential() {
        let points = blobs(100, &[0.0, 1e4, 2e4, 3e4]);
        let exec = Executor::sequential();
        let centers = kmeans_sharp(&points, 4, &mut Rng::new(3)).unwrap();
        // With ~4·3·ln4 ≈ 17 centers over 4 blobs, coverage is essentially
        // certain; the residual is within-blob spread only.
        let phi = potential(&points, &centers, &exec);
        assert!(phi < 50.0, "potential {phi}");
    }

    #[test]
    fn stops_early_when_everything_is_covered() {
        let points = PointMatrix::from_flat(vec![1.0, 1.0, 2.0, 2.0], 1).unwrap();
        let centers = kmeans_sharp(&points, 100, &mut Rng::new(2)).unwrap();
        // Only 2 distinct values exist.
        assert!(centers.len() <= 2, "centers {}", centers.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let points = blobs(50, &[0.0, 10.0]);
        let a = kmeans_sharp(&points, 5, &mut Rng::new(7)).unwrap();
        let b = kmeans_sharp(&points, 5, &mut Rng::new(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(kmeans_sharp(&PointMatrix::new(1), 2, &mut Rng::new(0)).is_err());
        let points = blobs(5, &[0.0]);
        assert!(kmeans_sharp(&points, 0, &mut Rng::new(0)).is_err());
    }
}
