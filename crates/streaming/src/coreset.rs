//! A merge-reduce coreset tree in the spirit of **StreamKM++**
//! (Ackermann, Lammersen, Märtens, Raupach, Sohler & Swierkot, ALENEX
//! 2010 — the paper's reference \[1]).
//!
//! This is an *extension* beyond the paper's experiments: a second
//! single-pass streaming comparator. Points arrive one at a time and fill a
//! leaf bucket of size `2·coreset_size`; a full bucket is *reduced* to
//! `coreset_size` weighted representatives (D²-sampled, weights = local
//! assignment mass) and pushed up the tree, merging with any same-level
//! bucket it meets — the classic merge-reduce scheme, so memory is
//! `O(coreset_size · log(n / coreset_size))` and each point is touched
//! `O(log n)` times in reduction work.
//!
//! At the end, [`CoresetTree::cluster`] runs weighted k-means++ over the
//! surviving `O(coreset_size · log n)` representatives.

use kmeans_core::distance::nearest;
use kmeans_core::init::weighted_kmeanspp;
use kmeans_core::KMeansError;
use kmeans_data::PointMatrix;
use kmeans_util::Rng;

/// A weighted bucket at one level of the merge-reduce tree.
#[derive(Clone, Debug)]
struct Bucket {
    level: usize,
    points: PointMatrix,
    weights: Vec<f64>,
}

/// Single-pass merge-reduce coreset builder.
///
/// ```
/// use kmeans_streaming::CoresetTree;
/// let mut tree = CoresetTree::new(2, 32, 7).unwrap();
/// for i in 0..1000 {
///     tree.insert(&[i as f64 % 10.0, 0.0]).unwrap();
/// }
/// let centers = tree.cluster(3).unwrap();
/// assert_eq!(centers.len(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct CoresetTree {
    dim: usize,
    coreset_size: usize,
    rng: Rng,
    /// Open leaf buffer (unweighted raw points).
    buffer: PointMatrix,
    /// Closed buckets, at most one per level.
    buckets: Vec<Bucket>,
    seen: u64,
}

impl CoresetTree {
    /// Creates a tree for `dim`-dimensional points with the given
    /// per-bucket coreset size.
    ///
    /// # Errors
    ///
    /// Fails if `dim == 0` or `coreset_size == 0`.
    pub fn new(dim: usize, coreset_size: usize, seed: u64) -> Result<Self, KMeansError> {
        if dim == 0 {
            return Err(KMeansError::InvalidConfig("dim must be positive".into()));
        }
        if coreset_size == 0 {
            return Err(KMeansError::InvalidConfig(
                "coreset_size must be positive".into(),
            ));
        }
        Ok(CoresetTree {
            dim,
            coreset_size,
            rng: Rng::derive(seed, &[70]),
            buffer: PointMatrix::new(dim),
            buckets: Vec::new(),
            seen: 0,
        })
    }

    /// Number of points consumed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Current number of weighted representatives held across all levels
    /// (excluding the open buffer).
    pub fn representatives(&self) -> usize {
        self.buckets.iter().map(|b| b.points.len()).sum()
    }

    /// Raw points waiting in the open leaf buffer (not yet reduced).
    /// `representatives() + buffered()` is the size of the set
    /// [`CoresetTree::cluster`] reclusters, without materializing it.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Feeds one point into the stream.
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch.
    pub fn insert(&mut self, point: &[f64]) -> Result<(), KMeansError> {
        if point.len() != self.dim {
            return Err(KMeansError::DimensionMismatch {
                expected: self.dim,
                got: point.len(),
            });
        }
        self.buffer.push(point).expect("dim checked above");
        self.seen += 1;
        if self.buffer.len() >= 2 * self.coreset_size {
            let full = std::mem::replace(&mut self.buffer, PointMatrix::new(self.dim));
            let weights = vec![1.0; full.len()];
            let reduced = self.reduce(&full, &weights);
            self.push_bucket(Bucket {
                level: 0,
                points: reduced.0,
                weights: reduced.1,
            });
        }
        Ok(())
    }

    /// Reduces a weighted set to `coreset_size` representatives: D²-sample
    /// representatives with weighted k-means++, then move each input
    /// point's weight onto its nearest representative.
    fn reduce(&mut self, points: &PointMatrix, weights: &[f64]) -> (PointMatrix, Vec<f64>) {
        if points.len() <= self.coreset_size {
            return (points.clone(), weights.to_vec());
        }
        let reps = weighted_kmeanspp(points, weights, self.coreset_size, &mut self.rng)
            .expect("coreset_size <= points.len() here");
        let mut rep_weights = vec![0.0f64; reps.len()];
        for (i, row) in points.rows().enumerate() {
            rep_weights[nearest(row, &reps).0] += weights[i];
        }
        (reps, rep_weights)
    }

    /// Inserts a closed bucket, merging equal levels upward.
    fn push_bucket(&mut self, mut bucket: Bucket) {
        loop {
            match self.buckets.iter().position(|b| b.level == bucket.level) {
                None => {
                    self.buckets.push(bucket);
                    self.buckets.sort_by_key(|b| b.level);
                    return;
                }
                Some(pos) => {
                    let other = self.buckets.swap_remove(pos);
                    let mut merged_points = other.points;
                    merged_points
                        .extend_from(&bucket.points)
                        .expect("dims match");
                    let mut merged_weights = other.weights;
                    merged_weights.extend_from_slice(&bucket.weights);
                    let (points, weights) = self.reduce(&merged_points, &merged_weights);
                    bucket = Bucket {
                        level: bucket.level + 1,
                        points,
                        weights,
                    };
                }
            }
        }
    }

    /// The current weighted coreset (all levels plus the open buffer).
    pub fn coreset(&self) -> (PointMatrix, Vec<f64>) {
        let mut points = PointMatrix::new(self.dim);
        let mut weights = Vec::new();
        for b in &self.buckets {
            points.extend_from(&b.points).expect("dims match");
            weights.extend_from_slice(&b.weights);
        }
        points.extend_from(&self.buffer).expect("dims match");
        weights.extend(std::iter::repeat_n(1.0, self.buffer.len()));
        (points, weights)
    }

    /// Clusters the coreset into `k` centers with weighted k-means++.
    ///
    /// # Errors
    ///
    /// Fails if fewer than `k` points have been streamed.
    pub fn cluster(&self, k: usize) -> Result<PointMatrix, KMeansError> {
        let (points, weights) = self.coreset();
        if points.is_empty() {
            return Err(KMeansError::EmptyInput);
        }
        if k == 0 || (k as u64) > self.seen {
            return Err(KMeansError::InvalidK {
                k,
                n: self.seen as usize,
            });
        }
        let mut rng = self.rng.clone();
        if points.len() < k {
            // Degenerate duplicate-heavy stream: replicate representatives.
            let mut indices: Vec<usize> = (0..points.len()).collect();
            while indices.len() < k {
                indices.push(rng.range_usize(points.len()));
            }
            return Ok(points.select(&indices));
        }
        weighted_kmeanspp(&points, &weights, k, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmeans_core::cost::potential;
    use kmeans_par::Executor;

    fn stream_blobs(tree: &mut CoresetTree, n_per: usize, centers: &[f64]) -> PointMatrix {
        let mut all = PointMatrix::new(1);
        let mut rng = Rng::new(1234);
        // Interleave blobs so the stream is not sorted by cluster.
        for i in 0..n_per {
            for &c in centers {
                let p = [c + rng.normal() * 0.01 + i as f64 * 1e-6];
                tree.insert(&p).unwrap();
                all.push(&p).unwrap();
            }
        }
        all
    }

    #[test]
    fn memory_stays_logarithmic() {
        let mut tree = CoresetTree::new(1, 16, 5).unwrap();
        let _ = stream_blobs(&mut tree, 2_000, &[0.0, 100.0]);
        assert_eq!(tree.seen(), 4_000);
        // 4000 points / bucket 32 → 125 leaves → ~7 levels × 16 reps.
        assert!(
            tree.representatives() <= 16 * 10,
            "representatives {}",
            tree.representatives()
        );
    }

    #[test]
    fn clusters_the_stream_well() {
        let mut tree = CoresetTree::new(1, 32, 6).unwrap();
        let all = stream_blobs(&mut tree, 500, &[0.0, 1e4, 2e4]);
        let centers = tree.cluster(3).unwrap();
        assert_eq!(centers.len(), 3);
        let phi = potential(&all, &centers, &Executor::sequential());
        // Coverage of all three blobs → only within-blob noise remains.
        assert!(phi < 10.0, "potential {phi}");
    }

    #[test]
    fn coreset_weights_conserve_mass() {
        let mut tree = CoresetTree::new(1, 8, 7).unwrap();
        let _ = stream_blobs(&mut tree, 200, &[0.0, 5.0]);
        let (points, weights) = tree.coreset();
        assert_eq!(points.len(), weights.len());
        let mass: f64 = weights.iter().sum();
        assert!(
            (mass - tree.seen() as f64).abs() < 1e-6,
            "mass {mass} vs seen {}",
            tree.seen()
        );
    }

    #[test]
    fn short_stream_round_trips() {
        let mut tree = CoresetTree::new(2, 64, 8).unwrap();
        for i in 0..5 {
            tree.insert(&[i as f64, 0.0]).unwrap();
        }
        let centers = tree.cluster(5).unwrap();
        assert_eq!(centers.len(), 5);
        assert!(tree.cluster(6).is_err()); // k > seen
    }

    #[test]
    fn duplicate_stream_replicates_representatives() {
        let mut tree = CoresetTree::new(1, 4, 9).unwrap();
        for _ in 0..100 {
            tree.insert(&[3.0]).unwrap();
        }
        let centers = tree.cluster(3).unwrap();
        assert_eq!(centers.len(), 3);
        for c in centers.rows() {
            assert_eq!(c[0], 3.0);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(CoresetTree::new(0, 4, 0).is_err());
        assert!(CoresetTree::new(2, 0, 0).is_err());
        let mut tree = CoresetTree::new(2, 4, 0).unwrap();
        assert!(tree.insert(&[1.0]).is_err());
        assert!(tree.cluster(1).is_err()); // nothing streamed
        tree.insert(&[1.0, 2.0]).unwrap();
        assert!(tree.cluster(0).is_err());
    }
}
