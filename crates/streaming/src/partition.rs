//! The **Partition** baseline (§4.2.1 of the paper; Ailon, Jaiswal &
//! Monteleoni, NIPS 2009).
//!
//! > "it divides the input into m equal-sized groups. In each group, it
//! > runs a variant of k-means++ that selects 3 log k points in each
//! > iteration [k-means#]. At the end of this, similar to our reclustering
//! > step, it runs (vanilla) k-means++ on the weighted set of these
//! > clusters to reduce the number of centers to k. Choosing m = √(n/k)
//! > minimizes the amount of memory used by the streaming algorithm."
//!
//! The defining performance property (Tables 4–5): its intermediate set is
//! `≈ m · (1 + 3k·⌈ln k⌉)` centers — for the paper's KDD runs close to a
//! *million*, three orders of magnitude above k-means||'s `r·ℓ` — and the
//! final sequential k-means++ over that set is the bottleneck that extra
//! machines cannot shrink.

use crate::kmeans_sharp::kmeans_sharp;
use kmeans_core::distance::nearest;
use kmeans_core::init::weighted_kmeanspp;
use kmeans_core::KMeansError;
use kmeans_data::PointMatrix;
use kmeans_par::Executor;
use kmeans_util::timing::Stopwatch;
use kmeans_util::Rng;
use std::time::Duration;

/// Configuration for the Partition baseline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartitionConfig {
    /// Number of groups; `None` uses the paper's `m = round(√(n/k))`.
    pub groups: Option<usize>,
}

/// Output of a Partition run.
#[derive(Clone, Debug)]
pub struct PartitionResult {
    /// The final `k` centers.
    pub centers: PointMatrix,
    /// Number of groups used (`m`).
    pub groups: usize,
    /// Total intermediate centers before the final recluster — the Table 5
    /// quantity.
    pub intermediate_centers: usize,
    /// Wall time of the (parallel) per-group phase.
    pub group_phase: Duration,
    /// Wall time of the (sequential) final k-means++ recluster — the term
    /// that does not shrink with more machines.
    pub recluster_phase: Duration,
}

/// The paper's memory-optimal group count `m = round(√(n/k))`, at least 1.
pub fn optimal_groups(n: usize, k: usize) -> usize {
    ((n as f64 / k as f64).sqrt().round() as usize).max(1)
}

/// Runs the Partition algorithm.
///
/// Groups are processed in parallel on `exec` (one task per group, exactly
/// as the paper's first MapReduce round); the weighted recluster is
/// sequential (the paper's second round runs "k-means++ ... sequentially").
pub fn partition_init(
    points: &PointMatrix,
    k: usize,
    config: &PartitionConfig,
    seed: u64,
    exec: &Executor,
) -> Result<PartitionResult, KMeansError> {
    if points.is_empty() {
        return Err(KMeansError::EmptyInput);
    }
    let n = points.len();
    if k == 0 || k > n {
        return Err(KMeansError::InvalidK { k, n });
    }
    let m = config.groups.unwrap_or_else(|| optimal_groups(n, k)).max(1);
    let m = m.min(n); // never more groups than points

    // Random equal-size partition of the indices.
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = Rng::derive(seed, &[60]);
    rng.shuffle(&mut order);

    // Group boundaries: sizes differ by at most one.
    let bounds: Vec<(usize, usize)> = (0..m)
        .map(|g| {
            let start = g * n / m;
            let end = (g + 1) * n / m;
            (start, end)
        })
        .collect();

    // Per-group k-means# plus local weighting, one parallel task per group.
    let sw = Stopwatch::start();
    let group_exec = exec.clone().with_shard_size(1);
    let group_outputs: Vec<Result<(PointMatrix, Vec<f64>), KMeansError>> =
        group_exec.map_shards(m, |g, _| {
            let (start, end) = bounds[g];
            let group_points = points.select(&order[start..end]);
            let mut group_rng = Rng::derive(seed, &[61, g as u64]);
            let centers = kmeans_sharp(&group_points, k, &mut group_rng)?;
            // Local weights: how many group points each center serves.
            let mut weights = vec![0.0f64; centers.len()];
            for row in group_points.rows() {
                weights[nearest(row, &centers).0] += 1.0;
            }
            Ok((centers, weights))
        });
    let group_phase = sw.elapsed();

    // Union the weighted coreset.
    let mut coreset = PointMatrix::new(points.dim());
    let mut weights: Vec<f64> = Vec::new();
    for out in group_outputs {
        let (centers, w) = out?;
        coreset.extend_from(&centers).expect("dims match");
        weights.extend_from_slice(&w);
    }
    let intermediate = coreset.len();

    // Final sequential weighted k-means++ down to k. If the coreset came up
    // short (extremely duplicate-heavy data), fall back to reclustering the
    // raw points.
    let sw = Stopwatch::start();
    let centers = if intermediate >= k {
        weighted_kmeanspp(&coreset, &weights, k, &mut rng)?
    } else {
        let uniform = vec![1.0; n];
        weighted_kmeanspp(points, &uniform, k, &mut rng)?
    };
    let recluster_phase = sw.elapsed();

    Ok(PartitionResult {
        centers,
        groups: m,
        intermediate_centers: intermediate,
        group_phase,
        recluster_phase,
    })
}

/// Runs Partition over a [`ChunkedSource`](kmeans_data::ChunkedSource) as
/// the **true streaming algorithm** it was published as: groups are
/// consecutive chunks of the stream (Ailon et al.'s one-pass setting),
/// processed as their rows arrive — one scan total, with only one group
/// (`≈ n/m = √(n·k)` rows, the paper's memory-optimal point) plus one
/// block resident at a time.
///
/// This deliberately differs from [`partition_init`], which simulates the
/// streaming setting in memory by *shuffling* the input into random groups
/// — a global permutation an out-of-core pass cannot afford. Results are
/// therefore deterministic per seed but not bit-identical to the in-memory
/// entry point (every other chunked seeder in the workspace is; see
/// `kmeans_core::chunked`).
pub fn partition_init_chunked(
    source: &dyn kmeans_data::ChunkedSource,
    k: usize,
    config: &PartitionConfig,
    seed: u64,
    exec: &Executor,
) -> Result<PartitionResult, KMeansError> {
    use kmeans_core::chunked::check_block_finite;

    kmeans_core::chunked::validate_source(source, k)?;
    let n = source.len();
    let m = config.groups.unwrap_or_else(|| optimal_groups(n, k)).max(1);
    let m = m.min(n);
    let mut rng = Rng::derive(seed, &[60]);

    // Group boundaries: contiguous stream chunks, sizes differing by ≤ 1.
    let bounds: Vec<(usize, usize)> = (0..m).map(|g| (g * n / m, (g + 1) * n / m)).collect();

    let sw = Stopwatch::start();
    let mut coreset = PointMatrix::new(source.dim());
    let mut weights: Vec<f64> = Vec::new();
    let mut group = PointMatrix::with_capacity(source.dim(), bounds[0].1);
    let mut g = 0usize;
    let mut buf = source.block_buffer();
    kmeans_core::chunked::for_each_block(source, &mut buf, |_b, start, block| {
        check_block_finite(block, start)?;
        for (off, row) in block.rows().enumerate() {
            group.push(row).expect("row dim matches source dim");
            if start + off + 1 == bounds[g].1 {
                // Group complete: run k-means# locally, weight, discard.
                let mut group_rng = Rng::derive(seed, &[61, g as u64]);
                let centers = kmeans_sharp(&group, k, &mut group_rng)?;
                let mut w = vec![0.0f64; centers.len()];
                for row in group.rows() {
                    w[nearest(row, &centers).0] += 1.0;
                }
                coreset.extend_from(&centers).expect("dims match");
                weights.extend_from_slice(&w);
                group.clear();
                g += 1;
            }
        }
        Ok(())
    })?;
    let group_phase = sw.elapsed();
    let intermediate = coreset.len();

    // Final sequential weighted k-means++ down to k; on degenerate
    // duplicate-heavy coresets fall back to D² seeding over the stream.
    let sw = Stopwatch::start();
    let centers = if intermediate >= k {
        weighted_kmeanspp(&coreset, &weights, k, &mut rng)?
    } else {
        kmeans_core::init::kmeanspp_chunked(source, k, &mut rng, exec)?
    };
    let recluster_phase = sw.elapsed();

    Ok(PartitionResult {
        centers,
        groups: m,
        intermediate_centers: intermediate,
        group_phase,
        recluster_phase,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans_sharp::draws_per_round;
    use kmeans_core::cost::potential;
    use kmeans_par::Parallelism;

    fn blobs(n_per: usize, centers: &[f64]) -> PointMatrix {
        let mut m = PointMatrix::new(1);
        for &c in centers {
            for i in 0..n_per {
                m.push(&[c + i as f64 * 1e-3]).unwrap();
            }
        }
        m
    }

    #[test]
    fn optimal_groups_formula() {
        assert_eq!(optimal_groups(4_800_000, 500), 98); // √9600 ≈ 97.98
        assert_eq!(optimal_groups(100, 100), 1);
        assert_eq!(optimal_groups(10, 1000), 1); // clamped up to 1
    }

    #[test]
    fn returns_k_centers_and_counts_intermediate() {
        let points = blobs(250, &[0.0, 1e4, 2e4, 3e4]);
        let exec = Executor::sequential();
        let result = partition_init(&points, 4, &PartitionConfig::default(), 1, &exec).unwrap();
        assert_eq!(result.centers.len(), 4);
        // m = √(1000/4) ≈ 16 groups; each yields ≤ 1 + k·3lnk centers.
        assert_eq!(result.groups, 16);
        let per_group_max = 1 + 4 * draws_per_round(4);
        assert!(result.intermediate_centers <= result.groups * per_group_max);
        assert!(
            result.intermediate_centers > 4,
            "intermediate {} should exceed k",
            result.intermediate_centers
        );
    }

    #[test]
    fn covers_separated_blobs() {
        let points = blobs(250, &[0.0, 1e4, 2e4, 3e4]);
        let exec = Executor::sequential();
        let mut good = 0;
        for seed in 0..10 {
            let result =
                partition_init(&points, 4, &PartitionConfig::default(), seed, &exec).unwrap();
            if potential(&points, &result.centers, &exec) < 100.0 {
                good += 1;
            }
        }
        assert!(good >= 9, "coverage failed in {}/10 runs", 10 - good);
    }

    #[test]
    fn deterministic_and_thread_invariant() {
        let points = blobs(100, &[0.0, 50.0, 100.0]);
        let run = |par: Parallelism| {
            let exec = Executor::new(par);
            partition_init(&points, 3, &PartitionConfig::default(), 42, &exec).unwrap()
        };
        let a = run(Parallelism::Sequential);
        let b = run(Parallelism::Threads(3));
        assert_eq!(a.centers, b.centers);
        assert_eq!(a.intermediate_centers, b.intermediate_centers);
        assert_eq!(a.groups, b.groups);
    }

    #[test]
    fn explicit_group_count_is_respected() {
        let points = blobs(100, &[0.0, 10.0]);
        let exec = Executor::sequential();
        let result =
            partition_init(&points, 2, &PartitionConfig { groups: Some(5) }, 3, &exec).unwrap();
        assert_eq!(result.groups, 5);
    }

    #[test]
    fn duplicate_heavy_data_falls_back() {
        // 30 copies of one value: coreset has 1 center < k = 3.
        let points = PointMatrix::from_flat(vec![5.0; 30], 1).unwrap();
        let exec = Executor::sequential();
        let result = partition_init(&points, 3, &PartitionConfig::default(), 2, &exec).unwrap();
        assert_eq!(result.centers.len(), 3);
    }

    #[test]
    fn rejects_bad_inputs() {
        let exec = Executor::sequential();
        assert!(partition_init(
            &PointMatrix::new(1),
            1,
            &PartitionConfig::default(),
            0,
            &exec
        )
        .is_err());
        let points = blobs(5, &[0.0]);
        assert!(partition_init(&points, 0, &PartitionConfig::default(), 0, &exec).is_err());
        assert!(partition_init(&points, 6, &PartitionConfig::default(), 0, &exec).is_err());
    }
}
