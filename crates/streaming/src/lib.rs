//! Streaming k-means baselines.
//!
//! The paper compares k-means|| against **Partition**, "a recent one-pass
//! streaming algorithm with performance guarantees" (Ailon, Jaiswal &
//! Monteleoni, NIPS 2009), in Tables 3–5. This crate implements:
//!
//! * [`kmeans_sharp()`](fn@kmeans_sharp) — the **k-means#** subroutine: like k-means++ but
//!   drawing `3⌈ln k⌉` points per round for `k` rounds, giving `O(k log k)`
//!   centers and a constant-factor guarantee w.h.p.
//! * [`partition`] — the **Partition** algorithm of §4.2.1: split the input
//!   into `m = √(n/k)` groups, run k-means# in each group (parallelizable),
//!   weight each group-center by its local assignment count, and recluster
//!   the union with (vanilla, weighted) k-means++. Its intermediate set has
//!   `≈ 3·m·k·ln k` centers — three orders of magnitude more than
//!   k-means||'s `r·ℓ` (Table 5), which is exactly why it is slower
//!   (Table 4).
//! * [`coreset`] — a merge-reduce coreset tree in the spirit of StreamKM++
//!   (Ackermann et al., ALENEX 2010 — the paper's reference \[1]); an
//!   extension beyond the paper's experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coreset;
pub mod kmeans_sharp;
pub mod partition;
pub mod pipeline;

pub use coreset::CoresetTree;
pub use kmeans_sharp::kmeans_sharp;
pub use partition::{partition_init, PartitionConfig, PartitionResult};
pub use pipeline::{Coreset, Partition};
