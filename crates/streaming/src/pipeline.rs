//! Pipeline adapters: the streaming seeders as
//! [`Initializer`] implementations.
//!
//! The paper benchmarks Partition as a *seeding* method — Tables 3–5 run
//! it head-to-head with k-means|| and hand both to the same Lloyd
//! refinement — so exposing it (and the coreset-tree extension) through
//! the same trait as the core seeders is exactly the composition the
//! experiments exercise: `KMeans::params(k).init(Partition::default())
//! .refine(…)`.
//!
//! Both adapters recluster their intermediate weighted set down to `k`
//! centers internally (Partition's final weighted k-means++ pass,
//! [`CoresetTree::cluster`]), so like every other `Initializer` they
//! return exactly `k` centers.

use crate::coreset::CoresetTree;
use crate::partition::{partition_init, partition_init_chunked, PartitionConfig};
use kmeans_core::chunked::{check_block_finite, validate_source};
use kmeans_core::driver::{finish_init_backend, RoundBackend};
use kmeans_core::init::{validate, InitResult, InitStats};
use kmeans_core::pipeline::{finish_init, reject_backend, reject_weights, Initializer};
use kmeans_core::KMeansError;
use kmeans_data::PointMatrix;
use kmeans_par::Executor;
use kmeans_util::timing::Stopwatch;

/// The Partition streaming baseline (§4.2.1; Ailon et al., NIPS 2009) as
/// a pipeline seeding stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Partition(pub PartitionConfig);

impl Initializer for Partition {
    fn name(&self) -> &'static str {
        "partition"
    }

    fn supports_backend(&self, kind: kmeans_core::driver::BackendKind) -> bool {
        kind == kmeans_core::driver::BackendKind::Chunked
    }

    fn init(
        &self,
        points: &PointMatrix,
        weights: Option<&[f64]>,
        k: usize,
        seed: u64,
        exec: &Executor,
    ) -> Result<InitResult, KMeansError> {
        validate(points, k)?;
        reject_weights("partition", weights)?;
        let sw = Stopwatch::start();
        let result = partition_init(points, k, &self.0, seed, exec)?;
        let stats = InitStats {
            rounds: 1,
            // One streaming pass over the groups plus the local weighting
            // pass; the sequential recluster touches only the coreset.
            passes: 2,
            candidates: result.intermediate_centers,
            ..InitStats::default()
        };
        Ok(finish_init(
            points,
            weights,
            result.centers,
            stats,
            sw,
            exec,
        ))
    }

    fn init_backend(
        &self,
        backend: &mut dyn RoundBackend,
        k: usize,
        seed: u64,
    ) -> Result<InitResult, KMeansError> {
        // Partition consumes the stream's blocks directly (contiguous
        // stream groups — the documented non-parity case), so it runs on
        // local block-backed backends only.
        let Some((source, exec)) = backend.local_source() else {
            return Err(reject_backend(self.name(), backend.kind()));
        };
        let sw = Stopwatch::start();
        let result = partition_init_chunked(source, k, &self.0, seed, exec)?;
        let stats = InitStats {
            rounds: 1,
            passes: 2,
            candidates: result.intermediate_centers,
            ..InitStats::default()
        };
        finish_init_backend(backend, result.centers, stats, sw)
    }
}

/// The merge-reduce coreset tree (StreamKM++-style; the paper's reference
/// \[1]) as a pipeline seeding stage: streams every row through a
/// [`CoresetTree`], then reclusters the surviving representatives to `k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Coreset {
    /// Per-bucket coreset size (leaf buckets hold twice this).
    pub coreset_size: usize,
}

impl Default for Coreset {
    fn default() -> Self {
        Coreset { coreset_size: 200 }
    }
}

impl Initializer for Coreset {
    fn name(&self) -> &'static str {
        "coreset"
    }

    fn supports_backend(&self, kind: kmeans_core::driver::BackendKind) -> bool {
        kind == kmeans_core::driver::BackendKind::Chunked
    }

    fn init(
        &self,
        points: &PointMatrix,
        weights: Option<&[f64]>,
        k: usize,
        seed: u64,
        exec: &Executor,
    ) -> Result<InitResult, KMeansError> {
        validate(points, k)?;
        reject_weights("coreset", weights)?;
        let sw = Stopwatch::start();
        let mut tree = CoresetTree::new(points.dim(), self.coreset_size, seed)?;
        for row in points.rows() {
            tree.insert(row).expect("dims match by construction");
        }
        // The set the final recluster runs on: representatives at every
        // level plus the still-open leaf buffer (the Table 5 quantity).
        let candidates = tree.representatives() + tree.buffered();
        let centers = tree.cluster(k)?;
        let stats = InitStats {
            rounds: 0,
            passes: 1, // single streaming pass
            candidates,
            ..InitStats::default()
        };
        Ok(finish_init(points, weights, centers, stats, sw, exec))
    }

    fn init_backend(
        &self,
        backend: &mut dyn RoundBackend,
        k: usize,
        seed: u64,
    ) -> Result<InitResult, KMeansError> {
        // The tree wants every row streamed through it in order — a
        // block-local pass, so local backends only.
        let Some((source, _exec)) = backend.local_source() else {
            return Err(reject_backend(self.name(), backend.kind()));
        };
        validate_source(source, k)?;
        let sw = Stopwatch::start();
        let mut tree = CoresetTree::new(source.dim(), self.coreset_size, seed)?;
        // The tree consumes rows one at a time, so streaming blocks through
        // it inserts in the exact order the in-memory adapter does — the
        // resulting centers are bit-identical (`tests/chunked_parity.rs`).
        let mut buf = source.block_buffer();
        kmeans_core::chunked::for_each_block(source, &mut buf, |_b, start, block| {
            check_block_finite(block, start)?;
            for row in block.rows() {
                tree.insert(row).expect("dims match by construction");
            }
            Ok(())
        })?;
        let candidates = tree.representatives() + tree.buffered();
        let centers = tree.cluster(k)?;
        let stats = InitStats {
            rounds: 0,
            passes: 1, // single streaming pass
            candidates,
            ..InitStats::default()
        };
        finish_init_backend(backend, centers, stats, sw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per: usize, centers: &[f64]) -> PointMatrix {
        let mut m = PointMatrix::new(1);
        for &c in centers {
            for i in 0..n_per {
                m.push(&[c + i as f64 * 1e-3]).unwrap();
            }
        }
        m
    }

    #[test]
    fn partition_adapter_matches_free_function() {
        let points = blobs(200, &[0.0, 1e3, 2e3]);
        let exec = Executor::sequential();
        let via_trait = Partition::default()
            .init(&points, None, 3, 7, &exec)
            .unwrap();
        let direct = partition_init(&points, 3, &PartitionConfig::default(), 7, &exec).unwrap();
        assert_eq!(via_trait.centers, direct.centers);
        assert_eq!(via_trait.stats.candidates, direct.intermediate_centers);
        assert!(via_trait.stats.seed_cost > 0.0);
    }

    #[test]
    fn coreset_adapter_matches_manual_tree() {
        let points = blobs(300, &[0.0, 1e4]);
        let exec = Executor::sequential();
        let via_trait = Coreset { coreset_size: 32 }
            .init(&points, None, 2, 5, &exec)
            .unwrap();
        let mut tree = CoresetTree::new(1, 32, 5).unwrap();
        for row in points.rows() {
            tree.insert(row).unwrap();
        }
        let direct = tree.cluster(2).unwrap();
        assert_eq!(via_trait.centers, direct);
        assert_eq!(via_trait.centers.len(), 2);
    }

    #[test]
    fn adapters_reject_weights_and_bad_k() {
        let points = blobs(20, &[0.0]);
        let exec = Executor::sequential();
        let w = vec![1.0; points.len()];
        assert!(Partition::default()
            .init(&points, Some(&w), 2, 0, &exec)
            .is_err());
        assert!(Coreset::default()
            .init(&points, Some(&w), 2, 0, &exec)
            .is_err());
        assert!(Coreset::default().init(&points, None, 0, 0, &exec).is_err());
        assert!(Coreset::default()
            .init(&points, None, 21, 0, &exec)
            .is_err());
        assert!(Partition::default()
            .init(&PointMatrix::new(1), None, 1, 0, &exec)
            .is_err());
        // Non-finite data is rejected with the same typed error as the
        // core seeders (shared kmeans_core::init::validate).
        let bad = PointMatrix::from_flat(vec![0.0, f64::NAN, 2.0], 1).unwrap();
        use kmeans_core::KMeansError;
        for init in [
            Box::new(Partition::default()) as Box<dyn Initializer>,
            Box::new(Coreset::default()),
        ] {
            assert!(
                matches!(
                    init.init(&bad, None, 2, 0, &exec),
                    Err(KMeansError::NonFiniteData { point: 1, dim: 0 })
                ),
                "{init:?}"
            );
        }
    }

    #[test]
    fn adapters_cover_separated_blobs() {
        let points = blobs(250, &[0.0, 1e4, 2e4, 3e4]);
        let exec = Executor::sequential();
        for init in [
            Box::new(Partition::default()) as Box<dyn Initializer>,
            Box::new(Coreset { coreset_size: 64 }),
        ] {
            let mut good = 0;
            for seed in 0..5 {
                let r = init.init(&points, None, 4, seed, &exec).unwrap();
                assert_eq!(r.centers.len(), 4, "{init:?}");
                if r.stats.seed_cost < 100.0 {
                    good += 1;
                }
            }
            assert!(good >= 4, "{init:?} covered blobs only {good}/5 times");
        }
    }
}
