//! Weighted and uniform sampling primitives.
//!
//! These are the draws at the heart of both seeding algorithms in the paper:
//!
//! * **k-means++** (Algorithm 1) repeatedly draws *one* point with
//!   probability `d²(x, C) / φ_X(C)` — a categorical draw over `n` weights
//!   that change every round. [`CumulativeSampler`] (O(n) build, O(log n)
//!   draw) serves this; [`AliasSampler`] is the O(1)-draw alternative for
//!   static distributions, benchmarked against it in `benches/sampling.rs`.
//! * **k-means||** (Algorithm 2, Step 4) draws each point *independently*
//!   with probability `min(1, ℓ·d²(x,C)/φ_X(C))` — Bernoulli sampling,
//!   provided here as [`bernoulli_indices`].
//! * The **exact-ℓ** variant of §5.3 ("we begin by sampling exactly ℓ points
//!   from the joint distribution in every round") needs ℓ *distinct* indices
//!   drawn without replacement with probability proportional to weight —
//!   the Efraimidis–Spirakis one-pass algorithm, [`weighted_distinct`].
//! * The `Random` baseline needs `k` distinct uniform indices —
//!   [`uniform_distinct`] (Floyd's algorithm).
//! * The streaming comparators consume points one at a time —
//!   [`Reservoir`] (Algorithm R).

use crate::rng::Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Draws one index from a categorical distribution by linear scan.
///
/// `total` must equal `weights.iter().sum()` (the caller usually maintains it
/// incrementally). Returns `None` when the total mass is not positive.
///
/// This is the cheapest option when only a single draw is needed from a
/// distribution that will immediately change (the k-means++ inner loop).
pub fn weighted_pick(weights: &[f64], total: f64, rng: &mut Rng) -> Option<usize> {
    if weights.is_empty() || total.is_nan() || total <= 0.0 {
        return None;
    }
    let target = rng.next_f64() * total;
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if target < acc {
            return Some(i);
        }
    }
    // Floating-point slack: the scan can exhaust the slice when `total`
    // slightly exceeds the true sum. Fall back to the last positive weight.
    weights.iter().rposition(|&w| w > 0.0)
}

/// Categorical sampler over a fixed weight vector: O(n) build, O(log n) draw.
///
/// Stores the prefix-sum array and binary-searches it on each draw. Weights
/// must be non-negative and finite; entries with zero weight are never
/// returned.
///
/// ```
/// use kmeans_util::{sampling::CumulativeSampler, Rng};
/// let s = CumulativeSampler::new(&[0.0, 1.0, 3.0]).unwrap();
/// let mut rng = Rng::new(1);
/// let i = s.sample(&mut rng);
/// assert!(i == 1 || i == 2);
/// ```
#[derive(Clone, Debug)]
pub struct CumulativeSampler {
    prefix: Vec<f64>,
    total: f64,
}

impl CumulativeSampler {
    /// Builds the sampler. Returns `None` if the total weight is not
    /// strictly positive or any weight is negative/non-finite.
    pub fn new(weights: &[f64]) -> Option<Self> {
        let mut prefix = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return None;
            }
            acc += w;
            prefix.push(acc);
        }
        if acc > 0.0 {
            Some(CumulativeSampler { prefix, total: acc })
        } else {
            None
        }
    }

    /// Total probability mass (sum of weights).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prefix.len()
    }

    /// Whether the sampler has no categories.
    pub fn is_empty(&self) -> bool {
        self.prefix.is_empty()
    }

    /// Draws one index, in O(log n).
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let target = rng.next_f64() * self.total;
        // partition_point returns the first index whose prefix exceeds the
        // target, i.e. the category containing it.
        let idx = self.prefix.partition_point(|&p| p <= target);
        if idx < self.prefix.len() {
            self.ensure_positive(idx)
        } else {
            self.ensure_positive(self.prefix.len() - 1)
        }
    }

    /// Zero-weight categories have zero-length prefix segments and can only
    /// be hit through floating-point edge cases; walk back to the nearest
    /// positive-weight category.
    fn ensure_positive(&self, mut idx: usize) -> usize {
        while idx > 0 {
            let w = self.prefix[idx] - self.prefix[idx - 1];
            if w > 0.0 {
                return idx;
            }
            idx -= 1;
        }
        idx
    }
}

/// Categorical sampler with O(n) build and O(1) draws (Vose's alias method).
///
/// Preferable to [`CumulativeSampler`] when many draws are made from the same
/// distribution (e.g. generating synthetic datasets with fixed mixture
/// weights).
#[derive(Clone, Debug)]
pub struct AliasSampler {
    /// Probability of staying in the column (scaled to [0,1]).
    prob: Vec<f64>,
    /// Alias column to jump to otherwise.
    alias: Vec<u32>,
}

impl AliasSampler {
    /// Builds the alias table. Returns `None` if the total weight is not
    /// strictly positive, any weight is negative/non-finite, or there are
    /// more than `u32::MAX` categories.
    pub fn new(weights: &[f64]) -> Option<Self> {
        let n = weights.len();
        if n == 0 || n > u32::MAX as usize {
            return None;
        }
        let mut total = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return None;
            }
            total += w;
        }
        if total <= 0.0 {
            return None;
        }
        let scale = n as f64 / total;
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        // Pair each under-full column with an over-full donor. The donor
        // stays on the `large` stack until its residual mass drops below 1,
        // so no element is ever popped without being finalized.
        while let Some(&l) = large.last() {
            let Some(s) = small.pop() else { break };
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] += scaled[s as usize] - 1.0;
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Whatever remains is numerically 1.0.
        for i in large.into_iter().chain(small) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        Some(AliasSampler { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the sampler has no categories.
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index, in O(1).
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let col = rng.range_usize(self.prob.len());
        if rng.next_f64() < self.prob[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }
}

/// Returns the indices selected by independent Bernoulli trials with
/// per-index probability `prob(i)` (clamped to `[0, 1]`).
///
/// This is Step 4 of Algorithm 2 (k-means||): each point is kept with
/// probability `ℓ·d²(x,C)/φ_X(C)`, independently.
pub fn bernoulli_indices<F>(n: usize, mut prob: F, rng: &mut Rng) -> Vec<usize>
where
    F: FnMut(usize) -> f64,
{
    let mut picked = Vec::new();
    for i in 0..n {
        if rng.bernoulli(prob(i)) {
            picked.push(i);
        }
    }
    picked
}

/// Key/index pair for the Efraimidis–Spirakis heap; ordered by key so the
/// binary heap pops the *smallest* key (we keep the m largest).
#[derive(PartialEq)]
struct EsEntry {
    key: f64,
    idx: usize,
}

impl Eq for EsEntry {}

impl PartialOrd for EsEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EsEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need the min at the top.
        other
            .key
            .partial_cmp(&self.key)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

/// Draws `m` *distinct* indices without replacement, with probability
/// proportional to `weights` (Efraimidis–Spirakis, 2006).
///
/// Each positive-weight index gets the key `u^(1/w)` with `u ~ U(0,1]`; the
/// `m` largest keys form an exact weighted sample without replacement. Runs
/// in O(n log m). If fewer than `m` indices have positive weight, all of
/// them are returned.
///
/// The result is sorted by index for deterministic downstream iteration.
pub fn weighted_distinct(weights: &[f64], m: usize, rng: &mut Rng) -> Vec<usize> {
    if m == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<EsEntry> = BinaryHeap::with_capacity(m + 1);
    for (idx, &w) in weights.iter().enumerate() {
        if w.is_nan() || w <= 0.0 {
            continue;
        }
        // key = u^(1/w)  ⇔  ln(key) = ln(u)/w ; compare in log space for
        // numerical range (weights span ~1e10 in the KDD workload).
        let key = rng.next_f64_open().ln() / w;
        if heap.len() < m {
            heap.push(EsEntry { key, idx });
        } else if let Some(top) = heap.peek() {
            if key > top.key {
                heap.pop();
                heap.push(EsEntry { key, idx });
            }
        }
    }
    let mut out: Vec<usize> = heap.into_iter().map(|e| e.idx).collect();
    out.sort_unstable();
    out
}

/// Draws `m` distinct uniform indices from `[0, n)` (Floyd's algorithm).
///
/// O(m) expected time and memory, independent of `n`. The result is sorted.
///
/// # Panics
///
/// Panics if `m > n`.
pub fn uniform_distinct(n: usize, m: usize, rng: &mut Rng) -> Vec<usize> {
    assert!(m <= n, "uniform_distinct: m={m} > n={n}");
    let mut chosen = std::collections::HashSet::with_capacity(m);
    let mut out = Vec::with_capacity(m);
    for j in (n - m)..n {
        let t = rng.range_usize(j + 1);
        if chosen.insert(t) {
            out.push(t);
        } else {
            chosen.insert(j);
            out.push(j);
        }
    }
    out.sort_unstable();
    out
}

/// Uniform reservoir sampler over a stream (Algorithm R, Vitter 1985).
///
/// Holds at most `capacity` items; after observing `t ≥ capacity` items each
/// one is retained with probability `capacity / t`.
#[derive(Clone, Debug)]
pub struct Reservoir<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
}

impl<T> Reservoir<T> {
    /// Creates a reservoir holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "Reservoir capacity must be positive");
        Reservoir {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity),
        }
    }

    /// Offers one item from the stream.
    pub fn offer(&mut self, item: T, rng: &mut Rng) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            let j = rng.range_u64(self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// Number of items observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The current sample.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consumes the reservoir, returning the sample.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_freqs(n_cats: usize, draws: usize, mut draw: impl FnMut() -> usize) -> Vec<f64> {
        let mut counts = vec![0usize; n_cats];
        for _ in 0..draws {
            counts[draw()] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn weighted_pick_respects_weights() {
        let weights = [1.0, 0.0, 3.0];
        let mut rng = Rng::new(1);
        let freqs = empirical_freqs(3, 40_000, || {
            weighted_pick(&weights, 4.0, &mut rng).unwrap()
        });
        assert!((freqs[0] - 0.25).abs() < 0.01, "{freqs:?}");
        assert_eq!(freqs[1], 0.0);
        assert!((freqs[2] - 0.75).abs() < 0.01, "{freqs:?}");
    }

    #[test]
    fn weighted_pick_zero_total_is_none() {
        let mut rng = Rng::new(2);
        assert_eq!(weighted_pick(&[0.0, 0.0], 0.0, &mut rng), None);
        assert_eq!(weighted_pick(&[], 0.0, &mut rng), None);
    }

    #[test]
    fn cumulative_sampler_matches_weights() {
        let s = CumulativeSampler::new(&[2.0, 0.0, 1.0, 1.0]).unwrap();
        assert_eq!(s.len(), 4);
        assert!((s.total() - 4.0).abs() < 1e-12);
        let mut rng = Rng::new(3);
        let freqs = empirical_freqs(4, 40_000, || s.sample(&mut rng));
        assert!((freqs[0] - 0.5).abs() < 0.01, "{freqs:?}");
        assert_eq!(freqs[1], 0.0, "zero-weight category sampled");
        assert!((freqs[2] - 0.25).abs() < 0.01, "{freqs:?}");
    }

    #[test]
    fn cumulative_sampler_rejects_bad_weights() {
        assert!(CumulativeSampler::new(&[]).is_none());
        assert!(CumulativeSampler::new(&[0.0, 0.0]).is_none());
        assert!(CumulativeSampler::new(&[1.0, -1.0]).is_none());
        assert!(CumulativeSampler::new(&[f64::NAN]).is_none());
        assert!(CumulativeSampler::new(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn alias_sampler_matches_weights() {
        let s = AliasSampler::new(&[1.0, 2.0, 3.0, 0.0, 4.0]).unwrap();
        let mut rng = Rng::new(4);
        let freqs = empirical_freqs(5, 100_000, || s.sample(&mut rng));
        for (i, expected) in [0.1, 0.2, 0.3, 0.0, 0.4].into_iter().enumerate() {
            assert!(
                (freqs[i] - expected).abs() < 0.01,
                "category {i}: {freqs:?}"
            );
        }
    }

    #[test]
    fn alias_sampler_single_category() {
        let s = AliasSampler::new(&[5.0]).unwrap();
        let mut rng = Rng::new(5);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng), 0);
        }
    }

    #[test]
    fn alias_rejects_bad_weights() {
        assert!(AliasSampler::new(&[]).is_none());
        assert!(AliasSampler::new(&[0.0]).is_none());
        assert!(AliasSampler::new(&[-2.0, 1.0]).is_none());
    }

    #[test]
    fn bernoulli_indices_expected_count() {
        let mut rng = Rng::new(6);
        let picked = bernoulli_indices(100_000, |_| 0.1, &mut rng);
        let frac = picked.len() as f64 / 100_000.0;
        assert!((frac - 0.1).abs() < 0.01, "{frac}");
        // Sorted, distinct, in range.
        assert!(picked.windows(2).all(|w| w[0] < w[1]));
        assert!(picked.iter().all(|&i| i < 100_000));
    }

    #[test]
    fn bernoulli_indices_clamps() {
        let mut rng = Rng::new(7);
        assert!(bernoulli_indices(100, |_| 0.0, &mut rng).is_empty());
        assert_eq!(bernoulli_indices(100, |_| 1.5, &mut rng).len(), 100);
    }

    #[test]
    fn weighted_distinct_is_distinct_and_weighted() {
        let mut weights = vec![1.0; 100];
        weights[7] = 1_000.0; // should almost always be selected
        let mut rng = Rng::new(8);
        let mut hits_7 = 0;
        for _ in 0..200 {
            let sel = weighted_distinct(&weights, 10, &mut rng);
            assert_eq!(sel.len(), 10);
            assert!(sel.windows(2).all(|w| w[0] < w[1]), "not distinct/sorted");
            if sel.contains(&7) {
                hits_7 += 1;
            }
        }
        assert!(hits_7 > 195, "heavy item selected only {hits_7}/200 times");
    }

    #[test]
    fn weighted_distinct_fewer_positive_than_m() {
        let weights = [0.0, 2.0, 0.0, 3.0];
        let mut rng = Rng::new(9);
        let sel = weighted_distinct(&weights, 10, &mut rng);
        assert_eq!(sel, vec![1, 3]);
    }

    #[test]
    fn weighted_distinct_zero_m() {
        let mut rng = Rng::new(10);
        assert!(weighted_distinct(&[1.0, 2.0], 0, &mut rng).is_empty());
    }

    #[test]
    fn weighted_distinct_first_draw_marginals() {
        // With m=1, selection probability must be ∝ weight.
        let weights = [1.0, 3.0];
        let mut rng = Rng::new(11);
        let mut count1 = 0;
        let trials = 40_000;
        for _ in 0..trials {
            if weighted_distinct(&weights, 1, &mut rng) == vec![1] {
                count1 += 1;
            }
        }
        let frac = count1 as f64 / trials as f64;
        assert!((frac - 0.75).abs() < 0.01, "{frac}");
    }

    #[test]
    fn uniform_distinct_properties() {
        let mut rng = Rng::new(12);
        for _ in 0..100 {
            let sel = uniform_distinct(50, 10, &mut rng);
            assert_eq!(sel.len(), 10);
            assert!(sel.windows(2).all(|w| w[0] < w[1]));
            assert!(sel.iter().all(|&i| i < 50));
        }
        // m == n returns everything.
        assert_eq!(uniform_distinct(5, 5, &mut rng), vec![0, 1, 2, 3, 4]);
        assert!(uniform_distinct(5, 0, &mut rng).is_empty());
    }

    #[test]
    fn uniform_distinct_is_uniform() {
        let mut rng = Rng::new(13);
        let mut counts = [0usize; 10];
        let trials = 30_000;
        for _ in 0..trials {
            for i in uniform_distinct(10, 3, &mut rng) {
                counts[i] += 1;
            }
        }
        for &c in &counts {
            let frac = c as f64 / trials as f64;
            assert!((frac - 0.3).abs() < 0.02, "{counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "m=6 > n=5")]
    fn uniform_distinct_m_too_big_panics() {
        uniform_distinct(5, 6, &mut Rng::new(0));
    }

    #[test]
    fn reservoir_keeps_capacity_and_is_uniform() {
        let mut rng = Rng::new(14);
        let mut counts = [0usize; 20];
        let trials = 20_000;
        for _ in 0..trials {
            let mut res = Reservoir::new(4);
            for x in 0..20 {
                res.offer(x, &mut rng);
            }
            assert_eq!(res.items().len(), 4);
            assert_eq!(res.seen(), 20);
            for &x in res.items() {
                counts[x as usize] += 1;
            }
        }
        for &c in &counts {
            let frac = c as f64 / trials as f64;
            assert!((frac - 0.2).abs() < 0.02, "{counts:?}");
        }
    }

    #[test]
    fn reservoir_short_stream() {
        let mut rng = Rng::new(15);
        let mut res = Reservoir::new(10);
        for x in 0..3 {
            res.offer(x, &mut rng);
        }
        assert_eq!(res.into_items(), vec![0, 1, 2]);
    }
}
