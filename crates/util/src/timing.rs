//! Wall-clock timing helpers for the experiment harness.

use std::time::{Duration, Instant};

/// A simple stopwatch.
///
/// ```
/// use kmeans_util::timing::Stopwatch;
/// let sw = Stopwatch::start();
/// let elapsed = sw.elapsed();
/// assert!(elapsed.as_nanos() < u128::MAX);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts a new stopwatch.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Time elapsed since start.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed time in fractional seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Formats a duration compactly for table output: `842ms`, `3.20s`, `2m06s`.
pub fn format_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs < 1.0 {
        format!("{:.0}ms", secs * 1e3)
    } else if secs < 120.0 {
        format!("{secs:.2}s")
    } else {
        let m = (secs / 60.0).floor();
        format!("{m:.0}m{:02.0}s", secs - m * 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
        assert!(sw.elapsed_secs() >= 0.0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_millis(842)), "842ms");
        assert_eq!(format_duration(Duration::from_secs_f64(3.2)), "3.20s");
        assert_eq!(format_duration(Duration::from_secs(126)), "2m06s");
    }
}
