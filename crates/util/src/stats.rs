//! Streaming and batch statistics used by the experiment harness.
//!
//! Every table in the paper reports a *median* over 11 runs and Table 6 an
//! *average* over 10 runs; the criterion-style summaries in EXPERIMENTS.md
//! additionally report spread. This module provides the small set of
//! estimators needed: Welford online moments, exact medians/percentiles, and
//! a five-number summary.

/// Numerically stable online mean/variance accumulator (Welford, 1962).
///
/// ```
/// use kmeans_util::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 6.0] { s.push(x); }
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.sample_variance(), 4.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by n; 0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by n−1; 0 when fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel combine).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact median of a set of values. Returns `None` for an empty slice.
///
/// For an even count, the mean of the two central order statistics.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("median: NaN in input"));
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    })
}

/// Linear-interpolated percentile `p ∈ [0, 100]` of a **sorted** slice.
///
/// Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    if sorted.is_empty() {
        return None;
    }
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Five-number summary plus mean and standard deviation of a batch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Smallest value.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Number of observations.
    pub count: usize,
}

impl Summary {
    /// Computes the summary. Returns `None` for an empty slice.
    pub fn from_values(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("Summary: NaN in input"));
        let mut stats = OnlineStats::new();
        for &v in values {
            stats.push(v);
        }
        Some(Summary {
            min: sorted[0],
            p25: percentile_sorted(&sorted, 25.0)?,
            median: percentile_sorted(&sorted, 50.0)?,
            p75: percentile_sorted(&sorted, 75.0)?,
            max: *sorted.last()?,
            mean: stats.mean(),
            std: stats.sample_std(),
            count: values.len(),
        })
    }
}

/// Arithmetic mean of a slice (0 when empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
        assert!((s.population_variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn online_stats_single_value() {
        let mut s = OnlineStats::new();
        s.push(5.0);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-10);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn online_stats_merge_empty_cases() {
        let mut a = OnlineStats::new();
        let b = OnlineStats::new();
        a.merge(&b);
        assert_eq!(a.count(), 0);
        let mut c = OnlineStats::new();
        c.push(2.0);
        a.merge(&c);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 2.0);
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[3.0]), Some(3.0));
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0, 20.0, 30.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), Some(0.0));
        assert_eq!(percentile_sorted(&sorted, 100.0), Some(30.0));
        assert_eq!(percentile_sorted(&sorted, 50.0), Some(15.0));
        assert_eq!(percentile_sorted(&sorted, 25.0), Some(7.5));
        assert_eq!(percentile_sorted(&[], 50.0), None);
        assert_eq!(percentile_sorted(&[7.0], 99.0), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_bad_p() {
        percentile_sorted(&[1.0], 101.0);
    }

    #[test]
    fn summary_matches_manual() {
        let s = Summary::from_values(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.count, 4);
        assert!(Summary::from_values(&[]).is_none());
    }

    #[test]
    fn mean_empty_and_values() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
