//! A tiny `--key value` / `--flag` command-line parser (no external
//! dependency; the workspace's binaries need a handful of knobs, not a
//! CLI framework). Used by the experiment harness (`kmeans-bench`) and
//! the `skm` command-line tool (`kmeans-cli`).

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Clone, Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
    positionals: Vec<String>,
}

impl Args {
    /// Parses `std::env::args()`.
    pub fn parse() -> Self {
        Self::from_tokens(std::env::args().skip(1))
    }

    /// Parses an explicit token list (exposed for tests).
    pub fn from_tokens<I: IntoIterator<Item = String>>(tokens: I) -> Self {
        let mut args = Args::default();
        let mut iter = tokens.into_iter().peekable();
        while let Some(token) = iter.next() {
            let Some(name) = token.strip_prefix("--") else {
                // Bare tokens are positionals (e.g. the action and file of
                // `skm trace summarize FILE`); commands that take none
                // simply never read them.
                args.positionals.push(token);
                continue;
            };
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = iter.next().expect("peeked");
                    args.values.insert(name.to_string(), value);
                }
                _ => args.flags.push(name.to_string()),
            }
        }
        args
    }

    /// Boolean flag presence (`--full`).
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The `i`th bare (non-`--`) token, in command-line order.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// String value with default.
    pub fn str_or(&self, name: &str, default: &str) -> String {
        self.values
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// `usize` value with default; panics with a clear message on garbage.
    pub fn usize_or(&self, name: &str, default: usize) -> usize {
        match self.values.get(name) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("--{name} expects an integer, got '{v}'")),
        }
    }

    /// `u64` value with default.
    pub fn u64_or(&self, name: &str, default: u64) -> u64 {
        match self.values.get(name) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("--{name} expects an integer, got '{v}'")),
        }
    }

    /// `f64` value with default.
    pub fn f64_or(&self, name: &str, default: f64) -> f64 {
        match self.values.get(name) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("--{name} expects a number, got '{v}'")),
        }
    }

    /// Comma-separated `usize` list with default.
    pub fn usize_list_or(&self, name: &str, default: &[usize]) -> Vec<usize> {
        match self.values.get(name) {
            None => default.to_vec(),
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("--{name} expects integers, got '{s}'"))
                })
                .collect(),
        }
    }

    /// Comma-separated `f64` list with default.
    pub fn f64_list_or(&self, name: &str, default: &[f64]) -> Vec<f64> {
        match self.values.get(name) {
            None => default.to_vec(),
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("--{name} expects numbers, got '{s}'"))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::from_tokens(s.split_whitespace().map(String::from))
    }

    #[test]
    fn values_flags_and_defaults() {
        let a = parse("--runs 11 --full --seed 7 --ks 20,50,100");
        assert_eq!(a.usize_or("runs", 3), 11);
        assert_eq!(a.u64_or("seed", 0), 7);
        assert!(a.flag("full"));
        assert!(!a.flag("quick"));
        assert_eq!(a.usize_or("missing", 5), 5);
        assert_eq!(a.usize_list_or("ks", &[1]), vec![20, 50, 100]);
        assert_eq!(a.f64_list_or("ls", &[0.5, 2.0]), vec![0.5, 2.0]);
        assert_eq!(a.str_or("mode", "bernoulli"), "bernoulli");
    }

    #[test]
    fn flag_followed_by_flag() {
        let a = parse("--full --verbose --n 10");
        assert!(a.flag("full"));
        assert!(a.flag("verbose"));
        assert_eq!(a.usize_or("n", 0), 10);
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn garbage_integer_panics() {
        parse("--runs abc").usize_or("runs", 1);
    }
}
