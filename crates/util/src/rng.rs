//! Deterministic, splittable pseudo-random number generation.
//!
//! The generator is **Xoshiro256++** (Blackman & Vigna, 2018): 256 bits of
//! state, period 2²⁵⁶ − 1, excellent statistical quality, and trivially
//! portable. State initialization and stream derivation use **SplitMix64**
//! (Steele, Lea & Flood, 2014), the standard recommendation of the Xoshiro
//! authors: feeding sequential SplitMix64 outputs into the state avoids the
//! all-zero trap and decorrelates nearby seeds.
//!
//! Streams are derived *functionally*: [`Rng::derive`] hashes a base seed
//! together with a list of tags (e.g. `[round, shard_index]`) so any unit of
//! parallel work can reconstruct its generator without communication. This is
//! what makes the parallel k-means|| implementation bit-deterministic across
//! thread counts.

/// One step of the SplitMix64 generator; also used as a 64-bit mixer.
///
/// Advances `state` by the golden-gamma constant and returns a mixed output.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a single value through the SplitMix64 finalizer (stateless).
#[inline]
pub fn mix64(value: u64) -> u64 {
    let mut s = value;
    splitmix64(&mut s)
}

/// A deterministic pseudo-random number generator (Xoshiro256++ core).
///
/// Two generators constructed from the same seed (or derived with the same
/// tags) produce identical sequences on every platform.
///
/// ```
/// use kmeans_util::Rng;
/// let mut a = Rng::new(7);
/// let mut b = Rng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f64>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The 256-bit state is filled with four SplitMix64 outputs, per the
    /// Xoshiro authors' seeding recommendation.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            spare_normal: None,
        }
    }

    /// Derives an independent stream from a base seed and a list of tags.
    ///
    /// The mapping is a pure function of `(seed, tags)`: it hash-chains each
    /// tag into the seed with SplitMix64 before expanding the state. Use one
    /// tag per nesting level, e.g. `Rng::derive(seed, &[round, shard])`.
    ///
    /// ```
    /// use kmeans_util::Rng;
    /// let mut a = Rng::derive(1, &[2, 3]);
    /// let mut b = Rng::derive(1, &[2, 4]);
    /// assert_ne!(a.next_u64(), b.next_u64());
    /// ```
    pub fn derive(seed: u64, tags: &[u64]) -> Self {
        let mut acc = mix64(seed);
        for &tag in tags {
            // XOR with a mixed tag, then re-mix, so that (seed, [a, b]) and
            // (seed, [b, a]) land in unrelated states.
            acc = mix64(acc ^ mix64(tag ^ 0xA076_1D64_78BD_642F));
        }
        Rng::new(acc)
    }

    /// Splits off a child generator, advancing `self`.
    ///
    /// Unlike [`Rng::derive`], this consumes entropy from the parent, so it
    /// is suited to sequential set-up code rather than parallel workers.
    pub fn split(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Returns the next 64 uniformly distributed bits (Xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 uniformly distributed bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits: the mantissa width of an f64.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in the open interval `(0, 1]`.
    ///
    /// Useful when a logarithm of the variate is taken (e.g. exponential
    /// sampling, Efraimidis–Spirakis keys), where `ln(0)` must be avoided.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, n)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased and
    /// avoids the modulo operation on the hot path.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn range_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range_u64: empty range");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            // Rejection zone to make the mapping exactly uniform.
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn range_usize(&mut self, n: usize) -> usize {
        self.range_u64(n as u64) as usize
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Returns a standard normal variate (mean 0, variance 1).
    ///
    /// Box–Muller transform; the second variate of each pair is cached, so
    /// amortized cost is one `ln`/`sqrt` plus one `sin`/`cos` per call.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        let u1 = self.next_f64_open();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = core::f64::consts::TAU * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Returns a normal variate with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Fills `out` with standard normal variates.
    pub fn fill_normal(&mut self, out: &mut [f64]) {
        for v in out {
            *v = self.normal();
        }
    }

    /// Returns an exponential variate with the given rate (mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    #[inline]
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential: rate must be positive");
        -self.next_f64_open().ln() / rate
    }

    /// Returns a log-normal variate: `exp(N(mu, sigma))`.
    #[inline]
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(i + 1);
            items.swap(i, j);
        }
    }

    /// Chooses a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_xoshiro() {
        // Regression pin: the sequence must never change across refactors,
        // or every experiment in EXPERIMENTS.md becomes irreproducible.
        let mut rng = Rng::new(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut rng2 = Rng::new(0);
        let again: Vec<u64> = (0..4).map(|_| rng2.next_u64()).collect();
        assert_eq!(first, again);
        // Distinct seeds should diverge immediately.
        let mut rng3 = Rng::new(1);
        assert_ne!(first[0], rng3.next_u64());
    }

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for SplitMix64 with seed 1234567, from the
        // public-domain reference implementation by Sebastiano Vigna.
        let mut s = 1234567u64;
        let v1 = splitmix64(&mut s);
        let v2 = splitmix64(&mut s);
        assert_eq!(v1, 6457827717110365317);
        assert_eq!(v2, 3203168211198807973);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = Rng::new(42);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn uniform_mean_and_variance() {
        let mut rng = Rng::new(9);
        let n = 200_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.next_f64();
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var {var}");
    }

    #[test]
    fn range_bounds_and_uniformity() {
        let mut rng = Rng::new(3);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[rng.range_usize(7)] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10 000; allow 6 sigma (~600).
            assert!((c as i64 - 10_000).abs() < 700, "counts {counts:?}");
        }
    }

    #[test]
    fn range_handles_full_u64_domain() {
        let mut rng = Rng::new(5);
        for _ in 0..100 {
            assert!(rng.range_u64(u64::MAX) < u64::MAX);
            assert_eq!(rng.range_u64(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn range_zero_panics() {
        Rng::new(0).range_u64(0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::new(11);
        let n = 200_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let z = rng.normal();
            sum += z;
            sum_sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_with_scales_correctly() {
        let mut rng = Rng::new(12);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += rng.normal_with(10.0, 2.0);
        }
        assert!((sum / n as f64 - 10.0).abs() < 0.05);
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Rng::new(13);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += rng.exponential(2.0);
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn bernoulli_edge_cases() {
        let mut rng = Rng::new(14);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        assert!(!rng.bernoulli(-1.0));
        assert!(rng.bernoulli(2.0));
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }

    #[test]
    fn derive_is_pure_and_tag_sensitive() {
        let mut a = Rng::derive(99, &[1, 2]);
        let mut b = Rng::derive(99, &[1, 2]);
        assert_eq!(a.next_u64(), b.next_u64());
        // Order of tags matters.
        let mut c = Rng::derive(99, &[2, 1]);
        let mut d = Rng::derive(99, &[1, 2]);
        assert_ne!(c.next_u64(), d.next_u64());
        // Different depth matters.
        let mut e = Rng::derive(99, &[1]);
        let mut f = Rng::derive(99, &[1, 0]);
        assert_ne!(e.next_u64(), f.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(21);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn shuffle_handles_tiny_inputs() {
        let mut rng = Rng::new(22);
        let mut empty: [u8; 0] = [];
        rng.shuffle(&mut empty);
        let mut one = [7u8];
        rng.shuffle(&mut one);
        assert_eq!(one, [7]);
    }

    #[test]
    fn split_children_are_independent() {
        let mut parent = Rng::new(31);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = Rng::new(41);
        for _ in 0..1000 {
            assert!(rng.lognormal(0.0, 3.0) > 0.0);
        }
    }
}
