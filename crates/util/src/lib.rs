//! Deterministic randomness, sampling, and statistics substrate for the
//! `scalable-kmeans` workspace.
//!
//! The experiments in *Scalable K-Means++* (Bahmani et al., VLDB 2012) are
//! all randomized: every table reports the median over 11 runs and every
//! figure a median over seeds. Reproducing them faithfully requires a random
//! number generator that is
//!
//! 1. **portable** — bit-identical output on every platform, independent of
//!    the standard library's hash seeds or OS entropy, and
//! 2. **splittable** — each logical unit of parallel work (a shard of the
//!    dataset, a round of the algorithm) must be able to derive its own
//!    independent stream from `(seed, tags...)` so that results do not
//!    depend on thread count or scheduling.
//!
//! No off-the-shelf crate is used; the RNG ([`rng::Rng`], Xoshiro256++ seeded
//! through SplitMix64) and all weighted-sampling routines are implemented
//! here from the published algorithms.
//!
//! Modules:
//!
//! * [`rng`] — SplitMix64 / Xoshiro256++, uniform and Gaussian variates,
//!   stream derivation.
//! * [`sampling`] — the weighted-sampling toolkit used by k-means++ and
//!   k-means||: cumulative (binary-search) sampling, the alias method,
//!   Efraimidis–Spirakis weighted sampling *without* replacement, Floyd's
//!   distinct uniform sampling and reservoir sampling.
//! * [`stats`] — Welford online moments, medians and percentiles used by the
//!   experiment harness.
//! * [`timing`] — a small stopwatch utility.
//! * [`cli`] — the minimal `--key value` argument parser shared by the
//!   workspace binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod rng;
pub mod sampling;
pub mod stats;
pub mod timing;

pub use rng::Rng;
pub use stats::OnlineStats;
