//! Property-based tests for the randomness/sampling/statistics substrate.

use kmeans_util::sampling::{
    uniform_distinct, weighted_distinct, weighted_pick, AliasSampler, CumulativeSampler,
};
use kmeans_util::stats::{median, percentile_sorted, OnlineStats, Summary};
use kmeans_util::Rng;
use proptest::prelude::*;

/// Strategy: non-empty weight vectors with at least one positive entry.
fn weight_vecs() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..1e6, 1..200)
        .prop_filter("at least one positive weight", |w| {
            w.iter().any(|&x| x > 0.0)
        })
}

proptest! {
    #[test]
    fn alias_table_encodes_exact_distribution(weights in weight_vecs()) {
        // The alias table is not just "statistically close": the induced
        // distribution (1/n)·prob[c] routed to c plus (1/n)·(1−prob[c])
        // routed to alias[c] must reproduce the normalized weights exactly
        // (up to fp error). We recover it by drawing with a stubbed RNG...
        // simpler: measure via the public API against the cumulative
        // sampler on a fine grid of outcomes.
        let sampler = AliasSampler::new(&weights).unwrap();
        let total: f64 = weights.iter().sum();
        // Exhaustively enumerate the table through sampling many draws is
        // statistical; instead check structural invariants plus agreement
        // of empirical mass on a modest budget for small inputs.
        prop_assert_eq!(sampler.len(), weights.len());
        let mut rng = Rng::new(17);
        let draws = 30_000;
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            let i = sampler.sample(&mut rng);
            prop_assert!(i < weights.len());
            counts[i] += 1;
        }
        // Zero-weight categories must never be drawn.
        for (i, &w) in weights.iter().enumerate() {
            if w == 0.0 {
                prop_assert_eq!(counts[i], 0, "zero-weight category {} drawn", i);
            }
        }
        // The heaviest category's empirical mass is within 5 sigma.
        let (argmax, &wmax) = weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let p = wmax / total;
        let sigma = (p * (1.0 - p) / draws as f64).sqrt();
        let emp = counts[argmax] as f64 / draws as f64;
        prop_assert!((emp - p).abs() < 5.0 * sigma + 0.005,
            "heaviest category off: emp={} p={}", emp, p);
    }

    #[test]
    fn cumulative_never_returns_zero_weight(weights in weight_vecs(), seed in 0u64..1000) {
        let sampler = CumulativeSampler::new(&weights).unwrap();
        let mut rng = Rng::new(seed);
        for _ in 0..200 {
            let i = sampler.sample(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "sampled zero-weight index {}", i);
        }
    }

    #[test]
    fn weighted_pick_agrees_with_support(weights in weight_vecs(), seed in 0u64..1000) {
        let total: f64 = weights.iter().sum();
        let mut rng = Rng::new(seed);
        for _ in 0..100 {
            let i = weighted_pick(&weights, total, &mut rng).unwrap();
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0);
        }
    }

    #[test]
    fn weighted_distinct_invariants(
        weights in weight_vecs(),
        m in 0usize..50,
        seed in 0u64..1000,
    ) {
        let mut rng = Rng::new(seed);
        let sel = weighted_distinct(&weights, m, &mut rng);
        let positive = weights.iter().filter(|&&w| w > 0.0).count();
        prop_assert_eq!(sel.len(), m.min(positive));
        prop_assert!(sel.windows(2).all(|w| w[0] < w[1]), "not sorted/distinct");
        prop_assert!(sel.iter().all(|&i| weights[i] > 0.0));
    }

    #[test]
    fn uniform_distinct_invariants(n in 1usize..500, seed in 0u64..1000) {
        let mut rng = Rng::new(seed);
        let m = (n / 2).max(1);
        let sel = uniform_distinct(n, m, &mut rng);
        prop_assert_eq!(sel.len(), m);
        prop_assert!(sel.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(sel.iter().all(|&i| i < n));
    }

    #[test]
    fn rng_range_is_in_bounds(seed in any::<u64>(), n in 1u64..u64::MAX) {
        let mut rng = Rng::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.range_u64(n) < n);
        }
    }

    #[test]
    fn rng_derive_deterministic(seed in any::<u64>(), tags in proptest::collection::vec(any::<u64>(), 0..5)) {
        let mut a = Rng::derive(seed, &tags);
        let mut b = Rng::derive(seed, &tags);
        for _ in 0..10 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn median_lies_between_extremes(values in proptest::collection::vec(-1e9f64..1e9, 1..100)) {
        let m = median(&values).unwrap();
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo && m <= hi);
    }

    #[test]
    fn percentiles_are_monotone(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let mut sorted = values;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let v = percentile_sorted(&sorted, p).unwrap();
            prop_assert!(v >= prev, "percentile not monotone at p={}", p);
            prev = v;
        }
    }

    #[test]
    fn welford_merge_equals_sequential(
        xs in proptest::collection::vec(-1e6f64..1e6, 0..200),
        split in 0usize..200,
    ) {
        let split = split.min(xs.len());
        let mut whole = OnlineStats::new();
        for &x in &xs { whole.push(x); }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..split] { a.push(x); }
        for &x in &xs[split..] { b.push(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        if !xs.is_empty() {
            prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
            prop_assert!(
                (a.sample_variance() - whole.sample_variance()).abs()
                    <= 1e-6 * (1.0 + whole.sample_variance().abs())
            );
        }
    }

    #[test]
    fn summary_orders_quantiles(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let s = Summary::from_values(&values).unwrap();
        prop_assert!(s.min <= s.p25);
        prop_assert!(s.p25 <= s.median);
        prop_assert!(s.median <= s.p75);
        prop_assert!(s.p75 <= s.max);
        prop_assert!(s.mean >= s.min && s.mean <= s.max);
    }
}
