//! `skm` — command-line k-means clustering with k-means|| seeding.
//!
//! See `skm help` or the crate docs ([`kmeans_cli`]) for usage.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().unwrap_or_else(|| "help".to_string());
    let args = kmeans_util::cli::Args::from_tokens(argv);
    match kmeans_cli::dispatch(&command, &args, &mut std::io::stdout().lock()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("skm {command}: error: {e}");
            ExitCode::FAILURE
        }
    }
}
