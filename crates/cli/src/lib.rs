//! `skm` — command-line k-means clustering with pluggable seeding and
//! refinement (any `--init` composes with any `--refine`).
//!
//! Subcommands:
//!
//! ```text
//! skm generate --dataset gauss|spam|kdd --out data.csv [--n N] [--k K]
//!              [--variance R] [--seed S] [--no-labels]
//! skm fit      --input data.csv --k K --centers-out centers.csv
//!              [--labels]
//!              [--init random|kmeans++|kmeans-par|afk-mc2|partition|coreset]
//!              [--refine lloyd|hamerly|minibatch|none]
//!              [--factor F] [--rounds R] [--chain M] [--groups G]
//!              [--coreset-size C] [--batch-size B] [--batch-iters I]
//!              [--max-iters I] [--tol T] [--seed S] [--threads T]
//!              [--assignments-out labels.csv]
//! skm predict  --input new.csv --centers centers.csv --out labels.csv
//! skm evaluate --input data.csv --centers centers.csv [--labels]
//!              [--silhouette-sample N]
//! skm help
//! ```
//!
//! CSV conventions follow `kmeans-data`: plain comma-separated floats, an
//! optional header row (auto-detected), and — with `--labels` — an integer
//! class label in the last column (used only for evaluation metrics).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use kmeans_cluster::RetryPolicy;
use kmeans_core::init::KMeansParallelConfig;
use kmeans_core::lloyd::LloydConfig;
use kmeans_core::metrics::{adjusted_rand_index, nmi, purity, silhouette_sampled};
use kmeans_core::minibatch::MiniBatchConfig;
use kmeans_core::model::KMeans;
use kmeans_core::pipeline;
use kmeans_data::blockfile::{csv_to_block_file, is_block_file, BlockFileSource};
use kmeans_data::chunked::{ChunkedSource, CsvSource};
use kmeans_data::io::{read_csv, write_csv, LabelColumn};
use kmeans_data::modelfile::{is_model_file, load_model_file};
use kmeans_data::synth::{GaussMixture, KddLike, SpamLike};
use kmeans_data::{Dataset, PointMatrix};
use kmeans_obs::{parse_chrome_trace, write_chrome_trace, ArgValue, Recorder, SpanEvent};
use kmeans_par::Parallelism;
use kmeans_serve::{
    EngineConfig, ServeClient, ServeEngine, TcpServeServer, DEFAULT_MAX_BATCH_POINTS,
    DEFAULT_QUEUE_CAP_POINTS,
};
use kmeans_streaming::partition::PartitionConfig;
use kmeans_util::cli::Args;
use std::fmt;
use std::io::Write;
use std::sync::Arc;

/// Errors surfaced to the terminal user.
#[derive(Debug)]
pub enum CliError {
    /// Unknown subcommand or invalid flag combination.
    Usage(String),
    /// Underlying data-layer failure (I/O, parsing, shape).
    Data(kmeans_data::DataError),
    /// Underlying clustering failure.
    KMeans(kmeans_core::KMeansError),
    /// Distributed-runtime failure (connection, protocol, worker).
    Cluster(kmeans_cluster::ClusterError),
    /// Output-write failure.
    Io(std::io::Error),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg} (run `skm help`)"),
            CliError::Data(e) => write!(f, "{e}"),
            CliError::KMeans(e) => write!(f, "{e}"),
            CliError::Cluster(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<kmeans_data::DataError> for CliError {
    fn from(e: kmeans_data::DataError) -> Self {
        CliError::Data(e)
    }
}

impl From<kmeans_core::KMeansError> for CliError {
    fn from(e: kmeans_core::KMeansError) -> Self {
        CliError::KMeans(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<kmeans_cluster::ClusterError> for CliError {
    fn from(e: kmeans_cluster::ClusterError) -> Self {
        CliError::Cluster(e)
    }
}

/// Dispatches one subcommand, writing human-readable output to `out`.
pub fn dispatch(command: &str, args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    match command {
        "generate" => generate(args, out),
        "fit" => fit(args, out),
        "convert" => convert(args, out),
        "shard" => shard(args, out),
        "worker" => worker(args, out),
        "serve" => serve(args, out),
        "drain" => drain(args, out),
        "predict" => predict(args, out),
        "evaluate" => evaluate(args, out),
        "trace" => trace(args, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{}", usage())?;
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown subcommand '{other}'"))),
    }
}

/// The help text.
pub fn usage() -> &'static str {
    "skm — k-means clustering with scalable k-means|| seeding (VLDB 2012)

USAGE:
  skm generate --dataset gauss|spam|kdd --out FILE [--n N] [--k K]
               [--variance R] [--seed S] [--no-labels]
  skm fit      --input FILE --k K --centers-out FILE [--labels]
               [--init random|kmeans++|kmeans-par|afk-mc2|partition|coreset]
               [--refine lloyd|hamerly|minibatch|none]
               [--factor F] [--rounds R]        (kmeans-par: l = F*k, R rounds)
               [--chain M]                      (afk-mc2: Markov chain length)
               [--groups G]                     (partition: group count, default sqrt(n/k))
               [--coreset-size C]               (coreset: bucket size, default 200)
               [--batch-size B] [--batch-iters I]  (minibatch refinement)
               [--max-iters I]                  (lloyd/hamerly refinement)
               [--tol T]                        (lloyd only: relative-improvement stop)
               [--seed S] [--threads T] [--shard-size N] [--assignments-out FILE]
               [--chunked]                      (out-of-core: stream FILE block by block)
               [--block-rows N]                 (chunked csv input: rows per block, default 8192)
               [--mem-budget SIZE]              (chunked block-file input: e.g. 64m; default 256m)
               [--distributed --workers A,B,C]  (run on remote skm workers; no --input)
               [--io-timeout SECS]              (distributed: per-socket timeout, default 60)
               [--manifest FILE]                (distributed: cross-check an skm-shard manifest)
               [--checkpoint FILE]              (distributed: resumable round journal, SKMCKPT1)
               [--save-model FILE]              (persist the fit as an SKMMDL01 model file)
               [--trace FILE]                   (flight recorder: Chrome/perfetto trace JSON)
  skm convert  --input data.csv --out data.skmb [--block-rows N] [--labels]
  skm shard    --input data.skmb --workers N --out-prefix PATH [--align ROWS]
  skm worker   --listen ADDR --data shard.skmb [--mem-budget SIZE] [--threads T]
               [--io-timeout SECS] [--once]
               [--log]                          (structured per-frame event log on stderr)
  skm serve    --listen ADDR --model model.skmm [--threads T] [--batch-cap POINTS]
               [--queue-cap POINTS]             (admission cap; excess load is shed typed)
               [--io-timeout SECS] [--once]
               [--metrics-listen ADDR]          (plain-HTTP GET /metrics + /healthz + /readyz)
               [--metrics-timeout SECS]         (per-scrape socket timeout, default 5)
  skm drain    --server ADDR [--io-timeout SECS]  (graceful drain: finish admitted work, exit)
  skm predict  --input FILE (--centers FILE | --server A[,B,...]) --out FILE
               [--deadline-ms MS] [--chunk-points N] [--retries N]
  skm evaluate --input FILE (--centers FILE | --server A[,B,...]) [--labels]
               [--deadline-ms MS] [--retries N] [--silhouette-sample N]
  skm trace    summarize FILE                   (per-span breakdown of a --trace capture)
  skm help

Every --init seeder composes with every --refine refiner; --refine none
keeps the seed centers (seed-cost studies). Runs are deterministic per
--seed for any --threads value.

Out of core: `skm convert` rewrites a CSV as a binary block file (one
streaming pass), and `skm fit --chunked` streams either format without
materializing the dataset — results are bit-identical to the in-memory
fit for every --init/--refine except afk-mc2, hamerly (no chunked
formulation) and partition (true streaming variant). --chunked drops
ground-truth label metrics; block size never changes results.

Distributed: `skm shard` splits a block file into per-worker shard files
(boundaries on the --align grid, default 8192 = the default shard size),
each `skm worker` serves one shard, and `skm fit --distributed --workers
a,b,c` runs the configured pipeline across them — bit-identical to the
single-node fit of the concatenated data for any worker count (supported
stages: --init random|kmeans-par, --refine lloyd|minibatch|none; the
same backend-generic round drivers run every mode). Workers own the
data, so --distributed takes no --input; worker order in --workers is
global row order. Fits are fault tolerant: a worker that dies mid-fit is
re-dialed with backoff and caught up (restart `skm worker` on the same
address), and --checkpoint FILE journals round results so a killed
coordinator re-run with the same command resumes bit-identically.

Serving: `skm fit --save-model model.skmm` persists the fitted model,
`skm serve` answers predict/cost queries over TCP from one prepared
assignment kernel per model revision (concurrent clients micro-batch
into shared kernel sweeps; models hot-swap without downtime), and
`--server ADDR` routes `skm predict` / `skm evaluate` to a running
server — answers are bit-identical to the local path on the same model.
`--centers` also accepts a model file directly (detected by magic).

Serving robustness: `--queue-cap` bounds admitted-but-unanswered points;
excess requests are shed immediately with a typed overload error (never
queued into collapse), and `--deadline-ms` attaches a budget so a
request still queued past it draws a typed deadline error instead of a
stale answer. `--server` accepts a comma-separated replica list: the
client fails over on disconnect/drain/overload with bounded jittered
backoff and re-sends (predict is idempotent), and `--chunk-points`
(default: the server's batch cap) streams large predict inputs as
bounded chunks with byte-identical concatenated labels. `skm drain`
rolls a server out gracefully: admitted work is answered, new requests
are rejected typed, /readyz flips to 503, and the process exits.

Observability: `skm fit --trace FILE` records every round, pipeline
stage, and coordinator conversation as Chrome trace-event JSON (open in
https://ui.perfetto.dev or summarize with `skm trace summarize FILE`);
tracing reads results, never touches them — traced fits stay
bit-identical. `skm serve --metrics-listen ADDR` exposes request/batch
latency quantiles and per-revision counters at GET /metrics in the
Prometheus text format, and `skm worker --log` prints one structured
line per served frame (message, rows, bytes, duration) on stderr."
}

fn require(args: &Args, name: &str) -> Result<String, CliError> {
    let v = args.str_or(name, "");
    if v.is_empty() {
        return Err(CliError::Usage(format!("missing required --{name}")));
    }
    Ok(v)
}

fn label_mode(args: &Args) -> LabelColumn {
    if args.flag("labels") {
        LabelColumn::Last
    } else {
        LabelColumn::None
    }
}

fn generate(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let dataset = require(args, "dataset")?;
    let path = require(args, "out")?;
    let seed = args.u64_or("seed", 0);
    let synth = match dataset.as_str() {
        "gauss" => GaussMixture::new(args.usize_or("k", 50))
            .points(args.usize_or("n", 10_000))
            .center_variance(args.f64_or("variance", 1.0))
            .generate(seed)?,
        "spam" => SpamLike::new()
            .points(args.usize_or("n", 4_601))
            .generate(seed)?,
        "kdd" => KddLike::new(args.usize_or("n", 100_000)).generate(seed)?,
        other => {
            return Err(CliError::Usage(format!(
                "unknown --dataset '{other}' (expected gauss|spam|kdd)"
            )))
        }
    };
    let dataset = if args.flag("no-labels") {
        Dataset::new(synth.dataset.name(), synth.dataset.points().clone())
    } else {
        synth.dataset
    };
    write_csv(&path, &dataset)?;
    writeln!(
        out,
        "wrote {} points x {} dims to {path}{}",
        dataset.len(),
        dataset.dim(),
        if dataset.labels().is_some() {
            " (ground-truth labels in last column)"
        } else {
            ""
        }
    )?;
    Ok(())
}

fn parallelism(args: &Args) -> Parallelism {
    match args.usize_or("threads", 0) {
        0 => Parallelism::Auto,
        t => Parallelism::Threads(t),
    }
}

/// Flag ownership for one pipeline axis: which stage values each
/// stage-specific flag configures. One table per axis — extending a stage
/// with a new flag means one new row here, nothing per match arm.
type FlagOwners = &'static [(&'static str, &'static [&'static str], &'static str)];

/// `--init` flags: (flag, owning values, display name for the error).
const INIT_FLAGS: FlagOwners = &[
    ("factor", &["kmeans-par"], "kmeans-par"),
    ("rounds", &["kmeans-par"], "kmeans-par"),
    ("chain", &["afk-mc2"], "afk-mc2"),
    ("groups", &["partition"], "partition"),
    ("coreset-size", &["coreset"], "coreset"),
];

/// `--refine` flags.
const REFINE_FLAGS: FlagOwners = &[
    ("max-iters", &["lloyd", "hamerly"], "lloyd|hamerly"),
    // hamerly stops on assignment stability only (no exact per-iteration
    // potential), so a tolerance belongs to lloyd alone.
    ("tol", &["lloyd"], "lloyd"),
    ("batch-size", &["minibatch"], "minibatch"),
    ("batch-iters", &["minibatch"], "minibatch"),
];

/// Rejects stage-specific flags passed next to a stage they do not
/// configure — silently dropping one would make e.g. a `--rounds` sweep
/// against the wrong seeder produce identical outputs with no warning.
fn reject_foreign_flags(
    args: &Args,
    axis: &str,
    chosen: &str,
    table: FlagOwners,
) -> Result<(), CliError> {
    for (flag, owners, display) in table {
        if !owners.contains(&chosen) && !args.str_or(flag, "").is_empty() {
            return Err(CliError::Usage(format!(
                "--{flag} only applies to {axis} {display}, not '{chosen}'"
            )));
        }
    }
    Ok(())
}

/// Installs the `--init` seeding stage on the builder. Every seeder in
/// the workspace — core and streaming — is reachable here.
fn apply_init(builder: KMeans, args: &Args) -> Result<KMeans, CliError> {
    // Canonicalize synonyms first so the flag table matches one name.
    let init = match args.str_or("init", "kmeans-par").as_str() {
        "kmeanspp" => "kmeans++".to_string(),
        "kmeans||" => "kmeans-par".to_string(),
        "afkmc2" => "afk-mc2".to_string(),
        other => other.to_string(),
    };
    reject_foreign_flags(args, "--init", &init, INIT_FLAGS)?;
    Ok(match init.as_str() {
        "random" => builder.init(pipeline::Random),
        "kmeans++" => builder.init(pipeline::KMeansPlusPlus),
        "kmeans-par" => builder.init(pipeline::KMeansParallel(
            KMeansParallelConfig::default()
                .oversampling_factor(args.f64_or("factor", 2.0))
                .rounds(args.usize_or("rounds", 5)),
        )),
        "afk-mc2" => builder.init(pipeline::AfkMc2 {
            chain_length: args.usize_or("chain", 200),
        }),
        "partition" => builder.init(kmeans_streaming::Partition(PartitionConfig {
            groups: match args.usize_or("groups", 0) {
                0 if args.str_or("groups", "").is_empty() => None,
                0 => {
                    return Err(CliError::Usage(
                        "--groups must be at least 1 (omit for the sqrt(n/k) default)".into(),
                    ))
                }
                g => Some(g),
            },
        })),
        "coreset" => builder.init(kmeans_streaming::Coreset {
            coreset_size: args.usize_or("coreset-size", 200),
        }),
        other => {
            return Err(CliError::Usage(format!(
                "unknown --init '{other}' \
                 (expected random|kmeans++|kmeans-par|afk-mc2|partition|coreset)"
            )))
        }
    })
}

/// Installs the `--refine` stage on the builder. Flags belonging to a
/// different refiner are rejected rather than silently dropped (the same
/// fail-loudly rule the builder applies to its own Lloyd knobs).
fn apply_refine(builder: KMeans, args: &Args) -> Result<KMeans, CliError> {
    let lloyd_config = LloydConfig {
        max_iterations: args.usize_or("max-iters", 300),
        tol: args.f64_or("tol", 0.0),
    };
    let refine = args.str_or("refine", "lloyd");
    reject_foreign_flags(args, "--refine", &refine, REFINE_FLAGS)?;
    Ok(match refine.as_str() {
        "lloyd" => builder.refine(pipeline::Lloyd(lloyd_config)),
        "hamerly" => builder.refine(pipeline::HamerlyLloyd(lloyd_config)),
        "minibatch" => builder.refine(pipeline::MiniBatch(MiniBatchConfig {
            batch_size: args.usize_or("batch-size", 1_024),
            iterations: args.usize_or("batch-iters", 100),
        })),
        "none" => builder.refine(pipeline::NoRefine),
        other => {
            return Err(CliError::Usage(format!(
                "unknown --refine '{other}' (expected lloyd|hamerly|minibatch|none)"
            )))
        }
    })
}

/// Parses a byte size with an optional `k`/`m`/`g` suffix (binary units).
fn parse_size(value: &str, flag: &str) -> Result<u64, CliError> {
    let t = value.trim().to_ascii_lowercase();
    let (digits, mult) = match t.strip_suffix(['k', 'm', 'g']) {
        Some(d) => {
            let mult = match t.as_bytes()[t.len() - 1] {
                b'k' => 1u64 << 10,
                b'm' => 1 << 20,
                _ => 1 << 30,
            };
            (d, mult)
        }
        None => (t.as_str(), 1),
    };
    digits
        .parse::<u64>()
        .ok()
        .and_then(|n| n.checked_mul(mult))
        .ok_or_else(|| {
            CliError::Usage(format!(
                "--{flag} expects a byte size like 1048576, 64k, 16m or 1g, got '{value}'"
            ))
        })
}

/// Flags that only mean something under `--distributed` (rejected
/// without it, matching the `--chunked` precedent).
const DIST_FLAGS: &[&str] = &["workers", "io-timeout", "manifest", "checkpoint"];

fn fit(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let centers_path = require(args, "centers-out")?;
    let k = args.usize_or("k", 0);
    if k == 0 {
        return Err(CliError::Usage("missing required --k".into()));
    }
    let chunked = args.flag("chunked");
    let distributed = args.flag("distributed");
    if chunked && distributed {
        return Err(CliError::Usage(
            "--chunked and --distributed are mutually exclusive".into(),
        ));
    }
    if !chunked {
        for flag in ["block-rows", "mem-budget"] {
            if !args.str_or(flag, "").is_empty() {
                return Err(CliError::Usage(format!(
                    "--{flag} only applies to chunked fits (pass --chunked)"
                )));
            }
        }
    }
    if !distributed {
        for flag in DIST_FLAGS {
            if !args.str_or(flag, "").is_empty() {
                return Err(CliError::Usage(format!(
                    "--{flag} only applies to distributed fits (pass --distributed)"
                )));
            }
        }
    }
    let mut builder = KMeans::params(k)
        .seed(args.u64_or("seed", 0))
        .parallelism(parallelism(args));
    match args.usize_or("shard-size", 0) {
        0 if args.str_or("shard-size", "").is_empty() => {}
        0 => {
            return Err(CliError::Usage(
                "--shard-size must be at least 1 (omit for the 8192 default)".into(),
            ))
        }
        s => builder = builder.shard_size(s),
    }
    let builder = apply_refine(apply_init(builder, args)?, args)?;
    // --trace arms the flight recorder: every backend round, pipeline
    // stage, and (distributed) coordinator conversation lands in FILE as
    // Chrome trace-event JSON. The recorder only reads values flowing
    // past it, so a traced fit stays bit-identical to an untraced one.
    let trace_path = args.str_or("trace", "");
    let recorder = if trace_path.is_empty() {
        Recorder::disabled()
    } else {
        Recorder::monotonic()
    };
    let builder = builder.recorder(recorder.clone());
    if distributed {
        fit_distributed(args, builder, k, &centers_path, out)?;
        return write_trace_file(&trace_path, &recorder, out);
    }
    let input = require(args, "input")?;

    // Ground truth is only available on the in-memory CSV path; chunked
    // sources stream features alone.
    type FitData = (
        kmeans_core::model::KMeansModel,
        usize,
        usize,
        Option<Vec<u32>>,
        Option<Arc<dyn ChunkedSource>>,
    );
    let (model, n, dim, truth, source): FitData = if chunked {
        // Each chunked flag belongs to exactly one input format; one that
        // does not match the detected format is a usage error, not a
        // silent no-op (the same fail-loudly rule as the stage flags).
        let source: Arc<dyn ChunkedSource> = if is_block_file(&input) {
            if !args.str_or("block-rows", "").is_empty() {
                return Err(CliError::Usage(
                    "--block-rows only applies to chunked csv input; \
                     a block file fixes its own block size at conversion"
                        .into(),
                ));
            }
            if args.flag("labels") {
                return Err(CliError::Usage(
                    "--labels does not apply to block-file input: labels are \
                     dropped at conversion (`skm convert --labels`); a block \
                     file stores features only"
                        .into(),
                ));
            }
            let budget = parse_size(&args.str_or("mem-budget", "256m"), "mem-budget")?;
            Arc::new(BlockFileSource::open(&input, budget)?)
        } else {
            if !args.str_or("mem-budget", "").is_empty() {
                return Err(CliError::Usage(
                    "--mem-budget only applies to chunked block-file input \
                     (csv keeps exactly one block resident; `skm convert` first \
                     to get a budgeted cache)"
                        .into(),
                ));
            }
            let block_rows = args.usize_or("block-rows", 8192);
            Arc::new(CsvSource::open(&input, block_rows, label_mode(args))?)
        };
        let (n, dim) = (source.len(), source.dim());
        let model = builder
            .data_source_shared(Arc::clone(&source))
            .fit_chunked()?;
        (model, n, dim, None, Some(source))
    } else {
        let data = read_csv(&input, label_mode(args))?;
        let (n, dim) = (data.len(), data.dim());
        let model = builder.fit(data.points())?;
        let truth = data.labels().map(<[u32]>::to_vec);
        (model, n, dim, truth, None)
    };

    write_csv(
        &centers_path,
        &Dataset::new("centers", model.centers().clone()),
    )?;
    report_fit(out, &model, k, n, dim)?;
    writeln!(out, "centers -> {centers_path}")?;
    maybe_save_model(args, &model, out)?;

    if let Some(source) = source {
        let r = source.residency();
        let total = (n * dim * std::mem::size_of::<f64>()) as u64;
        writeln!(
            out,
            "chunked: peak resident {} B of {total} B feature data{}, \
             {} block loads, {} cache hits",
            r.peak_bytes,
            match r.budget_bytes {
                Some(b) => format!(" (budget {b} B)"),
                None => String::new(),
            },
            r.loads,
            r.hits,
        )?;
    }
    if let Some(truth) = truth {
        writeln!(
            out,
            "vs ground truth: nmi {:.4}, ari {:.4}, purity {:.4}",
            nmi(model.labels(), &truth),
            adjusted_rand_index(model.labels(), &truth),
            purity(model.labels(), &truth),
        )?;
    }
    let assignments = args.str_or("assignments-out", "");
    if !assignments.is_empty() {
        write_labels(&assignments, model.labels())?;
        writeln!(out, "assignments -> {assignments}")?;
    }
    write_trace_file(&trace_path, &recorder, out)?;
    Ok(())
}

/// `--trace FILE`: dump the recorder's timeline as one Chrome
/// trace-event JSON document (loadable in `chrome://tracing` and
/// perfetto, summarizable with `skm trace summarize`).
fn write_trace_file(path: &str, recorder: &Recorder, out: &mut dyn Write) -> Result<(), CliError> {
    if path.is_empty() {
        return Ok(());
    }
    let events = recorder.events();
    let file = std::fs::File::create(path)?;
    let mut writer = std::io::BufWriter::new(file);
    write_chrome_trace(&mut writer, &events)?;
    writer.flush()?;
    writeln!(out, "trace -> {path} ({} events)", events.len())?;
    Ok(())
}

/// `--save-model`: persist the fit as an `SKMMDL01` model file (the
/// format `skm serve` loads and `--centers` auto-detects).
fn maybe_save_model(
    args: &Args,
    model: &kmeans_core::model::KMeansModel,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let path = args.str_or("save-model", "");
    if !path.is_empty() {
        model.save(std::path::Path::new(&path))?;
        writeln!(out, "model -> {path} (SKMMDL01)")?;
    }
    Ok(())
}

/// The one-line fit summary shared by the local and distributed paths.
fn report_fit(
    out: &mut dyn Write,
    model: &kmeans_core::model::KMeansModel,
    k: usize,
    n: usize,
    dim: usize,
) -> Result<(), CliError> {
    writeln!(
        out,
        "fit k={k} on {n} points x {dim} dims: init={}, refine={}, \
         cost {:.6e}, seed cost {:.6e}, {} refine iterations ({}), \
         {} seeding passes, {} distance evals, {} norm-bound prunes",
        model.init_name(),
        model.refiner_name(),
        model.cost(),
        model.init_stats().seed_cost,
        model.iterations(),
        if model.converged() {
            "converged"
        } else if model.refiner_name() == "minibatch" {
            // A completed fixed-budget run, not a truncated one.
            "fixed budget"
        } else {
            "iteration cap"
        },
        model.init_stats().passes,
        model.distance_computations(),
        model.pruned_by_norm_bound(),
    )?;
    Ok(())
}

/// `skm fit --distributed`: run the configured pipeline on remote
/// workers. Workers own the data (no `--input`); the `--workers` list is
/// global row order.
fn fit_distributed(
    args: &Args,
    builder: KMeans,
    k: usize,
    centers_path: &str,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    use kmeans_cluster::FitDistributed;

    if !args.str_or("input", "").is_empty() {
        return Err(CliError::Usage(
            "--input does not apply to distributed fits: workers own the data \
             (start each with `skm worker --data shard.skmb`)"
                .into(),
        ));
    }
    if args.flag("labels") {
        return Err(CliError::Usage(
            "--labels does not apply to distributed fits: shard files store features only".into(),
        ));
    }
    let workers_arg = require(args, "workers")?;
    let addrs: Vec<String> = workers_arg
        .split(',')
        .map(|a| a.trim().to_string())
        .filter(|a| !a.is_empty())
        .collect();
    if addrs.is_empty() {
        return Err(CliError::Usage(
            "--workers expects a comma-separated list of host:port addresses".into(),
        ));
    }
    let timeout = std::time::Duration::from_secs(args.u64_or("io-timeout", 60).max(1));
    let mut cluster = kmeans_cluster::Cluster::connect(&addrs, Some(timeout))?;
    // Share the fit's recorder so coordinator conversation spans
    // (broadcast:*, recover:*) interleave with the round spans on one
    // timeline. A disabled recorder makes this a no-op.
    cluster.set_recorder(builder.configured_recorder().clone());

    let manifest_path = args.str_or("manifest", "");
    if !manifest_path.is_empty() {
        let manifest = kmeans_data::ShardManifest::load(&manifest_path)?;
        let summaries = cluster.worker_summaries();
        if manifest.shards.len() != summaries.len() {
            return Err(CliError::Usage(format!(
                "manifest lists {} shards but {} workers are connected",
                manifest.shards.len(),
                summaries.len()
            )));
        }
        if manifest.dim != cluster.dim() {
            return Err(CliError::Usage(format!(
                "manifest dim {} does not match worker dim {}",
                manifest.dim,
                cluster.dim()
            )));
        }
        for (i, (entry, summary)) in manifest.shards.iter().zip(&summaries).enumerate() {
            if entry.rows != summary.rows {
                return Err(CliError::Usage(format!(
                    "worker {i} serves {} rows but the manifest expects {} — is the \
                     --workers order the manifest's shard order?",
                    summary.rows, entry.rows
                )));
            }
        }
    }

    let (n, dim) = (cluster.global_n(), cluster.dim());
    let ckpt_path = args.str_or("checkpoint", "");
    let model = if ckpt_path.is_empty() {
        builder.fit_distributed(&mut cluster)
    } else {
        // Resumable fit: round results journal to an SKMCKPT1 file after
        // every round; re-running the same command after a coordinator
        // crash replays the journal and continues bit-identically. The
        // file is removed once the fit completes.
        builder.fit_distributed_checkpointed(&mut cluster, std::path::Path::new(&ckpt_path))
    }
    .map_err(CliError::KMeans)?;
    // Snapshot the round counter before `fetch_stats` — the stats fetch
    // is itself a broadcast round and would inflate the fit's count.
    let trips = cluster.round_trips();
    let worker_stats = cluster.fetch_stats()?;
    let summaries = cluster.worker_summaries();
    let job = cluster.job_stats();
    let passes = cluster.data_passes();
    let (sent, received) = (cluster.bytes_sent(), cluster.bytes_received());
    cluster.shutdown();

    write_csv(
        centers_path,
        &Dataset::new("centers", model.centers().clone()),
    )?;
    report_fit(out, &model, k, n, dim)?;
    writeln!(out, "centers -> {centers_path}")?;
    maybe_save_model(args, &model, out)?;
    writeln!(
        out,
        "distributed: {} workers, {passes} data passes, {trips} wire round trips, \
         {} B on the wire ({sent} B sent, {received} B received), coordinator blocked {:?}",
        summaries.len(),
        job.bytes_shuffled,
        job.map_wall,
    )?;
    for (i, (summary, stats)) in summaries.iter().zip(&worker_stats).enumerate() {
        writeln!(
            out,
            "  worker {i}: rows [{}..{}), {} B to / {} B from worker, \
             peak resident {} B{}, {} block loads, {} cache hits",
            summary.start_row,
            summary.start_row + summary.rows,
            summary.bytes_sent,
            summary.bytes_received,
            stats.peak_bytes,
            if stats.budget_bytes == u64::MAX {
                String::new()
            } else {
                format!(" (budget {} B)", stats.budget_bytes)
            },
            stats.loads,
            stats.hits,
        )?;
    }
    let assignments = args.str_or("assignments-out", "");
    if !assignments.is_empty() {
        write_labels(&assignments, model.labels())?;
        writeln!(out, "assignments -> {assignments}")?;
    }
    Ok(())
}

/// `skm shard`: split a block file into per-worker shard files plus a
/// manifest (`kmeans_data::shard`).
fn shard(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let input = require(args, "input")?;
    let out_prefix = require(args, "out-prefix")?;
    let workers = args.usize_or("workers", 0);
    if workers == 0 {
        return Err(CliError::Usage("missing required --workers".into()));
    }
    if !is_block_file(&input) {
        return Err(CliError::Usage(format!(
            "'{input}' is not an SKMBLK01 block file; run `skm convert` first"
        )));
    }
    // Default alignment: exactly the boundary grid a default-shard-size
    // fit will validate (`sum_shard_size_for` nests the accumulation grid
    // on the executor grid), probed from the input's row count. An
    // explicit --align matches an explicit fit --shard-size instead.
    let align = match args.usize_or("align", 0) {
        0 if args.str_or("align", "").is_empty() => {
            let probe = BlockFileSource::open(&input, u64::MAX / 2)?;
            kmeans_core::assign::sum_shard_size_for(
                kmeans_par::shards::DEFAULT_SHARD_SIZE,
                probe.len(),
            )
        }
        0 => {
            return Err(CliError::Usage(
                "--align must be at least 1 (omit to match the default fit shard grid)".into(),
            ))
        }
        a => a,
    };
    let manifest = kmeans_data::shard_block_file(&input, &out_prefix, workers, align)?;
    writeln!(
        out,
        "sharded {} points x {} dims into {} shards (boundaries on the {align}-row grid) \
         -> {out_prefix}.manifest",
        manifest.total_rows,
        manifest.dim,
        manifest.shards.len(),
    )?;
    for (i, s) in manifest.shards.iter().enumerate() {
        writeln!(
            out,
            "  shard {i}: rows [{}..{}) -> {}",
            s.start_row,
            s.start_row + s.rows,
            s.path
        )?;
    }
    Ok(())
}

/// `skm worker`: serve one shard of the data to a distributed
/// coordinator over TCP.
fn worker(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let listen = require(args, "listen")?;
    let data = require(args, "data")?;
    if !is_block_file(&data) {
        return Err(CliError::Usage(format!(
            "'{data}' is not an SKMBLK01 block file; worker shards come from \
             `skm convert` / `skm shard`"
        )));
    }
    let budget = parse_size(&args.str_or("mem-budget", "256m"), "mem-budget")?;
    let source = BlockFileSource::open(&data, budget)?;
    let timeout = std::time::Duration::from_secs(args.u64_or("io-timeout", 600).max(1));
    let once = args.flag("once");
    let server = kmeans_cluster::TcpWorkerServer::bind(&listen)?;
    writeln!(
        out,
        "worker serving {} rows x {} dims from {data} on {}{}",
        source.len(),
        source.dim(),
        server.local_addr()?,
        if once { " (one session)" } else { "" },
    )?;
    out.flush()?;
    let mut w = kmeans_cluster::Worker::from_boxed(Box::new(source), parallelism(args));
    if args.flag("log") {
        // --log: one structured line per served frame on stderr (stdout
        // stays machine-readable). The hook runs on the session thread,
        // so lines appear live while a coordinator drives the worker.
        w.set_recorder(Recorder::monotonic());
        w.set_frame_log(|ev| eprintln!("{}", frame_log_line(ev)));
    }
    server.serve(w, Some(timeout), once)?;
    Ok(())
}

/// One `--log` line: `frame:assign dur_us=123 rows=96 bytes=410`, the
/// span name followed by its duration and structured arguments.
fn frame_log_line(ev: &SpanEvent) -> String {
    let mut line = format!("[skm worker] {} dur_us={}", ev.name, ev.dur_ns / 1_000);
    for (name, value) in &ev.args {
        line.push_str(&format!(" {name}={value}"));
    }
    line
}

/// `skm serve`: the online assignment service — load an `SKMMDL01`
/// model and answer predict/cost queries over TCP, micro-batching
/// concurrent clients through one prepared kernel per model revision.
fn serve(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let listen = require(args, "listen")?;
    let model_path = require(args, "model")?;
    let batch_cap = match args.usize_or("batch-cap", 0) {
        0 if args.str_or("batch-cap", "").is_empty() => DEFAULT_MAX_BATCH_POINTS,
        0 => {
            return Err(CliError::Usage(format!(
                "--batch-cap must be at least 1 (omit for the {DEFAULT_MAX_BATCH_POINTS} default)"
            )))
        }
        c => c,
    };
    let queue_cap = match args.usize_or("queue-cap", 0) {
        0 if args.str_or("queue-cap", "").is_empty() => DEFAULT_QUEUE_CAP_POINTS,
        0 => {
            return Err(CliError::Usage(format!(
                "--queue-cap must be at least 1 (omit for the {DEFAULT_QUEUE_CAP_POINTS} default)"
            )))
        }
        c => c,
    };
    if !is_model_file(&model_path) {
        return Err(CliError::Usage(format!(
            "'{model_path}' is not an SKMMDL01 model file; save one with \
             `skm fit --save-model`"
        )));
    }
    let record = load_model_file(&model_path)?;
    let engine = ServeEngine::with_config(
        record,
        kmeans_par::Executor::new(parallelism(args)),
        EngineConfig {
            batch_cap,
            queue_cap,
            ..EngineConfig::default()
        },
    )?;
    let timeout = std::time::Duration::from_secs(args.u64_or("io-timeout", 600).max(1));
    let once = args.flag("once");
    let server = TcpServeServer::bind(&listen)?;
    let version = engine.current();
    writeln!(
        out,
        "serving k={} dim={} (init={}, refine={}, revision {}) from {model_path} on {}{}",
        version.predictor().k(),
        version.predictor().dim(),
        version.init_name,
        version.refiner_name,
        version.revision,
        server.local_addr()?,
        if once { " (one session)" } else { "" },
    )?;
    // --metrics-listen: a separate plain-HTTP port answering GET /metrics
    // with the engine's live counters and latency quantiles (Prometheus
    // text exposition) — curl-readable while the serve port is under load.
    let metrics_arg = args.str_or("metrics-listen", "");
    let metrics_handle = if metrics_arg.is_empty() {
        None
    } else {
        let scrape_timeout =
            std::time::Duration::from_secs(args.u64_or("metrics-timeout", 5).max(1));
        let metrics = kmeans_serve::MetricsServer::bind_with_timeout(&metrics_arg, scrape_timeout)?;
        writeln!(out, "metrics on http://{}/metrics", metrics.local_addr()?)?;
        Some(metrics.spawn(engine.clone()))
    };
    out.flush()?;
    let shutdown = engine.clone();
    let served = server.serve(engine, Some(timeout), once);
    if let Some(handle) = metrics_handle {
        // A --once session may end without a Shutdown message; raise the
        // flag ourselves so the metrics accept loop exits and joins.
        shutdown.request_shutdown();
        match handle.join() {
            Ok(result) => result?,
            Err(_) => {
                return Err(CliError::Io(std::io::Error::other(
                    "metrics endpoint thread panicked",
                )))
            }
        }
    }
    served?;
    Ok(())
}

/// Loads query centers from either an `SKMMDL01` model file (detected by
/// magic — the same loader `skm serve` uses) or a centers CSV.
fn load_centers(path: &str) -> Result<PointMatrix, CliError> {
    if is_model_file(path) {
        Ok(load_model_file(path)?.centers)
    } else {
        Ok(read_csv(path, LabelColumn::None)?.into_parts().1)
    }
}

/// `--server` for predict/evaluate: reject `--centers` (the server owns
/// the model) and dial the endpoint. A comma-separated `addr` is a
/// replica set: the client dials the first reachable one and
/// transparently fails over on disconnect/drain/overload under a
/// bounded, jittered exponential backoff (`--retries` attempts).
fn connect_server(args: &Args, addr: &str) -> Result<ServeClient, CliError> {
    if !args.str_or("centers", "").is_empty() {
        return Err(CliError::Usage(
            "--centers does not combine with --server: the server owns the model".into(),
        ));
    }
    let timeout = std::time::Duration::from_secs(args.u64_or("io-timeout", 60).max(1));
    let replicas: Vec<String> = addr
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let mut client = match replicas.as_slice() {
        [] => {
            return Err(CliError::Usage(
                "--server needs at least one address".into(),
            ))
        }
        [single] => ServeClient::connect(single, Some(timeout))?,
        many => {
            let retries = args.u64_or("retries", 5).max(1) as u32;
            let policy = RetryPolicy::exponential(
                retries,
                std::time::Duration::from_millis(100),
                std::time::Duration::from_secs(2),
            );
            ServeClient::connect_any(many, Some(timeout), policy)?
        }
    };
    let deadline = args.u64_or("deadline-ms", 0);
    if deadline > 0 {
        client.set_deadline(Some(deadline));
    }
    Ok(client)
}

/// `skm drain`: begin a graceful drain of one running `skm serve`
/// process — it stops admitting work, answers everything already
/// admitted, and exits. The rolling-restart primitive: drain, wait for
/// exit, start the replacement.
fn drain(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let server = require(args, "server")?;
    if server.contains(',') {
        return Err(CliError::Usage(
            "skm drain targets exactly one server (no replica lists): \
             draining is per-process"
                .into(),
        ));
    }
    let timeout = std::time::Duration::from_secs(args.u64_or("io-timeout", 60).max(1));
    let mut client = ServeClient::connect(&server, Some(timeout))?;
    let owed = client.drain()?;
    writeln!(
        out,
        "draining {server}: {owed} admitted points still owed; \
         the server exits once they are answered"
    )?;
    Ok(())
}

/// `skm convert`: stream a CSV into the binary block format (never
/// materializes the dataset; see `kmeans_data::blockfile`).
fn convert(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let input = require(args, "input")?;
    let out_path = require(args, "out")?;
    let block_rows = args.usize_or("block-rows", 8192);
    let (rows, dim) = csv_to_block_file(&input, &out_path, block_rows, label_mode(args))?;
    writeln!(
        out,
        "converted {rows} points x {dim} dims into {} blocks of {block_rows} rows -> {out_path}",
        rows.div_ceil(block_rows),
    )?;
    Ok(())
}

/// Nearest-center labels for a whole matrix via the batch kernel
/// (bit-identical to a per-point `nearest` scan, several times faster).
fn batch_labels(points: &kmeans_data::PointMatrix, centers: &kmeans_data::PointMatrix) -> Vec<u32> {
    let kernel = kmeans_core::kernel::AssignKernel::new(centers);
    let mut labels = vec![0u32; points.len()];
    let mut d2 = vec![0.0f64; points.len()];
    kernel.assign(points, 0..points.len(), &mut labels, &mut d2);
    labels
}

fn predict(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let input = require(args, "input")?;
    let out_path = require(args, "out")?;
    let data = read_csv(&input, label_mode(args))?;
    let server = args.str_or("server", "");
    if !server.is_empty() {
        let mut client = connect_server(args, &server)?;
        // Stream large inputs as bounded chunks so no single request
        // exceeds the server's batch cap; the concatenated labels are
        // byte-identical to one unchunked predict. Default chunk size is
        // the cap the server advertised (0 = an older server; send whole).
        let chunk = match args.usize_or("chunk-points", 0) {
            0 => client.info().batch_cap as usize,
            c => c,
        };
        let prediction = if chunk > 0 {
            client.predict_chunked(data.points(), chunk)?
        } else {
            client.predict(data.points())?
        };
        write_labels(&out_path, &prediction.labels)?;
        writeln!(
            out,
            "predicted {} points against {} centers served by {server} \
             (model revision {}) -> {out_path}",
            data.len(),
            client.info().k,
            prediction.revision,
        )?;
        return Ok(());
    }
    let centers_path = require(args, "centers")?;
    let centers = load_centers(&centers_path)?;
    if centers.dim() != data.dim() {
        return Err(CliError::KMeans(
            kmeans_core::KMeansError::DimensionMismatch {
                expected: centers.dim(),
                got: data.dim(),
            },
        ));
    }
    let labels = batch_labels(data.points(), &centers);
    write_labels(&out_path, &labels)?;
    writeln!(
        out,
        "predicted {} points against {} centers -> {out_path}",
        data.len(),
        centers.len()
    )?;
    Ok(())
}

fn evaluate(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let input = require(args, "input")?;
    let data = read_csv(&input, label_mode(args))?;
    let server = args.str_or("server", "");
    let (labels, cost, k) = if server.is_empty() {
        let centers_path = require(args, "centers")?;
        let centers = load_centers(&centers_path)?;
        if centers.dim() != data.dim() {
            return Err(CliError::KMeans(
                kmeans_core::KMeansError::DimensionMismatch {
                    expected: centers.dim(),
                    got: data.dim(),
                },
            ));
        }
        let exec = kmeans_par::Executor::new(parallelism(args));
        let cost = kmeans_core::cost::potential(data.points(), &centers, &exec);
        let labels = batch_labels(data.points(), &centers);
        (labels, cost, centers.len())
    } else {
        let mut client = connect_server(args, &server)?;
        let prediction = client.predict(data.points())?;
        let k = client.info().k as usize;
        (prediction.labels, prediction.cost, k)
    };
    let mut sizes = vec![0u64; k];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let empty = sizes.iter().filter(|&&s| s == 0).count();
    writeln!(
        out,
        "cost {cost:.6e} over {} points, {k} centers ({empty} empty)",
        data.len(),
    )?;
    if let Some(truth) = data.labels() {
        writeln!(
            out,
            "vs ground truth: nmi {:.4}, ari {:.4}, purity {:.4}",
            nmi(&labels, truth),
            adjusted_rand_index(&labels, truth),
            purity(&labels, truth),
        )?;
    }
    let sample = args.usize_or("silhouette-sample", 0);
    if sample > 0 {
        match silhouette_sampled(data.points(), &labels, sample, args.u64_or("seed", 0)) {
            Some(s) => writeln!(out, "silhouette (sample {sample}): {s:.4}")?,
            None => writeln!(out, "silhouette: undefined (fewer than 2 clusters)")?,
        }
    }
    Ok(())
}

/// `skm trace summarize FILE`: aggregate a `--trace` capture into a
/// per-span-kind breakdown table — how often each round / pipeline stage
/// / coordinator conversation ran, where the wall time went, what moved
/// on the wire, and what the kernels spent.
fn trace(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    match args.positional(0) {
        Some("summarize") => {}
        Some(other) => {
            return Err(CliError::Usage(format!(
                "unknown trace action '{other}' (expected `skm trace summarize FILE`)"
            )))
        }
        None => {
            return Err(CliError::Usage(
                "missing trace action (expected `skm trace summarize FILE`)".into(),
            ))
        }
    }
    let path = args.positional(1).ok_or_else(|| {
        CliError::Usage("missing trace file (expected `skm trace summarize FILE`)".into())
    })?;
    let text = std::fs::read_to_string(path)?;
    let events = parse_chrome_trace(&text)
        .map_err(|e| CliError::Usage(format!("'{path}' is not a Chrome trace: {e}")))?;
    if events.is_empty() {
        writeln!(out, "0 events in {path}")?;
        return Ok(());
    }

    // One row per (category, span name), folding the structured span
    // arguments every tier attaches (wire_bytes, kernel counters).
    #[derive(Default)]
    struct SpanAgg {
        count: u64,
        dur_ns: u64,
        wire_bytes: u64,
        distance_computations: u64,
        pruned: u64,
    }
    let arg_total = |ev: &SpanEvent, name: &str| -> u64 {
        ev.args
            .iter()
            .find_map(|(n, v)| match v {
                ArgValue::U64(u) if n == name => Some(*u),
                _ => None,
            })
            .unwrap_or(0)
    };
    let mut rows: std::collections::BTreeMap<(String, String), SpanAgg> =
        std::collections::BTreeMap::new();
    let (mut first_ns, mut last_ns, mut round_ns) = (u64::MAX, 0u64, 0u64);
    for ev in &events {
        first_ns = first_ns.min(ev.start_ns);
        last_ns = last_ns.max(ev.start_ns + ev.dur_ns);
        if ev.cat == "round" {
            round_ns += ev.dur_ns;
        }
        let agg = rows.entry((ev.cat.clone(), ev.name.clone())).or_default();
        agg.count += 1;
        agg.dur_ns += ev.dur_ns;
        agg.wire_bytes += arg_total(ev, "wire_bytes");
        agg.distance_computations += arg_total(ev, "distance_computations");
        agg.pruned += arg_total(ev, "pruned_by_norm_bound");
    }
    let wall_ns = last_ns.saturating_sub(first_ns);
    let share = |ns: u64| {
        if wall_ns == 0 {
            0.0
        } else {
            100.0 * ns as f64 / wall_ns as f64
        }
    };

    // Heaviest spans first; the BTreeMap made ties deterministic.
    let mut sorted: Vec<_> = rows.into_iter().collect();
    sorted.sort_by_key(|b| std::cmp::Reverse(b.1.dur_ns));
    writeln!(
        out,
        "{} events over {} in {path}",
        events.len(),
        format_ns(wall_ns),
    )?;
    writeln!(
        out,
        "{:<28} {:>6} {:>12} {:>7} {:>12} {:>12} {:>10}",
        "span", "count", "time", "share", "wire B", "dist evals", "prunes"
    )?;
    for ((cat, name), agg) in &sorted {
        writeln!(
            out,
            "{:<28} {:>6} {:>12} {:>6.1}% {:>12} {:>12} {:>10}",
            format!("{cat}/{name}"),
            agg.count,
            format_ns(agg.dur_ns),
            share(agg.dur_ns),
            agg.wire_bytes,
            agg.distance_computations,
            agg.pruned,
        )?;
    }
    writeln!(
        out,
        "round spans cover {:.1}% of the wall clock ({} of {})",
        share(round_ns),
        format_ns(round_ns),
        format_ns(wall_ns),
    )?;
    Ok(())
}

/// Nanoseconds at a human scale (`1.234s`, `5.678ms`, `910ns`).
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Writes one label per line.
fn write_labels(path: &str, labels: &[u32]) -> Result<(), CliError> {
    let file = std::fs::File::create(path)?;
    let mut writer = std::io::BufWriter::new(file);
    for l in labels {
        writeln!(writer, "{l}")?;
    }
    writer.flush()?;
    Ok(())
}

/// Re-exported for integration tests.
pub fn read_points(path: &str) -> Result<PointMatrix, CliError> {
    Ok(read_csv(path, LabelColumn::None)?.into_parts().1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::from_tokens(s.split_whitespace().map(String::from))
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("skm_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn run(command: &str, a: &Args) -> Result<String, CliError> {
        let mut buf = Vec::new();
        dispatch(command, a, &mut buf)?;
        Ok(String::from_utf8(buf).unwrap())
    }

    #[test]
    fn generate_fit_evaluate_round_trip() {
        let data = tmp("gauss.csv");
        let centers = tmp("centers.csv");
        let labels = tmp("labels.csv");

        let out = run(
            "generate",
            &args(&format!(
                "--dataset gauss --k 5 --n 400 --variance 100 --seed 3 --out {data}"
            )),
        )
        .unwrap();
        assert!(out.contains("400 points x 15 dims"), "{out}");

        let out = run(
            "fit",
            &args(&format!(
                "--input {data} --labels --k 5 --seed 1 --centers-out {centers} \
                 --assignments-out {labels}"
            )),
        )
        .unwrap();
        assert!(out.contains("fit k=5"), "{out}");
        assert!(out.contains("nmi"), "{out}");

        let out = run(
            "evaluate",
            &args(&format!(
                "--input {data} --labels --centers {centers} --silhouette-sample 50"
            )),
        )
        .unwrap();
        assert!(out.contains("cost"), "{out}");
        assert!(out.contains("silhouette"), "{out}");

        // Assignments file has one label per point.
        let lines = std::fs::read_to_string(&labels).unwrap();
        assert_eq!(lines.lines().count(), 400);
        // Centers file round-trips as 5×15.
        let c = read_points(&centers).unwrap();
        assert_eq!(c.len(), 5);
        assert_eq!(c.dim(), 15);
    }

    #[test]
    fn predict_against_saved_centers() {
        let data = tmp("gauss2.csv");
        let centers = tmp("centers2.csv");
        let predicted = tmp("pred2.csv");
        run(
            "generate",
            &args(&format!(
                "--dataset gauss --k 3 --n 120 --seed 5 --out {data} --no-labels"
            )),
        )
        .unwrap();
        run(
            "fit",
            &args(&format!(
                "--input {data} --k 3 --seed 2 --centers-out {centers}"
            )),
        )
        .unwrap();
        let out = run(
            "predict",
            &args(&format!(
                "--input {data} --centers {centers} --out {predicted}"
            )),
        )
        .unwrap();
        assert!(
            out.contains("predicted 120 points against 3 centers"),
            "{out}"
        );
        let lines = std::fs::read_to_string(&predicted).unwrap();
        assert!(lines.lines().all(|l| l.parse::<u32>().unwrap() < 3));
    }

    #[test]
    fn afk_mc2_init_fits_and_reports() {
        let data = tmp("mc2.csv");
        let centers = tmp("mc2_centers.csv");
        run(
            "generate",
            &args(&format!(
                "--dataset gauss --k 4 --n 200 --variance 50 --seed 6 --out {data}"
            )),
        )
        .unwrap();
        let out = run(
            "fit",
            &args(&format!(
                "--input {data} --labels --k 4 --init afk-mc2 --chain 50 --seed 1 \
                 --centers-out {centers}"
            )),
        )
        .unwrap();
        assert!(out.contains("init=afk-mc2"), "{out}");
        assert!(out.contains("refine=lloyd"), "{out}");
        assert!(out.contains("nmi"), "{out}");
        let c = read_points(&centers).unwrap();
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn every_init_value_is_accepted() {
        let data = tmp("grid_init.csv");
        run(
            "generate",
            &args(&format!(
                "--dataset gauss --k 4 --n 300 --variance 50 --seed 1 --out {data}"
            )),
        )
        .unwrap();
        for init in [
            "random",
            "kmeans++",
            "kmeans-par",
            "afk-mc2",
            "partition",
            "coreset",
        ] {
            let centers = tmp(&format!("grid_{init}.csv"));
            let out = run(
                "fit",
                &args(&format!(
                    "--input {data} --labels --k 4 --init {init} --seed 2 \
                     --centers-out {centers}"
                )),
            )
            .unwrap();
            assert!(out.contains("fit k=4"), "{init}: {out}");
            assert!(out.contains(&format!("init={init}")), "{init}: {out}");
            assert_eq!(read_points(&centers).unwrap().len(), 4, "{init}");
        }
    }

    #[test]
    fn every_refine_value_is_accepted() {
        let data = tmp("grid_refine.csv");
        run(
            "generate",
            &args(&format!(
                "--dataset gauss --k 3 --n 240 --variance 50 --seed 4 --out {data}"
            )),
        )
        .unwrap();
        for refine in ["lloyd", "hamerly", "minibatch", "none"] {
            let centers = tmp(&format!("grid_r_{refine}.csv"));
            let extra = if refine == "minibatch" {
                "--batch-size 64 --batch-iters 50"
            } else {
                ""
            };
            let out = run(
                "fit",
                &args(&format!(
                    "--input {data} --k 3 --refine {refine} --seed 2 {extra} \
                     --centers-out {centers}"
                )),
            )
            .unwrap();
            assert!(out.contains(&format!("refine={refine}")), "{refine}: {out}");
            assert!(out.contains("distance evals"), "{refine}: {out}");
            assert_eq!(read_points(&centers).unwrap().len(), 3, "{refine}");
        }
        // Seed-only run reports zero refine iterations.
        let centers = tmp("grid_r_none2.csv");
        let out = run(
            "fit",
            &args(&format!(
                "--input {data} --k 3 --refine none --seed 2 --centers-out {centers}"
            )),
        )
        .unwrap();
        assert!(out.contains("0 refine iterations"), "{out}");
    }

    #[test]
    fn unknown_init_and_refine_are_usage_errors() {
        let data = tmp("bad_flags.csv");
        std::fs::write(&data, "1.0,2.0\n3.0,4.0\n5.0,6.0\n").unwrap();
        let err = run(
            "fit",
            &args(&format!(
                "--input {data} --k 2 --init nope --centers-out /tmp/x"
            )),
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown --init"), "{err}");
        let err = run(
            "fit",
            &args(&format!(
                "--input {data} --k 2 --refine nope --centers-out /tmp/x"
            )),
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown --refine"), "{err}");
        // Flags of one refiner next to another are rejected, not dropped.
        let err = run(
            "fit",
            &args(&format!(
                "--input {data} --k 2 --refine minibatch --tol 0.01 --centers-out /tmp/x"
            )),
        )
        .unwrap_err();
        assert!(err.to_string().contains("--tol only applies"), "{err}");
        let err = run(
            "fit",
            &args(&format!(
                "--input {data} --k 2 --refine none --batch-size 8 --centers-out /tmp/x"
            )),
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("--batch-size only applies"),
            "{err}"
        );
        // Same rule on the --init axis: seeder flags for another seeder.
        let err = run(
            "fit",
            &args(&format!(
                "--input {data} --k 2 --init kmeans++ --rounds 10 --centers-out /tmp/x"
            )),
        )
        .unwrap_err();
        assert!(err.to_string().contains("--rounds only applies"), "{err}");
        let err = run(
            "fit",
            &args(&format!(
                "--input {data} --k 2 --init partition --chain 5 --centers-out /tmp/x"
            )),
        )
        .unwrap_err();
        assert!(err.to_string().contains("--chain only applies"), "{err}");
    }

    #[test]
    fn all_generators_work() {
        for dataset in ["spam", "kdd"] {
            let data = tmp(&format!("{dataset}.csv"));
            let out = run(
                "generate",
                &args(&format!(
                    "--dataset {dataset} --n 300 --seed 1 --out {data}"
                )),
            )
            .unwrap();
            assert!(out.contains("300 points"), "{out}");
            let centers = tmp(&format!("{dataset}_fit.csv"));
            let out = run(
                "fit",
                &args(&format!(
                    "--input {data} --labels --k 4 --centers-out {centers}"
                )),
            )
            .unwrap();
            assert!(out.contains("fit k=4"), "{dataset}: {out}");
        }
    }

    #[test]
    fn chunked_fit_matches_in_memory_fit_for_both_formats() {
        let data = tmp("chunk.csv");
        let blocks = tmp("chunk.skmb");
        run(
            "generate",
            &args(&format!(
                "--dataset gauss --k 4 --n 500 --variance 50 --seed 9 --out {data} --no-labels"
            )),
        )
        .unwrap();
        // In-memory reference.
        let mem_centers = tmp("chunk_mem.csv");
        run(
            "fit",
            &args(&format!(
                "--input {data} --k 4 --seed 3 --centers-out {mem_centers}"
            )),
        )
        .unwrap();
        // Chunked over CSV.
        let csv_centers = tmp("chunk_csv.csv");
        let out = run(
            "fit",
            &args(&format!(
                "--input {data} --k 4 --seed 3 --chunked --block-rows 64 \
                 --centers-out {csv_centers}"
            )),
        )
        .unwrap();
        assert!(out.contains("chunked: peak resident"), "{out}");
        // Chunked over a converted block file with a small budget.
        let out = run(
            "convert",
            &args(&format!("--input {data} --out {blocks} --block-rows 64")),
        )
        .unwrap();
        assert!(out.contains("converted 500 points"), "{out}");
        let blk_centers = tmp("chunk_blk.csv");
        let out = run(
            "fit",
            &args(&format!(
                "--input {blocks} --k 4 --seed 3 --chunked --mem-budget 32k \
                 --centers-out {blk_centers}"
            )),
        )
        .unwrap();
        assert!(out.contains("budget 32768 B"), "{out}");
        // The shortest-round-trip CSV float formatting makes bit-identical
        // centers file-identical.
        let reference = std::fs::read_to_string(&mem_centers).unwrap();
        assert_eq!(std::fs::read_to_string(&csv_centers).unwrap(), reference);
        assert_eq!(std::fs::read_to_string(&blk_centers).unwrap(), reference);
    }

    #[test]
    fn chunked_flags_are_validated() {
        let data = tmp("chunk_flags.csv");
        std::fs::write(&data, "1.0,2.0\n3.0,4.0\n5.0,6.0\n").unwrap();
        // Chunked-only flags without --chunked are rejected.
        let err = run(
            "fit",
            &args(&format!(
                "--input {data} --k 2 --block-rows 64 --centers-out /tmp/x"
            )),
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("--block-rows only applies"),
            "{err}"
        );
        let err = run(
            "fit",
            &args(&format!(
                "--input {data} --k 2 --mem-budget 1m --centers-out /tmp/x"
            )),
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("--mem-budget only applies"),
            "{err}"
        );
        // A chunked flag that does not match the input format is rejected,
        // not silently ignored: --mem-budget next to csv input...
        let err = run(
            "fit",
            &args(&format!(
                "--input {data} --k 2 --chunked --mem-budget 1m --centers-out /tmp/x"
            )),
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("--mem-budget only applies"),
            "{err}"
        );
        // ...and --block-rows next to a block file.
        let blocks = tmp("chunk_flags.skmb");
        run(
            "convert",
            &args(&format!("--input {data} --out {blocks} --block-rows 2")),
        )
        .unwrap();
        let err = run(
            "fit",
            &args(&format!(
                "--input {blocks} --k 2 --chunked --block-rows 2 --centers-out /tmp/x"
            )),
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("--block-rows only applies"),
            "{err}"
        );
        // --labels next to a block file is meaningless (labels were handled
        // at conversion) — rejected, not silently ignored.
        let err = run(
            "fit",
            &args(&format!(
                "--input {blocks} --k 2 --chunked --labels --centers-out /tmp/x"
            )),
        )
        .unwrap_err();
        assert!(err.to_string().contains("--labels does not apply"), "{err}");
        // Stages without a chunked formulation fail with a typed error.
        let err = run(
            "fit",
            &args(&format!(
                "--input {data} --k 2 --chunked --init afk-mc2 --centers-out /tmp/x"
            )),
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("does not support chunked"),
            "{err}"
        );
        // Bad size strings are usage errors.
        let err = parse_size("64q", "mem-budget").unwrap_err();
        assert!(err.to_string().contains("byte size"), "{err}");
        assert_eq!(parse_size("64k", "x").unwrap(), 65536);
        assert_eq!(parse_size("2m", "x").unwrap(), 2 << 20);
        assert_eq!(parse_size("1g", "x").unwrap(), 1 << 30);
        assert_eq!(parse_size("123", "x").unwrap(), 123);
    }

    #[test]
    fn usage_lists_every_init_and_refine_value() {
        let out = run("help", &args("")).unwrap();
        for value in [
            "random",
            "kmeans++",
            "kmeans-par",
            "afk-mc2",
            "partition",
            "coreset",
            "lloyd",
            "hamerly",
            "minibatch",
            "none",
        ] {
            assert!(out.contains(value), "usage() missing '{value}': {out}");
        }
    }

    #[test]
    fn usage_lists_every_subcommand_and_distributed_flag() {
        let out = run("help", &args("")).unwrap();
        for value in [
            "skm generate",
            "skm fit",
            "skm convert",
            "skm shard",
            "skm worker",
            "skm predict",
            "skm evaluate",
            "--distributed",
            "--workers",
            "--io-timeout",
            "--manifest",
            "--align",
            "--listen",
            "--once",
            "--shard-size",
            "skm serve",
            "--save-model",
            "--server",
            "--batch-cap",
            "--model",
            "skm trace",
            "--trace",
            "--metrics-listen",
            "--log",
            "skm drain",
            "--queue-cap",
            "--deadline-ms",
            "--chunk-points",
            "--retries",
            "--metrics-timeout",
            "/readyz",
        ] {
            assert!(out.contains(value), "usage() missing '{value}': {out}");
        }
    }

    #[test]
    fn traced_fit_writes_a_parseable_trace_and_changes_nothing() {
        let data = tmp("trace.csv");
        run(
            "generate",
            &args(&format!(
                "--dataset gauss --k 3 --n 200 --variance 60 --seed 7 --out {data} --no-labels"
            )),
        )
        .unwrap();
        // Untraced reference.
        let plain_centers = tmp("trace_plain.csv");
        run(
            "fit",
            &args(&format!(
                "--input {data} --k 3 --seed 5 --centers-out {plain_centers}"
            )),
        )
        .unwrap();
        // Traced fit: bit-identical centers plus a Chrome trace whose
        // spans cover every tier the in-memory path exercises.
        let traced_centers = tmp("trace_traced.csv");
        let trace_file = tmp("trace_fit.json");
        let out = run(
            "fit",
            &args(&format!(
                "--input {data} --k 3 --seed 5 --centers-out {traced_centers} \
                 --trace {trace_file}"
            )),
        )
        .unwrap();
        assert!(out.contains("trace -> "), "{out}");
        assert_eq!(
            std::fs::read_to_string(&traced_centers).unwrap(),
            std::fs::read_to_string(&plain_centers).unwrap()
        );
        let events =
            kmeans_obs::parse_chrome_trace(&std::fs::read_to_string(&trace_file).unwrap()).unwrap();
        for name in ["stage:init", "stage:refine", "assign", "tracker_update+sample"] {
            assert!(
                events.iter().any(|e| e.name == name),
                "trace missing span '{name}'"
            );
        }
        assert!(events.iter().all(|e| !e.cat.is_empty()));

        // The summarize action prints a per-span table off the same file.
        let out = run("trace", &args(&format!("summarize {trace_file}"))).unwrap();
        assert!(out.contains("round/assign"), "{out}");
        assert!(out.contains("fit/stage:refine"), "{out}");
        assert!(out.contains("round spans cover"), "{out}");

        // Chunked fits trace through the same recorder.
        let chunk_centers = tmp("trace_chunk.csv");
        let chunk_trace = tmp("trace_chunk.json");
        run(
            "fit",
            &args(&format!(
                "--input {data} --k 3 --seed 5 --chunked --block-rows 64 \
                 --centers-out {chunk_centers} --trace {chunk_trace}"
            )),
        )
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&chunk_centers).unwrap(),
            std::fs::read_to_string(&plain_centers).unwrap()
        );
        let events =
            kmeans_obs::parse_chrome_trace(&std::fs::read_to_string(&chunk_trace).unwrap())
                .unwrap();
        assert!(events
            .iter()
            .any(|e| e.name == "assign" && e.cat == "round"));
    }

    #[test]
    fn trace_actions_are_validated() {
        let err = run("trace", &args("")).unwrap_err();
        assert!(err.to_string().contains("missing trace action"), "{err}");
        let err = run("trace", &args("frobnicate /tmp/x")).unwrap_err();
        assert!(err.to_string().contains("unknown trace action"), "{err}");
        let err = run("trace", &args("summarize")).unwrap_err();
        assert!(err.to_string().contains("missing trace file"), "{err}");
        let bad = tmp("not_a_trace.json");
        std::fs::write(&bad, "{\"other\": []}").unwrap();
        let err = run("trace", &args(&format!("summarize {bad}"))).unwrap_err();
        assert!(err.to_string().contains("not a Chrome trace"), "{err}");
    }

    #[test]
    fn save_model_serves_predict_and_evaluate() {
        let data = tmp("serve.csv");
        let centers = tmp("serve_centers.csv");
        let model = tmp("serve_model.skmm");
        run(
            "generate",
            &args(&format!(
                "--dataset gauss --k 3 --n 150 --variance 80 --seed 11 --out {data} --no-labels"
            )),
        )
        .unwrap();
        let out = run(
            "fit",
            &args(&format!(
                "--input {data} --k 3 --seed 4 --centers-out {centers} --save-model {model}"
            )),
        )
        .unwrap();
        assert!(out.contains("model -> "), "{out}");
        assert!(out.contains("SKMMDL01"), "{out}");

        // --centers auto-detects the model file by magic; labels match the
        // centers-CSV path exactly (shortest-round-trip CSV is bit-exact).
        let from_csv = tmp("serve_pred_csv.txt");
        let from_model = tmp("serve_pred_model.txt");
        run(
            "predict",
            &args(&format!(
                "--input {data} --centers {centers} --out {from_csv}"
            )),
        )
        .unwrap();
        let out = run(
            "predict",
            &args(&format!(
                "--input {data} --centers {model} --out {from_model}"
            )),
        )
        .unwrap();
        assert!(
            out.contains("predicted 150 points against 3 centers"),
            "{out}"
        );
        let local_labels = std::fs::read_to_string(&from_csv).unwrap();
        assert_eq!(std::fs::read_to_string(&from_model).unwrap(), local_labels);
        let out = run(
            "evaluate",
            &args(&format!("--input {data} --centers {model}")),
        )
        .unwrap();
        assert!(out.contains("3 centers"), "{out}");

        // Served predict/evaluate through a real TCP server: the labels
        // file is identical to the local predict's.
        let record = load_model_file(&model).unwrap();
        let engine =
            ServeEngine::new(record, kmeans_par::Executor::new(Parallelism::Threads(2))).unwrap();
        let (addr, handle) =
            kmeans_serve::spawn_tcp_serve(engine, Some(std::time::Duration::from_secs(30)))
                .unwrap();
        let served = tmp("serve_pred_tcp.txt");
        let out = run(
            "predict",
            &args(&format!("--input {data} --server {addr} --out {served}")),
        )
        .unwrap();
        assert!(out.contains("model revision 1"), "{out}");
        assert_eq!(std::fs::read_to_string(&served).unwrap(), local_labels);
        let out = run(
            "evaluate",
            &args(&format!("--input {data} --server {addr}")),
        )
        .unwrap();
        assert!(out.contains("3 centers"), "{out}");
        ServeClient::connect(&addr.to_string(), Some(std::time::Duration::from_secs(30)))
            .unwrap()
            .shutdown()
            .unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn serve_and_server_flags_are_validated() {
        let csv = tmp("serve_flags.csv");
        std::fs::write(&csv, "1.0,2.0\n3.0,4.0\n").unwrap();
        // serve needs a model file, not a CSV.
        let err = run(
            "serve",
            &args(&format!("--listen 127.0.0.1:0 --model {csv}")),
        )
        .unwrap_err();
        assert!(err.to_string().contains("--save-model"), "{err}");
        let err = run("serve", &args("--listen 127.0.0.1:0")).unwrap_err();
        assert!(err.to_string().contains("--model"), "{err}");
        // --centers and --server are mutually exclusive.
        let err = run(
            "predict",
            &args(&format!(
                "--input {csv} --centers {csv} --server 127.0.0.1:9 --out /tmp/x"
            )),
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("--centers does not combine"),
            "{err}"
        );
        // A dead server address is a typed connection error, not a hang.
        let err = run(
            "predict",
            &args(&format!("--input {csv} --server 127.0.0.1:9 --out /tmp/x")),
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Cluster(_)), "{err}");
        // --queue-cap 0 is a usage error, not a wedged server.
        let err = run(
            "serve",
            &args("--listen 127.0.0.1:0 --model /tmp/nope.skmm --queue-cap 0"),
        )
        .unwrap_err();
        assert!(err.to_string().contains("--queue-cap"), "{err}");
        // drain is per-process: no replica lists, and --server is required.
        let err = run("drain", &args("--server a:1,b:2")).unwrap_err();
        assert!(err.to_string().contains("exactly one server"), "{err}");
        let err = run("drain", &args("")).unwrap_err();
        assert!(err.to_string().contains("--server"), "{err}");
    }

    #[test]
    fn rolling_drain_across_replicas_keeps_served_answers_identical() {
        let data = tmp("roll.csv");
        let model = tmp("roll_model.skmm");
        run(
            "generate",
            &args(&format!(
                "--dataset gauss --k 3 --n 120 --variance 80 --seed 13 --out {data} --no-labels"
            )),
        )
        .unwrap();
        run(
            "fit",
            &args(&format!(
                "--input {data} --k 3 --seed 6 --centers-out /dev/null --save-model {model}"
            )),
        )
        .unwrap();
        let local = tmp("roll_local.txt");
        run(
            "predict",
            &args(&format!("--input {data} --centers {model} --out {local}")),
        )
        .unwrap();
        let expected = std::fs::read_to_string(&local).unwrap();

        // Two replicas of the same model.
        let io = Some(std::time::Duration::from_secs(30));
        let record = load_model_file(&model).unwrap();
        let spawn = || {
            let engine = ServeEngine::new(
                record.clone(),
                kmeans_par::Executor::new(Parallelism::Sequential),
            )
            .unwrap();
            kmeans_serve::spawn_tcp_serve(engine, io).unwrap()
        };
        let (addr1, handle1) = spawn();
        let (addr2, handle2) = spawn();
        let replicas = format!("{addr1},{addr2}");

        // Chunked served predict against the replica set (with a deadline
        // budget attached) matches the local labels byte-for-byte.
        let served = tmp("roll_served.txt");
        run(
            "predict",
            &args(&format!(
                "--input {data} --server {replicas} --out {served} \
                 --chunk-points 7 --deadline-ms 60000"
            )),
        )
        .unwrap();
        assert_eq!(std::fs::read_to_string(&served).unwrap(), expected);

        // Roll replica 1 out: drain it, wait for its process to exit.
        let out = run("drain", &args(&format!("--server {addr1}"))).unwrap();
        assert!(out.contains("draining"), "{out}");
        handle1.join().unwrap().unwrap();

        // The replica list still serves identical answers — the client
        // fails over to replica 2 without a user-visible error.
        let failed_over = tmp("roll_failover.txt");
        run(
            "predict",
            &args(&format!(
                "--input {data} --server {replicas} --out {failed_over}"
            )),
        )
        .unwrap();
        assert_eq!(std::fs::read_to_string(&failed_over).unwrap(), expected);

        ServeClient::connect(&addr2.to_string(), io)
            .unwrap()
            .shutdown()
            .unwrap();
        handle2.join().unwrap().unwrap();
    }

    #[test]
    fn distributed_flags_are_validated() {
        let data = tmp("dist_flags.csv");
        std::fs::write(&data, "1.0,2.0\n3.0,4.0\n5.0,6.0\n").unwrap();
        // Distributed-only flags without --distributed are rejected.
        for flags in [
            "--workers 127.0.0.1:1",
            "--io-timeout 5",
            "--manifest /tmp/m",
        ] {
            let err = run(
                "fit",
                &args(&format!(
                    "--input {data} --k 2 {flags} --centers-out /tmp/x"
                )),
            )
            .unwrap_err();
            assert!(
                err.to_string().contains("only applies to distributed"),
                "{flags}: {err}"
            );
        }
        // --distributed needs --workers.
        let err = run("fit", &args("--k 2 --distributed --centers-out /tmp/x")).unwrap_err();
        assert!(err.to_string().contains("--workers"), "{err}");
        // --input does not combine with --distributed (workers own the data).
        let err = run(
            "fit",
            &args(&format!(
                "--input {data} --k 2 --distributed --workers 127.0.0.1:1 --centers-out /tmp/x"
            )),
        )
        .unwrap_err();
        assert!(err.to_string().contains("--input does not apply"), "{err}");
        // Neither do --chunked or --labels.
        let err = run(
            "fit",
            &args("--k 2 --distributed --chunked --workers 127.0.0.1:1 --centers-out /tmp/x"),
        )
        .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
        let err = run(
            "fit",
            &args("--k 2 --distributed --labels --workers 127.0.0.1:1 --centers-out /tmp/x"),
        )
        .unwrap_err();
        assert!(err.to_string().contains("--labels does not apply"), "{err}");
        // A dead address is a typed connection error, not a hang.
        let err = run(
            "fit",
            &args("--k 2 --distributed --workers 127.0.0.1:9 --centers-out /tmp/x"),
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Cluster(_)), "{err}");
        // Bad --shard-size is a usage error.
        let err = run(
            "fit",
            &args(&format!(
                "--input {data} --k 2 --shard-size 0 --centers-out /tmp/x"
            )),
        )
        .unwrap_err();
        assert!(err.to_string().contains("--shard-size"), "{err}");
    }

    #[test]
    fn shard_and_worker_validate_their_inputs() {
        let csv = tmp("notblocks.csv");
        std::fs::write(&csv, "1.0,2.0\n3.0,4.0\n").unwrap();
        let err = run(
            "shard",
            &args(&format!("--input {csv} --workers 2 --out-prefix /tmp/s")),
        )
        .unwrap_err();
        assert!(err.to_string().contains("skm convert"), "{err}");
        let err = run(
            "shard",
            &args(&format!("--input {csv} --out-prefix /tmp/s")),
        )
        .unwrap_err();
        assert!(err.to_string().contains("--workers"), "{err}");
        let err = run(
            "worker",
            &args(&format!("--listen 127.0.0.1:0 --data {csv}")),
        )
        .unwrap_err();
        assert!(err.to_string().contains("skm convert"), "{err}");
    }

    #[test]
    fn distributed_fit_matches_local_fit_end_to_end() {
        use kmeans_data::BlockFileSource;
        use kmeans_par::Parallelism;

        // generate → convert → shard → 2 TCP workers → fit --distributed,
        // compared file-byte-identical against the local fit.
        let data = tmp("dist.csv");
        run(
            "generate",
            &args(&format!(
                "--dataset gauss --k 4 --n 192 --variance 50 --seed 9 --out {data} --no-labels"
            )),
        )
        .unwrap();
        let blocks = tmp("dist.skmb");
        run(
            "convert",
            &args(&format!("--input {data} --out {blocks} --block-rows 32")),
        )
        .unwrap();
        let prefix = tmp("dist_shard");
        let out = run(
            "shard",
            &args(&format!(
                "--input {blocks} --workers 2 --align 96 --out-prefix {prefix}"
            )),
        )
        .unwrap();
        assert!(out.contains("2 shards"), "{out}");

        let manifest = kmeans_data::ShardManifest::load(format!("{prefix}.manifest")).unwrap();
        let mut addrs = Vec::new();
        let mut handles = Vec::new();
        for entry in &manifest.shards {
            let source = BlockFileSource::open(&entry.path, 1 << 20).unwrap();
            let (addr, handle) = kmeans_cluster::spawn_tcp_worker(
                source,
                Parallelism::Threads(2),
                Some(std::time::Duration::from_secs(30)),
            )
            .unwrap();
            addrs.push(addr.to_string());
            handles.push(handle);
        }

        let local_centers = tmp("dist_local.csv");
        run(
            "fit",
            &args(&format!(
                "--input {data} --k 4 --seed 3 --shard-size 96 --centers-out {local_centers}"
            )),
        )
        .unwrap();
        let dist_centers = tmp("dist_remote.csv");
        let dist_trace = tmp("dist_trace.json");
        let out = run(
            "fit",
            &args(&format!(
                "--distributed --workers {} --manifest {prefix}.manifest --k 4 --seed 3 \
                 --shard-size 96 --centers-out {dist_centers} --trace {dist_trace}",
                addrs.join(",")
            )),
        )
        .unwrap();
        for h in handles {
            h.join().unwrap().unwrap();
        }
        assert!(out.contains("distributed: 2 workers"), "{out}");
        assert!(out.contains("worker 0: rows [0..96)"), "{out}");
        assert!(out.contains("B on the wire"), "{out}");
        assert!(out.contains("trace -> "), "{out}");
        // Shortest-round-trip CSV formatting: bit-identical centers are
        // file-identical (the flight recorder never touches results).
        assert_eq!(
            std::fs::read_to_string(&dist_centers).unwrap(),
            std::fs::read_to_string(&local_centers).unwrap()
        );
        // The distributed trace carries all three tiers: round spans with
        // wire-byte deltas, pipeline stages, coordinator broadcasts.
        let events =
            kmeans_obs::parse_chrome_trace(&std::fs::read_to_string(&dist_trace).unwrap()).unwrap();
        assert!(events.iter().any(|e| e.cat == "round"
            && e.name == "assign"
            && e.args
                .iter()
                .any(|(n, v)| n == "wire_bytes"
                    && matches!(v, kmeans_obs::ArgValue::U64(b) if *b > 0))));
        assert!(events
            .iter()
            .any(|e| e.cat == "cluster" && e.name.starts_with("broadcast:")));
        assert!(events
            .iter()
            .any(|e| e.cat == "fit" && e.name == "stage:refine"));
    }

    #[test]
    fn help_and_errors() {
        let out = run("help", &args("")).unwrap();
        assert!(out.contains("USAGE"));
        assert!(matches!(
            run("frobnicate", &args("")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run("fit", &args("--k 3 --centers-out /tmp/x")),
            Err(CliError::Usage(_)) // missing --input
        ));
        assert!(matches!(
            run("generate", &args("--dataset nope --out /tmp/x")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(
                "fit",
                &args("--input /nonexistent.csv --k 2 --centers-out /tmp/x")
            ),
            Err(CliError::Data(_))
        ));
        // Error messages are user-readable.
        let e = run("fit", &args("--input /tmp/missing --centers-out x")).unwrap_err();
        assert!(e.to_string().contains("--k"));
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let data = tmp("mm_data.csv");
        let centers = tmp("mm_centers.csv");
        std::fs::write(&data, "1.0,2.0\n3.0,4.0\n").unwrap();
        std::fs::write(&centers, "1.0,2.0,3.0\n").unwrap();
        let err = run(
            "evaluate",
            &args(&format!("--input {data} --centers {centers}")),
        )
        .unwrap_err();
        assert!(matches!(err, CliError::KMeans(_)), "{err}");
        let err = run(
            "predict",
            &args(&format!("--input {data} --centers {centers} --out /tmp/p")),
        )
        .unwrap_err();
        assert!(err.to_string().contains("dimension mismatch"));
    }
}
