//! The shard executor: parallel map / map-reduce / in-place update over
//! logical shards, deterministic for any worker count.

use crate::shards::ShardSpec;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A claim-once slot handing a shard's mutable chunk(s) to whichever worker
/// claims the shard index.
type Slot<T> = Mutex<Option<T>>;

/// Slot payload for [`Executor::update_shards2`]: start offset plus the two
/// shard-aligned chunks.
type Chunk2<'s, A, B> = (usize, &'s mut [A], &'s mut [B]);

/// Degree of parallelism for an [`Executor`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Parallelism {
    /// Run everything on the calling thread.
    Sequential,
    /// Use exactly this many worker threads (values are clamped to ≥ 1).
    Threads(usize),
    /// Use `std::thread::available_parallelism()`.
    Auto,
}

impl Parallelism {
    /// Resolves to a concrete worker count (≥ 1).
    pub fn workers(&self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(t) => (*t).max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// Runs shard-parallel jobs with deterministic results.
///
/// ```
/// use kmeans_par::{Executor, Parallelism};
/// let exec = Executor::new(Parallelism::Threads(4));
/// // Sum of squares of 0..10_000, computed shard by shard.
/// let total = exec.map_reduce(
///     10_000,
///     |_, range| range.map(|i| (i * i) as u64).sum::<u64>(),
///     |a, b| a + b,
/// ).unwrap_or(0);
/// assert_eq!(total, (0..10_000u64).map(|i| i * i).sum());
/// ```
#[derive(Clone, Debug)]
pub struct Executor {
    parallelism: Parallelism,
    spec: ShardSpec,
}

impl Executor {
    /// Creates an executor with the default shard size.
    pub fn new(parallelism: Parallelism) -> Self {
        Executor {
            parallelism,
            spec: ShardSpec::default(),
        }
    }

    /// A single-threaded executor (useful as a baseline and in tests).
    pub fn sequential() -> Self {
        Executor::new(Parallelism::Sequential)
    }

    /// Overrides the logical shard size.
    ///
    /// Note: results of *randomized* shard jobs depend on the shard layout,
    /// so the shard size is part of an experiment's reproducibility key
    /// (the worker count is not).
    pub fn with_shard_size(mut self, shard_size: usize) -> Self {
        self.spec = ShardSpec::new(shard_size);
        self
    }

    /// The shard layout.
    pub fn shard_spec(&self) -> ShardSpec {
        self.spec
    }

    /// The configured parallelism.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Resolved worker count.
    pub fn workers(&self) -> usize {
        self.parallelism.workers()
    }

    /// Maps every shard of `[0, n)` through `f`, returning results in shard
    /// order. `f` receives `(shard_index, index_range)`.
    pub fn map_shards<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, std::ops::Range<usize>) -> T + Sync,
    {
        let count = self.spec.count(n);
        let workers = self.workers().min(count.max(1));
        if workers <= 1 || count <= 1 {
            return (0..count).map(|s| f(s, self.spec.range(n, s))).collect();
        }
        let next = AtomicUsize::new(0);
        let mut results: Vec<Option<T>> = (0..count).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, T)> = Vec::new();
                        loop {
                            let s = next.fetch_add(1, Ordering::Relaxed);
                            if s >= count {
                                break;
                            }
                            local.push((s, f(s, self.spec.range(n, s))));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                for (s, value) in handle.join().expect("shard worker panicked") {
                    results[s] = Some(value);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("shard result missing"))
            .collect()
    }

    /// Maps every shard and folds the results **in shard order** with
    /// `combine`. Returns `None` when `n == 0`.
    ///
    /// In-order folding matters: floating-point reduction order changes
    /// low-order bits, and determinism across worker counts is a guarantee
    /// of this crate.
    pub fn map_reduce<T, F, C>(&self, n: usize, f: F, combine: C) -> Option<T>
    where
        T: Send,
        F: Fn(usize, std::ops::Range<usize>) -> T + Sync,
        C: Fn(T, T) -> T,
    {
        self.map_shards(n, f).into_iter().reduce(combine)
    }

    /// Runs `f` over shard-aligned mutable chunks of `out`.
    ///
    /// `f` receives `(shard_index, start_offset, chunk)` where `chunk` is
    /// `out[start_offset .. start_offset + chunk.len()]`.
    pub fn update_shards<A, F>(&self, out: &mut [A], f: F)
    where
        A: Send,
        F: Fn(usize, usize, &mut [A]) + Sync,
    {
        let n = out.len();
        let count = self.spec.count(n);
        let workers = self.workers().min(count.max(1));
        if workers <= 1 || count <= 1 {
            for (s, range) in self.spec.ranges(n).enumerate() {
                let start = range.start;
                f(s, start, &mut out[range]);
            }
            return;
        }
        let slots: Vec<Slot<(usize, &mut [A])>> = self
            .spec
            .ranges(n)
            .zip(out.chunks_mut(self.spec.shard_size()))
            .map(|(range, chunk)| Mutex::new(Some((range.start, chunk))))
            .collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let s = next.fetch_add(1, Ordering::Relaxed);
                    if s >= count {
                        break;
                    }
                    let (start, chunk) = slots[s]
                        .lock()
                        .expect("shard slot poisoned")
                        .take()
                        .expect("shard claimed twice");
                    f(s, start, chunk);
                });
            }
        });
    }

    /// Runs `f` over shard-aligned mutable chunks of `out` while
    /// collecting one result per shard, returned **in shard order**.
    ///
    /// This is the update-and-aggregate shape of bounds-based Lloyd
    /// variants (per-point state is mutated in place, per-shard partial
    /// sums come back for a deterministic fold). `f` receives
    /// `(shard_index, start_offset, chunk)`.
    pub fn update_map_shards<A, T, F>(&self, out: &mut [A], f: F) -> Vec<T>
    where
        A: Send,
        T: Send,
        F: Fn(usize, usize, &mut [A]) -> T + Sync,
    {
        let n = out.len();
        let count = self.spec.count(n);
        let workers = self.workers().min(count.max(1));
        if workers <= 1 || count <= 1 {
            return self
                .spec
                .ranges(n)
                .enumerate()
                .map(|(s, range)| {
                    let start = range.start;
                    f(s, start, &mut out[range])
                })
                .collect();
        }
        let slots: Vec<Slot<(usize, &mut [A])>> = self
            .spec
            .ranges(n)
            .zip(out.chunks_mut(self.spec.shard_size()))
            .map(|(range, chunk)| Mutex::new(Some((range.start, chunk))))
            .collect();
        let next = AtomicUsize::new(0);
        let mut results: Vec<Option<T>> = (0..count).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, T)> = Vec::new();
                        loop {
                            let s = next.fetch_add(1, Ordering::Relaxed);
                            if s >= count {
                                break;
                            }
                            let (start, chunk) = slots[s]
                                .lock()
                                .expect("shard slot poisoned")
                                .take()
                                .expect("shard claimed twice");
                            local.push((s, f(s, start, chunk)));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                for (s, value) in handle.join().expect("shard worker panicked") {
                    results[s] = Some(value);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("shard result missing"))
            .collect()
    }

    /// Runs `f` over shard-aligned mutable chunks of two equal-length
    /// slices while collecting one result per shard, returned **in shard
    /// order** — the two-array sibling of [`Executor::update_map_shards`]
    /// (the shape of a batched assignment pass: labels and `d²` mutated
    /// in place, per-shard kernel statistics coming back for a
    /// deterministic fold).
    ///
    /// `f` receives `(shard_index, start_offset, chunk_a, chunk_b)`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn update_map_shards2<A, B, T, F>(&self, a: &mut [A], b: &mut [B], f: F) -> Vec<T>
    where
        A: Send,
        B: Send,
        T: Send,
        F: Fn(usize, usize, &mut [A], &mut [B]) -> T + Sync,
    {
        assert_eq!(a.len(), b.len(), "update_map_shards2: length mismatch");
        let n = a.len();
        let count = self.spec.count(n);
        let workers = self.workers().min(count.max(1));
        if workers <= 1 || count <= 1 {
            return self
                .spec
                .ranges(n)
                .enumerate()
                .map(|(s, range)| {
                    let start = range.start;
                    f(s, start, &mut a[range.clone()], &mut b[range])
                })
                .collect();
        }
        let size = self.spec.shard_size();
        let slots: Vec<Slot<Chunk2<'_, A, B>>> = self
            .spec
            .ranges(n)
            .zip(a.chunks_mut(size).zip(b.chunks_mut(size)))
            .map(|(range, (ca, cb))| Mutex::new(Some((range.start, ca, cb))))
            .collect();
        let next = AtomicUsize::new(0);
        let mut results: Vec<Option<T>> = (0..count).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, T)> = Vec::new();
                        loop {
                            let s = next.fetch_add(1, Ordering::Relaxed);
                            if s >= count {
                                break;
                            }
                            let (start, ca, cb) = slots[s]
                                .lock()
                                .expect("shard slot poisoned")
                                .take()
                                .expect("shard claimed twice");
                            local.push((s, f(s, start, ca, cb)));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                for (s, value) in handle.join().expect("shard worker panicked") {
                    results[s] = Some(value);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("shard result missing"))
            .collect()
    }

    /// Runs `f` over shard-aligned mutable chunks of two equal-length
    /// slices (e.g. the `d²` and nearest-center arrays of k-means||).
    ///
    /// `f` receives `(shard_index, start_offset, chunk_a, chunk_b)`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn update_shards2<A, B, F>(&self, a: &mut [A], b: &mut [B], f: F)
    where
        A: Send,
        B: Send,
        F: Fn(usize, usize, &mut [A], &mut [B]) + Sync,
    {
        assert_eq!(a.len(), b.len(), "update_shards2: length mismatch");
        let n = a.len();
        let count = self.spec.count(n);
        let workers = self.workers().min(count.max(1));
        if workers <= 1 || count <= 1 {
            for (s, range) in self.spec.ranges(n).enumerate() {
                let start = range.start;
                f(s, start, &mut a[range.clone()], &mut b[range]);
            }
            return;
        }
        let size = self.spec.shard_size();
        let slots: Vec<Slot<Chunk2<'_, A, B>>> = self
            .spec
            .ranges(n)
            .zip(a.chunks_mut(size).zip(b.chunks_mut(size)))
            .map(|(range, (ca, cb))| Mutex::new(Some((range.start, ca, cb))))
            .collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let s = next.fetch_add(1, Ordering::Relaxed);
                    if s >= count {
                        break;
                    }
                    let (start, ca, cb) = slots[s]
                        .lock()
                        .expect("shard slot poisoned")
                        .take()
                        .expect("shard claimed twice");
                    f(s, start, ca, cb);
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn executors() -> Vec<Executor> {
        vec![
            Executor::sequential().with_shard_size(64),
            Executor::new(Parallelism::Threads(2)).with_shard_size(64),
            Executor::new(Parallelism::Threads(7)).with_shard_size(64),
            Executor::new(Parallelism::Auto).with_shard_size(64),
        ]
    }

    #[test]
    fn workers_resolution() {
        assert_eq!(Parallelism::Sequential.workers(), 1);
        assert_eq!(Parallelism::Threads(0).workers(), 1);
        assert_eq!(Parallelism::Threads(3).workers(), 3);
        assert!(Parallelism::Auto.workers() >= 1);
    }

    #[test]
    fn map_shards_order_and_coverage() {
        for exec in executors() {
            let ranges = exec.map_shards(1000, |s, r| (s, r));
            assert_eq!(ranges.len(), 16); // ceil(1000/64)
            for (i, (s, r)) in ranges.iter().enumerate() {
                assert_eq!(*s, i);
                assert_eq!(r.start, i * 64);
            }
            assert_eq!(ranges.last().unwrap().1.end, 1000);
        }
    }

    #[test]
    fn map_reduce_identical_across_worker_counts() {
        let reference: Vec<f64> =
            Executor::sequential()
                .with_shard_size(64)
                .map_shards(10_000, |s, r| {
                    // A float computation whose result depends on shard identity.
                    r.map(|i| ((i as f64) * 1.37 + s as f64).sqrt())
                        .sum::<f64>()
                });
        for exec in executors() {
            let got = exec.map_shards(10_000, |s, r| {
                r.map(|i| ((i as f64) * 1.37 + s as f64).sqrt())
                    .sum::<f64>()
            });
            assert_eq!(got, reference, "divergence for {:?}", exec.parallelism());
        }
    }

    #[test]
    fn map_reduce_empty_input() {
        for exec in executors() {
            assert_eq!(exec.map_reduce(0, |_, _| 1u32, |a, b| a + b), None);
        }
    }

    #[test]
    fn map_reduce_single_shard() {
        let exec = Executor::new(Parallelism::Threads(4)).with_shard_size(1024);
        let total = exec
            .map_reduce(10, |_, r| r.sum::<usize>(), |a, b| a + b)
            .unwrap();
        assert_eq!(total, 45);
    }

    #[test]
    fn update_shards_touches_every_element_once() {
        for exec in executors() {
            let mut data = vec![0u32; 1000];
            exec.update_shards(&mut data, |s, start, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v += (start + i) as u32 + s as u32 * 1_000_000;
                }
            });
            for (i, &v) in data.iter().enumerate() {
                let shard = i / 64;
                assert_eq!(v, i as u32 + shard as u32 * 1_000_000, "index {i}");
            }
        }
    }

    #[test]
    fn update_shards2_aligned_chunks() {
        for exec in executors() {
            let mut a = vec![0usize; 500];
            let mut b = vec![0usize; 500];
            exec.update_shards2(&mut a, &mut b, |s, start, ca, cb| {
                assert_eq!(ca.len(), cb.len());
                for i in 0..ca.len() {
                    ca[i] = start + i;
                    cb[i] = s;
                }
            });
            for (i, (&x, &y)) in a.iter().zip(&b).enumerate() {
                assert_eq!(x, i);
                assert_eq!(y, i / 64);
            }
        }
    }

    #[test]
    fn update_map_shards_mutates_and_collects_in_order() {
        for exec in executors() {
            let mut data = vec![1u64; 1000];
            let sums = exec.update_map_shards(&mut data, |s, start, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = (start + i) as u64;
                }
                (s, chunk.iter().sum::<u64>())
            });
            assert_eq!(sums.len(), 16); // ceil(1000/64)
            for (i, (s, _)) in sums.iter().enumerate() {
                assert_eq!(*s, i, "out of order");
            }
            let total: u64 = sums.iter().map(|(_, t)| t).sum();
            assert_eq!(total, (0..1000u64).sum::<u64>());
            assert_eq!(data[999], 999);
        }
    }

    #[test]
    fn update_map_shards2_mutates_both_and_collects_in_order() {
        for exec in executors() {
            let mut a = vec![0u32; 500];
            let mut b = vec![0.0f64; 500];
            let out = exec.update_map_shards2(&mut a, &mut b, |s, start, ca, cb| {
                for (i, (x, y)) in ca.iter_mut().zip(cb.iter_mut()).enumerate() {
                    *x = (start + i) as u32;
                    *y = (start + i) as f64 * 0.5;
                }
                (s, ca.len())
            });
            assert_eq!(out.len(), 8); // ceil(500/64)
            for (i, (s, _)) in out.iter().enumerate() {
                assert_eq!(*s, i, "out of order");
            }
            assert_eq!(out.iter().map(|(_, l)| l).sum::<usize>(), 500);
            for (i, (&x, &y)) in a.iter().zip(&b).enumerate() {
                assert_eq!(x, i as u32);
                assert_eq!(y, i as f64 * 0.5);
            }
        }
    }

    #[test]
    fn update_map_shards_empty() {
        let mut empty: Vec<u8> = vec![];
        let out: Vec<u32> =
            Executor::new(Parallelism::Threads(3)).update_map_shards(&mut empty, |_, _, _| 1);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn update_shards2_length_mismatch_panics() {
        let mut a = vec![0u8; 3];
        let mut b = vec![0u8; 4];
        Executor::sequential().update_shards2(&mut a, &mut b, |_, _, _, _| {});
    }

    #[test]
    fn update_shards_empty_is_noop() {
        let mut empty: Vec<u8> = vec![];
        Executor::new(Parallelism::Threads(4)).update_shards(&mut empty, |_, _, _| {
            panic!("should not be called");
        });
    }

    #[test]
    fn deterministic_rng_per_shard_is_thread_count_invariant() {
        use kmeans_util::Rng;
        let job = |exec: &Executor| -> Vec<u64> {
            exec.map_shards(100_000, |s, r| {
                let mut rng = Rng::derive(42, &[7, s as u64]);
                r.map(|_| rng.next_u64()).fold(0u64, u64::wrapping_add)
            })
        };
        let reference = job(&Executor::sequential().with_shard_size(1024));
        for threads in [2, 3, 8] {
            let exec = Executor::new(Parallelism::Threads(threads)).with_shard_size(1024);
            assert_eq!(job(&exec), reference, "threads={threads}");
        }
    }
}
