//! A single-machine model of the MapReduce realization of §3.5.
//!
//! The paper describes how each step of k-means|| maps onto MapReduce:
//!
//! > "Step 4 is very simple in MapReduce: each mapper can sample
//! > independently [...] each mapper working on an input partition X′ ⊆ X
//! > can compute φ_X′(C) and the reducer can simply add these values."
//!
//! This module provides that programming model — `map` over record shards,
//! a deterministic sort-based shuffle, `reduce` per key — together with the
//! accounting (records read, pairs shuffled, passes over the data) needed to
//! reason about parallel running time the way Table 4 does. It is a *model*:
//! map tasks really run in parallel on the shard executor, while the shuffle
//! is an in-memory grouping.
//!
//! [`JobStats::model_time`] converts the accounting into an idealized
//! cluster time (max over mappers + shuffle + reduce) so experiments can
//! report "simulated cluster minutes" alongside measured wall time.

use crate::executor::Executor;
use std::collections::BTreeMap;
use std::time::Duration;

/// Collects key/value pairs emitted by one map task.
#[derive(Debug)]
pub struct Emitter<K, V> {
    pairs: Vec<(K, V)>,
}

impl<K, V> Emitter<K, V> {
    fn new() -> Self {
        Emitter { pairs: Vec::new() }
    }

    /// Emits one intermediate pair.
    pub fn emit(&mut self, key: K, value: V) {
        self.pairs.push((key, value));
    }

    /// Number of pairs emitted so far.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Accounting for one MapReduce job.
#[derive(Clone, Debug, Default)]
pub struct JobStats {
    /// Number of map tasks (shards).
    pub map_tasks: usize,
    /// Input records read by all mappers (one pass = `records_in` reads).
    pub records_in: u64,
    /// Intermediate pairs shuffled.
    pub pairs_shuffled: u64,
    /// Bytes moved through the shuffle. For the in-process model this is
    /// the in-memory size of the shuffled pairs; a real cluster reports
    /// bytes on the wire. The rounds-x-communication trade-off the paper's
    /// §3.5 sketch implies is only visible with this field populated.
    pub bytes_shuffled: u64,
    /// Distinct keys seen by the reduce phase.
    pub distinct_keys: usize,
    /// Coordinator-counted request/reply cycles over the fleet. The
    /// in-process model counts one per job (one MapReduce round); the
    /// cluster coordinator counts real wire round trips — one per
    /// scatter/gather broadcast, a fused `Compound` round counting once.
    /// Session control (`Hello`/`Plan`/`Shutdown`) is excluded.
    pub round_trips: u64,
    /// Measured wall time of the (parallel) map phase.
    pub map_wall: Duration,
    /// Measured wall time of the shuffle (grouping) phase.
    pub shuffle_wall: Duration,
    /// Measured wall time of the (sequential) reduce phase.
    pub reduce_wall: Duration,
}

impl JobStats {
    /// Idealized cluster time for `mappers` parallel map slots:
    /// `map_cpu / mappers + shuffle + reduce`, where `map_cpu` is estimated
    /// as the measured parallel map wall time times the local worker count.
    ///
    /// This is the quantity Table 4 reasons about: Partition's reduce-side
    /// input is ~1000× larger than k-means||'s, so its tail does not shrink
    /// with more machines, while the k-means|| map phase scales linearly.
    pub fn model_time(&self, local_workers: usize, mappers: usize) -> Duration {
        let map_cpu = self.map_wall.as_secs_f64() * local_workers as f64;
        let mapped = map_cpu / mappers.max(1) as f64;
        Duration::from_secs_f64(
            mapped + self.shuffle_wall.as_secs_f64() + self.reduce_wall.as_secs_f64(),
        )
    }

    /// Merges accounting from a subsequent job in the same pipeline.
    pub fn absorb(&mut self, other: &JobStats) {
        self.map_tasks += other.map_tasks;
        self.records_in += other.records_in;
        self.pairs_shuffled += other.pairs_shuffled;
        self.bytes_shuffled += other.bytes_shuffled;
        self.distinct_keys = self.distinct_keys.max(other.distinct_keys);
        self.round_trips += other.round_trips;
        self.map_wall += other.map_wall;
        self.shuffle_wall += other.shuffle_wall;
        self.reduce_wall += other.reduce_wall;
    }
}

/// Output of a MapReduce job: reduced pairs in key order, plus accounting.
#[derive(Clone, Debug)]
pub struct JobOutput<K, R> {
    /// One entry per distinct key, in ascending key order.
    pub results: Vec<(K, R)>,
    /// Job accounting.
    pub stats: JobStats,
}

/// Runs one MapReduce job over `records`.
///
/// * `map` is invoked once per record (with its global index) and may emit
///   any number of intermediate pairs; mappers run in parallel per shard on
///   `exec`.
/// * The shuffle groups pairs by key deterministically: shard order is
///   preserved within each key group, and keys are sorted (`BTreeMap`).
/// * `reduce` is invoked once per distinct key with all its values.
///
/// ```
/// use kmeans_par::{Executor, mapreduce::run};
/// // Word-count over numbers: key = n % 3.
/// let records: Vec<u64> = (0..100).collect();
/// let exec = Executor::sequential();
/// let out = run(&exec, &records, |_, &n, e| e.emit(n % 3, 1u64), |_, vs| vs.iter().sum::<u64>());
/// assert_eq!(out.results, vec![(0, 34), (1, 33), (2, 33)]);
/// ```
pub fn run<I, K, V, R, M, F>(exec: &Executor, records: &[I], map: M, reduce: F) -> JobOutput<K, R>
where
    I: Sync,
    K: Ord + Send,
    V: Send,
    M: Fn(usize, &I, &mut Emitter<K, V>) + Sync,
    F: Fn(&K, Vec<V>) -> R,
{
    let mut stats = JobStats {
        map_tasks: exec.shard_spec().count(records.len()),
        records_in: records.len() as u64,
        round_trips: 1, // one job = one MapReduce round
        ..JobStats::default()
    };

    let sw = kmeans_util::timing::Stopwatch::start();
    let shard_outputs: Vec<Vec<(K, V)>> = exec.map_shards(records.len(), |_, range| {
        let mut emitter = Emitter::new();
        for i in range {
            map(i, &records[i], &mut emitter);
        }
        emitter.pairs
    });
    stats.map_wall = sw.elapsed();

    let sw = kmeans_util::timing::Stopwatch::start();
    let mut groups: BTreeMap<K, Vec<V>> = BTreeMap::new();
    for shard in shard_outputs {
        stats.pairs_shuffled += shard.len() as u64;
        stats.bytes_shuffled += (shard.len() * std::mem::size_of::<(K, V)>()) as u64;
        for (k, v) in shard {
            groups.entry(k).or_default().push(v);
        }
    }
    stats.shuffle_wall = sw.elapsed();
    stats.distinct_keys = groups.len();

    let sw = kmeans_util::timing::Stopwatch::start();
    let results: Vec<(K, R)> = groups
        .into_iter()
        .map(|(k, vs)| {
            let r = reduce(&k, vs);
            (k, r)
        })
        .collect();
    stats.reduce_wall = sw.elapsed();

    JobOutput { results, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Parallelism;

    #[test]
    fn word_count_style_job() {
        let records: Vec<u32> = (0..1000).collect();
        let exec = Executor::new(Parallelism::Threads(4)).with_shard_size(128);
        let out = run(
            &exec,
            &records,
            |_, &n, e| e.emit(n % 7, 1u64),
            |_, vs| vs.iter().sum::<u64>(),
        );
        assert_eq!(out.results.len(), 7);
        let total: u64 = out.results.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 1000);
        // Keys arrive sorted.
        for w in out.results.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert_eq!(out.stats.records_in, 1000);
        assert_eq!(out.stats.pairs_shuffled, 1000);
        assert_eq!(
            out.stats.bytes_shuffled,
            1000 * std::mem::size_of::<(u32, u64)>() as u64
        );
        assert_eq!(out.stats.distinct_keys, 7);
        assert_eq!(out.stats.map_tasks, 8); // ceil(1000/128)
    }

    #[test]
    fn results_identical_across_parallelism() {
        let records: Vec<u64> = (0..5000).map(|i| i * 31 % 97).collect();
        let job = |exec: &Executor| {
            run(
                &exec.clone().with_shard_size(256),
                &records,
                |i, &r, e| e.emit(r % 10, (i as u64) ^ r),
                |_, vs| vs.into_iter().fold(0u64, u64::wrapping_add),
            )
            .results
        };
        let reference = job(&Executor::sequential());
        for threads in [2, 5] {
            assert_eq!(
                job(&Executor::new(Parallelism::Threads(threads))),
                reference
            );
        }
    }

    #[test]
    fn value_order_within_key_is_record_order() {
        // Deterministic shuffle: values for a key must arrive in global
        // record order, regardless of which worker mapped which shard.
        let records: Vec<u32> = (0..400).collect();
        let exec = Executor::new(Parallelism::Threads(4)).with_shard_size(32);
        let out = run(&exec, &records, |i, _, e| e.emit((), i), |_, vs| vs);
        assert_eq!(out.results.len(), 1);
        let order = &out.results[0].1;
        assert!(order.windows(2).all(|w| w[0] < w[1]), "values out of order");
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let exec = Executor::sequential();
        let out = run(
            &exec,
            &[] as &[u8],
            |_, _, e: &mut Emitter<u8, u8>| e.emit(0, 0),
            |_, vs| vs.len(),
        );
        assert!(out.results.is_empty());
        assert_eq!(out.stats.records_in, 0);
        assert_eq!(out.stats.map_tasks, 0);
    }

    #[test]
    fn mapper_may_emit_zero_or_many() {
        let records = [1u32, 2, 3, 4];
        let exec = Executor::sequential();
        let out = run(
            &exec,
            &records,
            |_, &n, e| {
                for _ in 0..n {
                    e.emit("k", n);
                }
            },
            |_, vs| vs.len(),
        );
        assert_eq!(out.results, vec![("k", 10)]);
        assert_eq!(out.stats.pairs_shuffled, 10);
    }

    #[test]
    fn model_time_scales_map_phase() {
        let stats = JobStats {
            map_tasks: 100,
            records_in: 1_000_000,
            pairs_shuffled: 100,
            bytes_shuffled: 1_600,
            distinct_keys: 1,
            round_trips: 1,
            map_wall: Duration::from_secs(10),
            shuffle_wall: Duration::from_secs(1),
            reduce_wall: Duration::from_secs(1),
        };
        // 2 local workers → 20 s of map CPU. With 20 mappers: 1 + 1 + 1 = 3.
        let t = stats.model_time(2, 20);
        assert!((t.as_secs_f64() - 3.0).abs() < 1e-9);
        // More mappers shrink only the map term.
        let t2 = stats.model_time(2, 2000);
        assert!((t2.as_secs_f64() - 2.01).abs() < 1e-9);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = JobStats {
            map_tasks: 1,
            records_in: 10,
            pairs_shuffled: 5,
            bytes_shuffled: 80,
            distinct_keys: 2,
            round_trips: 1,
            map_wall: Duration::from_secs(1),
            shuffle_wall: Duration::from_secs(1),
            reduce_wall: Duration::from_secs(1),
        };
        let b = a.clone();
        a.absorb(&b);
        assert_eq!(a.map_tasks, 2);
        assert_eq!(a.records_in, 20);
        assert_eq!(a.pairs_shuffled, 10);
        assert_eq!(a.bytes_shuffled, 160);
        assert_eq!(a.map_wall, Duration::from_secs(2));
    }

    #[test]
    fn emitter_len_and_empty() {
        let mut e: Emitter<u8, u8> = Emitter::new();
        assert!(e.is_empty());
        e.emit(1, 2);
        assert_eq!(e.len(), 1);
        assert!(!e.is_empty());
    }
}
