//! Deterministic data-parallel execution substrate.
//!
//! The paper's §3.5 notes that k-means|| "can be implemented in a variety of
//! parallel computational models" because it only needs primitive
//! operations: per-partition sampling, per-partition cost sums, and a global
//! aggregate. This crate provides those primitives for a multi-core machine,
//! with one property the paper's Hadoop deployment does not have:
//! **bit-determinism across thread counts**.
//!
//! The design that achieves it (see DESIGN.md §4):
//!
//! * Work is divided into *logical shards* of fixed size ([`ShardSpec`],
//!   default 8 192 rows), independent of the worker count.
//! * Each shard derives any randomness it needs from `(seed, tags...,
//!   shard_index)` via [`kmeans_util::Rng::derive`].
//! * Worker threads ([`Executor`]) claim shards from an atomic queue, and
//!   shard results are always combined in shard order.
//!
//! Hence `Parallelism::Sequential` and `Parallelism::Threads(t)` produce
//! identical results for every `t` — an invariant the integration test
//! `tests/parallel_consistency.rs` checks end-to-end.
//!
//! The [`mapreduce`] module is a small single-machine *model* of the
//! MapReduce realization sketched in §3.5 of the paper, with record/pair
//! accounting used by the Table 4 experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod mapreduce;
pub mod shards;

pub use executor::{Executor, Parallelism};
pub use shards::ShardSpec;
