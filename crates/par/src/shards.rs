//! Logical sharding of index ranges.
//!
//! A shard is a contiguous range of row indices. Shard boundaries are a
//! function of the dataset size and the shard size only — *not* of the
//! worker count — which is the cornerstone of the workspace's determinism
//! guarantee (see the crate docs).

use std::ops::Range;

/// Default shard size: large enough to amortize dispatch, small enough to
/// load-balance on a handful of cores.
pub const DEFAULT_SHARD_SIZE: usize = 8_192;

/// Fixed-size partitioning of `[0, n)` into contiguous shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    shard_size: usize,
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec {
            shard_size: DEFAULT_SHARD_SIZE,
        }
    }
}

impl ShardSpec {
    /// Creates a spec with the given shard size.
    ///
    /// # Panics
    ///
    /// Panics if `shard_size == 0`.
    pub fn new(shard_size: usize) -> Self {
        assert!(shard_size > 0, "shard size must be positive");
        ShardSpec { shard_size }
    }

    /// The shard size.
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Number of shards covering `[0, n)` (0 when `n == 0`).
    pub fn count(&self, n: usize) -> usize {
        n.div_ceil(self.shard_size)
    }

    /// The index range of shard `shard` (the last shard may be short).
    ///
    /// # Panics
    ///
    /// Panics if `shard >= count(n)`.
    pub fn range(&self, n: usize, shard: usize) -> Range<usize> {
        let start = shard * self.shard_size;
        assert!(start < n, "shard {shard} out of range for n={n}");
        start..((start + self.shard_size).min(n))
    }

    /// Iterates over all shard ranges in order.
    pub fn ranges(&self, n: usize) -> impl Iterator<Item = Range<usize>> + '_ {
        let count = self.count(n);
        (0..count).map(move |s| self.range(n, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_covers_exactly() {
        let spec = ShardSpec::new(10);
        assert_eq!(spec.count(0), 0);
        assert_eq!(spec.count(1), 1);
        assert_eq!(spec.count(10), 1);
        assert_eq!(spec.count(11), 2);
        assert_eq!(spec.count(100), 10);
    }

    #[test]
    fn ranges_partition_the_domain() {
        let spec = ShardSpec::new(7);
        for n in [1usize, 6, 7, 8, 20, 49, 50] {
            let mut covered = 0usize;
            let mut prev_end = 0usize;
            for r in spec.ranges(n) {
                assert_eq!(r.start, prev_end, "gap before {r:?}");
                assert!(!r.is_empty());
                assert!(r.len() <= 7);
                covered += r.len();
                prev_end = r.end;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn range_matches_ranges() {
        let spec = ShardSpec::new(8);
        let n = 30;
        for (i, r) in spec.ranges(n).enumerate() {
            assert_eq!(spec.range(n, i), r);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn range_out_of_bounds_panics() {
        ShardSpec::new(8).range(8, 1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_shard_size_panics() {
        ShardSpec::new(0);
    }

    #[test]
    fn default_is_documented_size() {
        assert_eq!(ShardSpec::default().shard_size(), DEFAULT_SHARD_SIZE);
    }
}
