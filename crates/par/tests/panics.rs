//! Failure behavior of the shard executor: a panicking shard job must
//! propagate (never deadlock or silently drop shards).

use kmeans_par::{Executor, Parallelism};

#[test]
fn map_shards_propagates_worker_panic() {
    let exec = Executor::new(Parallelism::Threads(3)).with_shard_size(8);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        exec.map_shards(100, |s, _| {
            if s == 7 {
                panic!("injected shard failure");
            }
            s
        })
    }));
    assert!(result.is_err(), "worker panic was swallowed");
}

#[test]
fn sequential_panic_also_propagates() {
    let exec = Executor::sequential().with_shard_size(8);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        exec.map_shards(100, |s, _| {
            if s == 3 {
                panic!("injected shard failure");
            }
            s
        })
    }));
    assert!(result.is_err());
}

#[test]
fn update_shards_propagates_worker_panic() {
    let exec = Executor::new(Parallelism::Threads(2)).with_shard_size(4);
    let mut data = vec![0u8; 64];
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        exec.update_shards(&mut data, |s, _, _| {
            if s == 5 {
                panic!("injected shard failure");
            }
        })
    }));
    assert!(result.is_err());
}

#[test]
fn executor_is_reusable_after_catching_a_panic() {
    // A panicked scope must not poison subsequent jobs on a fresh call.
    let exec = Executor::new(Parallelism::Threads(2)).with_shard_size(8);
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        exec.map_shards(32, |_, _| panic!("boom"))
    }));
    let ok = exec.map_shards(32, |s, _| s);
    assert_eq!(ok, vec![0, 1, 2, 3]);
}
