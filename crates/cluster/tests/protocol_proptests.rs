//! Property tests for the wire protocol: adversarial bytes — truncations,
//! oversized length prefixes, flipped bits, pure garbage — must decode to
//! typed [`FrameError`]s, never panic, and never allocate from a forged
//! length. Valid frames must round-trip exactly.

use kmeans_cluster::protocol::{LabelsWanted, MAX_FRAME_PAYLOAD};
use kmeans_cluster::{FrameError, Message, WorkerStats};
use kmeans_core::chunked::AccumShard;
use kmeans_data::PointMatrix;
use proptest::collection::vec;
use proptest::prelude::*;

/// A strategy-driven random message (one of several shapes, sized by the
/// case's byte budget).
fn build_message(shape: usize, floats: Vec<f64>, ints: Vec<u64>) -> Message {
    match shape % 9 {
        0 => Message::ShardSums { sums: floats },
        1 => Message::GatherRows { indices: ints },
        2 => Message::Sampled {
            indices: ints,
            rows: matrix(&floats, 3),
        },
        3 => Message::Partials {
            reassigned: ints.first().copied().unwrap_or(0),
            shards: vec![AccumShard {
                sums: floats.clone(),
                counts: ints.clone(),
                cost: floats.first().copied().unwrap_or(0.0),
                farthest: (ints.last().copied().unwrap_or(0) as usize, 1.25),
            }],
            stats: kmeans_core::kernel::KernelStats {
                distance_computations: ints.first().copied().unwrap_or(0),
                pruned_by_norm_bound: ints.last().copied().unwrap_or(0),
            },
            labels: if ints.first().copied().unwrap_or(0) % 2 == 0 {
                Some(ints.iter().map(|&i| i as u32).collect())
            } else {
                None
            },
        },
        4 => Message::Assign {
            centers: matrix(&floats, 2),
            labels: match ints.first().copied().unwrap_or(0) % 3 {
                0 => LabelsWanted::Skip,
                1 => LabelsWanted::IfStable,
                _ => LabelsWanted::Always,
            },
        },
        5 => Message::Labels {
            labels: ints.iter().map(|&i| i as u32).collect(),
        },
        6 => Message::ExactKeys {
            entries: floats.iter().zip(&ints).map(|(&f, &i)| (f, i)).collect(),
        },
        7 => Message::Prescreened {
            entries: floats
                .iter()
                .zip(&ints)
                .map(|(&f, &i)| (i, f, f.abs()))
                .collect(),
            rows: matrix(&floats, 2),
        },
        _ => Message::Compound(vec![
            Message::UpdateTracker {
                from: ints.first().copied().unwrap_or(0),
                centers: matrix(&floats, 2),
            },
            Message::SampleBernoulliLocal {
                round: ints.last().copied().unwrap_or(0),
                seed: ints.first().copied().unwrap_or(0),
                l: floats.first().copied().unwrap_or(1.0),
            },
        ]),
    }
}

fn matrix(values: &[f64], dim: usize) -> PointMatrix {
    let rows = values.len() / dim;
    PointMatrix::from_flat(values[..rows * dim].to_vec(), dim)
        .unwrap_or_else(|_| PointMatrix::from_flat(vec![0.0; dim], dim).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_messages_round_trip(
        shape in 0usize..9,
        floats in vec(-1e9f64..1e9, 1..40),
        ints in vec(any::<u64>(), 1..40),
    ) {
        let ints: Vec<u64> = ints.into_iter().map(|i| i % (1 << 40)).collect();
        let msg = build_message(shape, floats, ints);
        let frame = msg.encode_frame();
        let (decoded, used) = Message::decode_frame(&frame, MAX_FRAME_PAYLOAD).unwrap();
        prop_assert_eq!(used, frame.len());
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn truncated_frames_never_panic(
        shape in 0usize..9,
        floats in vec(-1e3f64..1e3, 1..20),
        ints in vec(0u64..1000, 1..20),
        cut_frac in 0.0f64..1.0,
    ) {
        let msg = build_message(shape, floats, ints);
        let frame = msg.encode_frame();
        let cut = ((frame.len() as f64) * cut_frac) as usize;
        let result = Message::decode_frame(&frame[..cut.min(frame.len() - 1)], MAX_FRAME_PAYLOAD);
        prop_assert_eq!(result.unwrap_err(), FrameError::Truncated);
    }

    #[test]
    fn flipped_bytes_are_detected(
        shape in 0usize..9,
        floats in vec(-1e3f64..1e3, 1..20),
        ints in vec(0u64..1000, 1..20),
        pos_frac in 0.0f64..1.0,
        flip in 1u64..256,
    ) {
        let msg = build_message(shape, floats, ints);
        let mut frame = msg.encode_frame();
        let pos = ((frame.len() as f64) * pos_frac) as usize % frame.len();
        frame[pos] ^= flip as u8;
        // Either detected as a typed error, or (only when the flip landed
        // in the checksum-covered payload and collided — impossible for a
        // single-byte FNV flip — or restored the original) decoded; a
        // decode, if it happens, must round-trip to *some* valid message.
        match Message::decode_frame(&frame, MAX_FRAME_PAYLOAD) {
            Err(_) => {}
            Ok((m, used)) => {
                prop_assert_eq!(used, frame.len());
                prop_assert_eq!(m, msg); // only possible if flip was a no-op
            }
        }
    }

    #[test]
    fn garbage_never_panics_or_over_allocates(
        bytes in vec(any::<u64>(), 0..64),
    ) {
        let garbage: Vec<u8> = bytes.iter().flat_map(|b| b.to_le_bytes()).collect();
        // Must return a typed error (or, vanishingly unlikely, decode) —
        // and never allocate beyond the 1 KiB cap given here.
        let _ = Message::decode_frame(&garbage, 1024);
    }

    #[test]
    fn forged_length_prefixes_are_rejected_before_allocation(
        declared in 1025u64..u32::MAX as u64,
    ) {
        let msg = Message::ShutdownOk;
        let mut frame = msg.encode_frame();
        frame[5..9].copy_from_slice(&(declared as u32).to_le_bytes());
        let err = Message::decode_frame(&frame, 1024).unwrap_err();
        prop_assert_eq!(err, FrameError::Oversized { len: declared, max: 1024 });
    }

    #[test]
    fn forged_element_counts_are_rejected_before_allocation(
        count in 64u64..u64::MAX / 16,
    ) {
        // A ShardSums payload whose count field promises far more floats
        // than the payload holds.
        let mut payload = Vec::new();
        payload.extend_from_slice(&count.to_le_bytes());
        payload.extend_from_slice(&1.0f64.to_le_bytes());
        let mut frame = Vec::new();
        frame.extend_from_slice(b"SKW1");
        frame.push(6); // ShardSums
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        // Correct checksum so only the count is adversarial.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in std::iter::once(&6u8).chain(payload.iter()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        frame.extend_from_slice(&h.to_le_bytes());
        let err = Message::decode_frame(&frame, MAX_FRAME_PAYLOAD).unwrap_err();
        prop_assert!(matches!(err, FrameError::Malformed(_)));
    }

    #[test]
    fn forged_compound_item_counts_are_rejected_before_allocation(
        count in 64u64..u64::MAX / 16,
    ) {
        // A Compound payload whose item count promises far more
        // sub-messages than the payload could hold (each item costs at
        // least a tag byte plus a length prefix) — must be rejected by
        // the count/size check before any Vec allocation.
        let mut payload = Vec::new();
        payload.extend_from_slice(&count.to_le_bytes());
        payload.push(25); // one Shutdown tag byte, then nothing
        let err = Message::decode_frame(&checksummed_frame(29, &payload), MAX_FRAME_PAYLOAD)
            .unwrap_err();
        prop_assert!(matches!(err, FrameError::Malformed(_)));
    }
}

/// Assembles a well-checksummed `SKW1` frame for `tag` around an
/// arbitrary payload, so decode tests exercise only the payload logic.
fn checksummed_frame(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::new();
    frame.extend_from_slice(b"SKW1");
    frame.push(tag);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in std::iter::once(&tag).chain(payload.iter()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    frame.extend_from_slice(&h.to_le_bytes());
    frame
}

#[test]
fn empty_compound_is_a_typed_error() {
    let payload = 0u64.to_le_bytes().to_vec();
    let err = Message::decode_frame(&checksummed_frame(29, &payload), MAX_FRAME_PAYLOAD)
        .unwrap_err();
    assert_eq!(err, FrameError::Malformed("empty compound"));
}

#[test]
fn nested_compound_is_rejected() {
    // A syntactically well-formed Compound whose single item is itself a
    // Compound (tag 29): one item, inner tag 29, inner length-prefixed
    // payload that would itself be a valid one-item compound
    // ([Shutdown]): count 1, tag 25, empty length-prefixed payload.
    let mut inner = Vec::new();
    inner.extend_from_slice(&1u64.to_le_bytes());
    inner.push(25);
    inner.extend_from_slice(&0u64.to_le_bytes());
    let mut payload = Vec::new();
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.push(29);
    payload.extend_from_slice(&(inner.len() as u64).to_le_bytes());
    payload.extend_from_slice(&inner);
    let err = Message::decode_frame(&checksummed_frame(29, &payload), MAX_FRAME_PAYLOAD)
        .unwrap_err();
    assert_eq!(err, FrameError::Malformed("nested compound"));
}

#[test]
fn stats_and_error_messages_survive_the_wire() {
    // Deterministic spot check for the non-fuzzed shapes.
    for msg in [
        Message::Stats(WorkerStats {
            peak_bytes: 123,
            loads: 4,
            hits: 5,
            budget_bytes: u64::MAX,
        }),
        Message::Error(kmeans_core::KMeansError::NonFiniteData { point: 7, dim: 2 }.into()),
    ] {
        let frame = msg.encode_frame();
        let (decoded, _) = Message::decode_frame(&frame, MAX_FRAME_PAYLOAD).unwrap();
        assert_eq!(decoded, msg);
    }
}
