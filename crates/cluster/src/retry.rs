//! Bounded retry/backoff schedules — the shared home of [`RetryPolicy`].
//!
//! One policy shape serves every reconnection path in the workspace: the
//! coordinator's worker re-dial and mid-round recovery
//! ([`crate::coordinator::Cluster`]) and the serving tier's client
//! failover across a replica set (`kmeans_serve::ServeClient`). The
//! schedule is a pure function of the attempt number — deterministic for
//! a given policy, so chaos tests that count sleeps stay reproducible —
//! and covers both the cluster's historical fixed-interval shape and the
//! exponential, jittered shape a fleet of failing-over clients needs (all
//! clients of a dying replica re-dial at *decorrelated* times instead of
//! stampeding the next one in lockstep).

use std::time::Duration;

/// Bounded retry/backoff schedule. `attempts` bounds how many times an
/// operation is retried; [`RetryPolicy::delay_for`] maps the 1-based
/// attempt number to the sleep that precedes it.
///
/// With `multiplier == 1.0` and `jitter == 0.0` (the [`Default`], and
/// [`RetryPolicy::fixed`]) this is the classic fixed-interval schedule
/// the distributed runtime has always used. [`RetryPolicy::exponential`]
/// doubles the delay each attempt up to `max_backoff` and subtracts a
/// deterministic pseudo-random jitter fraction.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Maximum attempts before giving up (at least 1 is always made).
    pub attempts: u32,
    /// Base sleep between attempts (and before the first recovery
    /// attempt, giving a restarted peer time to bind).
    pub backoff: Duration,
    /// Per-attempt growth factor (1.0 = fixed interval).
    pub multiplier: f64,
    /// Ceiling on the grown delay.
    pub max_backoff: Duration,
    /// Fraction of the delay randomized away (0.0 = none, 0.5 = each
    /// delay lands in `[delay/2, delay]`). The jitter is a deterministic
    /// hash of `(jitter_seed, attempt)`, so a given policy always
    /// produces the same schedule — tests stay reproducible while
    /// distinct clients (distinct seeds) decorrelate.
    pub jitter: f64,
    /// Seed decorrelating jitter streams across policy instances.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// 25 attempts × 200 ms fixed ≈ a 5-second window for a replacement
    /// worker to appear — the distributed runtime's historical schedule.
    fn default() -> Self {
        RetryPolicy::fixed(25, Duration::from_millis(200))
    }
}

/// SplitMix64 — the deterministic jitter hash (public-domain constant
/// schedule; one round is plenty for decorrelating sleep times).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// Fixed-interval schedule: `attempts` tries, `backoff` between each.
    pub fn fixed(attempts: u32, backoff: Duration) -> Self {
        RetryPolicy {
            attempts,
            backoff,
            multiplier: 1.0,
            max_backoff: backoff,
            jitter: 0.0,
            jitter_seed: 0,
        }
    }

    /// Exponential schedule: the delay before attempt `n` is
    /// `base · 2^(n-1)` clamped to `max`, with half the delay jittered
    /// away deterministically. The failover-client default shape.
    pub fn exponential(attempts: u32, base: Duration, max: Duration) -> Self {
        RetryPolicy {
            attempts,
            backoff: base,
            multiplier: 2.0,
            max_backoff: max,
            jitter: 0.5,
            jitter_seed: 1,
        }
    }

    /// Returns a copy with a different jitter seed — distinct clients
    /// should use distinct seeds so their retry storms decorrelate.
    pub fn jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The sleep preceding the `attempt`-th try (1-based; attempt 0 is
    /// treated as 1). Pure: same policy + attempt → same duration.
    pub fn delay_for(&self, attempt: u32) -> Duration {
        let attempt = attempt.max(1);
        let base = self.backoff.as_secs_f64();
        let mult = if self.multiplier.is_finite() && self.multiplier >= 1.0 {
            self.multiplier
        } else {
            1.0
        };
        // Grow in f64 (cheap, saturates cleanly via the clamp below).
        let grown = base * mult.powi((attempt - 1).min(63) as i32);
        let capped = grown.min(self.max_backoff.as_secs_f64().max(base));
        let jitter = self.jitter.clamp(0.0, 1.0);
        let frac = if jitter > 0.0 {
            let h = splitmix64(self.jitter_seed ^ u64::from(attempt));
            (h >> 11) as f64 / (1u64 << 53) as f64
        } else {
            0.0
        };
        Duration::from_secs_f64(capped * (1.0 - jitter * frac))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_schedule_is_constant() {
        let p = RetryPolicy::fixed(5, Duration::from_millis(200));
        for attempt in 1..=5 {
            assert_eq!(p.delay_for(attempt), Duration::from_millis(200));
        }
        // Attempt 0 is clamped to 1.
        assert_eq!(p.delay_for(0), Duration::from_millis(200));
    }

    #[test]
    fn default_matches_the_historical_cluster_schedule() {
        let p = RetryPolicy::default();
        assert_eq!(p.attempts, 25);
        assert_eq!(p.delay_for(1), Duration::from_millis(200));
        assert_eq!(p.delay_for(25), Duration::from_millis(200));
    }

    #[test]
    fn exponential_grows_caps_and_jitters_within_bounds() {
        let p = RetryPolicy::exponential(8, Duration::from_millis(50), Duration::from_secs(1));
        let mut prev_max = Duration::ZERO;
        for attempt in 1..=8u32 {
            let d = p.delay_for(attempt);
            // Undithered envelope: base·2^(n-1) capped at max.
            let envelope = Duration::from_secs_f64((0.05 * 2f64.powi(attempt as i32 - 1)).min(1.0));
            assert!(d <= envelope, "attempt {attempt}: {d:?} > {envelope:?}");
            // Jitter removes at most half.
            assert!(
                d.as_secs_f64() >= envelope.as_secs_f64() * 0.5 - 1e-9,
                "attempt {attempt}: {d:?} below jitter floor"
            );
            prev_max = prev_max.max(d);
        }
        assert!(prev_max <= Duration::from_secs(1));
        // Deterministic: the same policy re-queried gives the same delays.
        assert_eq!(p.delay_for(3), p.delay_for(3));
        // Distinct seeds decorrelate (with overwhelming probability the
        // hashed fractions differ).
        let q = p.jitter_seed(42);
        assert_ne!(p.delay_for(3), q.delay_for(3));
    }
}
