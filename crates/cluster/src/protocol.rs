//! The wire protocol: length-prefixed, checksummed frames carrying the
//! messages of the distributed k-means|| round structure.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! offset        size  field
//! 0             4     magic  b"SKW1"
//! 4             1     message tag
//! 5             4     payload length `len` (u32)
//! 9             len   payload (tag-specific encoding)
//! 9 + len       8     FNV-1a 64 checksum over tag byte + payload
//! ```
//!
//! Everything is hand-rolled `std` binary encoding — no external
//! dependencies, mirroring the repo's `SKMBLK01` block format. Decoding is
//! defensive: a frame is parsed only after its declared length passes the
//! caller's cap (no attacker-controlled allocation), every vector count is
//! checked against the bytes actually present before allocating, and every
//! malformed input maps to a typed [`FrameError`] — never a panic
//! (`tests/protocol_proptests.rs` fuzzes this contract).
//!
//! The frame assembly, checksum, and decoder primitives are the shared
//! machinery of [`crate::wire`]; this module supplies the `SKW1`
//! vocabulary — the distributed-runtime [`Message`] enum and its per-tag
//! payload codecs — via the [`WireMessage`] impl. The serving tier's
//! `SKS1` vocabulary (`kmeans-serve`) is a second instance of the same
//! machinery.

pub use crate::wire::{fnv1a, FrameError, ReadFrameError, MAX_FRAME_PAYLOAD};

use crate::wire::{Dec, Enc, WireMessage};
use kmeans_core::chunked::AccumShard;
use kmeans_core::kernel::KernelStats;
use kmeans_core::KMeansError;
use kmeans_data::PointMatrix;
use std::io::{Read, Write};

/// Frame magic (see module docs).
pub const FRAME_MAGIC: [u8; 4] = *b"SKW1";

/// A typed clustering error crossing the wire (worker → coordinator).
/// Mirrors [`KMeansError`] so the coordinator surfaces the *same* typed
/// error a single-node run would (`NonFiniteData` carries the global point
/// index, translated by the worker).
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// [`KMeansError::EmptyInput`].
    EmptyInput,
    /// [`KMeansError::InvalidK`].
    InvalidK {
        /// Requested clusters.
        k: u64,
        /// Points available.
        n: u64,
    },
    /// [`KMeansError::DimensionMismatch`].
    DimensionMismatch {
        /// Expected dimensionality.
        expected: u64,
        /// Provided dimensionality.
        got: u64,
    },
    /// [`KMeansError::InvalidConfig`].
    InvalidConfig(String),
    /// [`KMeansError::NonFiniteData`] (global point index).
    NonFiniteData {
        /// Global index of the offending point.
        point: u64,
        /// Offending dimension.
        dim: u64,
    },
    /// [`KMeansError::Data`].
    Data(String),
    /// The serving tier's admission queue is full: the request was shed
    /// *before* touching the kernel. Retriable — another replica (or the
    /// same one, moments later) may have room.
    Overloaded {
        /// Points admitted but not yet answered when the request arrived.
        queued_points: u64,
        /// The server's admission cap (`--queue-cap`), in points.
        cap: u64,
    },
    /// The request's deadline budget expired while it waited in the
    /// admission queue; the server skipped the kernel sweep whose answer
    /// the client had already abandoned.
    DeadlineExceeded {
        /// The budget the request carried, in milliseconds.
        budget_ms: u64,
    },
    /// The server is draining: already-admitted work completes and
    /// replies, new work is rejected. Retriable against another replica.
    Draining,
}

impl From<KMeansError> for WireError {
    fn from(e: KMeansError) -> Self {
        match e {
            KMeansError::EmptyInput => WireError::EmptyInput,
            KMeansError::InvalidK { k, n } => WireError::InvalidK {
                k: k as u64,
                n: n as u64,
            },
            KMeansError::DimensionMismatch { expected, got } => WireError::DimensionMismatch {
                expected: expected as u64,
                got: got as u64,
            },
            KMeansError::InvalidConfig(m) => WireError::InvalidConfig(m),
            KMeansError::NonFiniteData { point, dim } => WireError::NonFiniteData {
                point: point as u64,
                dim: dim as u64,
            },
            KMeansError::Data(m) => WireError::Data(m),
        }
    }
}

impl From<WireError> for KMeansError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::EmptyInput => KMeansError::EmptyInput,
            WireError::InvalidK { k, n } => KMeansError::InvalidK {
                k: k as usize,
                n: n as usize,
            },
            WireError::DimensionMismatch { expected, got } => KMeansError::DimensionMismatch {
                expected: expected as usize,
                got: got as usize,
            },
            WireError::InvalidConfig(m) => KMeansError::InvalidConfig(m),
            WireError::NonFiniteData { point, dim } => KMeansError::NonFiniteData {
                point: point as usize,
                dim: dim as usize,
            },
            WireError::Data(m) => KMeansError::Data(m),
            // The serving tier's typed rejections have no local
            // counterpart (a local predict is never shed); they collapse
            // into the catch-all with the queue state preserved in text.
            WireError::Overloaded { queued_points, cap } => KMeansError::Data(format!(
                "server overloaded: {queued_points} points queued (admission cap {cap}); \
                 request shed"
            )),
            WireError::DeadlineExceeded { budget_ms } => KMeansError::Data(format!(
                "deadline exceeded: the {budget_ms} ms budget expired before the request \
                 was batched"
            )),
            WireError::Draining => {
                KMeansError::Data("server draining: new requests are rejected".into())
            }
        }
    }
}

/// Whether an [`Message::Assign`] pass should ship the labels it stored
/// back in its [`Message::Partials`] reply — the wire form of the
/// driver's `LabelFetch`, eliminating the separate `FetchLabels` cycle
/// on the paths that need labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LabelsWanted {
    /// Labels stay worker-resident (mid-loop Lloyd iterations). Also the
    /// decoded meaning of a frame without the trailing mode byte.
    #[default]
    Skip,
    /// Ship labels iff this worker's pass was *locally* stable
    /// (`reassigned == 0`) — a globally stable pass then always arrives
    /// fully labeled, and an unstable one ships next to nothing.
    IfStable,
    /// Always ship the labels (closing relabel, label-only passes).
    Always,
}

/// A worker's residency/accounting snapshot (reply to
/// [`Message::FetchStats`]), surfaced in the CLI's per-worker report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerStats {
    /// Peak feature bytes the worker's source ever materialized at once.
    pub peak_bytes: u64,
    /// Blocks decoded from the worker's backing store.
    pub loads: u64,
    /// Block reads served from the worker's cache.
    pub hits: u64,
    /// Configured memory budget (`u64::MAX` when the source enforces
    /// none).
    pub budget_bytes: u64,
}

/// One message of the coordinator/worker conversation. The round
/// structure of Algorithm 2 maps onto these directly: `InitTracker` /
/// `UpdateTracker` are the centers broadcasts (Steps 2 and 5–6),
/// `SampleBernoulli` / `SampleExact` are Step 4, `ShardSums` carries the
/// `φ_X′(C)` cost partials of §3.5, `CandidateWeights` is Step 7, and
/// `Assign`/`Partials` carry the accumulation-shard partials of the
/// distributed Lloyd iteration.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker → coordinator on connect: local shard shape.
    Hello {
        /// Rows the worker serves.
        rows: u64,
        /// Row dimensionality.
        dim: u32,
    },
    /// Coordinator → worker: the fit's global layout.
    Plan {
        /// Total rows across all workers.
        global_n: u64,
        /// Global index of this worker's first row.
        start_row: u64,
        /// Executor shard size (the reproducibility key's shard grid).
        shard_size: u64,
        /// Expected dimensionality (cross-check).
        dim: u32,
    },
    /// Worker → coordinator: plan accepted.
    PlanOk,
    /// Broadcast of an initial candidate/center set; the worker (re)builds
    /// its local `d²`/nearest tracker state and replies with `ShardSums`.
    InitTracker {
        /// The centers.
        centers: PointMatrix,
    },
    /// Broadcast of newly added candidates only (`from` = index of the
    /// first new row in the worker's candidate set). Replies `ShardSums`.
    UpdateTracker {
        /// Index of the first new candidate.
        from: u64,
        /// The new candidate rows.
        centers: PointMatrix,
    },
    /// Per-executor-shard partial sums, in shard order (reply to
    /// `InitTracker`, `UpdateTracker`, and `Cost`).
    ShardSums {
        /// One partial per executor shard of the worker's range.
        sums: Vec<f64>,
    },
    /// Step 4, Bernoulli form: sample this round. Replies `Sampled`.
    SampleBernoulli {
        /// Round index (part of the RNG stream derivation).
        round: u64,
        /// Base seed.
        seed: u64,
        /// Oversampling ℓ.
        l: f64,
        /// Current global potential φ.
        phi: f64,
    },
    /// The worker's picks: ascending global indices plus their rows.
    Sampled {
        /// Global row indices.
        indices: Vec<u64>,
        /// The corresponding rows, in the same order.
        rows: PointMatrix,
    },
    /// Step 4, exact-ℓ form: per-shard Efraimidis–Spirakis keys. Replies
    /// `ExactKeys`; the coordinator merges globally and gathers rows.
    SampleExact {
        /// Round index.
        round: u64,
        /// Base seed.
        seed: u64,
        /// Global sample size `m`.
        m: u64,
    },
    /// Shard-local top-`m` keyed candidates `(key, global index)`.
    ExactKeys {
        /// The keyed entries, per-shard top-`m` concatenated.
        entries: Vec<(f64, u64)>,
    },
    /// Step 7: candidate weights from the tracked nearest ids. Replies
    /// `Weights`.
    CandidateWeights {
        /// Candidate count (cross-checked against the worker's set).
        m: u64,
    },
    /// Per-candidate local point counts (integer-valued f64, summed
    /// exactly by the coordinator).
    Weights {
        /// `w_x` restricted to the worker's rows.
        weights: Vec<f64>,
    },
    /// Fetch specific rows by global index (within the worker's range).
    GatherRows {
        /// Global row indices, in the order the rows should come back.
        indices: Vec<u64>,
    },
    /// Reply to `GatherRows`.
    Rows {
        /// The gathered rows.
        rows: PointMatrix,
    },
    /// Fetch the worker's resident `d²` slice (top-up path only).
    GatherD2,
    /// Reply to `GatherD2`.
    D2 {
        /// The worker's `d²` values, in local row order.
        values: Vec<f64>,
    },
    /// One distributed assignment pass against these centers. Replies
    /// `Partials`; the worker stores the labels for `FetchLabels`.
    Assign {
        /// The centers.
        centers: PointMatrix,
        /// Whether the reply should carry the stored labels. Encoded as
        /// a trailing byte; frames without it decode as `Skip`.
        labels: LabelsWanted,
    },
    /// Accumulation-shard partials of one assignment pass, in shard
    /// order, plus the reassignment count vs. the previous pass and the
    /// pass's kernel work counters.
    Partials {
        /// Rows whose label changed (local count; first pass = all).
        reassigned: u64,
        /// One partial per accumulation shard of the worker's range.
        shards: Vec<AccumShard>,
        /// The worker's kernel counters for this pass (distance
        /// evaluations performed, candidates pruned by the norm /
        /// coordinate bounds). Encoded as a trailing field; decoders
        /// accept frames without it (older workers) as zeroed counters,
        /// so the coordinator degrades to under-counting instead of
        /// failing the round.
        stats: KernelStats,
        /// The stored labels (local row order), present when the request
        /// asked per its [`LabelsWanted`]. Trailing field after `stats`;
        /// frames without it decode as `None`.
        labels: Option<Vec<u32>>,
    },
    /// Potential partials for these centers (seed-cost pass; includes the
    /// finiteness check). Replies `ShardSums`.
    Cost {
        /// The centers.
        centers: PointMatrix,
    },
    /// Fetch the labels stored by the last `Assign`. Replies `Labels`.
    FetchLabels,
    /// Reply to `FetchLabels`.
    Labels {
        /// Labels in local row order.
        labels: Vec<u32>,
    },
    /// Fetch the worker's residency accounting. Replies `Stats`.
    FetchStats,
    /// Reply to `FetchStats`.
    Stats(WorkerStats),
    /// Worker → coordinator: a typed failure (the session stays open).
    Error(WireError),
    /// Coordinator → worker: end the session. Replies `ShutdownOk`.
    Shutdown,
    /// Worker → coordinator: session ended.
    ShutdownOk,
    /// Coordinator → worker (recovery catch-up): rebuild the labels the
    /// last completed `Assign` round left behind by re-running assignment
    /// against the same centers, discarding the partials. Sent to a
    /// replacement worker after the tracker replay so the next real
    /// `Assign` counts reassignments — and `FetchLabels` answers —
    /// exactly as the lost worker would have. Replies `RestoreOk`.
    RestoreLabels {
        /// Centers of the last completed assignment round.
        centers: PointMatrix,
    },
    /// Worker → coordinator: labels restored.
    RestoreOk,
    /// Several messages traveling as **one** frame — the round-fusion
    /// mechanism. A coordinator sends one `Compound` of requests per
    /// worker per fused round (e.g. `[UpdateTracker, SampleBernoulliLocal]`);
    /// the worker executes the sub-messages in order against its session
    /// state and replies with one `Compound` of the per-item replies,
    /// stopping after the first item that produces an `Error` (which
    /// stays in place as the last reply). Defensively decoded: per-item
    /// length bounds before any allocation, nested compounds rejected,
    /// and an empty compound is a typed error.
    Compound(Vec<Message>),
    /// Step 4, Bernoulli form, *prescreened locally*: the worker draws
    /// the per-shard tag-31 streams and keeps every point accepted
    /// against its **local** potential `φ_lo` (the left fold of its own
    /// per-shard `d²` sums — an FP-guaranteed lower bound on the global
    /// folded φ, so the true accept set is always a subset). Replies
    /// [`Message::Prescreened`]; the coordinator replays the exact
    /// accept predicate with the folded global φ. Unlike
    /// [`Message::SampleBernoulli`] this request does not need φ, which
    /// is what lets it ride the same compound frame as the tracker
    /// update that changes φ.
    SampleBernoulliLocal {
        /// Round index (part of the RNG stream derivation).
        round: u64,
        /// Base seed.
        seed: u64,
        /// Oversampling ℓ.
        l: f64,
    },
    /// The prescreen survivors: `(global index, uniform draw u, d²)` per
    /// entry (ascending indices), plus their rows in the same order. The
    /// coordinator keeps entry `j` iff `u < ℓ·d²/φ` under the global φ.
    Prescreened {
        /// `(global index, u, d²)` triples, ascending by index.
        entries: Vec<(u64, f64, f64)>,
        /// The corresponding rows, same order as `entries`.
        rows: PointMatrix,
    },
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn encode_accum_shard(e: &mut Enc, s: &AccumShard) {
    e.f64s(&s.sums);
    e.u64s(&s.counts);
    e.f64(s.cost);
    e.u64(if s.farthest.0 == usize::MAX {
        u64::MAX
    } else {
        s.farthest.0 as u64
    });
    e.f64(s.farthest.1);
}

fn decode_accum_shard(d: &mut Dec<'_>) -> Result<AccumShard, FrameError> {
    let sums = d.f64s()?;
    let counts = d.u64s()?;
    let cost = d.f64()?;
    let far_idx = d.u64()?;
    let far_d2 = d.f64()?;
    Ok(AccumShard {
        sums,
        counts,
        cost,
        farthest: (
            if far_idx == u64::MAX {
                usize::MAX
            } else {
                far_idx as usize
            },
            far_d2,
        ),
    })
}

impl WireMessage for Message {
    const MAGIC: [u8; 4] = FRAME_MAGIC;

    fn tag(&self) -> u8 {
        match self {
            Message::Hello { .. } => 1,
            Message::Plan { .. } => 2,
            Message::PlanOk => 3,
            Message::InitTracker { .. } => 4,
            Message::UpdateTracker { .. } => 5,
            Message::ShardSums { .. } => 6,
            Message::SampleBernoulli { .. } => 7,
            Message::Sampled { .. } => 8,
            Message::SampleExact { .. } => 9,
            Message::ExactKeys { .. } => 10,
            Message::CandidateWeights { .. } => 11,
            Message::Weights { .. } => 12,
            Message::GatherRows { .. } => 13,
            Message::Rows { .. } => 14,
            Message::GatherD2 => 15,
            Message::D2 { .. } => 16,
            Message::Assign { .. } => 17,
            Message::Partials { .. } => 18,
            Message::Cost { .. } => 19,
            Message::FetchLabels => 20,
            Message::Labels { .. } => 21,
            Message::FetchStats => 22,
            Message::Stats(_) => 23,
            Message::Error(_) => 24,
            Message::Shutdown => 25,
            Message::ShutdownOk => 26,
            Message::RestoreLabels { .. } => 27,
            Message::RestoreOk => 28,
            Message::Compound(_) => 29,
            Message::SampleBernoulliLocal { .. } => 30,
            Message::Prescreened { .. } => 31,
        }
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Message::Hello { rows, dim } => {
                e.u64(*rows);
                e.u32(*dim);
            }
            Message::Plan {
                global_n,
                start_row,
                shard_size,
                dim,
            } => {
                e.u64(*global_n);
                e.u64(*start_row);
                e.u64(*shard_size);
                e.u32(*dim);
            }
            Message::PlanOk | Message::GatherD2 | Message::FetchLabels | Message::FetchStats => {}
            Message::Shutdown | Message::ShutdownOk | Message::RestoreOk => {}
            Message::InitTracker { centers }
            | Message::Cost { centers }
            | Message::RestoreLabels { centers } => {
                e.matrix(centers);
            }
            Message::Assign { centers, labels } => {
                e.matrix(centers);
                // Trailing mode byte (absent in revision-1 frames, which
                // decode as Skip).
                e.u8(match labels {
                    LabelsWanted::Skip => 0,
                    LabelsWanted::IfStable => 1,
                    LabelsWanted::Always => 2,
                });
            }
            Message::UpdateTracker { from, centers } => {
                e.u64(*from);
                e.matrix(centers);
            }
            Message::ShardSums { sums } => e.f64s(sums),
            Message::SampleBernoulli {
                round,
                seed,
                l,
                phi,
            } => {
                e.u64(*round);
                e.u64(*seed);
                e.f64(*l);
                e.f64(*phi);
            }
            Message::Sampled { indices, rows } => {
                e.u64s(indices);
                e.matrix(rows);
            }
            Message::SampleExact { round, seed, m } => {
                e.u64(*round);
                e.u64(*seed);
                e.u64(*m);
            }
            Message::ExactKeys { entries } => {
                e.u64(entries.len() as u64);
                for &(key, idx) in entries {
                    e.f64(key);
                    e.u64(idx);
                }
            }
            Message::CandidateWeights { m } => e.u64(*m),
            Message::Weights { weights } => e.f64s(weights),
            Message::GatherRows { indices } => e.u64s(indices),
            Message::Rows { rows } => e.matrix(rows),
            Message::D2 { values } => e.f64s(values),
            Message::Partials {
                reassigned,
                shards,
                stats,
                labels,
            } => {
                e.u64(*reassigned);
                e.u64(shards.len() as u64);
                for s in shards {
                    encode_accum_shard(&mut e, s);
                }
                // Trailing stats field (added in frame revision 2; absent
                // in frames from older peers — see the decoder).
                e.u64(stats.distance_computations);
                e.u64(stats.pruned_by_norm_bound);
                // Trailing labels (revision 3): encoded only when present,
                // so revision-2 frames decode as `None`.
                if let Some(l) = labels {
                    e.u8(1);
                    e.u32s(l);
                }
            }
            Message::Labels { labels } => e.u32s(labels),
            Message::Stats(s) => {
                e.u64(s.peak_bytes);
                e.u64(s.loads);
                e.u64(s.hits);
                e.u64(s.budget_bytes);
            }
            Message::Error(err) => match err {
                WireError::EmptyInput => e.u8(1),
                WireError::InvalidK { k, n } => {
                    e.u8(2);
                    e.u64(*k);
                    e.u64(*n);
                }
                WireError::DimensionMismatch { expected, got } => {
                    e.u8(3);
                    e.u64(*expected);
                    e.u64(*got);
                }
                WireError::InvalidConfig(m) => {
                    e.u8(4);
                    e.text(m);
                }
                WireError::NonFiniteData { point, dim } => {
                    e.u8(5);
                    e.u64(*point);
                    e.u64(*dim);
                }
                WireError::Data(m) => {
                    e.u8(6);
                    e.text(m);
                }
                WireError::Overloaded { queued_points, cap } => {
                    e.u8(7);
                    e.u64(*queued_points);
                    e.u64(*cap);
                }
                WireError::DeadlineExceeded { budget_ms } => {
                    e.u8(8);
                    e.u64(*budget_ms);
                }
                WireError::Draining => e.u8(9),
            },
            Message::Compound(items) => {
                e.u64(items.len() as u64);
                for item in items {
                    e.u8(WireMessage::tag(item));
                    e.bytes(&item.encode_payload());
                }
            }
            Message::SampleBernoulliLocal { round, seed, l } => {
                e.u64(*round);
                e.u64(*seed);
                e.f64(*l);
            }
            Message::Prescreened { entries, rows } => {
                e.u64(entries.len() as u64);
                for &(idx, u, d2) in entries {
                    e.u64(idx);
                    e.f64(u);
                    e.f64(d2);
                }
                e.matrix(rows);
            }
        }
        e.into_bytes()
    }

    fn decode_payload(tag: u8, payload: &[u8]) -> Result<Message, FrameError> {
        let mut d = Dec::new(payload);
        let msg = match tag {
            1 => Message::Hello {
                rows: d.u64()?,
                dim: d.u32()?,
            },
            2 => Message::Plan {
                global_n: d.u64()?,
                start_row: d.u64()?,
                shard_size: d.u64()?,
                dim: d.u32()?,
            },
            3 => Message::PlanOk,
            4 => Message::InitTracker {
                centers: d.matrix()?,
            },
            5 => Message::UpdateTracker {
                from: d.u64()?,
                centers: d.matrix()?,
            },
            6 => Message::ShardSums { sums: d.f64s()? },
            7 => Message::SampleBernoulli {
                round: d.u64()?,
                seed: d.u64()?,
                l: d.f64()?,
                phi: d.f64()?,
            },
            8 => Message::Sampled {
                indices: d.u64s()?,
                rows: d.matrix()?,
            },
            9 => Message::SampleExact {
                round: d.u64()?,
                seed: d.u64()?,
                m: d.u64()?,
            },
            10 => {
                let n = d.count(16)?;
                let entries = (0..n)
                    .map(|_| Ok((d.f64()?, d.u64()?)))
                    .collect::<Result<Vec<_>, FrameError>>()?;
                Message::ExactKeys { entries }
            }
            11 => Message::CandidateWeights { m: d.u64()? },
            12 => Message::Weights { weights: d.f64s()? },
            13 => Message::GatherRows { indices: d.u64s()? },
            14 => Message::Rows { rows: d.matrix()? },
            15 => Message::GatherD2,
            16 => Message::D2 { values: d.f64s()? },
            17 => {
                let centers = d.matrix()?;
                // Trailing mode byte: a revision-1 frame ends here (Skip).
                let labels = if d.remaining() == 0 {
                    LabelsWanted::Skip
                } else {
                    match d.u8()? {
                        0 => LabelsWanted::Skip,
                        1 => LabelsWanted::IfStable,
                        2 => LabelsWanted::Always,
                        _ => return Err(FrameError::Malformed("unknown labels mode")),
                    }
                };
                Message::Assign { centers, labels }
            }
            18 => {
                let reassigned = d.u64()?;
                // One AccumShard is at least 5 fixed u64/f64 fields.
                let n = d.count(40)?;
                let shards = (0..n)
                    .map(|_| decode_accum_shard(&mut d))
                    .collect::<Result<Vec<_>, _>>()?;
                // Defensive versioning: the kernel-counter field trails
                // the shards. A frame ending right here is a revision-1
                // frame (counters default to zero); anything else must be
                // the full pair of u64s — `d.finish()` below rejects
                // stragglers.
                let stats = if d.remaining() == 0 {
                    KernelStats::default()
                } else {
                    KernelStats {
                        distance_computations: d.u64()?,
                        pruned_by_norm_bound: d.u64()?,
                    }
                };
                // Trailing labels (revision 3): absent in older frames.
                let labels = if d.remaining() == 0 {
                    None
                } else if d.u8()? == 1 {
                    Some(d.u32s()?)
                } else {
                    return Err(FrameError::Malformed("unknown labels flag"));
                };
                Message::Partials {
                    reassigned,
                    shards,
                    stats,
                    labels,
                }
            }
            19 => Message::Cost {
                centers: d.matrix()?,
            },
            20 => Message::FetchLabels,
            21 => Message::Labels { labels: d.u32s()? },
            22 => Message::FetchStats,
            23 => Message::Stats(WorkerStats {
                peak_bytes: d.u64()?,
                loads: d.u64()?,
                hits: d.u64()?,
                budget_bytes: d.u64()?,
            }),
            24 => {
                let kind = d.u8()?;
                let err = match kind {
                    1 => WireError::EmptyInput,
                    2 => WireError::InvalidK {
                        k: d.u64()?,
                        n: d.u64()?,
                    },
                    3 => WireError::DimensionMismatch {
                        expected: d.u64()?,
                        got: d.u64()?,
                    },
                    4 => WireError::InvalidConfig(d.text()?),
                    5 => WireError::NonFiniteData {
                        point: d.u64()?,
                        dim: d.u64()?,
                    },
                    6 => WireError::Data(d.text()?),
                    7 => WireError::Overloaded {
                        queued_points: d.u64()?,
                        cap: d.u64()?,
                    },
                    8 => WireError::DeadlineExceeded {
                        budget_ms: d.u64()?,
                    },
                    9 => WireError::Draining,
                    _ => return Err(FrameError::Malformed("unknown error kind")),
                };
                Message::Error(err)
            }
            25 => Message::Shutdown,
            26 => Message::ShutdownOk,
            27 => Message::RestoreLabels {
                centers: d.matrix()?,
            },
            28 => Message::RestoreOk,
            29 => {
                // Each item costs at least a tag byte plus a length
                // prefix; validating the count against that floor bounds
                // the allocation before it happens.
                let n = d.count(9)?;
                if n == 0 {
                    return Err(FrameError::Malformed("empty compound"));
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let tag = d.u8()?;
                    if tag == 29 {
                        return Err(FrameError::Malformed("nested compound"));
                    }
                    let payload = d.bytes()?;
                    items.push(Message::decode_payload(tag, &payload)?);
                }
                Message::Compound(items)
            }
            30 => Message::SampleBernoulliLocal {
                round: d.u64()?,
                seed: d.u64()?,
                l: d.f64()?,
            },
            31 => {
                let n = d.count(24)?;
                let entries = (0..n)
                    .map(|_| Ok((d.u64()?, d.f64()?, d.f64()?)))
                    .collect::<Result<Vec<_>, FrameError>>()?;
                Message::Prescreened {
                    entries,
                    rows: d.matrix()?,
                }
            }
            other => return Err(FrameError::UnknownTag(other)),
        };
        d.finish()?;
        Ok(msg)
    }
}

impl Message {
    /// Stable lower-snake-case name of the variant — the round tag used
    /// by the flight recorder's coordinator spans and `skm worker
    /// --log` lines.
    pub fn name(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "hello",
            Message::Plan { .. } => "plan",
            Message::PlanOk => "plan_ok",
            Message::InitTracker { .. } => "init_tracker",
            Message::UpdateTracker { .. } => "update_tracker",
            Message::ShardSums { .. } => "shard_sums",
            Message::SampleBernoulli { .. } => "sample_bernoulli",
            Message::Sampled { .. } => "sampled",
            Message::SampleExact { .. } => "sample_exact",
            Message::ExactKeys { .. } => "exact_keys",
            Message::CandidateWeights { .. } => "candidate_weights",
            Message::Weights { .. } => "weights",
            Message::GatherRows { .. } => "gather_rows",
            Message::Rows { .. } => "rows",
            Message::GatherD2 => "gather_d2",
            Message::D2 { .. } => "d2",
            Message::Assign { .. } => "assign",
            Message::Partials { .. } => "partials",
            Message::Cost { .. } => "cost",
            Message::FetchLabels => "fetch_labels",
            Message::Labels { .. } => "labels",
            Message::FetchStats => "fetch_stats",
            Message::Stats(_) => "stats",
            Message::Error(_) => "error",
            Message::Shutdown => "shutdown",
            Message::ShutdownOk => "shutdown_ok",
            Message::RestoreLabels { .. } => "restore_labels",
            Message::RestoreOk => "restore_ok",
            Message::Compound(_) => "compound",
            Message::SampleBernoulliLocal { .. } => "sample_bernoulli_local",
            Message::Prescreened { .. } => "prescreened",
        }
    }

    /// Encodes the message as one complete frame (magic, tag, length,
    /// payload, checksum). Returns the frame bytes. Inherent forwarder
    /// to [`WireMessage::encode_frame`] so call sites need no trait
    /// import.
    pub fn encode_frame(&self) -> Vec<u8> {
        WireMessage::encode_frame(self)
    }

    /// Decodes one frame from a byte buffer, returning the message and the
    /// number of bytes consumed. `max_payload` caps the declared payload
    /// length *before* any allocation.
    pub fn decode_frame(bytes: &[u8], max_payload: usize) -> Result<(Message, usize), FrameError> {
        <Message as WireMessage>::decode_frame(bytes, max_payload)
    }

    /// Writes the message as one frame. Returns the bytes written.
    pub fn write_frame(&self, w: &mut impl Write) -> std::io::Result<usize> {
        WireMessage::write_frame(self, w)
    }

    /// Reads one frame from a byte stream, returning the message and the
    /// bytes consumed. I/O failures (peer gone, timeout) and invalid
    /// frames are distinguished by [`ReadFrameError`].
    pub fn read_frame(
        r: &mut impl Read,
        max_payload: usize,
    ) -> Result<(Message, usize), ReadFrameError> {
        <Message as WireMessage>::read_frame(r, max_payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        let m = PointMatrix::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2).unwrap();
        vec![
            Message::Hello { rows: 7, dim: 2 },
            Message::Plan {
                global_n: 100,
                start_row: 32,
                shard_size: 16,
                dim: 2,
            },
            Message::PlanOk,
            Message::InitTracker { centers: m.clone() },
            Message::UpdateTracker {
                from: 3,
                centers: m.clone(),
            },
            Message::ShardSums {
                sums: vec![1.5, -2.5, 0.0],
            },
            Message::SampleBernoulli {
                round: 2,
                seed: 42,
                l: 8.0,
                phi: 123.456,
            },
            Message::Sampled {
                indices: vec![3, 9],
                rows: m.clone(),
            },
            Message::SampleExact {
                round: 1,
                seed: 9,
                m: 4,
            },
            Message::ExactKeys {
                entries: vec![(-0.5, 3), (-1.25, 77)],
            },
            Message::CandidateWeights { m: 5 },
            Message::Weights {
                weights: vec![2.0, 0.0, 3.0],
            },
            Message::GatherRows {
                indices: vec![0, 5, 5],
            },
            Message::Rows { rows: m.clone() },
            Message::GatherD2,
            Message::D2 {
                values: vec![0.25; 4],
            },
            Message::Assign {
                centers: m.clone(),
                labels: LabelsWanted::Skip,
            },
            Message::Assign {
                centers: m.clone(),
                labels: LabelsWanted::IfStable,
            },
            Message::Partials {
                reassigned: 11,
                shards: vec![AccumShard {
                    sums: vec![1.0, 2.0, 3.0, 4.0],
                    counts: vec![2, 1],
                    cost: 0.5,
                    farthest: (17, 0.25),
                }],
                stats: KernelStats {
                    distance_computations: 42,
                    pruned_by_norm_bound: 7,
                },
                labels: None,
            },
            Message::Partials {
                reassigned: 0,
                shards: Vec::new(),
                stats: KernelStats::default(),
                labels: Some(vec![2, 0, 1]),
            },
            Message::SampleBernoulliLocal {
                round: 3,
                seed: 42,
                l: 16.0,
            },
            Message::Prescreened {
                entries: vec![(5, 0.25, 1.5), (9, 0.75, 0.125)],
                rows: m.clone(),
            },
            Message::Compound(vec![
                Message::UpdateTracker {
                    from: 3,
                    centers: m.clone(),
                },
                Message::SampleBernoulliLocal {
                    round: 1,
                    seed: 7,
                    l: 4.0,
                },
            ]),
            Message::Compound(vec![
                Message::ShardSums {
                    sums: vec![1.0, 2.0],
                },
                Message::Error(WireError::EmptyInput),
            ]),
            Message::Cost { centers: m.clone() },
            Message::RestoreLabels { centers: m },
            Message::RestoreOk,
            Message::FetchLabels,
            Message::Labels {
                labels: vec![0, 1, 1, 0],
            },
            Message::FetchStats,
            Message::Stats(WorkerStats {
                peak_bytes: 1,
                loads: 2,
                hits: 3,
                budget_bytes: u64::MAX,
            }),
            Message::Error(WireError::NonFiniteData { point: 40, dim: 1 }),
            Message::Error(WireError::InvalidConfig("bad ℓ".into())),
            Message::Shutdown,
            Message::ShutdownOk,
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in sample_messages() {
            let frame = msg.encode_frame();
            let (decoded, used) = Message::decode_frame(&frame, MAX_FRAME_PAYLOAD).unwrap();
            assert_eq!(decoded, msg);
            assert_eq!(used, frame.len());
            // Stream form agrees.
            let mut cursor = std::io::Cursor::new(&frame);
            let (decoded, used) = Message::read_frame(&mut cursor, MAX_FRAME_PAYLOAD).unwrap();
            assert_eq!(decoded, msg);
            assert_eq!(used, frame.len());
        }
    }

    #[test]
    fn corrupted_frames_are_typed_errors() {
        let msg = Message::ShardSums {
            sums: vec![1.0, 2.0],
        };
        let frame = msg.encode_frame();

        // Bad magic.
        let mut bad = frame.clone();
        bad[0] = b'X';
        assert_eq!(
            Message::decode_frame(&bad, MAX_FRAME_PAYLOAD).unwrap_err(),
            FrameError::BadMagic
        );
        // Truncation at every prefix length.
        for cut in 0..frame.len() {
            let e = Message::decode_frame(&frame[..cut], MAX_FRAME_PAYLOAD).unwrap_err();
            assert_eq!(e, FrameError::Truncated, "cut {cut}");
        }
        // Flipped payload byte → checksum error.
        let mut flipped = frame.clone();
        flipped[12] ^= 0xff;
        assert!(matches!(
            Message::decode_frame(&flipped, MAX_FRAME_PAYLOAD).unwrap_err(),
            FrameError::Checksum { .. } | FrameError::Oversized { .. }
        ));
        // Oversized declared length is rejected before allocation.
        let mut huge = frame.clone();
        huge[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Message::decode_frame(&huge, 1024).unwrap_err(),
            FrameError::Oversized { .. }
        ));
        // Unknown tag.
        let unknown = Message::ShutdownOk;
        let mut f = unknown.encode_frame();
        f[4] = 200;
        // Checksum covers the tag, so retag + fix checksum to isolate the case.
        let csum = fnv1a(200, &[]);
        let n = f.len();
        f[n - 8..].copy_from_slice(&csum.to_le_bytes());
        assert_eq!(
            Message::decode_frame(&f, MAX_FRAME_PAYLOAD).unwrap_err(),
            FrameError::UnknownTag(200)
        );
    }

    #[test]
    fn partials_without_trailing_stats_decode_as_zeroed_counters() {
        // A revision-1 Partials frame (no kernel-counter field): rebuild
        // the payload without the trailing 16 bytes and re-checksum. The
        // decoder must accept it with zeroed stats, not reject the frame.
        let msg = Message::Partials {
            reassigned: 3,
            shards: vec![AccumShard {
                sums: vec![1.0, 2.0],
                counts: vec![2],
                cost: 0.5,
                farthest: (4, 0.25),
            }],
            stats: KernelStats {
                distance_computations: 9,
                pruned_by_norm_bound: 1,
            },
            labels: None,
        };
        let full = msg.encode_frame();
        let payload_len = full.len() - 9 - 8; // minus header and checksum
        let old_payload = &full[9..9 + payload_len - 16]; // drop the stats
        let mut frame = Vec::new();
        frame.extend_from_slice(&FRAME_MAGIC);
        frame.push(18);
        frame.extend_from_slice(&(old_payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(old_payload);
        frame.extend_from_slice(&fnv1a(18, old_payload).to_le_bytes());
        let (decoded, _) = Message::decode_frame(&frame, MAX_FRAME_PAYLOAD).unwrap();
        match decoded {
            Message::Partials {
                reassigned, stats, ..
            } => {
                assert_eq!(reassigned, 3);
                assert_eq!(stats, KernelStats::default());
            }
            other => panic!("decoded {other:?}"),
        }
        // A frame with a *partial* stats field is malformed, not zeroed.
        let cut_payload = &full[9..9 + payload_len - 8];
        let mut bad = Vec::new();
        bad.extend_from_slice(&FRAME_MAGIC);
        bad.push(18);
        bad.extend_from_slice(&(cut_payload.len() as u32).to_le_bytes());
        bad.extend_from_slice(cut_payload);
        bad.extend_from_slice(&fnv1a(18, cut_payload).to_le_bytes());
        assert!(matches!(
            Message::decode_frame(&bad, MAX_FRAME_PAYLOAD).unwrap_err(),
            FrameError::Malformed(_)
        ));
    }

    #[test]
    fn forged_counts_cannot_over_allocate() {
        // A ShardSums payload declaring 2^60 elements in 16 bytes.
        let mut e = Enc::new();
        e.u64(1u64 << 60);
        e.f64(0.0);
        let payload = e.into_bytes();
        let mut frame = Vec::new();
        frame.extend_from_slice(&FRAME_MAGIC);
        frame.push(6);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&fnv1a(6, &payload).to_le_bytes());
        assert!(matches!(
            Message::decode_frame(&frame, MAX_FRAME_PAYLOAD).unwrap_err(),
            FrameError::Malformed(_)
        ));
    }

    #[test]
    fn wire_error_round_trips_kmeans_error() {
        let originals = vec![
            KMeansError::EmptyInput,
            KMeansError::InvalidK { k: 5, n: 2 },
            KMeansError::DimensionMismatch {
                expected: 3,
                got: 4,
            },
            KMeansError::InvalidConfig("nope".into()),
            KMeansError::NonFiniteData { point: 9, dim: 0 },
            KMeansError::Data("disk gone".into()),
        ];
        for e in originals {
            let wire: WireError = e.clone().into();
            let back: KMeansError = wire.into();
            assert_eq!(back, e);
        }
    }
}
