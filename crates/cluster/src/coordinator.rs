//! The coordinator's view of a worker cluster: connection bookkeeping,
//! the broadcast/collect conversation, and the order-sensitive folds.
//!
//! **Bit-parity discipline.** Workers only ever ship *per-shard* partial
//! quantities (per-executor-shard `Σ d²` sums, per-accumulation-shard
//! assignment partials, per-shard samples); every order-sensitive
//! floating-point fold happens here, over the concatenation of worker
//! payloads in worker order — which equals global shard order because
//! worker row ranges are contiguous, in order, and validated to start on
//! the shard grid ([`Cluster::plan`]). That is the whole argument for
//! `fit_distributed` being bit-identical to `fit`/`fit_chunked` for any
//! worker count: the same values are folded in the same order, just
//! computed on more machines.
//!
//! **Fault tolerance.** With a recovery path configured
//! ([`Cluster::set_recovery`]; [`Cluster::connect`] installs one that
//! redials the worker's address), a transport-level failure mid-round —
//! disconnect, I/O error, malformed frame — triggers a bounded
//! re-ask: the coordinator obtains a replacement transport for the dead
//! worker's slot, re-handshakes, replays the session state the lost
//! worker held (the plan, the exact tracker segment sequence, the last
//! assignment's centers via `RestoreLabels`), and re-sends the in-flight
//! round request. Because workers hold no order-sensitive fold state —
//! only deterministic functions of (shard data, replayed broadcasts) —
//! the recovered fit is bit-identical to the zero-failure run. Attempts
//! are bounded by [`RetryPolicy`]; exhaustion is the typed
//! [`ClusterError::RecoveryFailed`], never a hang.

use crate::error::ClusterError;
use crate::protocol::{LabelsWanted, Message, WorkerStats};
use crate::transport::Transport;
use kmeans_core::assign::{sum_shard_size_for, ClusterSums};
use kmeans_core::chunked::fold_accum_shards;
use kmeans_core::driver::{SampleOut, SampleSpec};
use kmeans_core::init::bernoulli_accept;
use kmeans_core::kernel::KernelStats;
use kmeans_data::PointMatrix;
use kmeans_obs::{arg_u64, Recorder};
use kmeans_par::mapreduce::JobStats;
use std::time::{Duration, Instant};

/// Span category for coordinator-side worker conversations and
/// recovery events.
const CLUSTER_CAT: &str = "cluster";

/// One connected worker.
struct WorkerConn {
    transport: Box<dyn Transport>,
    rows: usize,
    start_row: usize,
    /// Byte counters of transports this slot has already worn out —
    /// replaced during recovery — so job accounting stays monotonic.
    retired_sent: u64,
    retired_received: u64,
}

impl WorkerConn {
    fn bytes_sent(&self) -> u64 {
        self.retired_sent + self.transport.bytes_sent()
    }

    fn bytes_received(&self) -> u64 {
        self.retired_received + self.transport.bytes_received()
    }
}

/// One send + one recv on a single worker's transport — the unit step of
/// the recovery replay (free function so replay can iterate coordinator
/// state while holding the slot mutably).
fn roundtrip(w: &mut WorkerConn, msg: &Message) -> Result<Message, ClusterError> {
    w.transport.send(msg)?;
    w.transport.recv()
}

pub use crate::retry::RetryPolicy;

/// Produces a replacement transport for a worker slot (by index). The
/// returned transport must be a fresh worker session about to send its
/// `Hello` — e.g. a redial of the slot's address, or a freshly spawned
/// in-process worker over the same shard.
pub type TransportSupplier =
    Box<dyn FnMut(usize) -> Result<Box<dyn Transport>, ClusterError> + Send>;

struct Recovery {
    supplier: TransportSupplier,
    policy: RetryPolicy,
}

/// Per-worker connection summary for reports.
#[derive(Clone, Debug)]
pub struct WorkerSummary {
    /// Rows the worker serves.
    pub rows: usize,
    /// Global index of the worker's first row.
    pub start_row: usize,
    /// Frame bytes the coordinator sent to this worker.
    pub bytes_sent: u64,
    /// Frame bytes the coordinator received from this worker.
    pub bytes_received: u64,
}

/// A connected set of workers, jointly serving rows `[0, global_n)` in
/// worker order. Construct with [`Cluster::new`] (any transports, e.g.
/// loopback) or [`Cluster::connect`] (TCP), then call [`Cluster::plan`]
/// before any pass.
pub struct Cluster {
    workers: Vec<WorkerConn>,
    global_n: usize,
    dim: usize,
    shard_size: usize,
    data_passes: u64,
    pairs: u64,
    /// Data-round request/reply cycles driven over the fleet — one per
    /// scatter/gather broadcast ([`Cluster::request_all`]) or row gather.
    /// Session control (`Hello`/`Plan`/`Shutdown`) is excluded: it is
    /// per-connection setup, not part of the algorithm's round budget.
    round_trips: u64,
    blocked_wall: Duration,
    recovery: Option<Recovery>,
    /// Replay mirror: the exact `InitTracker`/`UpdateTracker` candidate
    /// segment sequence broadcast so far (updated only after a round
    /// fully succeeds). A replacement worker replays it verbatim, so its
    /// tracker — including nearest-candidate tie-breaks, which depend on
    /// the segment boundaries — is bit-identical to the lost worker's.
    tracker_segments: Vec<PointMatrix>,
    /// Replay mirror: centers of the last completed assignment pass, so
    /// a replacement can rebuild its labels (`RestoreLabels`) and the
    /// next `Assign` counts reassignments exactly as the lost worker
    /// would have.
    last_assign: Option<PointMatrix>,
    /// Flight recorder for the conversation tier: one span per worker
    /// broadcast, instant events for recovery (re-dial, replay, adopt).
    /// Disabled by default — observes only, never affects results.
    recorder: Recorder,
}

impl Cluster {
    /// Builds a cluster from connected transports, in row order: worker
    /// `i`'s rows precede worker `i+1`'s. Receives each worker's `Hello`
    /// and derives the global layout.
    pub fn new(transports: Vec<Box<dyn Transport>>) -> Result<Self, ClusterError> {
        if transports.is_empty() {
            return Err(ClusterError::Protocol("no workers".into()));
        }
        let mut workers = Vec::with_capacity(transports.len());
        let mut start_row = 0usize;
        let mut dim = None;
        for (i, mut transport) in transports.into_iter().enumerate() {
            let (rows, wdim) = match transport.recv()? {
                Message::Hello { rows, dim } => (rows as usize, dim as usize),
                other => {
                    return Err(ClusterError::Protocol(format!(
                        "worker {i} opened with {other:?} instead of Hello"
                    )))
                }
            };
            if rows == 0 {
                return Err(ClusterError::Protocol(format!("worker {i} serves no rows")));
            }
            match dim {
                None => dim = Some(wdim),
                Some(d) if d != wdim => {
                    return Err(ClusterError::Protocol(format!(
                        "worker {i} serves {wdim}-dimensional rows, worker 0 serves {d}"
                    )))
                }
                Some(_) => {}
            }
            workers.push(WorkerConn {
                transport,
                rows,
                start_row,
                retired_sent: 0,
                retired_received: 0,
            });
            start_row += rows;
        }
        Ok(Cluster {
            workers,
            global_n: start_row,
            dim: dim.expect("at least one worker"),
            shard_size: 0,
            data_passes: 0,
            pairs: 0,
            round_trips: 0,
            blocked_wall: Duration::ZERO,
            recovery: None,
            tracker_segments: Vec::new(),
            last_assign: None,
            recorder: Recorder::disabled(),
        })
    }

    /// Arms the flight recorder for this cluster's conversation tier:
    /// every worker broadcast records a `broadcast:<message>` span (cat
    /// `cluster`, with the worker count), and mid-round recovery records
    /// instant events (`recover:redial`) plus an adoption span
    /// (`recover:adopt`) covering the replacement's handshake and replay.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    fn dial(addr: &str, io_timeout: Option<Duration>) -> Result<Box<dyn Transport>, ClusterError> {
        let stream = std::net::TcpStream::connect(addr)?;
        Ok(Box::new(crate::transport::TcpTransport::new(
            stream, io_timeout,
        )?))
    }

    /// Connects to TCP workers at `addrs` (in row order) with the given
    /// per-socket I/O timeout, the default [`RetryPolicy`] on each dial
    /// (a worker that is still starting up does not kill the job), and a
    /// recovery path that redials a worker's address when it fails
    /// mid-round — so restarting `skm worker` on the same address lets
    /// the job adopt the replacement and finish.
    pub fn connect(addrs: &[String], io_timeout: Option<Duration>) -> Result<Self, ClusterError> {
        Self::connect_with_retry(addrs, io_timeout, RetryPolicy::default())
    }

    /// [`Cluster::connect`] with an explicit retry/backoff schedule,
    /// applied both to the initial dials and to mid-round recovery.
    pub fn connect_with_retry(
        addrs: &[String],
        io_timeout: Option<Duration>,
        policy: RetryPolicy,
    ) -> Result<Self, ClusterError> {
        let attempts = policy.attempts.max(1);
        let mut transports: Vec<Box<dyn Transport>> = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let mut dialed: Result<Box<dyn Transport>, ClusterError> =
                Err(ClusterError::Disconnected);
            for attempt in 0..attempts {
                if attempt > 0 {
                    std::thread::sleep(policy.delay_for(attempt));
                }
                dialed = Self::dial(addr, io_timeout);
                if dialed.is_ok() {
                    break;
                }
            }
            transports.push(dialed?);
        }
        let mut cluster = Cluster::new(transports)?;
        let addrs: Vec<String> = addrs.to_vec();
        cluster.set_recovery(
            Box::new(move |slot| Self::dial(&addrs[slot], io_timeout)),
            policy,
        );
        Ok(cluster)
    }

    /// Arms mid-round worker recovery: on a transport-level failure the
    /// coordinator asks `supplier` for a replacement transport for the
    /// slot, replays the lost worker's session state, and re-asks the
    /// in-flight request — up to `policy.attempts` times with
    /// `policy.backoff` between attempts. Without a recovery path (the
    /// [`Cluster::new`] default) failures stay immediate typed errors.
    pub fn set_recovery(&mut self, supplier: TransportSupplier, policy: RetryPolicy) {
        self.recovery = Some(Recovery { supplier, policy });
    }

    /// Total rows across all workers.
    pub fn global_n(&self) -> usize {
        self.global_n
    }

    /// Row dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The planned executor shard size (0 before [`Cluster::plan`]).
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Establishes the fit's global layout on every worker and validates
    /// the boundary contract: every worker's start row must be a multiple
    /// of the accumulation shard size — which is itself a multiple of the
    /// executor shard size ([`sum_shard_size_for`] nests the grids) — so
    /// both the executor-shard grid (per-shard RNG streams, potential
    /// folds) and the accumulation-shard grid (assignment folds) decompose
    /// over workers without crossing a boundary.
    pub fn plan(&mut self, shard_size: usize) -> Result<(), ClusterError> {
        let shard_size = shard_size.max(1);
        let required = sum_shard_size_for(shard_size, self.global_n);
        debug_assert_eq!(required % shard_size, 0, "accumulation grid must nest");
        for (i, w) in self.workers.iter().enumerate() {
            if w.start_row % required != 0 {
                return Err(ClusterError::Misaligned {
                    worker: i,
                    start_row: w.start_row,
                    required,
                });
            }
        }
        self.shard_size = shard_size;
        self.data_passes = 0;
        self.pairs = 0;
        self.round_trips = 0;
        self.blocked_wall = Duration::ZERO;
        self.tracker_segments.clear();
        self.last_assign = None;
        let dim = self.dim as u32;
        let global_n = self.global_n as u64;
        let plans: Vec<Message> = self
            .workers
            .iter()
            .map(|w| Message::Plan {
                global_n,
                start_row: w.start_row as u64,
                shard_size: shard_size as u64,
                dim,
            })
            .collect();
        let n = self.workers.len();
        let mut early: Vec<Option<Message>> = std::iter::repeat_with(|| None).take(n).collect();
        for i in 0..n {
            if let Err(e) = self.workers[i].transport.send(&plans[i]) {
                early[i] = Some(self.reask(i, &plans[i], e)?);
            }
        }
        let mut replies = Vec::with_capacity(n);
        let mut first_err: Option<ClusterError> = None;
        for (i, slot_early) in early.into_iter().enumerate() {
            let r = match slot_early {
                Some(m) => Ok(m),
                None => self.workers[i].transport.recv(),
            };
            let r = match r {
                Err(e) if first_err.is_none() => self.reask(i, &plans[i], e),
                other => other,
            };
            match r {
                Ok(m) => replies.push(m),
                Err(e) => {
                    first_err.get_or_insert(e);
                    replies.push(Message::ShutdownOk); // placeholder, never read
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        for (i, r) in replies.into_iter().enumerate() {
            if r != Message::PlanOk {
                return Err(ClusterError::Protocol(format!(
                    "worker {i} answered Plan with {r:?}"
                )));
            }
        }
        Ok(())
    }

    /// Whether a failure class is worth a recovery attempt: transport
    /// breakage (disconnects, I/O errors, bad frames) is; a well-formed
    /// remote/protocol error is deterministic and is not.
    fn recoverable(e: &ClusterError) -> bool {
        matches!(
            e,
            ClusterError::Io(_) | ClusterError::Frame(_) | ClusterError::Disconnected
        )
    }

    /// Bounded recovery of worker `slot` after `trigger`: obtain a
    /// replacement transport, rebuild the session, re-send `request`,
    /// and return its reply. Without a recovery path — or for a
    /// non-transport failure — returns `trigger` unchanged; after
    /// exhausting the policy's attempts, [`ClusterError::RecoveryFailed`].
    fn reask(
        &mut self,
        slot: usize,
        request: &Message,
        trigger: ClusterError,
    ) -> Result<Message, ClusterError> {
        let policy = match &self.recovery {
            Some(r) if Self::recoverable(&trigger) => r.policy,
            _ => return Err(trigger),
        };
        let attempts = policy.attempts.max(1);
        let mut last = trigger;
        for attempt in 0..attempts {
            std::thread::sleep(policy.delay_for(attempt + 1));
            self.recorder.instant("recover:redial", CLUSTER_CAT, || {
                vec![
                    arg_u64("worker", slot as u64),
                    arg_u64("attempt", attempt as u64 + 1),
                ]
            });
            match self.try_adopt(slot, request) {
                Ok(reply) => return Ok(reply),
                Err(e) => last = e,
            }
        }
        self.recorder.instant("recover:failed", CLUSTER_CAT, || {
            vec![
                arg_u64("worker", slot as u64),
                arg_u64("attempts", attempts as u64),
            ]
        });
        Err(ClusterError::RecoveryFailed {
            worker: slot,
            attempts,
            last: Box::new(last),
        })
    }

    /// One recovery attempt: replacement transport → `Hello` validation
    /// → adopt into the slot → replay plan + tracker segments + last
    /// assignment labels → re-send the in-flight request.
    fn try_adopt(&mut self, slot: usize, request: &Message) -> Result<Message, ClusterError> {
        let adopt_span = self.recorder.start();
        let recovery = self.recovery.as_mut().expect("recovery configured");
        let mut transport = (recovery.supplier)(slot)?;
        let (rows, wdim) = match transport.recv()? {
            Message::Hello { rows, dim } => (rows as usize, dim as usize),
            other => {
                return Err(ClusterError::Protocol(format!(
                    "replacement worker {slot} opened with {other:?} instead of Hello"
                )))
            }
        };
        if rows != self.workers[slot].rows || wdim != self.dim {
            return Err(ClusterError::Protocol(format!(
                "replacement worker {slot} serves {rows} rows × {wdim} dims, expected {} × {}",
                self.workers[slot].rows, self.dim
            )));
        }
        let old = std::mem::replace(&mut self.workers[slot].transport, transport);
        self.workers[slot].retired_sent += old.bytes_sent();
        self.workers[slot].retired_received += old.bytes_received();
        drop(old);
        if self.shard_size > 0 {
            let plan = Message::Plan {
                global_n: self.global_n as u64,
                start_row: self.workers[slot].start_row as u64,
                shard_size: self.shard_size as u64,
                dim: self.dim as u32,
            };
            match roundtrip(&mut self.workers[slot], &plan)? {
                Message::PlanOk => {}
                other => {
                    return Err(ClusterError::Protocol(format!(
                        "replacement worker {slot} answered Plan with {other:?}"
                    )))
                }
            }
            // Replay the exact broadcast sequence the lost worker saw;
            // the per-segment ShardSums replies were already folded
            // before the failure and are discarded here.
            let mut from = 0u64;
            for (i, seg) in self.tracker_segments.iter().enumerate() {
                let msg = if i == 0 {
                    Message::InitTracker {
                        centers: seg.clone(),
                    }
                } else {
                    Message::UpdateTracker {
                        from,
                        centers: seg.clone(),
                    }
                };
                match roundtrip(&mut self.workers[slot], &msg)? {
                    Message::ShardSums { .. } => {}
                    Message::Error(e) => {
                        return Err(ClusterError::Remote {
                            worker: slot,
                            error: e.into(),
                        })
                    }
                    other => {
                        return Err(ClusterError::Protocol(format!(
                            "replacement worker {slot} answered tracker replay with {other:?}"
                        )))
                    }
                }
                from += seg.len() as u64;
            }
            if let Some(centers) = &self.last_assign {
                let msg = Message::RestoreLabels {
                    centers: centers.clone(),
                };
                match roundtrip(&mut self.workers[slot], &msg)? {
                    Message::RestoreOk => {}
                    Message::Error(e) => {
                        return Err(ClusterError::Remote {
                            worker: slot,
                            error: e.into(),
                        })
                    }
                    other => {
                        return Err(ClusterError::Protocol(format!(
                            "replacement worker {slot} answered RestoreLabels with {other:?}"
                        )))
                    }
                }
            }
        }
        let reply = roundtrip(&mut self.workers[slot], request)?;
        // The adoption span covers handshake + plan + tracker/label
        // replay + the re-asked request, so a recovered round's extra
        // wall time is visible in the trace next to the recover:redial
        // instants.
        let segments = self.tracker_segments.len() as u64;
        let restored = self.last_assign.is_some() as u64;
        self.recorder
            .span(adopt_span, "recover:adopt", CLUSTER_CAT, || {
                vec![
                    arg_u64("worker", slot as u64),
                    arg_u64("replayed_segments", segments),
                    arg_u64("labels_restored", restored),
                ]
            });
        Ok(reply)
    }

    /// Receives exactly one reply from every worker (in worker order) —
    /// `early` carries replies already obtained on the send path —
    /// recovering failed workers along the way when a recovery path is
    /// armed (`request` is re-asked), then surfaces the first error, if
    /// any. Draining all replies before failing keeps every conversation
    /// in sync.
    fn collect_all_with_early(
        &mut self,
        request: &Message,
        mut early: Vec<Option<Message>>,
    ) -> Result<Vec<Message>, ClusterError> {
        let n = self.workers.len();
        early.resize_with(n, || None);
        let mut replies = Vec::with_capacity(n);
        let mut first_err: Option<ClusterError> = None;
        for (i, slot_early) in early.into_iter().enumerate() {
            let r = match slot_early {
                Some(m) => Ok(m),
                None => self.workers[i].transport.recv(),
            };
            let r = match r {
                Err(e) if first_err.is_none() => self.reask(i, request, e),
                other => other,
            };
            match r {
                Ok(m) => replies.push(m),
                Err(e) => {
                    first_err.get_or_insert(e);
                    replies.push(Message::ShutdownOk); // placeholder, never read
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        for (i, r) in replies.iter().enumerate() {
            if let Message::Error(e) = r {
                return Err(ClusterError::Remote {
                    worker: i,
                    error: e.clone().into(),
                });
            }
        }
        Ok(replies)
    }

    /// Broadcasts one message to every worker and collects the replies
    /// (recovering mid-round failures when a recovery path is armed).
    fn request_all(&mut self, msg: &Message) -> Result<Vec<Message>, ClusterError> {
        let t0 = Instant::now();
        let span = self.recorder.start();
        self.round_trips += 1;
        let n = self.workers.len();
        let mut early: Vec<Option<Message>> = std::iter::repeat_with(|| None).take(n).collect();
        for (i, slot) in early.iter_mut().enumerate() {
            if let Err(e) = self.workers[i].transport.send(msg) {
                match self.reask(i, msg, e) {
                    Ok(reply) => *slot = Some(reply),
                    Err(e) => {
                        self.blocked_wall += t0.elapsed();
                        self.finish_broadcast_span(span, msg, n, false);
                        return Err(e);
                    }
                }
            }
        }
        let replies = self.collect_all_with_early(msg, early);
        self.blocked_wall += t0.elapsed();
        self.finish_broadcast_span(span, msg, n, replies.is_ok());
        replies
    }

    /// Closes the conversation span opened at the top of a broadcast.
    fn finish_broadcast_span(
        &self,
        span: kmeans_obs::SpanStart,
        msg: &Message,
        workers: usize,
        ok: bool,
    ) {
        if !self.recorder.is_enabled() {
            return;
        }
        let name = format!("broadcast:{}", msg.name());
        self.recorder.span(span, &name, CLUSTER_CAT, || {
            vec![arg_u64("workers", workers as u64), arg_u64("ok", ok as u64)]
        });
    }

    fn note_pass(&mut self, items: u64) {
        self.data_passes += 1;
        self.pairs += items;
    }

    /// Collects `ShardSums` replies into one global per-shard list (worker
    /// order = shard order) — the input to the potential fold.
    fn request_shard_sums(&mut self, msg: &Message) -> Result<Vec<f64>, ClusterError> {
        let replies = self.request_all(msg)?;
        let mut all = Vec::new();
        for (i, r) in replies.into_iter().enumerate() {
            match r {
                Message::ShardSums { sums } => all.extend(sums),
                other => {
                    return Err(ClusterError::Protocol(format!(
                        "worker {i} answered with {other:?} instead of ShardSums"
                    )))
                }
            }
        }
        self.note_pass(all.len() as u64);
        Ok(all)
    }

    /// The shard-ordered left fold — bit-identical to the single-node
    /// `map_reduce`/`ShardSum` fold on the same per-shard values.
    fn fold(sums: Vec<f64>) -> f64 {
        sums.into_iter().reduce(|a, b| a + b).unwrap_or(0.0)
    }

    /// Broadcast an initial candidate set; workers build their tracker
    /// slices. Returns the global potential ψ.
    pub fn tracker_init(&mut self, centers: &PointMatrix) -> Result<f64, ClusterError> {
        let sums = self.request_shard_sums(&Message::InitTracker {
            centers: centers.clone(),
        })?;
        // Round succeeded on every worker: this segment is now part of
        // the replay mirror for any later recovery.
        self.tracker_segments = vec![centers.clone()];
        Ok(Self::fold(sums))
    }

    /// Broadcast newly appended candidates (`from` = index of the first
    /// new row). Returns the updated global potential φ.
    pub fn tracker_update(
        &mut self,
        from: usize,
        new_rows: &PointMatrix,
    ) -> Result<f64, ClusterError> {
        let sums = self.request_shard_sums(&Message::UpdateTracker {
            from: from as u64,
            centers: new_rows.clone(),
        })?;
        self.tracker_segments.push(new_rows.clone());
        Ok(Self::fold(sums))
    }

    /// Unpacks one worker's fused-round reply: a `Compound` of exactly
    /// `arity` items. A worker stops a compound at its first failing
    /// sub-message and ships the (shorter) batch ending in `Error`, so a
    /// trailing error item is surfaced as the typed remote error before
    /// the arity check.
    fn unpack_compound(
        worker: usize,
        reply: Message,
        arity: usize,
    ) -> Result<Vec<Message>, ClusterError> {
        match reply {
            Message::Compound(items) => {
                if let Some(Message::Error(e)) = items.iter().find(|m| matches!(m, Message::Error(_)))
                {
                    return Err(ClusterError::Remote {
                        worker,
                        error: e.clone().into(),
                    });
                }
                if items.len() == arity {
                    return Ok(items);
                }
                Err(ClusterError::Protocol(format!(
                    "worker {worker} answered a {arity}-step compound with {} items",
                    items.len()
                )))
            }
            other => Err(ClusterError::Protocol(format!(
                "worker {worker} answered with {other:?} instead of Compound"
            ))),
        }
    }

    /// The shared body of the fused tracker rounds: broadcasts one
    /// `Compound([tracker_msg, sample_msg?])`, folds the global potential
    /// from the `ShardSums` parts (worker order = shard order), and
    /// resolves the piggybacked sample against that *folded* potential.
    ///
    /// Bernoulli parity argument: workers prescreen with their local
    /// left-folded `φ_lo` — a guaranteed lower bound on the global folded
    /// φ (non-negative summands; folding the same segment from a larger
    /// initial accumulator never decreases the result), and acceptance
    /// `u < ℓ·d²/φ` is monotone non-increasing in φ — so the true accept
    /// set is a subset of the prescreen set. The coordinator re-applies
    /// the exact test with the exact per-point draw `u` the worker
    /// consumed, making the fused round bit-identical to the two-round
    /// conversation it replaces.
    fn tracker_round_sampled(
        &mut self,
        tracker_msg: Message,
        segment: &PointMatrix,
        round: usize,
        seed: u64,
        spec: Option<SampleSpec>,
    ) -> Result<(f64, Option<SampleOut>), ClusterError> {
        let sample_msg = spec.map(|s| match s {
            SampleSpec::Bernoulli { l } => Message::SampleBernoulliLocal {
                round: round as u64,
                seed,
                l,
            },
            SampleSpec::ExactKeys { m } => Message::SampleExact {
                round: round as u64,
                seed,
                m: m as u64,
            },
        });
        let arity = 1 + sample_msg.iter().count();
        let mut items = vec![tracker_msg];
        items.extend(sample_msg);
        let replies = self.request_all(&Message::Compound(items))?;
        let mut sums = Vec::new();
        let mut sample_parts = Vec::with_capacity(replies.len());
        for (i, r) in replies.into_iter().enumerate() {
            let mut parts = Self::unpack_compound(i, r, arity)?.into_iter();
            match parts.next() {
                Some(Message::ShardSums { sums: s }) => sums.extend(s),
                other => {
                    return Err(ClusterError::Protocol(format!(
                        "worker {i} answered tracker step with {other:?} instead of ShardSums"
                    )))
                }
            }
            if let Some(part) = parts.next() {
                sample_parts.push((i, part));
            }
        }
        self.note_pass(sums.len() as u64);
        self.tracker_segments.push(segment.clone());
        let phi = Self::fold(sums);
        let out = match spec {
            None => None,
            Some(SampleSpec::Bernoulli { l }) => {
                let mut indices = Vec::new();
                let mut rows = PointMatrix::new(self.dim);
                for (i, part) in sample_parts {
                    let (entries, picked) = match part {
                        Message::Prescreened { entries, rows } => (entries, rows),
                        other => {
                            return Err(ClusterError::Protocol(format!(
                                "worker {i} answered sample step with {other:?} instead of Prescreened"
                            )))
                        }
                    };
                    if entries.len() != picked.len() {
                        return Err(ClusterError::Protocol(format!(
                            "worker {i} prescreened {} entries but shipped {} rows",
                            entries.len(),
                            picked.len()
                        )));
                    }
                    for (j, (g, u, d2)) in entries.into_iter().enumerate() {
                        if bernoulli_accept(u, l, d2, phi) {
                            indices.push(g as usize);
                            rows.push(picked.row(j)).map_err(|e| {
                                ClusterError::Protocol(format!(
                                    "worker {i} prescreened ragged rows: {e}"
                                ))
                            })?;
                        }
                    }
                }
                self.pairs += indices.len() as u64;
                Some(SampleOut::Picked { indices, rows })
            }
            Some(SampleSpec::ExactKeys { .. }) => {
                let mut entries = Vec::new();
                for (i, part) in sample_parts {
                    match part {
                        Message::ExactKeys { entries: e } => {
                            entries.extend(e.into_iter().map(|(key, g)| (key, g as usize)));
                        }
                        other => {
                            return Err(ClusterError::Protocol(format!(
                                "worker {i} answered sample step with {other:?} instead of ExactKeys"
                            )))
                        }
                    }
                }
                self.pairs += entries.len() as u64;
                Some(SampleOut::Keys(entries))
            }
        };
        Ok((phi, out))
    }

    /// Fused round 0: `InitTracker` + the round's sampling step in one
    /// wire round trip. Returns the global ψ and the resolved sample.
    pub fn tracker_init_sampled(
        &mut self,
        centers: &PointMatrix,
        round: usize,
        seed: u64,
        spec: Option<SampleSpec>,
    ) -> Result<(f64, Option<SampleOut>), ClusterError> {
        self.tracker_segments.clear();
        self.tracker_round_sampled(
            Message::InitTracker {
                centers: centers.clone(),
            },
            centers,
            round,
            seed,
            spec,
        )
    }

    /// Fused mid round: `UpdateTracker` + the next round's sampling step
    /// in one wire round trip. Returns the global φ and the sample.
    pub fn tracker_update_sampled(
        &mut self,
        from: usize,
        new_rows: &PointMatrix,
        round: usize,
        seed: u64,
        spec: Option<SampleSpec>,
    ) -> Result<(f64, Option<SampleOut>), ClusterError> {
        self.tracker_round_sampled(
            Message::UpdateTracker {
                from: from as u64,
                centers: new_rows.clone(),
            },
            new_rows,
            round,
            seed,
            spec,
        )
    }

    /// Fused closing round: the last `UpdateTracker` + Step 7's
    /// `CandidateWeights` in one wire round trip.
    pub fn tracker_update_weighted(
        &mut self,
        from: usize,
        new_rows: &PointMatrix,
        m: usize,
    ) -> Result<Vec<f64>, ClusterError> {
        let items = vec![
            Message::UpdateTracker {
                from: from as u64,
                centers: new_rows.clone(),
            },
            Message::CandidateWeights { m: m as u64 },
        ];
        let replies = self.request_all(&Message::Compound(items))?;
        let mut sums_len = 0u64;
        let mut total = vec![0.0f64; m];
        for (i, r) in replies.into_iter().enumerate() {
            let mut parts = Self::unpack_compound(i, r, 2)?.into_iter();
            match parts.next() {
                Some(Message::ShardSums { sums }) => sums_len += sums.len() as u64,
                other => {
                    return Err(ClusterError::Protocol(format!(
                        "worker {i} answered tracker step with {other:?} instead of ShardSums"
                    )))
                }
            }
            match parts.next() {
                Some(Message::Weights { weights }) => {
                    if weights.len() != m {
                        return Err(ClusterError::Protocol(format!(
                            "worker {i} sent {} weights for {m} candidates",
                            weights.len()
                        )));
                    }
                    for (acc, w) in total.iter_mut().zip(weights) {
                        // Integer-valued counts: float addition is exact.
                        *acc += w;
                    }
                }
                other => {
                    return Err(ClusterError::Protocol(format!(
                        "worker {i} answered weights step with {other:?} instead of Weights"
                    )))
                }
            }
        }
        self.note_pass(sums_len);
        self.tracker_segments.push(new_rows.clone());
        self.pairs += m as u64;
        Ok(total)
    }

    /// One Bernoulli sampling round (Step 4). Returns the picked global
    /// indices (ascending) and their rows, in the same order.
    pub fn sample_bernoulli_round(
        &mut self,
        round: usize,
        seed: u64,
        l: f64,
        phi: f64,
    ) -> Result<(Vec<usize>, PointMatrix), ClusterError> {
        let replies = self.request_all(&Message::SampleBernoulli {
            round: round as u64,
            seed,
            l,
            phi,
        })?;
        let mut indices = Vec::new();
        let mut rows = PointMatrix::new(self.dim);
        for (i, r) in replies.into_iter().enumerate() {
            match r {
                Message::Sampled {
                    indices: idx,
                    rows: picked,
                } => {
                    indices.extend(idx.into_iter().map(|g| g as usize));
                    rows.extend_from(&picked).map_err(|e| {
                        ClusterError::Protocol(format!("worker {i} sampled ragged rows: {e}"))
                    })?;
                }
                other => {
                    return Err(ClusterError::Protocol(format!(
                        "worker {i} answered with {other:?} instead of Sampled"
                    )))
                }
            }
        }
        self.pairs += indices.len() as u64;
        Ok((indices, rows))
    }

    /// One exact-ℓ sampling round: collects every worker's keyed
    /// candidates for the coordinator-side global merge.
    pub fn sample_exact_round(
        &mut self,
        round: usize,
        seed: u64,
        m: usize,
    ) -> Result<Vec<(f64, usize)>, ClusterError> {
        let replies = self.request_all(&Message::SampleExact {
            round: round as u64,
            seed,
            m: m as u64,
        })?;
        let mut entries = Vec::new();
        for (i, r) in replies.into_iter().enumerate() {
            match r {
                Message::ExactKeys { entries: e } => {
                    entries.extend(e.into_iter().map(|(key, g)| (key, g as usize)));
                }
                other => {
                    return Err(ClusterError::Protocol(format!(
                        "worker {i} answered with {other:?} instead of ExactKeys"
                    )))
                }
            }
        }
        self.pairs += entries.len() as u64;
        Ok(entries)
    }

    /// Step 7: elementwise-exact sum of per-worker candidate counts.
    pub fn candidate_weights(&mut self, m: usize) -> Result<Vec<f64>, ClusterError> {
        let replies = self.request_all(&Message::CandidateWeights { m: m as u64 })?;
        let mut total = vec![0.0f64; m];
        for (i, r) in replies.into_iter().enumerate() {
            match r {
                Message::Weights { weights } => {
                    if weights.len() != m {
                        return Err(ClusterError::Protocol(format!(
                            "worker {i} sent {} weights for {m} candidates",
                            weights.len()
                        )));
                    }
                    for (acc, w) in total.iter_mut().zip(weights) {
                        // Integer-valued counts: float addition is exact.
                        *acc += w;
                    }
                }
                other => {
                    return Err(ClusterError::Protocol(format!(
                        "worker {i} answered with {other:?} instead of Weights"
                    )))
                }
            }
        }
        self.pairs += m as u64;
        Ok(total)
    }

    /// Fetches rows by global index from their owning workers, preserving
    /// the request order (duplicates allowed).
    pub fn gather_rows(&mut self, indices: &[usize]) -> Result<PointMatrix, ClusterError> {
        let mut out = PointMatrix::new(self.dim);
        if indices.is_empty() {
            return Ok(out);
        }
        // Partition the request by owner, preserving each worker's
        // request-subsequence order.
        let mut per_worker: Vec<Vec<u64>> = vec![Vec::new(); self.workers.len()];
        let mut owners = Vec::with_capacity(indices.len());
        for &g in indices {
            let w = self.owner_of(g)?;
            owners.push(w);
            per_worker[w].push(g as u64);
        }
        let t0 = Instant::now();
        self.round_trips += 1;
        let involved: Vec<usize> = (0..self.workers.len())
            .filter(|&w| !per_worker[w].is_empty())
            .collect();
        let requests: Vec<Message> = (0..self.workers.len())
            .map(|w| Message::GatherRows {
                indices: per_worker[w].clone(),
            })
            .collect();
        let mut early: Vec<Option<Message>> = std::iter::repeat_with(|| None)
            .take(self.workers.len())
            .collect();
        for &w in &involved {
            if let Err(e) = self.workers[w].transport.send(&requests[w]) {
                match self.reask(w, &requests[w], e) {
                    Ok(reply) => early[w] = Some(reply),
                    Err(e) => {
                        self.blocked_wall += t0.elapsed();
                        return Err(e);
                    }
                }
            }
        }
        let mut gathered: Vec<Option<PointMatrix>> = vec![None; self.workers.len()];
        let mut first_err: Option<ClusterError> = None;
        for &w in &involved {
            let r = match early[w].take() {
                Some(m) => Ok(m),
                None => self.workers[w].transport.recv(),
            };
            let r = match r {
                Err(e) if first_err.is_none() => self.reask(w, &requests[w], e),
                other => other,
            };
            match r {
                Ok(Message::Rows { rows }) => gathered[w] = Some(rows),
                Ok(Message::Error(e)) => {
                    first_err.get_or_insert(ClusterError::Remote {
                        worker: w,
                        error: e.into(),
                    });
                }
                Ok(other) => {
                    first_err.get_or_insert(ClusterError::Protocol(format!(
                        "worker {w} answered with {other:?} instead of Rows"
                    )));
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        self.blocked_wall += t0.elapsed();
        if let Some(e) = first_err {
            return Err(e);
        }
        // Reassemble in request order: take each owner's next row.
        let mut cursors = vec![0usize; self.workers.len()];
        for &w in &owners {
            let rows = gathered[w].as_ref().expect("gathered above");
            if cursors[w] >= rows.len() {
                return Err(ClusterError::Protocol(format!(
                    "worker {w} returned too few rows"
                )));
            }
            out.push(rows.row(cursors[w])).map_err(|_| {
                ClusterError::Protocol(format!("worker {w} returned rows of the wrong dim"))
            })?;
            cursors[w] += 1;
        }
        self.pairs += indices.len() as u64;
        Ok(out)
    }

    /// Gathers the full resident `d²` array (worker order = global row
    /// order). Only the rare top-up path needs this O(n) transfer.
    pub fn gather_d2(&mut self) -> Result<Vec<f64>, ClusterError> {
        let replies = self.request_all(&Message::GatherD2)?;
        let mut d2 = Vec::with_capacity(self.global_n);
        for (i, r) in replies.into_iter().enumerate() {
            match r {
                Message::D2 { values } => d2.extend(values),
                other => {
                    return Err(ClusterError::Protocol(format!(
                        "worker {i} answered with {other:?} instead of D2"
                    )))
                }
            }
        }
        self.pairs += d2.len() as u64;
        Ok(d2)
    }

    /// One distributed assignment pass: returns the global reassignment
    /// count and the folded [`ClusterSums`] — bit-identical to the
    /// single-node `assign_and_sum` on the same centers, the kernel work
    /// counters included (workers ship them in the partials frames; the
    /// counters are deterministic per point, so their sum over workers
    /// equals the single-node pass's).
    ///
    /// `want` piggybacks label shipping on the same round trip:
    /// `Always` makes every worker append its labels to the partials
    /// frame; `IfStable` makes each *locally* stable worker ship
    /// speculatively — when the global count is 0 every worker was
    /// locally stable, so the full label vector arrived for free and is
    /// returned, eliminating the follow-up `FetchLabels` cycle.
    pub fn assign(
        &mut self,
        centers: &PointMatrix,
        want: LabelsWanted,
    ) -> Result<(u64, ClusterSums, Option<Vec<u32>>), ClusterError> {
        let k = centers.len();
        let d = self.dim;
        let replies = self.request_all(&Message::Assign {
            centers: centers.clone(),
            labels: want,
        })?;
        let mut reassigned = 0u64;
        let mut all_shards = Vec::new();
        let mut stats = KernelStats::default();
        let mut per_worker_labels = Vec::with_capacity(self.workers.len());
        for (i, r) in replies.into_iter().enumerate() {
            match r {
                Message::Partials {
                    reassigned: re,
                    shards,
                    stats: worker_stats,
                    labels,
                } => {
                    reassigned += re;
                    all_shards.extend(shards);
                    stats.absorb(worker_stats);
                    per_worker_labels.push(labels);
                }
                other => {
                    return Err(ClusterError::Protocol(format!(
                        "worker {i} answered with {other:?} instead of Partials"
                    )))
                }
            }
        }
        for s in &all_shards {
            if s.sums.len() != k * d || s.counts.len() != k {
                return Err(ClusterError::Protocol(
                    "assignment partial has the wrong shape".into(),
                ));
            }
        }
        let ship = match want {
            LabelsWanted::Skip => false,
            LabelsWanted::IfStable => reassigned == 0,
            LabelsWanted::Always => true,
        };
        let labels = if ship {
            let mut all = Vec::with_capacity(self.global_n);
            for (i, l) in per_worker_labels.into_iter().enumerate() {
                match l {
                    Some(l) => all.extend(l),
                    None => {
                        return Err(ClusterError::Protocol(format!(
                            "worker {i} omitted labels from an assignment that requires them"
                        )))
                    }
                }
            }
            if all.len() != self.global_n {
                return Err(ClusterError::Protocol(format!(
                    "workers returned {} labels for {} rows",
                    all.len(),
                    self.global_n
                )));
            }
            Some(all)
        } else {
            None
        };
        self.note_pass(all_shards.len() as u64);
        let mut sums = fold_accum_shards(k, d, &all_shards);
        sums.stats = stats;
        self.last_assign = Some(centers.clone());
        Ok((reassigned, sums, labels))
    }

    /// Global potential of `centers` over all workers' rows (with the
    /// finiteness check) — bit-identical to the single-node potential.
    pub fn potential(&mut self, centers: &PointMatrix) -> Result<f64, ClusterError> {
        let sums = self.request_shard_sums(&Message::Cost {
            centers: centers.clone(),
        })?;
        Ok(Self::fold(sums))
    }

    /// Fetches the labels of the last assignment pass, concatenated in
    /// worker (= global row) order.
    pub fn fetch_labels(&mut self) -> Result<Vec<u32>, ClusterError> {
        let replies = self.request_all(&Message::FetchLabels)?;
        let mut labels = Vec::with_capacity(self.global_n);
        for (i, r) in replies.into_iter().enumerate() {
            match r {
                Message::Labels { labels: l } => labels.extend(l),
                other => {
                    return Err(ClusterError::Protocol(format!(
                        "worker {i} answered with {other:?} instead of Labels"
                    )))
                }
            }
        }
        if labels.len() != self.global_n {
            return Err(ClusterError::Protocol(format!(
                "workers returned {} labels for {} rows",
                labels.len(),
                self.global_n
            )));
        }
        Ok(labels)
    }

    /// Fetches every worker's residency accounting.
    pub fn fetch_stats(&mut self) -> Result<Vec<WorkerStats>, ClusterError> {
        let replies = self.request_all(&Message::FetchStats)?;
        replies
            .into_iter()
            .enumerate()
            .map(|(i, r)| match r {
                Message::Stats(s) => Ok(s),
                other => Err(ClusterError::Protocol(format!(
                    "worker {i} answered with {other:?} instead of Stats"
                ))),
            })
            .collect()
    }

    /// Ends every worker session (best effort — errors are swallowed so a
    /// partially failed shutdown never masks the fit's own result).
    pub fn shutdown(&mut self) {
        for w in &mut self.workers {
            let _ = w.transport.send(&Message::Shutdown);
        }
        for w in &mut self.workers {
            let _ = w.transport.recv();
        }
    }

    /// Per-worker connection summaries (rows, byte counters).
    pub fn worker_summaries(&self) -> Vec<WorkerSummary> {
        self.workers
            .iter()
            .map(|w| WorkerSummary {
                rows: w.rows,
                start_row: w.start_row,
                bytes_sent: w.bytes_sent(),
                bytes_received: w.bytes_received(),
            })
            .collect()
    }

    /// Total frame bytes the coordinator sent (across replaced
    /// transports too).
    pub fn bytes_sent(&self) -> u64 {
        self.workers.iter().map(|w| w.bytes_sent()).sum()
    }

    /// Total frame bytes the coordinator received (across replaced
    /// transports too).
    pub fn bytes_received(&self) -> u64 {
        self.workers.iter().map(|w| w.bytes_received()).sum()
    }

    /// Full data passes driven so far (tracker builds/updates, assignment
    /// and cost passes — the §3.5 round currency).
    pub fn data_passes(&self) -> u64 {
        self.data_passes
    }

    /// Data-round request/reply cycles driven so far: one per fleet
    /// broadcast or row gather. Session control (`Hello`/`Plan`/
    /// `Shutdown`) is excluded. A fused `Compound` round counts once —
    /// this is the latency currency the round-fused driver minimizes.
    pub fn round_trips(&self) -> u64 {
        self.round_trips
    }

    /// The run's accounting in the same [`JobStats`] shape the in-process
    /// MapReduce model reports: map tasks are executor shards per pass,
    /// `bytes_shuffled` is real bytes on the wire, and `map_wall` is the
    /// time the coordinator spent blocked on workers.
    pub fn job_stats(&self) -> JobStats {
        let shards_per_pass = if self.shard_size == 0 {
            0
        } else {
            self.global_n.div_ceil(self.shard_size)
        };
        JobStats {
            map_tasks: shards_per_pass * self.data_passes as usize,
            records_in: self.global_n as u64 * self.data_passes,
            pairs_shuffled: self.pairs,
            bytes_shuffled: self.bytes_sent() + self.bytes_received(),
            distinct_keys: self.num_workers(),
            round_trips: self.round_trips,
            map_wall: self.blocked_wall,
            shuffle_wall: Duration::ZERO,
            reduce_wall: Duration::ZERO,
        }
    }

    fn owner_of(&self, global_row: usize) -> Result<usize, ClusterError> {
        if global_row >= self.global_n {
            return Err(ClusterError::Protocol(format!(
                "row {global_row} out of range for {} rows",
                self.global_n
            )));
        }
        // Worker ranges are contiguous and ordered: binary search.
        let mut lo = 0usize;
        let mut hi = self.workers.len();
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.workers[mid].start_row <= global_row {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_alignment_is_always_reachable() {
        // The boundary grid nests and stays O(n/64 + shard): for the
        // paper's 4.8M-point KDD scale with the default shard size the
        // required alignment is a small multiple of 8192 — far below n —
        // so `skm shard --align <required>` can always produce a
        // multi-worker split.
        for (shard, n) in [(8192usize, 4_800_000usize), (8192, 1_000_000), (16, 192)] {
            let required = sum_shard_size_for(shard, n);
            assert_eq!(required % shard, 0, "grid must nest ({shard}, {n})");
            assert!(
                required <= n.div_ceil(64) + shard,
                "alignment {required} not O(n/64 + shard) for ({shard}, {n})"
            );
            assert!(
                2 * required <= n,
                "no 2-worker split possible for ({shard}, {n})"
            );
        }
    }
}
