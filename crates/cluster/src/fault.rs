//! Deterministic fault injection over any [`Transport`] — the test
//! harness behind the fault-tolerance guarantees.
//!
//! A [`FaultTransport`] wraps a real transport (loopback or TCP — both
//! move identical frames) and executes a *script* of [`FaultAction`]s
//! keyed by `(message tag, occurrence)`: kill the connection when the
//! Nth frame of a given kind is received or about to be sent, ship a
//! mid-frame truncation, or delay a reply. Because the distributed
//! conversation is itself deterministic (same seed → same message
//! sequence), a scripted trigger reproduces the *same* failure at the
//! *same* round on every run — worker loss at each round type becomes an
//! ordinary unit test instead of a flaky race.
//!
//! The wrapper sits on the **worker** side in the spawn helpers
//! ([`spawn_loopback_worker_with_faults`],
//! [`spawn_tcp_worker_with_faults`]): after a kill triggers, the
//! transport reports [`ClusterError::Disconnected`] forever, the worker
//! thread winds down, and the coordinator observes exactly what a
//! crashed machine produces — a vanished peer mid-round.
//!
//! This module is part of the public API (not `#[cfg(test)]`) so
//! integration tests and downstream users can script chaos against their
//! own deployments; it injects nothing unless explicitly constructed.

use crate::error::ClusterError;
use crate::protocol::Message;
use crate::transport::{loopback_pair, LoopbackTransport, TcpTransport, Transport};
use crate::wire::WireMessage;
use crate::worker::Worker;
use kmeans_data::ChunkedSource;
use kmeans_par::Parallelism;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

/// Message-tag constants for scripting faults against the distributed
/// `SKW1` vocabulary without constructing throwaway messages. Mirrors
/// [`crate::protocol::Message`]'s tag map (round-trip pinned by a test).
pub mod tag {
    /// `InitTracker` — the seeding tracker-initialization round.
    pub const INIT_TRACKER: u8 = 4;
    /// `UpdateTracker` — the per-round tracker update.
    pub const UPDATE_TRACKER: u8 = 5;
    /// `SampleBernoulli` — the k-means|| oversampling round.
    pub const SAMPLE_BERNOULLI: u8 = 7;
    /// `SampleExact` — the exact-`ℓ` sampling round.
    pub const SAMPLE_EXACT: u8 = 9;
    /// `CandidateWeights` — the weight-gathering round.
    pub const CANDIDATE_WEIGHTS: u8 = 11;
    /// `GatherRows` — point gathers (seeding + reseeding).
    pub const GATHER_ROWS: u8 = 13;
    /// `GatherD2` — the distance-snapshot gather (top-up path).
    pub const GATHER_D2: u8 = 15;
    /// `Assign` — a Lloyd assignment pass.
    pub const ASSIGN: u8 = 17;
    /// `Cost` — a potential evaluation pass.
    pub const COST: u8 = 19;
    /// `FetchLabels` — the closing label fetch.
    pub const FETCH_LABELS: u8 = 20;
    /// `ShardSums` — the tracker rounds' reply.
    pub const SHARD_SUMS: u8 = 6;
    /// `Partials` — the assignment rounds' reply.
    pub const PARTIALS: u8 = 18;
    /// `Compound` — a fused round's batched request (and its batched
    /// reply): the default conversation shape of a distributed fit.
    pub const COMPOUND: u8 = 29;
    /// `SampleBernoulliLocal` — the fused Bernoulli prescreen step.
    pub const SAMPLE_BERNOULLI_LOCAL: u8 = 30;
    /// `Prescreened` — the fused Bernoulli prescreen reply.
    pub const PRESCREENED: u8 = 31;
}

/// One scripted fault, armed for the `occurrence`-th frame (1-based)
/// carrying `tag` that crosses the wrapped transport in the stated
/// direction. At most one action fires per frame (first match wins);
/// kill and truncate actions leave the transport permanently dead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver the matching incoming frame to nobody: consume it, mark
    /// the transport dead, and report `Disconnected` — the peer's request
    /// reached a machine that crashed before acting on it.
    KillOnRecv {
        /// Message tag to match.
        tag: u8,
        /// 1-based occurrence of that tag on the recv path.
        occurrence: u32,
    },
    /// Crash instead of sending the matching frame — the machine died
    /// after doing the round's work but before the reply left.
    KillOnSend {
        /// Message tag to match.
        tag: u8,
        /// 1-based occurrence of that tag on the send path.
        occurrence: u32,
    },
    /// Ship only the first `keep` bytes of the matching frame, then die —
    /// a mid-frame crash. Exercises the peer's defensive decode path
    /// (truncation is a typed frame error, never a panic or a hang).
    TruncateOnSend {
        /// Message tag to match.
        tag: u8,
        /// 1-based occurrence of that tag on the send path.
        occurrence: u32,
        /// Bytes of the encoded frame to let through.
        keep: usize,
    },
    /// Sleep before sending the matching frame — a slow peer. The frame
    /// is then delivered intact; the transport stays alive.
    DelayOnSend {
        /// Message tag to match.
        tag: u8,
        /// 1-based occurrence of that tag on the send path.
        occurrence: u32,
        /// How long to stall.
        delay: Duration,
    },
}

/// A [`Transport`] that additionally exposes its raw frame sink — what
/// [`FaultAction::TruncateOnSend`] needs to put half a frame on the
/// wire. Implemented by both built-in transports.
pub trait Faultable<M: WireMessage = Message>: Transport<M> {
    /// Sends pre-encoded frame bytes verbatim (possibly truncated).
    fn send_raw_frame(&mut self, bytes: &[u8]) -> Result<(), ClusterError>;
}

impl<M: WireMessage> Faultable<M> for TcpTransport<M> {
    fn send_raw_frame(&mut self, bytes: &[u8]) -> Result<(), ClusterError> {
        TcpTransport::send_raw_frame(self, bytes)
    }
}

impl<M: WireMessage> Faultable<M> for LoopbackTransport<M> {
    fn send_raw_frame(&mut self, bytes: &[u8]) -> Result<(), ClusterError> {
        LoopbackTransport::send_raw_frame(self, bytes)
    }
}

/// Scripted-fault wrapper over a [`Faultable`] transport. See the
/// module docs for semantics.
pub struct FaultTransport<M: WireMessage = Message> {
    inner: Box<dyn Faultable<M>>,
    script: Vec<FaultAction>,
    recv_seen: HashMap<u8, u32>,
    send_seen: HashMap<u8, u32>,
    dead: bool,
}

fn bump(seen: &mut HashMap<u8, u32>, tag: u8) -> u32 {
    let n = seen.entry(tag).or_insert(0);
    *n += 1;
    *n
}

impl<M: WireMessage> FaultTransport<M> {
    /// Wraps `inner` with a fault script. An empty script is a
    /// transparent pass-through.
    pub fn new(inner: Box<dyn Faultable<M>>, script: Vec<FaultAction>) -> Self {
        FaultTransport {
            inner,
            script,
            recv_seen: HashMap::new(),
            send_seen: HashMap::new(),
            dead: false,
        }
    }

    /// Whether a kill/truncate action has fired — the transport now
    /// behaves like a crashed machine.
    pub fn is_dead(&self) -> bool {
        self.dead
    }
}

impl<M: WireMessage> Transport<M> for FaultTransport<M> {
    fn send(&mut self, msg: &M) -> Result<(), ClusterError> {
        if self.dead {
            return Err(ClusterError::Disconnected);
        }
        let tag = msg.tag();
        let n = bump(&mut self.send_seen, tag);
        let hit = self.script.iter().copied().find(|a| {
            matches!(a,
                FaultAction::KillOnSend { tag: t, occurrence }
                | FaultAction::TruncateOnSend { tag: t, occurrence, .. }
                | FaultAction::DelayOnSend { tag: t, occurrence, .. }
                    if *t == tag && *occurrence == n)
        });
        match hit {
            Some(FaultAction::KillOnSend { .. }) => {
                self.dead = true;
                Err(ClusterError::Disconnected)
            }
            Some(FaultAction::TruncateOnSend { keep, .. }) => {
                let frame = msg.encode_frame();
                let keep = keep.min(frame.len().saturating_sub(1)).max(1);
                self.inner.send_raw_frame(&frame[..keep])?;
                self.dead = true;
                Err(ClusterError::Disconnected)
            }
            Some(FaultAction::DelayOnSend { delay, .. }) => {
                std::thread::sleep(delay);
                self.inner.send(msg)
            }
            _ => self.inner.send(msg),
        }
    }

    fn recv(&mut self) -> Result<M, ClusterError> {
        if self.dead {
            return Err(ClusterError::Disconnected);
        }
        let msg = self.inner.recv()?;
        let tag = msg.tag();
        let n = bump(&mut self.recv_seen, tag);
        let killed = self.script.iter().any(|a| {
            matches!(a, FaultAction::KillOnRecv { tag: t, occurrence }
                if *t == tag && *occurrence == n)
        });
        if killed {
            self.dead = true;
            return Err(ClusterError::Disconnected);
        }
        Ok(msg)
    }

    fn bytes_sent(&self) -> u64 {
        self.inner.bytes_sent()
    }

    fn bytes_received(&self) -> u64 {
        self.inner.bytes_received()
    }
}

/// [`crate::worker::spawn_loopback_worker`] with a fault script wrapped
/// around the worker's side of the channel — the deterministic
/// chaos-test harness. Returns the coordinator-side transport and the
/// worker thread's handle (which ends in `Err` when a send-path fault
/// kills the session mid-reply).
pub fn spawn_loopback_worker_with_faults(
    source: impl ChunkedSource + 'static,
    parallelism: Parallelism,
    script: Vec<FaultAction>,
) -> (
    LoopbackTransport,
    std::thread::JoinHandle<Result<(), ClusterError>>,
) {
    let (coordinator_side, worker_side) = loopback_pair();
    let mut faulty = FaultTransport::new(Box::new(worker_side), script);
    let mut worker = Worker::new(source, parallelism);
    let handle = std::thread::spawn(move || worker.serve(&mut faulty));
    (coordinator_side, handle)
}

/// [`crate::worker::spawn_tcp_worker`] with a fault script: serves one
/// session on an ephemeral localhost port through a [`FaultTransport`],
/// so scripted crashes happen over a real socket (partial frame bytes,
/// RST/EOF on the coordinator side). Returns the bound address and the
/// worker thread's handle.
pub fn spawn_tcp_worker_with_faults(
    source: impl ChunkedSource + 'static,
    parallelism: Parallelism,
    io_timeout: Option<Duration>,
    script: Vec<FaultAction>,
) -> std::io::Result<(
    SocketAddr,
    std::thread::JoinHandle<Result<(), ClusterError>>,
)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let handle = std::thread::spawn(move || {
        let (stream, _) = listener.accept()?;
        let transport = TcpTransport::new(stream, io_timeout)?;
        let mut faulty = FaultTransport::new(Box::new(transport), script);
        Worker::new(source, parallelism).serve(&mut faulty)
    });
    Ok((addr, handle))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair_with_script(
        script: Vec<FaultAction>,
    ) -> (LoopbackTransport<Message>, FaultTransport<Message>) {
        let (plain, wrapped) = loopback_pair::<Message>();
        (plain, FaultTransport::new(Box::new(wrapped), script))
    }

    #[test]
    fn tag_constants_match_the_protocol() {
        use crate::wire::WireMessage as _;
        let m = kmeans_data::PointMatrix::new(1);
        assert_eq!(
            Message::InitTracker { centers: m.clone() }.tag(),
            tag::INIT_TRACKER
        );
        assert_eq!(
            Message::UpdateTracker {
                from: 0,
                centers: m.clone()
            }
            .tag(),
            tag::UPDATE_TRACKER
        );
        assert_eq!(
            Message::SampleBernoulli {
                round: 0,
                seed: 0,
                l: 0.0,
                phi: 0.0
            }
            .tag(),
            tag::SAMPLE_BERNOULLI
        );
        assert_eq!(
            Message::SampleExact {
                round: 0,
                seed: 0,
                m: 0
            }
            .tag(),
            tag::SAMPLE_EXACT
        );
        assert_eq!(
            Message::CandidateWeights { m: 0 }.tag(),
            tag::CANDIDATE_WEIGHTS
        );
        assert_eq!(
            Message::GatherRows { indices: vec![] }.tag(),
            tag::GATHER_ROWS
        );
        assert_eq!(Message::GatherD2.tag(), tag::GATHER_D2);
        assert_eq!(
            Message::Assign {
                centers: m.clone(),
                labels: Default::default()
            }
            .tag(),
            tag::ASSIGN
        );
        assert_eq!(Message::Cost { centers: m.clone() }.tag(), tag::COST);
        assert_eq!(Message::FetchLabels.tag(), tag::FETCH_LABELS);
        assert_eq!(Message::ShardSums { sums: vec![] }.tag(), tag::SHARD_SUMS);
        assert_eq!(
            Message::Partials {
                reassigned: 0,
                shards: vec![],
                stats: Default::default(),
                labels: None
            }
            .tag(),
            tag::PARTIALS
        );
        assert_eq!(Message::Compound(vec![]).tag(), tag::COMPOUND);
        assert_eq!(
            Message::SampleBernoulliLocal {
                round: 0,
                seed: 0,
                l: 0.0
            }
            .tag(),
            tag::SAMPLE_BERNOULLI_LOCAL
        );
        assert_eq!(
            Message::Prescreened {
                entries: vec![],
                rows: m.clone()
            }
            .tag(),
            tag::PRESCREENED
        );
        drop(m);
    }

    #[test]
    fn empty_script_is_transparent() {
        let (mut peer, mut faulty) = pair_with_script(vec![]);
        peer.send(&Message::GatherD2).unwrap();
        assert_eq!(faulty.recv().unwrap(), Message::GatherD2);
        faulty.send(&Message::PlanOk).unwrap();
        assert_eq!(peer.recv().unwrap(), Message::PlanOk);
        assert!(!faulty.is_dead());
    }

    #[test]
    fn kill_on_nth_recv_consumes_the_frame_and_stays_dead() {
        let (mut peer, mut faulty) = pair_with_script(vec![FaultAction::KillOnRecv {
            tag: tag::GATHER_D2,
            occurrence: 2,
        }]);
        peer.send(&Message::GatherD2).unwrap();
        peer.send(&Message::GatherD2).unwrap();
        assert_eq!(faulty.recv().unwrap(), Message::GatherD2);
        assert!(matches!(faulty.recv(), Err(ClusterError::Disconnected)));
        assert!(faulty.is_dead());
        // Dead means dead — both directions, forever.
        assert!(matches!(faulty.recv(), Err(ClusterError::Disconnected)));
        assert!(matches!(
            faulty.send(&Message::PlanOk),
            Err(ClusterError::Disconnected)
        ));
    }

    #[test]
    fn kill_on_send_never_delivers_the_frame() {
        let (mut peer, mut faulty) = pair_with_script(vec![FaultAction::KillOnSend {
            tag: tag::SHARD_SUMS,
            occurrence: 1,
        }]);
        faulty.send(&Message::PlanOk).unwrap();
        assert_eq!(peer.recv().unwrap(), Message::PlanOk);
        assert!(matches!(
            faulty.send(&Message::ShardSums { sums: vec![1.0] }),
            Err(ClusterError::Disconnected)
        ));
        drop(faulty);
        // The peer sees a hangup, not the reply.
        assert!(matches!(peer.recv(), Err(ClusterError::Disconnected)));
    }

    #[test]
    fn truncate_on_send_ships_a_partial_frame() {
        let (mut peer, mut faulty) = pair_with_script(vec![FaultAction::TruncateOnSend {
            tag: tag::SHARD_SUMS,
            occurrence: 1,
            keep: 9,
        }]);
        assert!(matches!(
            faulty.send(&Message::ShardSums { sums: vec![1.0] }),
            Err(ClusterError::Disconnected)
        ));
        // The peer receives the partial frame and rejects it as a typed
        // frame error — never a panic.
        assert!(matches!(peer.recv(), Err(ClusterError::Frame(_))));
    }

    #[test]
    fn delay_on_send_delivers_intact() {
        let (mut peer, mut faulty) = pair_with_script(vec![FaultAction::DelayOnSend {
            tag: tag::SHARD_SUMS,
            occurrence: 1,
            delay: Duration::from_millis(10),
        }]);
        let start = std::time::Instant::now();
        faulty
            .send(&Message::ShardSums { sums: vec![2.5] })
            .unwrap();
        assert!(start.elapsed() >= Duration::from_millis(10));
        assert_eq!(peer.recv().unwrap(), Message::ShardSums { sums: vec![2.5] });
        assert!(!faulty.is_dead());
    }
}
