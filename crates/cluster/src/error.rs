//! The distributed runtime's error type.

use crate::protocol::{FrameError, ReadFrameError};
use kmeans_core::KMeansError;
use std::fmt;

/// Failures of the distributed runtime: transport problems, protocol
/// violations, plan violations, and typed clustering errors relayed from
/// workers. Every failure mode is a value — a worker vanishing mid-round
/// surfaces as [`ClusterError::Disconnected`] (or an I/O timeout), never
/// as a hang.
#[derive(Debug)]
pub enum ClusterError {
    /// Socket/channel-level failure (includes read timeouts).
    Io(std::io::Error),
    /// The peer delivered bytes that do not form a valid frame.
    Frame(FrameError),
    /// The peer closed the connection (channel hung up / clean EOF).
    Disconnected,
    /// The peer sent a well-formed message that violates the conversation
    /// (e.g. a `Rows` reply to a `Cost` request).
    Protocol(String),
    /// A worker's row range does not sit on the required boundary grid —
    /// the alignment that makes distributed folds bit-identical to
    /// single-node ones (see `docs/ARCHITECTURE.md`).
    Misaligned {
        /// Index of the offending worker (position in the worker list).
        worker: usize,
        /// The worker's global start row.
        start_row: usize,
        /// Required alignment of worker boundaries for this fit.
        required: usize,
    },
    /// A typed clustering failure reported by a worker.
    Remote {
        /// Index of the reporting worker.
        worker: usize,
        /// The relayed error (global point indices).
        error: KMeansError,
    },
    /// A typed clustering failure raised by the coordinator itself.
    KMeans(KMeansError),
    /// A worker failed mid-round and every recovery attempt (replacement
    /// transport, re-handshake, state replay, round re-ask) was exhausted.
    /// Recovery is bounded by [`crate::coordinator::RetryPolicy`], so a
    /// dead worker — even one that keeps dying *during* recovery — is
    /// always this typed error, never a hang.
    RecoveryFailed {
        /// Index of the unrecoverable worker.
        worker: usize,
        /// Recovery attempts made before giving up.
        attempts: u32,
        /// The error that defeated the final attempt.
        last: Box<ClusterError>,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Io(e) => write!(f, "cluster i/o error: {e}"),
            ClusterError::Frame(e) => write!(f, "cluster protocol frame error: {e}"),
            ClusterError::Disconnected => write!(f, "worker disconnected"),
            ClusterError::Protocol(msg) => write!(f, "cluster protocol violation: {msg}"),
            ClusterError::Misaligned {
                worker,
                start_row,
                required,
            } => write!(
                f,
                "worker {worker} starts at global row {start_row}, which is not a multiple of \
                 {required}; re-shard with `skm shard --align {required}` (or adjust the shard \
                 size) so worker boundaries sit on the executor's shard grid"
            ),
            ClusterError::Remote { worker, error } => {
                write!(f, "worker {worker}: {error}")
            }
            ClusterError::KMeans(e) => write!(f, "{e}"),
            ClusterError::RecoveryFailed {
                worker,
                attempts,
                last,
            } => write!(
                f,
                "worker {worker} not recovered after {attempts} attempt(s); last error: {last}"
            ),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Io(e) => Some(e),
            ClusterError::Frame(e) => Some(e),
            ClusterError::Remote { error, .. } | ClusterError::KMeans(error) => Some(error),
            ClusterError::RecoveryFailed { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClusterError {
    fn from(e: std::io::Error) -> Self {
        ClusterError::Io(e)
    }
}

impl From<FrameError> for ClusterError {
    fn from(e: FrameError) -> Self {
        ClusterError::Frame(e)
    }
}

impl From<ReadFrameError> for ClusterError {
    fn from(e: ReadFrameError) -> Self {
        match e {
            ReadFrameError::Io(io) if io.kind() == std::io::ErrorKind::UnexpectedEof => {
                ClusterError::Disconnected
            }
            ReadFrameError::Io(io) => ClusterError::Io(io),
            ReadFrameError::Frame(fe) => ClusterError::Frame(fe),
        }
    }
}

impl From<KMeansError> for ClusterError {
    fn from(e: KMeansError) -> Self {
        ClusterError::KMeans(e)
    }
}

impl From<ClusterError> for KMeansError {
    /// Collapses into the pipeline's error type: typed clustering errors
    /// (local or relayed) pass through unchanged — so a distributed fit
    /// surfaces e.g. the *same* `NonFiniteData { point, dim }` a
    /// single-node fit would — and transport failures become
    /// [`KMeansError::Data`].
    fn from(e: ClusterError) -> Self {
        match e {
            ClusterError::Remote { error, .. } | ClusterError::KMeans(error) => error,
            other => KMeansError::Data(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_errors_pass_through_to_kmeans_error() {
        let e = ClusterError::Remote {
            worker: 1,
            error: KMeansError::NonFiniteData { point: 42, dim: 3 },
        };
        assert_eq!(
            KMeansError::from(e),
            KMeansError::NonFiniteData { point: 42, dim: 3 }
        );
        let e = ClusterError::Disconnected;
        assert!(matches!(KMeansError::from(e), KMeansError::Data(_)));
    }

    #[test]
    fn display_names_the_remedy_for_misalignment() {
        let e = ClusterError::Misaligned {
            worker: 2,
            start_row: 100,
            required: 8192,
        };
        let msg = e.to_string();
        assert!(msg.contains("--align 8192"), "{msg}");
        assert!(msg.contains("worker 2"), "{msg}");
    }
}
