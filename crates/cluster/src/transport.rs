//! Message transports: real TCP sockets and an in-process loopback.
//!
//! Both implementations move the *same encoded frames* ([`crate::wire`])
//! and count the same bytes, so loopback tests exercise the full
//! encode/decode path and wire accounting is transport-independent — a
//! loopback fit reports exactly the bytes a TCP fit would.
//!
//! The transports are generic over the frame vocabulary: the message
//! type parameter defaults to the distributed runtime's
//! [`Message`] (`SKW1`), and the serving tier
//! instantiates the same types with its `SKS1` vocabulary — one socket
//! layer, two protocols.

use crate::error::ClusterError;
use crate::protocol::{FrameError, Message, MAX_FRAME_PAYLOAD};
use crate::wire::{WireMessage, FRAME_OVERHEAD};
use std::io::{BufReader, BufWriter, Write};
use std::marker::PhantomData;
use std::net::TcpStream;
use std::sync::mpsc::{Receiver, Sender};
use std::time::Duration;

/// A bidirectional, message-oriented connection to one peer.
///
/// `recv` must return a typed error — never hang forever — when the peer
/// is gone: the TCP impl uses socket timeouts plus EOF detection, the
/// loopback impl observes the closed channel.
pub trait Transport<M: WireMessage = Message>: Send {
    /// Sends one message (flushes).
    fn send(&mut self, msg: &M) -> Result<(), ClusterError>;
    /// Receives the next message.
    fn recv(&mut self) -> Result<M, ClusterError>;
    /// Total frame bytes written so far.
    fn bytes_sent(&self) -> u64;
    /// Total frame bytes read so far.
    fn bytes_received(&self) -> u64;
}

/// [`Transport`] over a TCP socket.
pub struct TcpTransport<M: WireMessage = Message> {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    sent: u64,
    received: u64,
    _vocabulary: PhantomData<fn() -> M>,
}

impl<M: WireMessage> TcpTransport<M> {
    /// Wraps a connected stream. `io_timeout` bounds every read and write
    /// so a silent peer produces a typed timeout error instead of a hang;
    /// `None` trusts the OS defaults.
    pub fn new(stream: TcpStream, io_timeout: Option<Duration>) -> Result<Self, ClusterError> {
        stream.set_read_timeout(io_timeout)?;
        stream.set_write_timeout(io_timeout)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(TcpTransport {
            reader,
            writer,
            sent: 0,
            received: 0,
            _vocabulary: PhantomData,
        })
    }

    /// Writes pre-encoded frame bytes verbatim — possibly *not* a whole
    /// frame. Fault-injection hook ([`crate::fault`]): lets a scripted
    /// fault ship a truncated frame so the peer's defensive decode path
    /// is exercised over a real socket.
    pub(crate) fn send_raw_frame(&mut self, bytes: &[u8]) -> Result<(), ClusterError> {
        self.writer.write_all(bytes)?;
        self.writer.flush()?;
        self.sent += bytes.len() as u64;
        Ok(())
    }
}

/// Send-side size enforcement: an over-large frame fails fast with a
/// typed error at its source instead of after the peer has received (and
/// rejected) it.
fn check_outgoing(frame: &[u8]) -> Result<(), ClusterError> {
    let payload = frame.len().saturating_sub(FRAME_OVERHEAD);
    if payload > MAX_FRAME_PAYLOAD {
        return Err(ClusterError::Frame(FrameError::Oversized {
            len: payload as u64,
            max: MAX_FRAME_PAYLOAD as u64,
        }));
    }
    Ok(())
}

impl<M: WireMessage> Transport<M> for TcpTransport<M> {
    fn send(&mut self, msg: &M) -> Result<(), ClusterError> {
        let frame = msg.encode_frame();
        check_outgoing(&frame)?;
        self.writer.write_all(&frame)?;
        self.writer.flush()?;
        self.sent += frame.len() as u64;
        Ok(())
    }

    fn recv(&mut self) -> Result<M, ClusterError> {
        let (msg, used) = M::read_frame(&mut self.reader, MAX_FRAME_PAYLOAD)?;
        self.received += used as u64;
        Ok(msg)
    }

    fn bytes_sent(&self) -> u64 {
        self.sent
    }

    fn bytes_received(&self) -> u64 {
        self.received
    }
}

/// [`Transport`] over in-process channels carrying encoded frames — the
/// deterministic test/CI transport. Create pairs with [`loopback_pair`].
pub struct LoopbackTransport<M: WireMessage = Message> {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    sent: u64,
    received: u64,
    _vocabulary: PhantomData<fn() -> M>,
}

/// Creates a connected pair of loopback transports (coordinator side,
/// worker side — or client side, server side for the serving tier).
pub fn loopback_pair<M: WireMessage>() -> (LoopbackTransport<M>, LoopbackTransport<M>) {
    let (a_tx, b_rx) = std::sync::mpsc::channel();
    let (b_tx, a_rx) = std::sync::mpsc::channel();
    (
        LoopbackTransport {
            tx: a_tx,
            rx: a_rx,
            sent: 0,
            received: 0,
            _vocabulary: PhantomData,
        },
        LoopbackTransport {
            tx: b_tx,
            rx: b_rx,
            sent: 0,
            received: 0,
            _vocabulary: PhantomData,
        },
    )
}

impl<M: WireMessage> LoopbackTransport<M> {
    /// Loopback counterpart of [`TcpTransport::send_raw_frame`]: delivers
    /// raw (possibly truncated) frame bytes as one channel message.
    pub(crate) fn send_raw_frame(&mut self, bytes: &[u8]) -> Result<(), ClusterError> {
        self.tx
            .send(bytes.to_vec())
            .map_err(|_| ClusterError::Disconnected)?;
        self.sent += bytes.len() as u64;
        Ok(())
    }
}

impl<M: WireMessage> Transport<M> for LoopbackTransport<M> {
    fn send(&mut self, msg: &M) -> Result<(), ClusterError> {
        let frame = msg.encode_frame();
        check_outgoing(&frame)?;
        let len = frame.len() as u64;
        self.tx
            .send(frame)
            .map_err(|_| ClusterError::Disconnected)?;
        self.sent += len;
        Ok(())
    }

    fn recv(&mut self) -> Result<M, ClusterError> {
        let frame = self.rx.recv().map_err(|_| ClusterError::Disconnected)?;
        let (msg, used) = M::decode_frame(&frame, MAX_FRAME_PAYLOAD)?;
        if used != frame.len() {
            return Err(ClusterError::Protocol(
                "loopback frame carried trailing bytes".into(),
            ));
        }
        self.received += used as u64;
        Ok(msg)
    }

    fn bytes_sent(&self) -> u64 {
        self.sent
    }

    fn bytes_received(&self) -> u64 {
        self.received
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_round_trips_and_counts_bytes() {
        let (mut a, mut b) = loopback_pair();
        let msg = Message::Hello { rows: 10, dim: 3 };
        a.send(&msg).unwrap();
        let got = b.recv().unwrap();
        assert_eq!(got, msg);
        assert_eq!(a.bytes_sent(), b.bytes_received());
        assert!(a.bytes_sent() > 0);
    }

    #[test]
    fn loopback_disconnect_is_a_typed_error() {
        let (mut a, b) = loopback_pair::<Message>();
        drop(b);
        assert!(matches!(
            a.send(&Message::GatherD2),
            Err(ClusterError::Disconnected)
        ));
        assert!(matches!(a.recv(), Err(ClusterError::Disconnected)));
    }

    #[test]
    fn tcp_round_trip_over_localhost() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t =
                TcpTransport::<Message>::new(stream, Some(Duration::from_secs(10))).unwrap();
            let msg = t.recv().unwrap();
            t.send(&msg).unwrap();
        });
        let stream = TcpStream::connect(addr).unwrap();
        let mut t = TcpTransport::<Message>::new(stream, Some(Duration::from_secs(10))).unwrap();
        let msg = Message::CandidateWeights { m: 9 };
        t.send(&msg).unwrap();
        assert_eq!(t.recv().unwrap(), msg);
        server.join().unwrap();
        assert_eq!(t.bytes_sent(), t.bytes_received());
    }

    #[test]
    fn tcp_peer_close_is_disconnect_not_hang() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            drop(stream); // immediate close
        });
        let stream = TcpStream::connect(addr).unwrap();
        let mut t = TcpTransport::<Message>::new(stream, Some(Duration::from_secs(10))).unwrap();
        server.join().unwrap();
        assert!(matches!(t.recv(), Err(ClusterError::Disconnected)));
    }
}
