//! **kmeans-cluster** — a coordinator/worker distributed runtime for
//! k-means|| seeding and Lloyd refinement over sharded block files.
//!
//! The paper's §3.5 observes that every step of Algorithm 2 "is very
//! simple in MapReduce": each mapper samples its partition independently
//! and ships `φ_X′(C)` partials that "the reducer can simply add". This
//! crate makes that realization a real multi-process system instead of
//! the in-process model in `kmeans_par::mapreduce`:
//!
//! * [`protocol`] — a length-prefixed, checksummed wire protocol
//!   (`std`-only binary frames) carrying centers broadcasts, per-round
//!   sampled candidates, cost partials, and assignment
//!   accumulation-shard partials.
//! * [`transport`] — the [`Transport`] trait with two implementations:
//!   [`TcpTransport`] (real sockets; `skm worker --listen ADDR`) and
//!   [`LoopbackTransport`] (in-process channels moving the *same encoded
//!   frames*, for deterministic tests and CI).
//! * [`worker`] — the per-partition "mapper": owns one contiguous shard
//!   of the data as a `ChunkedSource` (typically an `SKMBLK01` block file
//!   with a residency budget) and computes per-shard partials only.
//! * [`coordinator`] — [`Cluster`]: the conversation driver and the home
//!   of every order-sensitive fold.
//! * [`backend`] — [`ClusterBackend`]: the cluster as a
//!   `kmeans_core::driver::RoundBackend`, so the backend-generic round
//!   drivers (the *single* implementation of k-means||, Lloyd,
//!   mini-batch, and random seeding shared with the in-memory and
//!   chunked modes) execute distributed.
//! * [`dist`] — thin per-algorithm entry points binding those drivers to
//!   a [`Cluster`].
//! * [`fit`] — [`FitDistributed`] puts `fit_distributed` on the standard
//!   [`KMeans`](kmeans_core::model::KMeans) builder, next to `fit` and
//!   `fit_chunked`, plus the [`DistInit`]/[`DistRefine`] pipeline stages.
//! * [`fault`] — deterministic fault injection ([`FaultTransport`]):
//!   scripted kills, mid-frame truncations, and delays at exact
//!   `(message tag, occurrence)` triggers, for reproducible chaos tests.
//! * [`checkpoint`] — round checkpoints ([`RoundCheckpoint`],
//!   [`CheckpointingBackend`]): a journal of round results persisted as
//!   an `SKMCKPT1` file so an interrupted distributed fit resumes
//!   bit-identically (`skm fit --distributed --checkpoint FILE`).
//!
//! **The bit-parity contract.** `fit_distributed` returns bit-identical
//! centers, labels, and cost to `fit`/`fit_chunked` on the concatenated
//! worker data, for any worker count, worker-local block size, and
//! worker-local thread count — given the same seed and shard size. Worker
//! row ranges must start on the executor's shard grid (validated by
//! [`Cluster::plan`]; produced by `skm shard --align`), which is what
//! lets per-shard RNG streams and shard-ordered floating-point folds
//! decompose over workers. `tests/distributed_parity.rs` pins the
//! contract across a worker/block-size/thread grid and over both
//! transports.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod backend;
pub mod checkpoint;
pub mod coordinator;
pub mod dist;
pub mod error;
pub mod fault;
pub mod fit;
pub mod protocol;
pub mod retry;
pub mod transport;
pub mod wire;
pub mod worker;

pub use backend::ClusterBackend;
pub use checkpoint::{CheckpointingBackend, RoundCheckpoint};
pub use coordinator::{Cluster, WorkerSummary};
pub use error::ClusterError;
pub use fault::{
    spawn_loopback_worker_with_faults, spawn_tcp_worker_with_faults, FaultAction, FaultTransport,
    Faultable,
};
pub use fit::{DistInit, DistRefine, FitDistributed};
pub use protocol::{FrameError, Message, WorkerStats};
pub use retry::RetryPolicy;
pub use transport::{loopback_pair, LoopbackTransport, TcpTransport, Transport};
pub use wire::{ReadFrameError, WireMessage};
pub use worker::{spawn_loopback_worker, spawn_tcp_worker, TcpWorkerServer, Worker};
