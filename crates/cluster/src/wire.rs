//! Frame machinery shared by every wire vocabulary in the workspace:
//! the length-prefixed, checksummed frame layout, the defensive binary
//! encoder/decoder primitives, and the [`WireMessage`] trait that turns
//! a message enum into a complete frame codec.
//!
//! The distributed runtime's [`Message`](crate::protocol::Message)
//! (`SKW1` frames) and the serving tier's request/response vocabulary
//! (`SKS1` frames, `kmeans-serve`) are both instances: each supplies a
//! magic, a tag map, and per-tag payload codecs; the frame assembly,
//! checksum, cap enforcement, and stream I/O live here once.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! offset        size  field
//! 0             4     magic  (per vocabulary, e.g. b"SKW1")
//! 4             1     message tag
//! 5             4     payload length `len` (u32)
//! 9             len   payload (tag-specific encoding)
//! 9 + len       8     FNV-1a 64 checksum over tag byte + payload
//! ```
//!
//! Decoding is defensive: a frame is parsed only after its declared
//! length passes the caller's cap (no attacker-controlled allocation),
//! every vector count is checked against the bytes actually present
//! before allocating, and every malformed input maps to a typed
//! [`FrameError`] — never a panic.

use kmeans_data::PointMatrix;
use std::io::{Read, Write};

/// Default cap on a frame's payload (1 GiB — comfortably above the
/// largest legitimate reply in any vocabulary). Decoders reject an
/// adversarial or corrupt length prefix beyond the cap *before* any
/// allocation happens; transports enforce the same cap on send, so an
/// over-large frame fails fast at its source instead of after the
/// receiving end has done all the work.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 30;

/// Bytes of frame overhead around a payload: 4 magic + 1 tag + 4 length
/// + 8 checksum.
pub const FRAME_OVERHEAD: usize = 17;

/// Typed decoding failures. `Io` is deliberately absent: transports keep
/// I/O errors separate so "the peer vanished" and "the peer sent garbage"
/// stay distinguishable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The frame does not start with the vocabulary's magic.
    BadMagic,
    /// The buffer ends before the declared frame does.
    Truncated,
    /// The declared payload length exceeds the decoder's cap.
    Oversized {
        /// Declared payload length.
        len: u64,
        /// The decoder's cap.
        max: u64,
    },
    /// The checksum does not match the payload.
    Checksum {
        /// Checksum declared in the frame.
        expected: u64,
        /// Checksum computed over the received payload.
        got: u64,
    },
    /// The tag byte does not name a known message.
    UnknownTag(u8),
    /// The payload does not parse as its tag's message.
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Checksum { expected, got } => {
                write!(
                    f,
                    "frame checksum mismatch: declared {expected:#x}, computed {got:#x}"
                )
            }
            FrameError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            FrameError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Failure reading a frame from a stream: transport-level I/O vs. a
/// well-delivered but invalid frame.
#[derive(Debug)]
pub enum ReadFrameError {
    /// The underlying stream failed (peer gone, timeout).
    Io(std::io::Error),
    /// The bytes arrived but do not form a valid frame.
    Frame(FrameError),
}

/// 64-bit FNV-1a over the tag byte and payload — the frame checksum.
pub fn fnv1a(tag: u8, payload: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut step = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    step(tag);
    for &b in payload {
        step(b);
    }
    h
}

/// Little-endian payload encoder. Append-only; [`Enc::into_bytes`]
/// yields the finished payload.
pub struct Enc(Vec<u8>);

impl Default for Enc {
    fn default() -> Self {
        Self::new()
    }
}

impl Enc {
    /// Starts an empty payload.
    pub fn new() -> Self {
        Enc(Vec::new())
    }
    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }
    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends an `f64` (bit pattern, so NaN payloads survive).
    pub fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a length-prefixed `f64` vector.
    pub fn f64s(&mut self, vs: &[f64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.f64(v);
        }
    }
    /// Appends a length-prefixed `u64` vector.
    pub fn u64s(&mut self, vs: &[u64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.u64(v);
        }
    }
    /// Appends a length-prefixed `u32` vector.
    pub fn u32s(&mut self, vs: &[u32]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.u32(v);
        }
    }
    /// Appends length-prefixed UTF-8 text.
    pub fn text(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.0.extend_from_slice(s.as_bytes());
    }
    /// Appends a point matrix (dim, rows, then the flat values).
    pub fn matrix(&mut self, m: &PointMatrix) {
        self.u32(m.dim() as u32);
        self.u64(m.len() as u64);
        for &v in m.as_slice() {
            self.f64(v);
        }
    }
    /// Appends raw bytes with a length prefix.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.0.extend_from_slice(b);
    }
}

/// Defensive little-endian payload decoder over a borrowed byte slice.
/// Every element count is validated against the bytes actually present
/// *before* any allocation, and [`Dec::finish`] rejects trailing bytes.
pub struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Starts decoding at the front of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }
    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
    /// Consumes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError::Malformed("payload ends mid-field"));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }
    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    /// Reads an `f64`.
    pub fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    /// Validates an element count against the bytes actually present
    /// *before* any allocation — a forged count cannot over-allocate.
    pub fn count(&mut self, elem_bytes: usize) -> Result<usize, FrameError> {
        let declared = self.u64()?;
        let need = declared
            .checked_mul(elem_bytes as u64)
            .ok_or(FrameError::Malformed("element count overflows"))?;
        if need > self.remaining() as u64 {
            return Err(FrameError::Malformed("element count exceeds payload"));
        }
        Ok(declared as usize)
    }
    /// Reads a length-prefixed `f64` vector.
    pub fn f64s(&mut self) -> Result<Vec<f64>, FrameError> {
        let n = self.count(8)?;
        (0..n).map(|_| self.f64()).collect()
    }
    /// Reads a length-prefixed `u64` vector.
    pub fn u64s(&mut self) -> Result<Vec<u64>, FrameError> {
        let n = self.count(8)?;
        (0..n).map(|_| self.u64()).collect()
    }
    /// Reads a length-prefixed `u32` vector.
    pub fn u32s(&mut self) -> Result<Vec<u32>, FrameError> {
        let n = self.count(4)?;
        (0..n).map(|_| self.u32()).collect()
    }
    /// Reads length-prefixed UTF-8 text.
    pub fn text(&mut self) -> Result<String, FrameError> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::Malformed("non-UTF-8 text"))
    }
    /// Reads a point matrix (dim, rows, flat values), rejecting zero-dim
    /// and size overflows before allocation.
    pub fn matrix(&mut self) -> Result<PointMatrix, FrameError> {
        let dim = self.u32()? as usize;
        if dim == 0 {
            return Err(FrameError::Malformed("matrix with zero dim"));
        }
        let rows = self.u64()?;
        let values = rows
            .checked_mul(dim as u64)
            .ok_or(FrameError::Malformed("matrix size overflows"))?;
        if values
            .checked_mul(8)
            .ok_or(FrameError::Malformed("matrix size overflows"))?
            > self.remaining() as u64
        {
            return Err(FrameError::Malformed("matrix larger than payload"));
        }
        let flat: Vec<f64> = (0..values).map(|_| self.f64()).collect::<Result<_, _>>()?;
        PointMatrix::from_flat(flat, dim).map_err(|_| FrameError::Malformed("ragged matrix"))
    }
    /// Reads length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<Vec<u8>, FrameError> {
        let n = self.count(1)?;
        Ok(self.take(n)?.to_vec())
    }
    /// Ends decoding, rejecting unconsumed trailing bytes.
    pub fn finish(self) -> Result<(), FrameError> {
        if self.remaining() != 0 {
            return Err(FrameError::Malformed("trailing bytes after payload"));
        }
        Ok(())
    }
}

/// A message enum that travels as checksummed frames. Implementors
/// supply the vocabulary (magic, tag map, per-tag payload codecs); the
/// provided methods assemble, parse, and stream complete frames with the
/// shared layout, cap enforcement, and checksum.
pub trait WireMessage: Sized + Send {
    /// The vocabulary's 4-byte frame magic (e.g. `b"SKW1"`).
    const MAGIC: [u8; 4];

    /// The message's tag byte.
    fn tag(&self) -> u8;

    /// Encodes the tag-specific payload.
    fn encode_payload(&self) -> Vec<u8>;

    /// Decodes a payload for `tag`, consuming it exactly.
    fn decode_payload(tag: u8, payload: &[u8]) -> Result<Self, FrameError>;

    /// Encodes the message as one complete frame (magic, tag, length,
    /// payload, checksum). Returns the frame bytes.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds the u32 length field (4 GiB) — a
    /// silent wrap would corrupt the stream; transports reject anything
    /// over [`MAX_FRAME_PAYLOAD`] with a typed error long before this.
    fn encode_frame(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        assert!(
            payload.len() <= u32::MAX as usize,
            "frame payload of {} bytes exceeds the u32 length field",
            payload.len()
        );
        let tag = self.tag();
        let mut frame = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
        frame.extend_from_slice(&Self::MAGIC);
        frame.push(tag);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&fnv1a(tag, &payload).to_le_bytes());
        frame
    }

    /// Decodes one frame from a byte buffer, returning the message and
    /// the number of bytes consumed. `max_payload` caps the declared
    /// payload length *before* any allocation.
    fn decode_frame(bytes: &[u8], max_payload: usize) -> Result<(Self, usize), FrameError> {
        if bytes.len() < 9 {
            return Err(FrameError::Truncated);
        }
        if bytes[..4] != Self::MAGIC {
            return Err(FrameError::BadMagic);
        }
        let tag = bytes[4];
        let len = u32::from_le_bytes(bytes[5..9].try_into().expect("4")) as u64;
        if len > max_payload as u64 {
            return Err(FrameError::Oversized {
                len,
                max: max_payload as u64,
            });
        }
        let len = len as usize;
        let total = 9 + len + 8;
        if bytes.len() < total {
            return Err(FrameError::Truncated);
        }
        let payload = &bytes[9..9 + len];
        let expected = u64::from_le_bytes(bytes[9 + len..total].try_into().expect("8"));
        let got = fnv1a(tag, payload);
        if expected != got {
            return Err(FrameError::Checksum { expected, got });
        }
        Ok((Self::decode_payload(tag, payload)?, total))
    }

    /// Writes the message as one frame. Returns the bytes written.
    fn write_frame(&self, w: &mut impl Write) -> std::io::Result<usize> {
        let frame = self.encode_frame();
        w.write_all(&frame)?;
        Ok(frame.len())
    }

    /// Reads one frame from a byte stream, returning the message and the
    /// bytes consumed. I/O failures (peer gone, timeout) and invalid
    /// frames are distinguished by [`ReadFrameError`].
    fn read_frame(r: &mut impl Read, max_payload: usize) -> Result<(Self, usize), ReadFrameError> {
        let mut header = [0u8; 9];
        r.read_exact(&mut header).map_err(ReadFrameError::Io)?;
        if header[..4] != Self::MAGIC {
            return Err(ReadFrameError::Frame(FrameError::BadMagic));
        }
        let tag = header[4];
        let len = u32::from_le_bytes(header[5..9].try_into().expect("4")) as u64;
        if len > max_payload as u64 {
            return Err(ReadFrameError::Frame(FrameError::Oversized {
                len,
                max: max_payload as u64,
            }));
        }
        let len = len as usize;
        let mut payload = vec![0u8; len];
        r.read_exact(&mut payload).map_err(ReadFrameError::Io)?;
        let mut check = [0u8; 8];
        r.read_exact(&mut check).map_err(ReadFrameError::Io)?;
        let expected = u64::from_le_bytes(check);
        let got = fnv1a(tag, &payload);
        if expected != got {
            return Err(ReadFrameError::Frame(FrameError::Checksum {
                expected,
                got,
            }));
        }
        Self::decode_payload(tag, &payload)
            .map(|m| (m, 9 + len + 8))
            .map_err(ReadFrameError::Frame)
    }
}
