//! Pipeline integration: [`DistInit`] / [`DistRefine`] stages and the
//! [`FitDistributed`] extension that gives the standard
//! [`KMeans`] builder a `fit_distributed`
//! entry point next to `fit` and `fit_chunked`.
//!
//! The builder's configured stages are resolved through the pipeline's
//! `as_any` hook: `kmeans-par` and `random` seeds and `lloyd` / `none`
//! refiners have distributed realizations; every other stage rejects with
//! the shared typed error (`reject_distributed`) — the same fail-loudly
//! contract the chunked path established.

use crate::coordinator::Cluster;
use crate::dist::{dist_kmeans_parallel, dist_label_and_cost, dist_lloyd, dist_random_init};
use kmeans_core::init::{InitMethod, InitResult, KMeansParallelConfig};
use kmeans_core::lloyd::LloydConfig;
use kmeans_core::model::{KMeans, KMeansModel, ModelParts};
use kmeans_core::pipeline::{self, reject_distributed, Initializer, RefineResult, Refiner};
use kmeans_core::KMeansError;
use kmeans_data::{ChunkedSource, PointMatrix};
use kmeans_par::Executor;
use kmeans_util::timing::Stopwatch;

fn reject_local(name: &str) -> KMeansError {
    KMeansError::InvalidConfig(format!(
        "{name} is a distributed stage: it runs on a worker cluster via fit_distributed, \
         not on local data"
    ))
}

#[derive(Clone, Copy, Debug)]
enum DistInitMethod {
    Random,
    KMeansParallel(KMeansParallelConfig),
}

/// A distributed seeding stage. Implements [`Initializer`] so it slots
/// into the standard builder (`KMeans::params(k).init(DistInit::...)`),
/// but its real entry point is [`DistInit::run`] over a [`Cluster`] —
/// the in-memory/chunked trait methods reject with a typed error.
#[derive(Clone, Copy, Debug)]
pub struct DistInit(DistInitMethod);

impl DistInit {
    /// Distributed uniform seeding.
    pub fn random() -> Self {
        DistInit(DistInitMethod::Random)
    }

    /// Distributed k-means|| (Algorithm 2) with the given configuration.
    pub fn kmeans_parallel(config: KMeansParallelConfig) -> Self {
        DistInit(DistInitMethod::KMeansParallel(config))
    }

    /// Runs the seeding over the cluster, stamping duration and seed cost
    /// with the same conventions as the single-node `finish_init_chunked`
    /// epilogue (duration excludes the seed-cost pass).
    pub fn run(
        &self,
        cluster: &mut Cluster,
        k: usize,
        seed: u64,
    ) -> Result<InitResult, KMeansError> {
        let sw = Stopwatch::start();
        let (centers, mut stats) = match &self.0 {
            DistInitMethod::Random => dist_random_init(cluster, k, seed)?,
            DistInitMethod::KMeansParallel(config) => {
                dist_kmeans_parallel(cluster, k, config, seed)?
            }
        };
        stats.duration = sw.elapsed();
        stats.seed_cost = cluster.potential(&centers)?;
        Ok(InitResult { centers, stats })
    }
}

impl Initializer for DistInit {
    fn name(&self) -> &'static str {
        match self.0 {
            DistInitMethod::Random => "random",
            DistInitMethod::KMeansParallel(_) => "kmeans-par",
        }
    }

    fn init(
        &self,
        _points: &PointMatrix,
        _weights: Option<&[f64]>,
        _k: usize,
        _seed: u64,
        _exec: &Executor,
    ) -> Result<InitResult, KMeansError> {
        Err(reject_local(self.name()))
    }

    fn init_chunked(
        &self,
        _source: &dyn ChunkedSource,
        _k: usize,
        _seed: u64,
        _exec: &Executor,
    ) -> Result<InitResult, KMeansError> {
        Err(reject_local(self.name()))
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[derive(Clone, Copy, Debug)]
enum DistRefineMethod {
    Lloyd(LloydConfig),
    None,
}

/// A distributed refinement stage; see [`DistInit`] for the pattern.
#[derive(Clone, Copy, Debug)]
pub struct DistRefine(DistRefineMethod);

impl DistRefine {
    /// Distributed Lloyd refinement.
    pub fn lloyd(config: LloydConfig) -> Self {
        DistRefine(DistRefineMethod::Lloyd(config))
    }

    /// Keep the seed centers; one distributed labeling pass.
    pub fn none() -> Self {
        DistRefine(DistRefineMethod::None)
    }

    /// Runs the refinement over the cluster, with the same result
    /// conventions as the chunked `Lloyd`/`NoRefine` refiners (analytic
    /// `n·k` distance accounting per assignment pass).
    pub fn run(
        &self,
        cluster: &mut Cluster,
        centers: &PointMatrix,
    ) -> Result<RefineResult, KMeansError> {
        let n = cluster.global_n() as u64;
        let k = centers.len() as u64;
        match &self.0 {
            DistRefineMethod::Lloyd(config) => {
                let r = dist_lloyd(cluster, centers, config)?;
                Ok(RefineResult {
                    distance_computations: n * k * r.assign_passes as u64,
                    // Workers don't ship kernel counters over the wire;
                    // the norm-prune observable is a single-node metric.
                    pruned_by_norm_bound: 0,
                    centers: r.centers,
                    labels: r.labels,
                    cost: r.cost,
                    iterations: r.iterations,
                    converged: r.converged,
                    history: r.history,
                })
            }
            DistRefineMethod::None => {
                let (labels, cost) = dist_label_and_cost(cluster, centers)?;
                Ok(RefineResult {
                    centers: centers.clone(),
                    labels,
                    cost,
                    iterations: 0,
                    converged: true,
                    history: Vec::new(),
                    distance_computations: n * k,
                    pruned_by_norm_bound: 0,
                })
            }
        }
    }
}

impl Refiner for DistRefine {
    fn name(&self) -> &'static str {
        match self.0 {
            DistRefineMethod::Lloyd(_) => "lloyd",
            DistRefineMethod::None => "none",
        }
    }

    fn refine(
        &self,
        _points: &PointMatrix,
        _weights: Option<&[f64]>,
        _centers: &PointMatrix,
        _seed: u64,
        _exec: &Executor,
    ) -> Result<RefineResult, KMeansError> {
        Err(reject_local(self.name()))
    }

    fn refine_chunked(
        &self,
        _source: &dyn ChunkedSource,
        _centers: &PointMatrix,
        _seed: u64,
        _exec: &Executor,
    ) -> Result<RefineResult, KMeansError> {
        Err(reject_local(self.name()))
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Maps a builder seeding stage to its distributed realization.
fn resolve_init(stage: &dyn Initializer) -> Result<DistInit, KMeansError> {
    let any = stage
        .as_any()
        .ok_or_else(|| reject_distributed(stage.name()))?;
    if let Some(d) = any.downcast_ref::<DistInit>() {
        return Ok(*d);
    }
    if let Some(p) = any.downcast_ref::<pipeline::KMeansParallel>() {
        return Ok(DistInit::kmeans_parallel(p.0));
    }
    if any.downcast_ref::<pipeline::Random>().is_some() {
        return Ok(DistInit::random());
    }
    if let Some(m) = any.downcast_ref::<InitMethod>() {
        return match m {
            InitMethod::Random => Ok(DistInit::random()),
            InitMethod::KMeansParallel(config) => Ok(DistInit::kmeans_parallel(*config)),
            // k-means++ draws each center from a global sequential D²
            // distribution — k dependent rounds with coordinator-resident
            // state; no distributed formulation (the paper's point).
            InitMethod::KMeansPlusPlus => Err(reject_distributed(stage.name())),
        };
    }
    Err(reject_distributed(stage.name()))
}

/// Maps a builder refinement stage to its distributed realization.
fn resolve_refine(stage: &dyn Refiner) -> Result<DistRefine, KMeansError> {
    let any = stage
        .as_any()
        .ok_or_else(|| reject_distributed(stage.name()))?;
    if let Some(d) = any.downcast_ref::<DistRefine>() {
        return Ok(*d);
    }
    if let Some(l) = any.downcast_ref::<pipeline::Lloyd>() {
        return Ok(DistRefine::lloyd(l.0));
    }
    if any.downcast_ref::<pipeline::NoRefine>().is_some() {
        return Ok(DistRefine::none());
    }
    Err(reject_distributed(stage.name()))
}

/// Extension trait putting `fit_distributed` on the standard
/// [`KMeans`] builder.
///
/// ```no_run
/// use kmeans_cluster::{Cluster, FitDistributed};
/// use kmeans_core::model::KMeans;
///
/// # fn demo(mut cluster: Cluster) -> Result<(), kmeans_core::KMeansError> {
/// // Same builder, same seed, same results as fit()/fit_chunked() —
/// // just executed by the cluster's workers.
/// let model = KMeans::params(16).seed(7).fit_distributed(&mut cluster)?;
/// assert_eq!(model.k(), 16);
/// # Ok(())
/// # }
/// ```
pub trait FitDistributed {
    /// Runs initialization + refinement on a worker cluster. Results are
    /// **bit-identical** to [`KMeans::fit`] / `fit_chunked` on the
    /// concatenated worker data for the same seed and shard size, for any
    /// worker count — stages without a distributed realization (and
    /// weighted fits) reject with a typed error.
    fn fit_distributed(&self, cluster: &mut Cluster) -> Result<KMeansModel, KMeansError>;
}

impl FitDistributed for KMeans {
    fn fit_distributed(&self, cluster: &mut Cluster) -> Result<KMeansModel, KMeansError> {
        if self.has_weights() {
            return Err(KMeansError::InvalidConfig(
                "distributed fits do not support weighted input".into(),
            ));
        }
        let exec = self.executor();
        let dist_init = resolve_init(self.initializer().as_ref())?;
        let refiner = self.resolve_refiner()?;
        let dist_refine = resolve_refine(refiner.as_ref())?;
        cluster
            .plan(exec.shard_spec().shard_size())
            .map_err(KMeansError::from)?;
        let init = dist_init.run(cluster, self.k(), self.configured_seed())?;
        let result = dist_refine.run(cluster, &init.centers)?;
        Ok(KMeansModel::from_parts(ModelParts {
            centers: result.centers,
            labels: result.labels,
            cost: result.cost,
            init_stats: init.stats,
            iterations: result.iterations,
            converged: result.converged,
            history: result.history,
            distance_computations: result.distance_computations,
            pruned_by_norm_bound: result.pruned_by_norm_bound,
            init_name: dist_init.name(),
            refiner_name: dist_refine.name(),
            executor: exec,
        }))
    }
}
