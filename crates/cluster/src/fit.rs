//! Pipeline integration: the [`FitDistributed`] extension that gives the
//! standard [`KMeans`] builder a `fit_distributed` entry point next to
//! `fit` and `fit_chunked`, plus the [`DistInit`] / [`DistRefine`]
//! convenience stages.
//!
//! With the backend-generic driver layer, a distributed fit is the same
//! pipeline as a local one: the builder's configured stages run their
//! `init_backend` / `refine_backend` entry points on a
//! [`ClusterBackend`], and stages without a distributed formulation
//! (AFK-MC², Hamerly, k-means++, the streaming seeders) reject with the
//! shared typed error — the same fail-loudly contract the chunked path
//! established. No stage resolution or downcasting is involved anymore:
//! `random`/`kmeans-par` seeds and `lloyd`/`minibatch`/`none` refiners
//! work because their round drivers are backend-generic.

use crate::backend::ClusterBackend;
use crate::checkpoint::{CheckpointingBackend, RoundCheckpoint};
use crate::coordinator::Cluster;
use kmeans_core::driver::{BackendKind, RoundBackend};
use kmeans_core::init::{InitResult, KMeansParallelConfig};
use kmeans_core::lloyd::LloydConfig;
use kmeans_core::minibatch::MiniBatchConfig;
use kmeans_core::model::{KMeans, KMeansModel};
use kmeans_core::pipeline::{self, Initializer, RefineResult, Refiner};
use kmeans_core::KMeansError;
use kmeans_data::checkpoint::CheckpointMeta;
use kmeans_data::PointMatrix;
use kmeans_par::Executor;
use std::path::Path;

fn reject_local(name: &str) -> KMeansError {
    KMeansError::InvalidConfig(format!(
        "{name} is a distributed stage: it runs on a worker cluster via fit_distributed, \
         not on local data"
    ))
}

#[derive(Clone, Copy, Debug)]
enum DistInitMethod {
    Random,
    KMeansParallel(KMeansParallelConfig),
}

/// A distributed seeding stage. Implements [`Initializer`] so it slots
/// into the standard builder (`KMeans::params(k).init(DistInit::...)`),
/// but it is a thin adapter: it delegates to the corresponding core
/// stage's backend-generic driver, restricted to cluster backends — the
/// in-memory/chunked entry points reject with a typed error. (Passing
/// the core stage itself to the builder works identically; `DistInit`
/// exists for callers that want "distributed-only" to fail loudly.)
#[derive(Clone, Copy, Debug)]
pub struct DistInit(DistInitMethod);

impl DistInit {
    /// Distributed uniform seeding.
    pub fn random() -> Self {
        DistInit(DistInitMethod::Random)
    }

    /// Distributed k-means|| (Algorithm 2) with the given configuration.
    pub fn kmeans_parallel(config: KMeansParallelConfig) -> Self {
        DistInit(DistInitMethod::KMeansParallel(config))
    }

    fn delegate(
        &self,
        backend: &mut dyn RoundBackend,
        k: usize,
        seed: u64,
    ) -> Result<InitResult, KMeansError> {
        match self.0 {
            DistInitMethod::Random => pipeline::Random.init_backend(backend, k, seed),
            DistInitMethod::KMeansParallel(config) => {
                pipeline::KMeansParallel(config).init_backend(backend, k, seed)
            }
        }
    }

    /// Runs the seeding over the cluster, stamping duration and seed
    /// cost with the same conventions as every other backend-generic
    /// initializer (duration excludes the seed-cost pass).
    pub fn run(
        &self,
        cluster: &mut Cluster,
        k: usize,
        seed: u64,
    ) -> Result<InitResult, KMeansError> {
        self.delegate(&mut ClusterBackend::new(cluster), k, seed)
    }
}

impl Initializer for DistInit {
    fn name(&self) -> &'static str {
        match self.0 {
            DistInitMethod::Random => "random",
            DistInitMethod::KMeansParallel(_) => "kmeans-par",
        }
    }

    fn init(
        &self,
        _points: &PointMatrix,
        _weights: Option<&[f64]>,
        _k: usize,
        _seed: u64,
        _exec: &Executor,
    ) -> Result<InitResult, KMeansError> {
        Err(reject_local(self.name()))
    }

    fn init_backend(
        &self,
        backend: &mut dyn RoundBackend,
        k: usize,
        seed: u64,
    ) -> Result<InitResult, KMeansError> {
        if backend.kind() != BackendKind::Distributed {
            return Err(reject_local(self.name()));
        }
        self.delegate(backend, k, seed)
    }

    fn supports_backend(&self, kind: BackendKind) -> bool {
        kind == BackendKind::Distributed
    }
}

#[derive(Clone, Copy, Debug)]
enum DistRefineMethod {
    Lloyd(LloydConfig),
    MiniBatch(MiniBatchConfig),
    None,
}

/// A distributed refinement stage; see [`DistInit`] for the pattern.
#[derive(Clone, Copy, Debug)]
pub struct DistRefine(DistRefineMethod);

impl DistRefine {
    /// Distributed Lloyd refinement.
    pub fn lloyd(config: LloydConfig) -> Self {
        DistRefine(DistRefineMethod::Lloyd(config))
    }

    /// Distributed mini-batch refinement: batches are gathered from the
    /// owning workers, the gradient steps run on the coordinator.
    pub fn minibatch(config: MiniBatchConfig) -> Self {
        DistRefine(DistRefineMethod::MiniBatch(config))
    }

    /// Keep the seed centers; one distributed labeling pass.
    pub fn none() -> Self {
        DistRefine(DistRefineMethod::None)
    }

    fn delegate(
        &self,
        backend: &mut dyn RoundBackend,
        centers: &PointMatrix,
        seed: u64,
    ) -> Result<RefineResult, KMeansError> {
        match self.0 {
            DistRefineMethod::Lloyd(config) => {
                pipeline::Lloyd(config).refine_backend(backend, centers, seed)
            }
            DistRefineMethod::MiniBatch(config) => {
                pipeline::MiniBatch(config).refine_backend(backend, centers, seed)
            }
            DistRefineMethod::None => pipeline::NoRefine.refine_backend(backend, centers, seed),
        }
    }

    /// Runs the refinement over the cluster, with the same result
    /// conventions as the other backend-generic refiners (analytic
    /// `n·k` distance accounting per assignment pass; measured kernel
    /// counters folded from the workers' partials frames).
    pub fn run(
        &self,
        cluster: &mut Cluster,
        centers: &PointMatrix,
        seed: u64,
    ) -> Result<RefineResult, KMeansError> {
        self.delegate(&mut ClusterBackend::new(cluster), centers, seed)
    }
}

impl Refiner for DistRefine {
    fn name(&self) -> &'static str {
        match self.0 {
            DistRefineMethod::Lloyd(_) => "lloyd",
            DistRefineMethod::MiniBatch(_) => "minibatch",
            DistRefineMethod::None => "none",
        }
    }

    fn refine(
        &self,
        _points: &PointMatrix,
        _weights: Option<&[f64]>,
        _centers: &PointMatrix,
        _seed: u64,
        _exec: &Executor,
    ) -> Result<RefineResult, KMeansError> {
        Err(reject_local(self.name()))
    }

    fn refine_backend(
        &self,
        backend: &mut dyn RoundBackend,
        centers: &PointMatrix,
        seed: u64,
    ) -> Result<RefineResult, KMeansError> {
        if backend.kind() != BackendKind::Distributed {
            return Err(reject_local(self.name()));
        }
        self.delegate(backend, centers, seed)
    }

    fn supports_backend(&self, kind: BackendKind) -> bool {
        kind == BackendKind::Distributed
    }
}

/// Extension trait putting `fit_distributed` on the standard
/// [`KMeans`] builder.
///
/// ```no_run
/// use kmeans_cluster::{Cluster, FitDistributed};
/// use kmeans_core::model::KMeans;
///
/// # fn demo(mut cluster: Cluster) -> Result<(), kmeans_core::KMeansError> {
/// // Same builder, same seed, same results as fit()/fit_chunked() —
/// // just executed by the cluster's workers.
/// let model = KMeans::params(16).seed(7).fit_distributed(&mut cluster)?;
/// assert_eq!(model.k(), 16);
/// # Ok(())
/// # }
/// ```
pub trait FitDistributed {
    /// Runs initialization + refinement on a worker cluster. Results are
    /// **bit-identical** to [`KMeans::fit`] / `fit_chunked` on the
    /// concatenated worker data for the same seed and shard size, for any
    /// worker count — stages without a distributed realization (and
    /// weighted fits) reject with a typed error.
    fn fit_distributed(&self, cluster: &mut Cluster) -> Result<KMeansModel, KMeansError>;

    /// [`fit_distributed`](FitDistributed::fit_distributed) with a round
    /// journal: every completed round's result is appended to `ckpt`
    /// (and persisted if the journal is file-backed), and rounds already
    /// in the journal are *replayed* instead of re-run — so a fit
    /// restarted with the journal of an interrupted run resumes at the
    /// first incomplete round and finishes **bit-identically** to an
    /// uninterrupted fit. The journal must belong to this exact job
    /// (seed, k, n, dim, shard size) or the fit rejects with a typed
    /// error.
    fn fit_distributed_resumable(
        &self,
        cluster: &mut Cluster,
        ckpt: &mut RoundCheckpoint,
    ) -> Result<KMeansModel, KMeansError>;

    /// File-backed convenience over
    /// [`fit_distributed_resumable`](FitDistributed::fit_distributed_resumable):
    /// loads (or creates) the `SKMCKPT1` checkpoint at `path`, fits with
    /// journaling, and removes the file once the fit completes — the
    /// checkpoint is a crash artifact, not an output. This is the engine
    /// behind `skm fit --distributed --checkpoint FILE`.
    fn fit_distributed_checkpointed(
        &self,
        cluster: &mut Cluster,
        path: &Path,
    ) -> Result<KMeansModel, KMeansError>;
}

/// The expected journal identity for fitting `kmeans` on `cluster`.
fn checkpoint_meta(kmeans: &KMeans, cluster: &Cluster) -> CheckpointMeta {
    CheckpointMeta {
        seed: kmeans.configured_seed(),
        k: kmeans.k() as u64,
        global_n: cluster.global_n() as u64,
        shard_size: kmeans.executor().shard_spec().shard_size() as u64,
        dim: cluster.dim() as u32,
    }
}

/// The shared fit body: delegates to the core builder's
/// backend-generic engine ([`KMeans::fit_round_backend`]), which
/// performs the capability checks (the plan, with its worker-alignment
/// validation, is deferred to the first wire primitive — so an
/// unsupported stage always rejects with its own typed error before
/// any stage touches the cluster), wraps the backend in the flight
/// recorder's span decorator when a recorder is configured, and runs
/// init + refine over whichever [`RoundBackend`] the entry point built
/// (plain cluster or checkpoint-journaling wrapper).
fn fit_over_backend(
    kmeans: &KMeans,
    backend: &mut dyn RoundBackend,
) -> Result<KMeansModel, KMeansError> {
    kmeans.fit_round_backend(backend)
}

impl FitDistributed for KMeans {
    fn fit_distributed(&self, cluster: &mut Cluster) -> Result<KMeansModel, KMeansError> {
        let shard_size = self.executor().shard_spec().shard_size();
        let mut backend = ClusterBackend::deferred(cluster, shard_size);
        fit_over_backend(self, &mut backend)
    }

    fn fit_distributed_resumable(
        &self,
        cluster: &mut Cluster,
        ckpt: &mut RoundCheckpoint,
    ) -> Result<KMeansModel, KMeansError> {
        let expected = checkpoint_meta(self, cluster);
        if *ckpt.meta() != expected {
            return Err(KMeansError::InvalidConfig(format!(
                "checkpoint journal belongs to a different job (journal: seed {} k {} n {} \
                 shard {} dim {}; this fit: seed {} k {} n {} shard {} dim {})",
                ckpt.meta().seed,
                ckpt.meta().k,
                ckpt.meta().global_n,
                ckpt.meta().shard_size,
                ckpt.meta().dim,
                expected.seed,
                expected.k,
                expected.global_n,
                expected.shard_size,
                expected.dim,
            )));
        }
        ckpt.rewind();
        let shard_size = self.executor().shard_spec().shard_size();
        let inner = ClusterBackend::deferred(cluster, shard_size);
        let mut backend = CheckpointingBackend::new(inner, ckpt);
        fit_over_backend(self, &mut backend)
    }

    fn fit_distributed_checkpointed(
        &self,
        cluster: &mut Cluster,
        path: &Path,
    ) -> Result<KMeansModel, KMeansError> {
        let meta = checkpoint_meta(self, cluster);
        let mut ckpt = RoundCheckpoint::load_or_new(path, meta)?;
        let model = self.fit_distributed_resumable(cluster, &mut ckpt)?;
        // Completed fits don't leave a stale journal behind: a later run
        // with different parameters would otherwise reject on the
        // leftover file.
        let _ = std::fs::remove_file(path);
        Ok(model)
    }
}
