//! The distributed algorithm entry points: thin wrappers binding the
//! backend-generic round drivers of `kmeans_core::driver` to a worker
//! [`Cluster`] via [`ClusterBackend`].
//!
//! Before the driver layer existed, this module carried line-for-line
//! mirrors of the single-node chunked algorithm bodies. Those loops now
//! exist **once**, in `kmeans_core::driver` (`drive_kmeans_parallel`,
//! `drive_lloyd`, `drive_minibatch`, `drive_random_init`), and every
//! execution mode — in-memory, chunked, distributed — runs the same
//! function. The order-sensitive pieces (the coordinator-sequential RNG
//! streams of tags 20/30/40, the shard-ordered potential folds, the
//! accumulation-shard assignment folds) run on the driver/coordinator
//! side for every mode, which is why `tests/distributed_parity.rs` and
//! `tests/driver_parity.rs` can pin the results bit for bit for any
//! worker count.

use crate::backend::ClusterBackend;
use crate::coordinator::Cluster;
use crate::error::ClusterError;
use kmeans_core::driver::{
    drive_kmeans_parallel, drive_label_pass, drive_lloyd, drive_minibatch, drive_random_init,
};
use kmeans_core::init::{InitStats, KMeansParallelConfig};
use kmeans_core::kernel::KernelStats;
use kmeans_core::lloyd::{LloydConfig, LloydResult};
use kmeans_core::minibatch::MiniBatchConfig;
use kmeans_data::PointMatrix;

/// Uniform seeding over the cluster (RNG tag 20). The seed cost is
/// stamped by the caller ([`crate::fit::DistInit::run`]).
pub fn dist_random_init(
    cluster: &mut Cluster,
    k: usize,
    seed: u64,
) -> Result<(PointMatrix, InitStats), ClusterError> {
    drive_random_init(&mut ClusterBackend::new(cluster), k, seed).map_err(ClusterError::from)
}

/// Algorithm 2 over the cluster — [`drive_kmeans_parallel`] on a
/// [`ClusterBackend`], bit-identical to the in-memory and chunked
/// entry points on the same data, k, config, seed, and shard size, for
/// any worker count.
pub fn dist_kmeans_parallel(
    cluster: &mut Cluster,
    k: usize,
    config: &KMeansParallelConfig,
    seed: u64,
) -> Result<(PointMatrix, InitStats), ClusterError> {
    drive_kmeans_parallel(&mut ClusterBackend::new(cluster), k, config, seed)
        .map_err(ClusterError::from)
}

/// Lloyd's iteration over the cluster — [`drive_lloyd`] on a
/// [`ClusterBackend`]: workers ship accumulation-shard partials (kernel
/// counters included), the coordinator folds them in shard order,
/// updates centroids, and repairs empty clusters by fetching the
/// farthest point back from its owner. Bit-identical to the single-node
/// paths, `pruned_by_norm_bound` included.
pub fn dist_lloyd(
    cluster: &mut Cluster,
    initial_centers: &PointMatrix,
    config: &LloydConfig,
) -> Result<LloydResult, ClusterError> {
    drive_lloyd(&mut ClusterBackend::new(cluster), initial_centers, config)
        .map_err(ClusterError::from)
}

/// Mini-batch k-means over the cluster — [`drive_minibatch`] on a
/// [`ClusterBackend`]: each step gathers its uniform batch from the
/// owning workers (`O(batch · d)` on the wire per step) and applies the
/// gradient update on the coordinator. Bit-identical to the single-node
/// mini-batch on the same seed — the distributed realization the driver
/// abstraction bought for free.
pub fn dist_minibatch(
    cluster: &mut Cluster,
    initial_centers: &PointMatrix,
    config: &MiniBatchConfig,
    seed: u64,
) -> Result<(PointMatrix, KernelStats), ClusterError> {
    drive_minibatch(
        &mut ClusterBackend::new(cluster),
        initial_centers,
        config,
        seed,
    )
    .map_err(ClusterError::from)
}

/// One labeling pass over the cluster: labels and potential of `centers`
/// without moving them — [`drive_label_pass`] on a [`ClusterBackend`].
pub fn dist_label_and_cost(
    cluster: &mut Cluster,
    centers: &PointMatrix,
) -> Result<(Vec<u32>, f64), ClusterError> {
    let (labels, sums) =
        drive_label_pass(&mut ClusterBackend::new(cluster), centers).map_err(ClusterError::from)?;
    Ok((labels, sums.cost))
}
