//! The distributed algorithms: Algorithm 2 (k-means||) and Lloyd's
//! iteration over a worker [`Cluster`].
//!
//! Every function here is a line-for-line mirror of its single-node
//! chunked twin (`kmeans_core::init::kmeans_parallel_chunked`,
//! `kmeans_core::chunked::lloyd_chunked`), with the data-touching steps
//! replaced by cluster passes. The order-sensitive pieces — the
//! coordinator-sequential RNG (tag 30/20 streams: first center, top-up,
//! Step 8 recluster), the shard-ordered potential folds, and the
//! accumulation-shard assignment folds — run on the same code paths as
//! the single-node implementations, which is why
//! `tests/distributed_parity.rs` can pin the results bit for bit for any
//! worker count.

use crate::coordinator::Cluster;
use crate::error::ClusterError;
use kmeans_core::init::{
    exact_sample_merge, InitStats, KMeansParallelConfig, Recluster, Rounds, SamplingMode, TopUp,
};
use kmeans_core::lloyd::{IterationStats, LloydConfig, LloydResult};
use kmeans_core::KMeansError;
use kmeans_data::PointMatrix;
use kmeans_util::sampling::uniform_distinct;
use kmeans_util::Rng;

fn validate_cluster(cluster: &Cluster, k: usize) -> Result<(), ClusterError> {
    if cluster.global_n() == 0 {
        return Err(KMeansError::EmptyInput.into());
    }
    if k == 0 || k > cluster.global_n() {
        return Err(KMeansError::InvalidK {
            k,
            n: cluster.global_n(),
        }
        .into());
    }
    Ok(())
}

/// Uniform seeding over the cluster — the distributed twin of
/// `Random::init_chunked` (same RNG stream, tag 20; same stats shape).
/// The seed cost is stamped by the caller ([`crate::fit::DistInit::run`]).
pub fn dist_random_init(
    cluster: &mut Cluster,
    k: usize,
    seed: u64,
) -> Result<(PointMatrix, InitStats), ClusterError> {
    validate_cluster(cluster, k)?;
    let mut rng = Rng::derive(seed, &[20]);
    let indices = uniform_distinct(cluster.global_n(), k, &mut rng);
    let centers = cluster.gather_rows(&indices)?;
    let stats = InitStats {
        rounds: 0,
        passes: 1,
        candidates: k,
        ..InitStats::default()
    };
    Ok((centers, stats))
}

/// Algorithm 2 over the cluster — the distributed twin of
/// `kmeans_parallel_chunked`, bit-identical to it (and to the in-memory
/// `kmeans_parallel`) on the same data, k, config, seed, and shard size,
/// for any worker count.
///
/// Pass structure per round: the coordinator broadcasts only the *new*
/// candidates; each worker folds them into its resident `d²` slice (one
/// local scan) and ships per-shard potential partials plus its Step 4
/// samples — exactly the §3.5 sketch ("each mapper can sample
/// independently", "the reducer can simply add these values").
pub fn dist_kmeans_parallel(
    cluster: &mut Cluster,
    k: usize,
    config: &KMeansParallelConfig,
    seed: u64,
) -> Result<(PointMatrix, InitStats), ClusterError> {
    validate_cluster(cluster, k)?;
    config.validate(k)?;
    let n = cluster.global_n();
    let l = config.oversampling.resolve(k);
    // Sequential RNG for the O(1)-size decisions (first center, top-up,
    // recluster) — the exact tag-30 stream of the single-node paths.
    let mut rng = Rng::derive(seed, &[30]);

    // Step 1: one uniform center, fetched from its owner.
    let first = rng.range_usize(n);
    let mut cand_idx: Vec<usize> = vec![first];
    let mut candidates = cluster.gather_rows(&cand_idx)?;

    // Step 2: ψ = φ_X(C) — every worker builds its tracker slice.
    let psi = cluster.tracker_init(&candidates)?;
    let mut phi = psi;
    let max_rounds = match config.rounds {
        Rounds::Fixed(r) => r,
        Rounds::LogPsi { cap } => {
            if psi <= 1.0 {
                1
            } else {
                (psi.ln().ceil() as usize).clamp(1, cap)
            }
        }
    };

    // Steps 3–6: workers sample against resident d²; one broadcast of the
    // new candidates per round.
    let mut rounds_executed = 0usize;
    for round in 0..max_rounds {
        if phi <= 0.0 {
            break; // every point coincides with a candidate
        }
        rounds_executed += 1;
        let (new_indices, rows) = match config.sampling {
            SamplingMode::Bernoulli => cluster.sample_bernoulli_round(round, seed, l, phi)?,
            SamplingMode::ExactL => {
                let m = (l.round() as usize).max(1);
                let keys = cluster.sample_exact_round(round, seed, m)?;
                let indices = exact_sample_merge(keys, m);
                let rows = cluster.gather_rows(&indices)?;
                (indices, rows)
            }
        };
        if new_indices.is_empty() {
            continue; // a dry Bernoulli round: possible, simply proceed
        }
        let from = candidates.len();
        candidates
            .extend_from(&rows)
            .expect("candidate dim matches");
        cand_idx.extend_from_slice(&new_indices);
        phi = cluster.tracker_update(from, &rows)?;
    }

    // Top-up to k candidates — same policies, same RNG stream. The
    // D²-weighted draw needs the full resident d² array; this is the one
    // O(n)-transfer path, taken only when r·ℓ under-sampled.
    if candidates.len() < k {
        let needed = k - candidates.len();
        let mut extra = match config.topup {
            TopUp::D2Continue => {
                let d2 = cluster.gather_d2()?;
                kmeans_util::sampling::weighted_distinct(&d2, needed, &mut rng)
            }
            TopUp::Uniform => Vec::new(),
        };
        if extra.len() < needed {
            let mut taken: Vec<usize> = cand_idx.iter().chain(extra.iter()).copied().collect();
            taken.sort_unstable();
            let mut free: Vec<usize> = (0..n).filter(|i| taken.binary_search(i).is_err()).collect();
            let want = (needed - extra.len()).min(free.len());
            for j in 0..want {
                let pick = j + rng.range_usize(free.len() - j);
                free.swap(j, pick);
                extra.push(free[j]);
            }
        }
        let from = candidates.len();
        let rows = cluster.gather_rows(&extra)?;
        candidates
            .extend_from(&rows)
            .expect("candidate dim matches");
        cand_idx.extend_from_slice(&extra);
        // The update keeps worker trackers current for Step 7's weights;
        // the potential itself is no longer needed.
        cluster.tracker_update(from, &rows)?;
    }

    // Step 7: candidate weights — an O(|C|) exchange, no data pass.
    let weights = cluster.candidate_weights(candidates.len())?;
    let stats = InitStats {
        rounds: rounds_executed,
        passes: 1 + rounds_executed,
        candidates: candidates.len(),
        seed_cost: 0.0, // stamped by DistInit::run
        duration: std::time::Duration::ZERO,
    };

    // Step 8: recluster the (resident, small) weighted candidate set —
    // literally the single-node code.
    let centers = if candidates.len() == k {
        candidates
    } else {
        match config.recluster {
            Recluster::WeightedKMeansPlusPlus => {
                kmeans_core::init::weighted_kmeanspp(&candidates, &weights, k, &mut rng)
                    .map_err(ClusterError::KMeans)?
            }
            Recluster::Refined { lloyd_iterations } => {
                let seeded =
                    kmeans_core::init::weighted_kmeanspp(&candidates, &weights, k, &mut rng)
                        .map_err(ClusterError::KMeans)?;
                kmeans_core::lloyd::weighted_lloyd(&candidates, &weights, seeded, lloyd_iterations)
            }
            Recluster::Uniform => {
                let picks = uniform_distinct(candidates.len(), k, &mut rng);
                candidates.select(&picks)
            }
        }
    };
    Ok((centers, stats))
}

fn validate_refine(cluster: &Cluster, centers: &PointMatrix) -> Result<(), ClusterError> {
    if cluster.global_n() == 0 {
        return Err(KMeansError::EmptyInput.into());
    }
    if centers.is_empty() || centers.len() > cluster.global_n() {
        return Err(KMeansError::InvalidK {
            k: centers.len(),
            n: cluster.global_n(),
        }
        .into());
    }
    if cluster.dim() != centers.dim() {
        return Err(KMeansError::DimensionMismatch {
            expected: cluster.dim(),
            got: centers.dim(),
        }
        .into());
    }
    Ok(())
}

/// Lloyd's iteration over the cluster — the distributed twin of
/// `lloyd_chunked`, bit-identical to it (and to the in-memory `lloyd`) on
/// the same data, centers, config, and shard size, for any worker count:
/// workers ship the carried accumulation-shard partials, the coordinator
/// folds them in shard order, updates centroids, and repairs empty
/// clusters by fetching the farthest point back from its owner.
pub fn dist_lloyd(
    cluster: &mut Cluster,
    initial_centers: &PointMatrix,
    config: &LloydConfig,
) -> Result<LloydResult, ClusterError> {
    config.validate()?;
    validate_refine(cluster, initial_centers)?;

    let d = cluster.dim();
    let mut centers = initial_centers.clone();
    let mut prev_cost = f64::INFINITY;
    let mut history = Vec::new();
    let mut converged = false;
    let mut stable_exit = false;

    for _ in 0..config.max_iterations {
        let (reassigned, sums) = cluster.assign(&centers)?;

        if reassigned == 0 {
            converged = true;
            stable_exit = true;
            history.push(IterationStats {
                cost: sums.cost,
                reassigned: 0,
                reseeded: 0,
            });
            prev_cost = sums.cost;
            break;
        }

        let mut reseeded = 0usize;
        let mut farthest: Vec<(usize, f64)> = sums.farthest.clone();
        farthest.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        let mut next_far = farthest.into_iter();
        for c in 0..centers.len() {
            if let Some(centroid) = sums.centroid(c, d) {
                centers.row_mut(c).copy_from_slice(&centroid);
            } else if let Some((idx, _)) = next_far.next() {
                // Empty cluster: land on the farthest available point,
                // fetched back from its owning worker.
                let row = cluster.gather_rows(&[idx])?;
                centers.row_mut(c).copy_from_slice(row.row(0));
                reseeded += 1;
            }
            // More empty clusters than shard maxima: leave the center in
            // place, matching the single-node repair.
        }

        history.push(IterationStats {
            cost: sums.cost,
            reassigned,
            reseeded,
        });

        if config.tol > 0.0
            && prev_cost.is_finite()
            && reseeded == 0
            && prev_cost - sums.cost <= config.tol * prev_cost
        {
            converged = true;
            prev_cost = sums.cost;
            break;
        }
        prev_cost = sums.cost;
    }

    // On a stable exit the workers' stored labels already describe the
    // final centers; otherwise one closing relabel pass (counted).
    let (cost, closing_pass) = if stable_exit {
        (prev_cost, 0)
    } else {
        let (_, sums) = cluster.assign(&centers)?;
        (sums.cost, 1)
    };
    let labels = cluster.fetch_labels()?;

    Ok(LloydResult {
        labels,
        cost,
        iterations: history.len(),
        converged,
        assign_passes: history.len() + closing_pass,
        // Workers prune locally but don't ship kernel counters.
        pruned_by_norm_bound: 0,
        history,
        centers,
    })
}

/// One labeling pass over the cluster: labels and potential of `centers`
/// without moving them — the distributed twin of `NoRefine`'s chunked
/// path.
pub fn dist_label_and_cost(
    cluster: &mut Cluster,
    centers: &PointMatrix,
) -> Result<(Vec<u32>, f64), ClusterError> {
    validate_refine(cluster, centers)?;
    let (_, sums) = cluster.assign(centers)?;
    let labels = cluster.fetch_labels()?;
    Ok((labels, sums.cost))
}
