//! The worker: owns one contiguous shard of the data (as a
//! [`ChunkedSource`], typically an `SKMBLK01` block file with a residency
//! budget) and executes the per-partition half of every pass — the
//! "mapper" of the paper's §3.5 sketch.
//!
//! All order-sensitive state lives at the coordinator; the worker only
//! ever computes **per-shard** quantities of the *global* shard grid
//! (per-shard `Σ d²` partials, per-accumulation-shard assignment
//! partials, per-shard sampling with globally derived RNG streams), which
//! is what makes the distributed run bit-identical to a single-node one.
//! The worker-local thread count never affects any value it ships.

use crate::error::ClusterError;
use crate::protocol::{LabelsWanted, Message, WorkerStats};
use crate::transport::{TcpTransport, Transport};
use kmeans_core::chunked::{
    assign_partials_chunked, gather_rows, potential_shard_sums, ChunkedCostTracker,
};
use kmeans_core::init::{exact_sample_keys, sample_bernoulli, sample_bernoulli_prescreen};
use kmeans_core::KMeansError;
use kmeans_data::{ChunkedSource, PointMatrix};
use kmeans_obs::{arg_u64, Recorder, SpanEvent};
use kmeans_par::{Executor, Parallelism};
use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

/// Span category for worker-side frame events.
const WORKER_CAT: &str = "worker";

/// Sink for per-frame [`SpanEvent`]s when live frame logging is armed
/// (see [`Worker::set_frame_log`]).
pub type FrameLog = Box<dyn FnMut(&SpanEvent) + Send>;

/// Per-session state established by [`Message::Plan`].
struct Session {
    global_n: usize,
    start_row: usize,
    shard_size: usize,
    exec: Executor,
    tracker: Option<ChunkedCostTracker>,
    candidates: PointMatrix,
    labels: Option<Vec<u32>>,
}

/// A worker serving one local data shard over any [`Transport`].
pub struct Worker {
    source: Box<dyn ChunkedSource>,
    parallelism: Parallelism,
    recorder: Recorder,
    log: Option<FrameLog>,
}

impl Worker {
    /// Creates a worker over a local data shard. `parallelism` is the
    /// worker's *local* thread count — never part of the result.
    pub fn new(source: impl ChunkedSource + 'static, parallelism: Parallelism) -> Self {
        Worker {
            source: Box::new(source),
            parallelism,
            recorder: Recorder::disabled(),
            log: None,
        }
    }

    /// Boxed-source constructor (for callers that already erased the type).
    pub fn from_boxed(source: Box<dyn ChunkedSource>, parallelism: Parallelism) -> Self {
        Worker {
            source,
            parallelism,
            recorder: Recorder::disabled(),
            log: None,
        }
    }

    /// Arms the worker-side flight recorder: every served frame records
    /// a `frame:<message>` span (cat `worker`) with the rows touched and
    /// the frame bytes moved. Purely observational — replies are
    /// byte-identical with or without a recorder.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Installs a live per-frame sink: after each served frame the
    /// recorder's new events are drained into `log` (so a long-running
    /// `skm worker --log` prints as it serves instead of at session
    /// end). Requires an enabled recorder to see any events.
    pub fn set_frame_log(&mut self, log: impl FnMut(&SpanEvent) + Send + 'static) {
        self.log = Some(Box::new(log));
    }

    /// Rows a frame touches, for the frame log: full local passes report
    /// the shard size, point-addressed requests their index count.
    fn frame_rows(msg: &Message, local_rows: usize) -> u64 {
        match msg {
            Message::GatherRows { indices } => indices.len() as u64,
            Message::InitTracker { .. }
            | Message::UpdateTracker { .. }
            | Message::Assign { .. }
            | Message::Cost { .. }
            | Message::RestoreLabels { .. }
            | Message::SampleBernoulli { .. }
            | Message::SampleBernoulliLocal { .. }
            | Message::SampleExact { .. }
            | Message::GatherD2
            | Message::FetchLabels => local_rows as u64,
            Message::Compound(items) => items
                .iter()
                .map(|m| Self::frame_rows(m, local_rows))
                .sum(),
            _ => 0,
        }
    }

    /// Closes one frame span and feeds any new events to the live log.
    fn emit_frame(&mut self, span: kmeans_obs::SpanStart, name: &str, rows: u64, bytes: u64) {
        if !self.recorder.is_enabled() {
            return;
        }
        let full = format!("frame:{name}");
        self.recorder.span(span, &full, WORKER_CAT, || {
            vec![arg_u64("rows", rows), arg_u64("bytes", bytes)]
        });
        if let Some(log) = self.log.as_mut() {
            for e in self.recorder.drain() {
                log(&e);
            }
        }
    }

    /// Serves one coordinator session: sends `Hello`, then answers
    /// requests until `Shutdown` or disconnect. Clustering errors are
    /// relayed as typed [`Message::Error`] replies (with point indices
    /// translated to global coordinates) and the session continues;
    /// transport errors end the session.
    pub fn serve(&mut self, transport: &mut dyn Transport) -> Result<(), ClusterError> {
        let rows = self.source.len();
        let dim = self.source.dim();
        transport.send(&Message::Hello {
            rows: rows as u64,
            dim: dim as u32,
        })?;

        let mut session: Option<Session> = None;
        let mut bytes_mark = transport.bytes_sent() + transport.bytes_received();
        loop {
            let msg = match transport.recv() {
                Ok(m) => m,
                Err(ClusterError::Disconnected) => return Ok(()), // coordinator done
                Err(e) => return Err(e),
            };
            // Frame accounting: the span starts after the request is in
            // (receive wait is coordinator-side idle time, not worker
            // work); the byte mark advances across recv + send, so each
            // frame's delta covers its request and reply together.
            let span = self.recorder.start();
            let frame_name = msg.name();
            let frame_rows = Self::frame_rows(&msg, rows);
            let reply = match msg {
                Message::Plan {
                    global_n,
                    start_row,
                    shard_size,
                    dim: plan_dim,
                } => {
                    if plan_dim as usize != dim {
                        Message::Error(
                            KMeansError::DimensionMismatch {
                                expected: plan_dim as usize,
                                got: dim,
                            }
                            .into(),
                        )
                    } else {
                        session = Some(Session {
                            global_n: global_n as usize,
                            start_row: start_row as usize,
                            shard_size: (shard_size as usize).max(1),
                            exec: Executor::new(self.parallelism)
                                .with_shard_size((shard_size as usize).max(1)),
                            tracker: None,
                            candidates: PointMatrix::new(dim),
                            labels: None,
                        });
                        Message::PlanOk
                    }
                }
                Message::Shutdown => {
                    transport.send(&Message::ShutdownOk)?;
                    let total = transport.bytes_sent() + transport.bytes_received();
                    self.emit_frame(span, frame_name, frame_rows, total - bytes_mark);
                    return Ok(());
                }
                other => match &mut session {
                    None => Message::Error(
                        KMeansError::InvalidConfig("worker received a request before Plan".into())
                            .into(),
                    ),
                    Some(s) => self.handle(s, other),
                },
            };
            transport.send(&reply)?;
            if self.recorder.is_enabled() {
                let total = transport.bytes_sent() + transport.bytes_received();
                self.emit_frame(span, frame_name, frame_rows, total - bytes_mark);
                bytes_mark = total;
            }
        }
    }

    /// Handles one post-plan request, producing the reply. A `Compound`
    /// request executes its sub-messages in order against the session
    /// state and returns one `Compound` of the per-item replies; the
    /// first failing item stops execution with its `Error` in place, so
    /// the coordinator sees exactly how far the round got.
    fn handle(&self, s: &mut Session, msg: Message) -> Message {
        match msg {
            Message::Compound(items) => {
                let mut replies = Vec::with_capacity(items.len());
                for item in items {
                    let reply = match self.try_handle(s, item) {
                        Ok(r) => r,
                        Err(e) => Message::Error(e.into()),
                    };
                    let failed = matches!(reply, Message::Error(_));
                    replies.push(reply);
                    if failed {
                        break;
                    }
                }
                Message::Compound(replies)
            }
            other => match self.try_handle(s, other) {
                Ok(reply) => reply,
                Err(e) => Message::Error(e.into()),
            },
        }
    }

    fn try_handle(&self, s: &mut Session, msg: Message) -> Result<Message, KMeansError> {
        let source = self.source.as_ref();
        let offset_err = |e: KMeansError| match e {
            // The worker computes with local row indices; the coordinator
            // (and the user) must see global ones.
            KMeansError::NonFiniteData { point, dim } => KMeansError::NonFiniteData {
                point: point + s.start_row,
                dim,
            },
            other => other,
        };
        match msg {
            Message::InitTracker { centers } => {
                s.candidates = centers;
                let tracker =
                    ChunkedCostTracker::new(source, &s.candidates, &s.exec).map_err(offset_err)?;
                let sums = per_shard_sums(tracker.d2(), &s.exec);
                s.tracker = Some(tracker);
                Ok(Message::ShardSums { sums })
            }
            Message::UpdateTracker { from, centers } => {
                let tracker = s
                    .tracker
                    .as_mut()
                    .ok_or_else(|| KMeansError::InvalidConfig("no tracker initialized".into()))?;
                if from as usize != s.candidates.len() {
                    return Err(KMeansError::InvalidConfig(format!(
                        "tracker update from {from} but worker holds {} candidates",
                        s.candidates.len()
                    )));
                }
                s.candidates
                    .extend_from(&centers)
                    .map_err(|e| KMeansError::Data(e.to_string()))?;
                tracker
                    .update(source, &s.candidates, from as usize, &s.exec)
                    .map_err(offset_err)?;
                Ok(Message::ShardSums {
                    sums: per_shard_sums(tracker.d2(), &s.exec),
                })
            }
            Message::SampleBernoulli {
                round,
                seed,
                l,
                phi,
            } => {
                let tracker = s
                    .tracker
                    .as_ref()
                    .ok_or_else(|| KMeansError::InvalidConfig("no tracker initialized".into()))?;
                let first_shard = s.start_row / s.shard_size;
                let local = sample_bernoulli(
                    tracker.d2(),
                    l,
                    phi,
                    seed,
                    round as usize,
                    &s.exec,
                    first_shard,
                );
                let mut buf = source.block_buffer();
                let rows = gather_rows(source, &local, &mut buf)?;
                Ok(Message::Sampled {
                    indices: local.iter().map(|&i| (i + s.start_row) as u64).collect(),
                    rows,
                })
            }
            Message::SampleBernoulliLocal { round, seed, l } => {
                let tracker = s
                    .tracker
                    .as_ref()
                    .ok_or_else(|| KMeansError::InvalidConfig("no tracker initialized".into()))?;
                let first_shard = s.start_row / s.shard_size;
                // Prescreen against the *local* potential: the left fold
                // of this worker's own per-shard d² sums. Floating-point
                // addition of non-negatives is monotone, so this is a
                // guaranteed lower bound on the coordinator's global fold
                // (which folds these same shard sums with a non-negative
                // running prefix) — every true pick survives the
                // prescreen, and the coordinator's exact re-filter drops
                // the rest.
                let phi_lo = per_shard_sums(tracker.d2(), &s.exec)
                    .into_iter()
                    .fold(0.0f64, |a, b| a + b);
                let picked = sample_bernoulli_prescreen(
                    tracker.d2(),
                    l,
                    phi_lo,
                    seed,
                    round as usize,
                    &s.exec,
                    first_shard,
                );
                let local: Vec<usize> = picked.iter().map(|&(i, _)| i).collect();
                let mut buf = source.block_buffer();
                let rows = gather_rows(source, &local, &mut buf)?;
                Ok(Message::Prescreened {
                    entries: picked
                        .iter()
                        .map(|&(i, u)| ((i + s.start_row) as u64, u, tracker.d2()[i]))
                        .collect(),
                    rows,
                })
            }
            Message::SampleExact { round, seed, m } => {
                let tracker = s
                    .tracker
                    .as_ref()
                    .ok_or_else(|| KMeansError::InvalidConfig("no tracker initialized".into()))?;
                let first_shard = s.start_row / s.shard_size;
                let entries = exact_sample_keys(
                    tracker.d2(),
                    m as usize,
                    seed,
                    round as usize,
                    &s.exec,
                    first_shard,
                );
                Ok(Message::ExactKeys {
                    entries: entries
                        .into_iter()
                        .map(|(key, i)| (key, (i + s.start_row) as u64))
                        .collect(),
                })
            }
            Message::CandidateWeights { m } => {
                let tracker = s
                    .tracker
                    .as_ref()
                    .ok_or_else(|| KMeansError::InvalidConfig("no tracker initialized".into()))?;
                if m as usize != s.candidates.len() {
                    return Err(KMeansError::InvalidConfig(format!(
                        "weights for {m} candidates requested, worker holds {}",
                        s.candidates.len()
                    )));
                }
                Ok(Message::Weights {
                    weights: tracker.weights(m as usize),
                })
            }
            Message::GatherRows { indices } => {
                let local: Vec<usize> = indices
                    .iter()
                    .map(|&g| {
                        let g = g as usize;
                        if g < s.start_row || g >= s.start_row + source.len() {
                            return Err(KMeansError::InvalidConfig(format!(
                                "row {g} outside this worker's range [{}, {})",
                                s.start_row,
                                s.start_row + source.len()
                            )));
                        }
                        Ok(g - s.start_row)
                    })
                    .collect::<Result<_, _>>()?;
                let mut buf = source.block_buffer();
                Ok(Message::Rows {
                    rows: gather_rows(source, &local, &mut buf)?,
                })
            }
            Message::GatherD2 => {
                let tracker = s
                    .tracker
                    .as_ref()
                    .ok_or_else(|| KMeansError::InvalidConfig("no tracker initialized".into()))?;
                Ok(Message::D2 {
                    values: tracker.d2().to_vec(),
                })
            }
            Message::Assign {
                centers,
                labels: want,
            } => {
                // Kernel counters ride along as the trailing stats field,
                // so the coordinator's fold reports the same measured
                // work a single-node pass would.
                let (labels, shards, stats) =
                    assign_partials_chunked(source, &centers, &s.exec, s.start_row, s.global_n)
                        .map_err(offset_err)?;
                let reassigned = match &s.labels {
                    None => source.len() as u64,
                    Some(prev) => prev.iter().zip(&labels).filter(|(a, b)| a != b).count() as u64,
                };
                let ship = match want {
                    LabelsWanted::Skip => false,
                    LabelsWanted::IfStable => reassigned == 0,
                    LabelsWanted::Always => true,
                };
                let shipped = ship.then(|| labels.clone());
                s.labels = Some(labels);
                Ok(Message::Partials {
                    reassigned,
                    shards,
                    stats,
                    labels: shipped,
                })
            }
            Message::Cost { centers } => Ok(Message::ShardSums {
                sums: potential_shard_sums(source, &centers, &s.exec).map_err(offset_err)?,
            }),
            Message::RestoreLabels { centers } => {
                // Recovery catch-up: rebuild the labels the lost worker's
                // last assignment pass stored, discarding partials — the
                // coordinator already folded them before the failure.
                let (labels, _shards, _stats) =
                    assign_partials_chunked(source, &centers, &s.exec, s.start_row, s.global_n)
                        .map_err(offset_err)?;
                s.labels = Some(labels);
                Ok(Message::RestoreOk)
            }
            Message::FetchLabels => {
                let labels = s.labels.clone().ok_or_else(|| {
                    KMeansError::InvalidConfig("no assignment pass has run".into())
                })?;
                Ok(Message::Labels { labels })
            }
            Message::FetchStats => {
                let r = source.residency();
                Ok(Message::Stats(WorkerStats {
                    peak_bytes: r.peak_bytes,
                    loads: r.loads,
                    hits: r.hits,
                    budget_bytes: r.budget_bytes.unwrap_or(u64::MAX),
                }))
            }
            other => Err(KMeansError::InvalidConfig(format!(
                "worker cannot handle message {other:?}"
            ))),
        }
    }
}

/// Per-executor-shard sequential sums of a resident value slice, in shard
/// order — the worker-local half of the coordinator's global potential
/// fold (bit-identical to the in-memory tracker's `map_reduce` resum).
fn per_shard_sums(values: &[f64], exec: &Executor) -> Vec<f64> {
    exec.map_shards(values.len(), |_, range| {
        range.map(|i| values[i]).sum::<f64>()
    })
}

/// A bound TCP listener serving worker sessions — split from the serve
/// loop so callers (tests, the CLI) can learn the bound address before
/// blocking.
pub struct TcpWorkerServer {
    listener: TcpListener,
}

impl TcpWorkerServer {
    /// Binds the listener (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        Ok(TcpWorkerServer {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts coordinator connections and serves each as one session.
    /// With `once`, returns after the first session ends; otherwise loops
    /// until accept fails. `io_timeout` bounds every socket read/write.
    pub fn serve(
        self,
        mut worker: Worker,
        io_timeout: Option<Duration>,
        once: bool,
    ) -> Result<(), ClusterError> {
        loop {
            let (stream, _) = self.listener.accept()?;
            let mut transport = TcpTransport::new(stream, io_timeout)?;
            // A failed session (coordinator bug, timeout) should not kill
            // a long-running worker; log-and-continue is the daemon mode.
            let result = worker.serve(&mut transport);
            if once {
                return result;
            }
            if let Err(e) = result {
                eprintln!("skm worker: session ended with error: {e}");
            }
        }
    }
}

/// Spawns a TCP worker on an ephemeral localhost port and serves **one**
/// session on a background thread — the smoke-test harness for real
/// sockets. Returns the bound address and the join handle.
pub fn spawn_tcp_worker(
    source: impl ChunkedSource + 'static,
    parallelism: Parallelism,
    io_timeout: Option<Duration>,
) -> std::io::Result<(
    SocketAddr,
    std::thread::JoinHandle<Result<(), ClusterError>>,
)> {
    let server = TcpWorkerServer::bind("127.0.0.1:0")?;
    let addr = server.local_addr()?;
    let handle = std::thread::spawn(move || {
        server.serve(Worker::new(source, parallelism), io_timeout, true)
    });
    Ok((addr, handle))
}

/// Spawns an in-process loopback worker on a background thread, serving
/// one session over a channel-backed transport — the deterministic
/// multi-worker harness behind the parity tests and CI. Returns the
/// coordinator-side transport and the join handle.
pub fn spawn_loopback_worker(
    source: impl ChunkedSource + 'static,
    parallelism: Parallelism,
) -> (
    crate::transport::LoopbackTransport,
    std::thread::JoinHandle<Result<(), ClusterError>>,
) {
    let (coordinator_side, mut worker_side) = crate::transport::loopback_pair();
    let mut worker = Worker::new(source, parallelism);
    let handle = std::thread::spawn(move || worker.serve(&mut worker_side));
    (coordinator_side, handle)
}
