//! [`ClusterBackend`]: the worker cluster as a
//! [`RoundBackend`], so the backend-generic drivers in
//! `kmeans_core::driver` (one implementation of k-means||, Lloyd,
//! mini-batch, random seeding) execute on a distributed cluster exactly
//! as they do in memory or out of core.
//!
//! Every primitive maps onto one coordinator conversation
//! ([`Cluster`]'s broadcast/collect methods): the backend holds no
//! algorithm state of its own — tracker slices and labels live on the
//! workers, every order-sensitive fold happens in [`Cluster`] over
//! worker-ordered (= global-shard-ordered) partials, and every scalar
//! RNG decision stays in the driver. That split is the whole bit-parity
//! argument (see `docs/ARCHITECTURE.md`, "Driver layer").
//!
//! Errors: typed clustering failures relayed from workers pass through
//! unchanged (a distributed fit reports the *same*
//! `NonFiniteData { point, dim }` a single-node fit would); transport
//! failures surface as `KMeansError::Data` via the standard
//! [`ClusterError`] conversion — a value, never a hang.

use crate::coordinator::Cluster;
use crate::error::ClusterError;
use crate::protocol::LabelsWanted;
use kmeans_core::assign::ClusterSums;
use kmeans_core::driver::{BackendKind, LabelFetch, RoundBackend, SampleOut, SampleSpec};
use kmeans_core::KMeansError;
use kmeans_data::PointMatrix;
use std::collections::HashMap;

/// A [`RoundBackend`] over a connected worker [`Cluster`].
///
/// Construct with [`ClusterBackend::new`] *after* [`Cluster::plan`] —
/// the plan establishes the global shard layout the per-shard RNG
/// streams and fold grids derive from — or with
/// [`ClusterBackend::deferred`] to plan lazily on the first wire
/// primitive. Deferral is what lets a stage without a distributed
/// realization reject with its typed error *before* any planning (so an
/// unsupported stage is reported as unsupported even on a misaligned
/// cluster, matching the pre-driver behavior).
pub struct ClusterBackend<'a> {
    cluster: &'a mut Cluster,
    pending_plan: Option<usize>,
    /// Preloaded row cache ([`RoundBackend::preload_rows`]): global row
    /// index → position in the cached matrix. Mini-batch's per-step
    /// gathers are served from here, collapsing its ~`steps` wire
    /// cycles into one.
    preload: Option<(HashMap<usize, usize>, PointMatrix)>,
}

impl<'a> ClusterBackend<'a> {
    /// Wraps an already-planned cluster.
    pub fn new(cluster: &'a mut Cluster) -> Self {
        ClusterBackend {
            cluster,
            pending_plan: None,
            preload: None,
        }
    }

    /// Wraps a cluster, planning it with `shard_size` on the first wire
    /// primitive (validation and shape queries stay plan-free).
    pub fn deferred(cluster: &'a mut Cluster, shard_size: usize) -> Self {
        ClusterBackend {
            cluster,
            pending_plan: Some(shard_size),
            preload: None,
        }
    }

    fn ensure_planned(&mut self) -> Result<(), KMeansError> {
        if let Some(shard_size) = self.pending_plan.take() {
            self.cluster.plan(shard_size).map_err(flatten)?;
        }
        Ok(())
    }

    /// Serves a gather from the preload cache when every requested row
    /// is cached; `None` falls through to the wire.
    fn cached_rows(&self, indices: &[usize]) -> Option<Result<PointMatrix, KMeansError>> {
        let (map, rows) = self.preload.as_ref()?;
        let mut out = PointMatrix::new(rows.dim());
        for g in indices {
            let &pos = map.get(g)?;
            if let Err(e) = out.push(rows.row(pos)) {
                return Some(Err(KMeansError::Data(format!(
                    "preloaded row {g} has the wrong dim: {e}"
                ))));
            }
        }
        Some(Ok(out))
    }
}

fn flatten(e: ClusterError) -> KMeansError {
    KMeansError::from(e)
}

impl RoundBackend for ClusterBackend<'_> {
    fn kind(&self) -> BackendKind {
        BackendKind::Distributed
    }

    fn len(&self) -> usize {
        self.cluster.global_n()
    }

    fn dim(&self) -> usize {
        self.cluster.dim()
    }

    fn validate(&self, k: usize) -> Result<(), KMeansError> {
        let n = self.cluster.global_n();
        if n == 0 {
            return Err(KMeansError::EmptyInput);
        }
        if k == 0 || k > n {
            return Err(KMeansError::InvalidK { k, n });
        }
        // Finiteness is checked by the workers on their first full pass,
        // which reports the global point index — same deferred contract
        // as the chunked backend.
        Ok(())
    }

    fn validate_refine(&self, centers: &PointMatrix) -> Result<(), KMeansError> {
        let n = self.cluster.global_n();
        if n == 0 {
            return Err(KMeansError::EmptyInput);
        }
        if centers.is_empty() || centers.len() > n {
            return Err(KMeansError::InvalidK {
                k: centers.len(),
                n,
            });
        }
        if self.cluster.dim() != centers.dim() {
            return Err(KMeansError::DimensionMismatch {
                expected: self.cluster.dim(),
                got: centers.dim(),
            });
        }
        Ok(())
    }

    fn wire_bytes(&self) -> Option<u64> {
        // Monotonic across worker re-dials: retired transports fold
        // their totals into the per-worker counters on replacement.
        Some(self.cluster.bytes_sent() + self.cluster.bytes_received())
    }

    fn gather_rows(&mut self, indices: &[usize]) -> Result<PointMatrix, KMeansError> {
        if let Some(cached) = self.cached_rows(indices) {
            return cached;
        }
        self.ensure_planned()?;
        self.cluster.gather_rows(indices).map_err(flatten)
    }

    fn gather_rows_into(
        &mut self,
        indices: &[usize],
        out: &mut PointMatrix,
    ) -> Result<(), KMeansError> {
        *out = self.gather_rows(indices)?;
        Ok(())
    }

    fn preload_rows(&mut self, indices: &[usize]) -> Result<(), KMeansError> {
        self.ensure_planned()?;
        let mut unique: Vec<usize> = indices.to_vec();
        unique.sort_unstable();
        unique.dedup();
        let rows = self.cluster.gather_rows(&unique).map_err(flatten)?;
        let map: HashMap<usize, usize> = unique.into_iter().zip(0..).collect();
        self.preload = Some((map, rows));
        Ok(())
    }

    fn tracker_init(&mut self, centers: &PointMatrix) -> Result<f64, KMeansError> {
        self.ensure_planned()?;
        self.cluster.tracker_init(centers).map_err(flatten)
    }

    fn tracker_update(&mut self, from: usize, new_rows: &PointMatrix) -> Result<f64, KMeansError> {
        self.ensure_planned()?;
        self.cluster.tracker_update(from, new_rows).map_err(flatten)
    }

    fn sample_bernoulli(
        &mut self,
        round: usize,
        seed: u64,
        l: f64,
        phi: f64,
    ) -> Result<(Vec<usize>, PointMatrix), KMeansError> {
        self.ensure_planned()?;
        self.cluster
            .sample_bernoulli_round(round, seed, l, phi)
            .map_err(flatten)
    }

    fn sample_exact_keys(
        &mut self,
        round: usize,
        seed: u64,
        m: usize,
    ) -> Result<Vec<(f64, usize)>, KMeansError> {
        self.ensure_planned()?;
        self.cluster
            .sample_exact_round(round, seed, m)
            .map_err(flatten)
    }

    fn gather_d2(&mut self) -> Result<Vec<f64>, KMeansError> {
        self.ensure_planned()?;
        self.cluster.gather_d2().map_err(flatten)
    }

    fn candidate_weights(&mut self, m: usize) -> Result<Vec<f64>, KMeansError> {
        self.ensure_planned()?;
        self.cluster.candidate_weights(m).map_err(flatten)
    }

    fn assign(&mut self, centers: &PointMatrix) -> Result<(u64, ClusterSums), KMeansError> {
        self.ensure_planned()?;
        let (reassigned, sums, _) = self
            .cluster
            .assign(centers, LabelsWanted::Skip)
            .map_err(flatten)?;
        Ok((reassigned, sums))
    }

    fn assign_fused(
        &mut self,
        centers: &PointMatrix,
        fetch: LabelFetch,
    ) -> Result<(u64, ClusterSums, Option<Vec<u32>>), KMeansError> {
        self.ensure_planned()?;
        let want = match fetch {
            LabelFetch::Skip => LabelsWanted::Skip,
            LabelFetch::IfStable => LabelsWanted::IfStable,
            LabelFetch::Always => LabelsWanted::Always,
        };
        self.cluster.assign(centers, want).map_err(flatten)
    }

    fn tracker_init_sampled(
        &mut self,
        centers: &PointMatrix,
        round: usize,
        seed: u64,
        spec: Option<SampleSpec>,
    ) -> Result<(f64, Option<SampleOut>), KMeansError> {
        self.ensure_planned()?;
        self.cluster
            .tracker_init_sampled(centers, round, seed, spec)
            .map_err(flatten)
    }

    fn tracker_update_sampled(
        &mut self,
        from: usize,
        new_rows: &PointMatrix,
        round: usize,
        seed: u64,
        spec: Option<SampleSpec>,
    ) -> Result<(f64, Option<SampleOut>), KMeansError> {
        self.ensure_planned()?;
        self.cluster
            .tracker_update_sampled(from, new_rows, round, seed, spec)
            .map_err(flatten)
    }

    fn tracker_update_weighted(
        &mut self,
        from: usize,
        new_rows: &PointMatrix,
        m: usize,
    ) -> Result<Vec<f64>, KMeansError> {
        self.ensure_planned()?;
        self.cluster
            .tracker_update_weighted(from, new_rows, m)
            .map_err(flatten)
    }

    fn fetch_labels(&mut self) -> Result<Vec<u32>, KMeansError> {
        self.ensure_planned()?;
        self.cluster.fetch_labels().map_err(flatten)
    }

    fn potential(&mut self, centers: &PointMatrix) -> Result<f64, KMeansError> {
        self.ensure_planned()?;
        self.cluster.potential(centers).map_err(flatten)
    }
}
