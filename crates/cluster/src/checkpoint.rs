//! Round checkpoints for distributed fits: a journal of `RoundBackend`
//! round *results*, persisted as an `SKMCKPT1` file
//! (`kmeans_data::checkpoint`), so a killed coordinator job restarted
//! with `skm fit --distributed --checkpoint FILE` resumes where it died
//! and finishes bit-identically.
//!
//! **The journal is the cursor.** The backend-generic drivers are
//! deterministic functions of (config, seed, round results): every
//! scalar RNG decision is derived from the seed and advanced by
//! in-process computation, never by wall-clock or worker state. So a
//! checkpoint does not need to snapshot RNG internals or tracker arrays
//! — on resume the driver simply re-runs from the start, and
//! [`CheckpointingBackend`] feeds it the journaled result for each
//! already-completed round instead of going to the wire. The driver's
//! RNG re-advances through the exact same sequence, and at the first
//! un-journaled round the backend *catches the cluster up* (replays the
//! tracker broadcast sequence and the last assignment's centers —
//! mirrored from the replayed arguments) and goes live.
//!
//! Every journal record carries a fingerprint of the round's *arguments*
//! (FNV-1a over the round kind and encoded inputs). On replay the
//! fingerprint of the round the driver is about to run must match the
//! record; a mismatch — wrong seed, changed config, different data
//! layout — is a typed error, never silent corruption. The file header
//! additionally pins seed/k/n/dim/shard-size, checked at load.

use crate::backend::ClusterBackend;
use crate::wire::{fnv1a, Dec, Enc};
use kmeans_core::assign::ClusterSums;
use kmeans_core::driver::{BackendKind, LabelFetch, RoundBackend, SampleOut, SampleSpec};
use kmeans_core::kernel::KernelStats;
use kmeans_core::KMeansError;
use kmeans_data::checkpoint::{load_checkpoint_file, save_checkpoint_file, CheckpointMeta};
use kmeans_data::{CheckpointRecord, PointMatrix};
use std::path::{Path, PathBuf};

// Round-kind discriminants for journal records (the `kind` byte of
// `CheckpointRecord`). Distinct per primitive so a resume with a
// diverging round *sequence* — not just diverging arguments — is caught.
const K_GATHER_ROWS: u8 = 1;
const K_TRACKER_INIT: u8 = 2;
const K_TRACKER_UPDATE: u8 = 3;
const K_SAMPLE_BERNOULLI: u8 = 4;
const K_SAMPLE_EXACT: u8 = 5;
const K_GATHER_D2: u8 = 6;
const K_CANDIDATE_WEIGHTS: u8 = 7;
const K_ASSIGN: u8 = 8;
const K_FETCH_LABELS: u8 = 9;
const K_POTENTIAL: u8 = 10;
// Fused rounds: one compound wire round = one committed journal unit, so
// a job killed mid-compound resumes at the whole round's boundary.
const K_INIT_SAMPLED: u8 = 11;
const K_UPDATE_SAMPLED: u8 = 12;
const K_UPDATE_WEIGHTED: u8 = 13;
const K_ASSIGN_FUSED: u8 = 14;

fn corrupt(what: &str) -> KMeansError {
    KMeansError::Data(format!("checkpoint journal: {what}"))
}

fn mismatch(round: usize, what: &str) -> KMeansError {
    KMeansError::InvalidConfig(format!(
        "checkpoint does not match this job at round {round}: {what} — the checkpoint was \
         written by a fit with a different configuration, seed, or data; delete the file or \
         restart with the original parameters"
    ))
}

/// A resumable round journal bound to one fit configuration
/// ([`CheckpointMeta`]), optionally persisted to an `SKMCKPT1` file
/// after every completed round (atomic rename — a crash leaves the
/// previous complete checkpoint, never a torn one).
pub struct RoundCheckpoint {
    meta: CheckpointMeta,
    records: Vec<CheckpointRecord>,
    cursor: usize,
    path: Option<PathBuf>,
}

impl RoundCheckpoint {
    /// An empty, in-memory journal for `meta` (tests, programmatic use).
    pub fn new(meta: CheckpointMeta) -> Self {
        RoundCheckpoint {
            meta,
            records: Vec::new(),
            cursor: 0,
            path: None,
        }
    }

    /// Loads the journal at `path` if the file exists — verifying its
    /// header matches `meta` exactly — or starts an empty journal that
    /// will be persisted there. The CLI entry point.
    pub fn load_or_new(path: impl AsRef<Path>, meta: CheckpointMeta) -> Result<Self, KMeansError> {
        let path = path.as_ref().to_path_buf();
        if path.exists() {
            let (file_meta, records) = load_checkpoint_file(&path)
                .map_err(|e| corrupt(&format!("failed to load {}: {e}", path.display())))?;
            if file_meta != meta {
                return Err(KMeansError::InvalidConfig(format!(
                    "checkpoint {} was written by a different job \
                     (file: seed {} k {} n {} shard {} dim {}; this fit: seed {} k {} n {} \
                     shard {} dim {}) — delete it or restart with the original parameters",
                    path.display(),
                    file_meta.seed,
                    file_meta.k,
                    file_meta.global_n,
                    file_meta.shard_size,
                    file_meta.dim,
                    meta.seed,
                    meta.k,
                    meta.global_n,
                    meta.shard_size,
                    meta.dim,
                )));
            }
            Ok(RoundCheckpoint {
                meta,
                records,
                cursor: 0,
                path: Some(path),
            })
        } else {
            Ok(RoundCheckpoint {
                meta,
                records: Vec::new(),
                cursor: 0,
                path: Some(path),
            })
        }
    }

    /// The job identity this journal is bound to.
    pub fn meta(&self) -> &CheckpointMeta {
        &self.meta
    }

    /// Journaled rounds.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the journal holds no rounds yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Resets the replay cursor to the start — required before reusing
    /// the same journal for another (resumed) fit.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }

    /// Drops every journal entry past the first `n` — simulating a job
    /// that was killed after round `n` (resume-parity tests).
    pub fn truncate(&mut self, n: usize) {
        self.records.truncate(n);
        self.cursor = self.cursor.min(n);
    }

    fn persist(&self) -> Result<(), KMeansError> {
        if let Some(path) = &self.path {
            save_checkpoint_file(path, &self.meta, &self.records)
                .map_err(|e| corrupt(&format!("failed to write {}: {e}", path.display())))?;
        }
        Ok(())
    }
}

impl Clone for RoundCheckpoint {
    /// Clones the journal contents (cursor rewound, path dropped) — an
    /// in-memory snapshot for resume tests.
    fn clone(&self) -> Self {
        RoundCheckpoint {
            meta: self.meta,
            records: self.records.clone(),
            cursor: 0,
            path: None,
        }
    }
}

// --- per-kind argument fingerprints and result codecs ---------------------

fn fp(kind: u8, args: Enc) -> u64 {
    fnv1a(kind, &args.into_bytes())
}

fn fp_matrix(kind: u8, m: &PointMatrix) -> u64 {
    let mut e = Enc::new();
    e.matrix(m);
    fp(kind, e)
}

fn encode_rows_result(rows: &PointMatrix) -> Vec<u8> {
    let mut e = Enc::new();
    e.matrix(rows);
    e.into_bytes()
}

fn decode_rows_result(payload: &[u8]) -> Result<PointMatrix, KMeansError> {
    let mut d = Dec::new(payload);
    let rows = d.matrix().map_err(|e| corrupt(&e.to_string()))?;
    d.finish().map_err(|e| corrupt(&e.to_string()))?;
    Ok(rows)
}

fn encode_f64_result(v: f64) -> Vec<u8> {
    let mut e = Enc::new();
    e.f64(v);
    e.into_bytes()
}

fn decode_f64_result(payload: &[u8]) -> Result<f64, KMeansError> {
    let mut d = Dec::new(payload);
    let v = d.f64().map_err(|e| corrupt(&e.to_string()))?;
    d.finish().map_err(|e| corrupt(&e.to_string()))?;
    Ok(v)
}

fn encode_f64s_result(vs: &[f64]) -> Vec<u8> {
    let mut e = Enc::new();
    e.f64s(vs);
    e.into_bytes()
}

fn decode_f64s_result(payload: &[u8]) -> Result<Vec<f64>, KMeansError> {
    let mut d = Dec::new(payload);
    let vs = d.f64s().map_err(|e| corrupt(&e.to_string()))?;
    d.finish().map_err(|e| corrupt(&e.to_string()))?;
    Ok(vs)
}

fn encode_sampled_result(indices: &[usize], rows: &PointMatrix) -> Vec<u8> {
    let mut e = Enc::new();
    let idx: Vec<u64> = indices.iter().map(|&i| i as u64).collect();
    e.u64s(&idx);
    e.matrix(rows);
    e.into_bytes()
}

fn decode_sampled_result(payload: &[u8]) -> Result<(Vec<usize>, PointMatrix), KMeansError> {
    let mut d = Dec::new(payload);
    let idx = d.u64s().map_err(|e| corrupt(&e.to_string()))?;
    let rows = d.matrix().map_err(|e| corrupt(&e.to_string()))?;
    d.finish().map_err(|e| corrupt(&e.to_string()))?;
    Ok((idx.into_iter().map(|i| i as usize).collect(), rows))
}

fn encode_keys_result(entries: &[(f64, usize)]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(entries.len() as u64);
    for &(key, idx) in entries {
        e.f64(key);
        e.u64(idx as u64);
    }
    e.into_bytes()
}

fn decode_keys_result(payload: &[u8]) -> Result<Vec<(f64, usize)>, KMeansError> {
    let mut d = Dec::new(payload);
    let n = d.count(16).map_err(|e| corrupt(&e.to_string()))?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let key = d.f64().map_err(|e| corrupt(&e.to_string()))?;
        let idx = d.u64().map_err(|e| corrupt(&e.to_string()))?;
        entries.push((key, idx as usize));
    }
    d.finish().map_err(|e| corrupt(&e.to_string()))?;
    Ok(entries)
}

fn encode_u32s_result(vs: &[u32]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32s(vs);
    e.into_bytes()
}

fn decode_u32s_result(payload: &[u8]) -> Result<Vec<u32>, KMeansError> {
    let mut d = Dec::new(payload);
    let vs = d.u32s().map_err(|e| corrupt(&e.to_string()))?;
    d.finish().map_err(|e| corrupt(&e.to_string()))?;
    Ok(vs)
}

fn enc_assign_into(e: &mut Enc, reassigned: u64, sums: &ClusterSums) {
    e.u64(reassigned);
    e.f64(sums.cost);
    e.f64s(&sums.sums);
    e.u64s(&sums.counts);
    e.u64(sums.farthest.len() as u64);
    for &(idx, d2) in &sums.farthest {
        e.u64(if idx == usize::MAX {
            u64::MAX
        } else {
            idx as u64
        });
        e.f64(d2);
    }
    e.u64(sums.stats.distance_computations);
    e.u64(sums.stats.pruned_by_norm_bound);
}

fn encode_assign_result(reassigned: u64, sums: &ClusterSums) -> Vec<u8> {
    let mut e = Enc::new();
    enc_assign_into(&mut e, reassigned, sums);
    e.into_bytes()
}

fn dec_assign_from(d: &mut Dec) -> Result<(u64, ClusterSums), KMeansError> {
    let step = |r: Result<_, crate::protocol::FrameError>| r.map_err(|e| corrupt(&e.to_string()));
    let reassigned = d.u64().map_err(|e| corrupt(&e.to_string()))?;
    let cost = d.f64().map_err(|e| corrupt(&e.to_string()))?;
    let sums = d.f64s().map_err(|e| corrupt(&e.to_string()))?;
    let counts = d.u64s().map_err(|e| corrupt(&e.to_string()))?;
    let n_far = step(d.count(16))?;
    let mut farthest = Vec::with_capacity(n_far);
    for _ in 0..n_far {
        let idx = d.u64().map_err(|e| corrupt(&e.to_string()))?;
        let d2 = d.f64().map_err(|e| corrupt(&e.to_string()))?;
        farthest.push((
            if idx == u64::MAX {
                usize::MAX
            } else {
                idx as usize
            },
            d2,
        ));
    }
    let distance_computations = d.u64().map_err(|e| corrupt(&e.to_string()))?;
    let pruned_by_norm_bound = d.u64().map_err(|e| corrupt(&e.to_string()))?;
    Ok((
        reassigned,
        ClusterSums {
            sums,
            counts,
            cost,
            farthest,
            stats: KernelStats {
                distance_computations,
                pruned_by_norm_bound,
            },
        },
    ))
}

fn decode_assign_result(payload: &[u8]) -> Result<(u64, ClusterSums), KMeansError> {
    let mut d = Dec::new(payload);
    let result = dec_assign_from(&mut d)?;
    d.finish().map_err(|e| corrupt(&e.to_string()))?;
    Ok(result)
}

fn encode_assign_fused_result(
    reassigned: u64,
    sums: &ClusterSums,
    labels: &Option<Vec<u32>>,
) -> Vec<u8> {
    let mut e = Enc::new();
    enc_assign_into(&mut e, reassigned, sums);
    match labels {
        None => e.u8(0),
        Some(l) => {
            e.u8(1);
            e.u32s(l);
        }
    }
    e.into_bytes()
}

fn decode_assign_fused_result(
    payload: &[u8],
) -> Result<(u64, ClusterSums, Option<Vec<u32>>), KMeansError> {
    let mut d = Dec::new(payload);
    let (reassigned, sums) = dec_assign_from(&mut d)?;
    let labels = match d.u8().map_err(|e| corrupt(&e.to_string()))? {
        0 => None,
        1 => Some(d.u32s().map_err(|e| corrupt(&e.to_string()))?),
        other => return Err(corrupt(&format!("unknown labels flag {other}"))),
    };
    d.finish().map_err(|e| corrupt(&e.to_string()))?;
    Ok((reassigned, sums, labels))
}

/// Fingerprint contribution of a fused round's sampling spec.
fn enc_spec_into(e: &mut Enc, spec: Option<SampleSpec>) {
    match spec {
        None => e.u8(0),
        Some(SampleSpec::Bernoulli { l }) => {
            e.u8(1);
            e.f64(l);
        }
        Some(SampleSpec::ExactKeys { m }) => {
            e.u8(2);
            e.u64(m as u64);
        }
    }
}

fn encode_phi_sample_result(phi: f64, out: &Option<SampleOut>) -> Vec<u8> {
    let mut e = Enc::new();
    e.f64(phi);
    match out {
        None => e.u8(0),
        Some(SampleOut::Picked { indices, rows }) => {
            e.u8(1);
            let idx: Vec<u64> = indices.iter().map(|&i| i as u64).collect();
            e.u64s(&idx);
            e.matrix(rows);
        }
        Some(SampleOut::Keys(entries)) => {
            e.u8(2);
            e.u64(entries.len() as u64);
            for &(key, idx) in entries {
                e.f64(key);
                e.u64(idx as u64);
            }
        }
    }
    e.into_bytes()
}

fn decode_phi_sample_result(payload: &[u8]) -> Result<(f64, Option<SampleOut>), KMeansError> {
    let mut d = Dec::new(payload);
    let step = |r: Result<_, crate::protocol::FrameError>| r.map_err(|e| corrupt(&e.to_string()));
    let phi = d.f64().map_err(|e| corrupt(&e.to_string()))?;
    let out = match d.u8().map_err(|e| corrupt(&e.to_string()))? {
        0 => None,
        1 => {
            let idx = d.u64s().map_err(|e| corrupt(&e.to_string()))?;
            let rows = d.matrix().map_err(|e| corrupt(&e.to_string()))?;
            Some(SampleOut::Picked {
                indices: idx.into_iter().map(|i| i as usize).collect(),
                rows,
            })
        }
        2 => {
            let n = step(d.count(16))?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let key = d.f64().map_err(|e| corrupt(&e.to_string()))?;
                let idx = d.u64().map_err(|e| corrupt(&e.to_string()))?;
                entries.push((key, idx as usize));
            }
            Some(SampleOut::Keys(entries))
        }
        other => return Err(corrupt(&format!("unknown sample flag {other}"))),
    };
    d.finish().map_err(|e| corrupt(&e.to_string()))?;
    Ok((phi, out))
}

/// A [`RoundBackend`] that journals every round result into a
/// [`RoundCheckpoint`] — and, while the journal still holds entries,
/// *replays* them instead of touching the cluster. See the module docs
/// for the resume model.
pub struct CheckpointingBackend<'a, 'c> {
    inner: ClusterBackend<'a>,
    ckpt: &'c mut RoundCheckpoint,
    /// Whether the cluster has been materialized to the journal's
    /// frontier (true once live; trivially true for an empty journal).
    caught_up: bool,
    /// Mirrors of the replayed broadcast arguments, used once at the
    /// replay→live transition to catch the cluster up.
    segments: Vec<PointMatrix>,
    last_assign: Option<PointMatrix>,
}

impl<'a, 'c> CheckpointingBackend<'a, 'c> {
    /// Wraps a (typically deferred-plan) [`ClusterBackend`]. The journal
    /// must be rewound ([`RoundCheckpoint::rewind`]) if it was used by a
    /// previous fit.
    pub fn new(inner: ClusterBackend<'a>, ckpt: &'c mut RoundCheckpoint) -> Self {
        CheckpointingBackend {
            inner,
            ckpt,
            caught_up: false,
            segments: Vec::new(),
            last_assign: None,
        }
    }

    /// If the next journal entry matches (kind, fingerprint), consume it
    /// and return its index for payload decoding; `None` once the
    /// journal is exhausted. A mismatched entry is a typed error.
    fn next_replay(&mut self, kind: u8, fingerprint: u64) -> Result<Option<usize>, KMeansError> {
        if self.ckpt.cursor >= self.ckpt.records.len() {
            return Ok(None);
        }
        let round = self.ckpt.cursor;
        let rec = &self.ckpt.records[round];
        if rec.kind != kind {
            return Err(mismatch(
                round,
                &format!(
                    "journal has round kind {}, this fit runs kind {kind}",
                    rec.kind
                ),
            ));
        }
        if rec.fingerprint != fingerprint {
            return Err(mismatch(round, "round arguments differ"));
        }
        self.ckpt.cursor += 1;
        Ok(Some(round))
    }

    /// Replay → live transition: push the mirrored broadcast state to
    /// the workers so the cluster is in the exact state the journal's
    /// frontier implies. Runs at most once per fit.
    fn catch_up(&mut self) -> Result<(), KMeansError> {
        if self.caught_up {
            return Ok(());
        }
        self.caught_up = true;
        let mut from = 0usize;
        for (i, seg) in std::mem::take(&mut self.segments).into_iter().enumerate() {
            if i == 0 {
                self.inner.tracker_init(&seg)?;
            } else {
                self.inner.tracker_update(from, &seg)?;
            }
            from += seg.len();
        }
        if let Some(centers) = self.last_assign.take() {
            // Re-running the assignment materializes worker labels (and
            // the coordinator's own recovery mirror); the partials are
            // discarded — the journal already holds the folded result.
            self.inner.assign(&centers)?;
        }
        Ok(())
    }

    fn append(&mut self, kind: u8, fingerprint: u64, payload: Vec<u8>) -> Result<(), KMeansError> {
        self.ckpt.records.push(CheckpointRecord {
            kind,
            fingerprint,
            payload,
        });
        self.ckpt.cursor = self.ckpt.records.len();
        self.ckpt.persist()
    }
}

impl RoundBackend for CheckpointingBackend<'_, '_> {
    fn kind(&self) -> BackendKind {
        BackendKind::Distributed
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn validate(&self, k: usize) -> Result<(), KMeansError> {
        self.inner.validate(k)
    }

    fn validate_refine(&self, centers: &PointMatrix) -> Result<(), KMeansError> {
        self.inner.validate_refine(centers)
    }

    fn wire_bytes(&self) -> Option<u64> {
        // Replayed (journal-served) rounds move no wire bytes, so a
        // resumed fit's trace shows zero-byte spans for them — the
        // counter itself stays the inner cluster's monotonic total.
        self.inner.wire_bytes()
    }

    fn gather_rows(&mut self, indices: &[usize]) -> Result<PointMatrix, KMeansError> {
        let mut args = Enc::new();
        let idx: Vec<u64> = indices.iter().map(|&i| i as u64).collect();
        args.u64s(&idx);
        let fingerprint = fp(K_GATHER_ROWS, args);
        if let Some(i) = self.next_replay(K_GATHER_ROWS, fingerprint)? {
            return decode_rows_result(&self.ckpt.records[i].payload);
        }
        self.catch_up()?;
        let rows = self.inner.gather_rows(indices)?;
        self.append(K_GATHER_ROWS, fingerprint, encode_rows_result(&rows))?;
        Ok(rows)
    }

    fn tracker_init(&mut self, centers: &PointMatrix) -> Result<f64, KMeansError> {
        let fingerprint = fp_matrix(K_TRACKER_INIT, centers);
        if let Some(i) = self.next_replay(K_TRACKER_INIT, fingerprint)? {
            let psi = decode_f64_result(&self.ckpt.records[i].payload)?;
            self.segments = vec![centers.clone()];
            return Ok(psi);
        }
        self.catch_up()?;
        let psi = self.inner.tracker_init(centers)?;
        self.append(K_TRACKER_INIT, fingerprint, encode_f64_result(psi))?;
        Ok(psi)
    }

    fn tracker_update(&mut self, from: usize, new_rows: &PointMatrix) -> Result<f64, KMeansError> {
        let mut args = Enc::new();
        args.u64(from as u64);
        args.matrix(new_rows);
        let fingerprint = fp(K_TRACKER_UPDATE, args);
        if let Some(i) = self.next_replay(K_TRACKER_UPDATE, fingerprint)? {
            let phi = decode_f64_result(&self.ckpt.records[i].payload)?;
            self.segments.push(new_rows.clone());
            return Ok(phi);
        }
        self.catch_up()?;
        let phi = self.inner.tracker_update(from, new_rows)?;
        self.append(K_TRACKER_UPDATE, fingerprint, encode_f64_result(phi))?;
        Ok(phi)
    }

    fn sample_bernoulli(
        &mut self,
        round: usize,
        seed: u64,
        l: f64,
        phi: f64,
    ) -> Result<(Vec<usize>, PointMatrix), KMeansError> {
        let mut args = Enc::new();
        args.u64(round as u64);
        args.u64(seed);
        args.f64(l);
        args.f64(phi);
        let fingerprint = fp(K_SAMPLE_BERNOULLI, args);
        if let Some(i) = self.next_replay(K_SAMPLE_BERNOULLI, fingerprint)? {
            return decode_sampled_result(&self.ckpt.records[i].payload);
        }
        self.catch_up()?;
        let (indices, rows) = self.inner.sample_bernoulli(round, seed, l, phi)?;
        self.append(
            K_SAMPLE_BERNOULLI,
            fingerprint,
            encode_sampled_result(&indices, &rows),
        )?;
        Ok((indices, rows))
    }

    fn sample_exact_keys(
        &mut self,
        round: usize,
        seed: u64,
        m: usize,
    ) -> Result<Vec<(f64, usize)>, KMeansError> {
        let mut args = Enc::new();
        args.u64(round as u64);
        args.u64(seed);
        args.u64(m as u64);
        let fingerprint = fp(K_SAMPLE_EXACT, args);
        if let Some(i) = self.next_replay(K_SAMPLE_EXACT, fingerprint)? {
            return decode_keys_result(&self.ckpt.records[i].payload);
        }
        self.catch_up()?;
        let entries = self.inner.sample_exact_keys(round, seed, m)?;
        self.append(K_SAMPLE_EXACT, fingerprint, encode_keys_result(&entries))?;
        Ok(entries)
    }

    fn gather_d2(&mut self) -> Result<Vec<f64>, KMeansError> {
        let fingerprint = fp(K_GATHER_D2, Enc::new());
        if let Some(i) = self.next_replay(K_GATHER_D2, fingerprint)? {
            return decode_f64s_result(&self.ckpt.records[i].payload);
        }
        self.catch_up()?;
        let d2 = self.inner.gather_d2()?;
        self.append(K_GATHER_D2, fingerprint, encode_f64s_result(&d2))?;
        Ok(d2)
    }

    fn candidate_weights(&mut self, m: usize) -> Result<Vec<f64>, KMeansError> {
        let mut args = Enc::new();
        args.u64(m as u64);
        let fingerprint = fp(K_CANDIDATE_WEIGHTS, args);
        if let Some(i) = self.next_replay(K_CANDIDATE_WEIGHTS, fingerprint)? {
            return decode_f64s_result(&self.ckpt.records[i].payload);
        }
        self.catch_up()?;
        let weights = self.inner.candidate_weights(m)?;
        self.append(
            K_CANDIDATE_WEIGHTS,
            fingerprint,
            encode_f64s_result(&weights),
        )?;
        Ok(weights)
    }

    fn assign(&mut self, centers: &PointMatrix) -> Result<(u64, ClusterSums), KMeansError> {
        let fingerprint = fp_matrix(K_ASSIGN, centers);
        if let Some(i) = self.next_replay(K_ASSIGN, fingerprint)? {
            let result = decode_assign_result(&self.ckpt.records[i].payload)?;
            self.last_assign = Some(centers.clone());
            return Ok(result);
        }
        self.catch_up()?;
        let (reassigned, sums) = self.inner.assign(centers)?;
        self.append(
            K_ASSIGN,
            fingerprint,
            encode_assign_result(reassigned, &sums),
        )?;
        Ok((reassigned, sums))
    }

    fn fetch_labels(&mut self) -> Result<Vec<u32>, KMeansError> {
        let fingerprint = fp(K_FETCH_LABELS, Enc::new());
        if let Some(i) = self.next_replay(K_FETCH_LABELS, fingerprint)? {
            return decode_u32s_result(&self.ckpt.records[i].payload);
        }
        self.catch_up()?;
        let labels = self.inner.fetch_labels()?;
        self.append(K_FETCH_LABELS, fingerprint, encode_u32s_result(&labels))?;
        Ok(labels)
    }

    fn potential(&mut self, centers: &PointMatrix) -> Result<f64, KMeansError> {
        let fingerprint = fp_matrix(K_POTENTIAL, centers);
        if let Some(i) = self.next_replay(K_POTENTIAL, fingerprint)? {
            return decode_f64_result(&self.ckpt.records[i].payload);
        }
        self.catch_up()?;
        let cost = self.inner.potential(centers)?;
        self.append(K_POTENTIAL, fingerprint, encode_f64_result(cost))?;
        Ok(cost)
    }

    // Fused rounds: each override journals the *whole* compound round as
    // one record, so a job killed mid-compound resumes at the round
    // boundary — and the replay mirrors (tracker segments, last assign)
    // track exactly what the fused conversation broadcast.

    fn tracker_init_sampled(
        &mut self,
        centers: &PointMatrix,
        round: usize,
        seed: u64,
        spec: Option<SampleSpec>,
    ) -> Result<(f64, Option<SampleOut>), KMeansError> {
        let mut args = Enc::new();
        args.matrix(centers);
        args.u64(round as u64);
        args.u64(seed);
        enc_spec_into(&mut args, spec);
        let fingerprint = fp(K_INIT_SAMPLED, args);
        if let Some(i) = self.next_replay(K_INIT_SAMPLED, fingerprint)? {
            let result = decode_phi_sample_result(&self.ckpt.records[i].payload)?;
            self.segments = vec![centers.clone()];
            return Ok(result);
        }
        self.catch_up()?;
        let (psi, out) = self.inner.tracker_init_sampled(centers, round, seed, spec)?;
        self.append(
            K_INIT_SAMPLED,
            fingerprint,
            encode_phi_sample_result(psi, &out),
        )?;
        Ok((psi, out))
    }

    fn tracker_update_sampled(
        &mut self,
        from: usize,
        new_rows: &PointMatrix,
        round: usize,
        seed: u64,
        spec: Option<SampleSpec>,
    ) -> Result<(f64, Option<SampleOut>), KMeansError> {
        let mut args = Enc::new();
        args.u64(from as u64);
        args.matrix(new_rows);
        args.u64(round as u64);
        args.u64(seed);
        enc_spec_into(&mut args, spec);
        let fingerprint = fp(K_UPDATE_SAMPLED, args);
        if let Some(i) = self.next_replay(K_UPDATE_SAMPLED, fingerprint)? {
            let result = decode_phi_sample_result(&self.ckpt.records[i].payload)?;
            self.segments.push(new_rows.clone());
            return Ok(result);
        }
        self.catch_up()?;
        let (phi, out) = self
            .inner
            .tracker_update_sampled(from, new_rows, round, seed, spec)?;
        self.append(
            K_UPDATE_SAMPLED,
            fingerprint,
            encode_phi_sample_result(phi, &out),
        )?;
        Ok((phi, out))
    }

    fn tracker_update_weighted(
        &mut self,
        from: usize,
        new_rows: &PointMatrix,
        m: usize,
    ) -> Result<Vec<f64>, KMeansError> {
        let mut args = Enc::new();
        args.u64(from as u64);
        args.matrix(new_rows);
        args.u64(m as u64);
        let fingerprint = fp(K_UPDATE_WEIGHTED, args);
        if let Some(i) = self.next_replay(K_UPDATE_WEIGHTED, fingerprint)? {
            let weights = decode_f64s_result(&self.ckpt.records[i].payload)?;
            self.segments.push(new_rows.clone());
            return Ok(weights);
        }
        self.catch_up()?;
        let weights = self.inner.tracker_update_weighted(from, new_rows, m)?;
        self.append(
            K_UPDATE_WEIGHTED,
            fingerprint,
            encode_f64s_result(&weights),
        )?;
        Ok(weights)
    }

    fn assign_fused(
        &mut self,
        centers: &PointMatrix,
        fetch: LabelFetch,
    ) -> Result<(u64, ClusterSums, Option<Vec<u32>>), KMeansError> {
        let mut args = Enc::new();
        args.matrix(centers);
        args.u8(match fetch {
            LabelFetch::Skip => 0,
            LabelFetch::IfStable => 1,
            LabelFetch::Always => 2,
        });
        let fingerprint = fp(K_ASSIGN_FUSED, args);
        if let Some(i) = self.next_replay(K_ASSIGN_FUSED, fingerprint)? {
            let result = decode_assign_fused_result(&self.ckpt.records[i].payload)?;
            self.last_assign = Some(centers.clone());
            return Ok(result);
        }
        self.catch_up()?;
        let (reassigned, sums, labels) = self.inner.assign_fused(centers, fetch)?;
        self.append(
            K_ASSIGN_FUSED,
            fingerprint,
            encode_assign_fused_result(reassigned, &sums, &labels),
        )?;
        Ok((reassigned, sums, labels))
    }

    // `preload_rows` deliberately stays the trait's no-op default:
    // checkpointed mini-batch keeps its per-batch journaled gathers —
    // durability at round granularity over collapsing the gathers.
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_result_round_trips() {
        let sums = ClusterSums {
            sums: vec![1.0, 2.0, 3.0, 4.0],
            counts: vec![3, 1],
            cost: 0.625,
            farthest: vec![(7, 0.5), (usize::MAX, f64::NEG_INFINITY)],
            stats: KernelStats {
                distance_computations: 42,
                pruned_by_norm_bound: 9,
            },
        };
        let bytes = encode_assign_result(11, &sums);
        let (reassigned, got) = decode_assign_result(&bytes).unwrap();
        assert_eq!(reassigned, 11);
        assert_eq!(got.sums, sums.sums);
        assert_eq!(got.counts, sums.counts);
        assert_eq!(got.cost.to_bits(), sums.cost.to_bits());
        assert_eq!(got.farthest.len(), sums.farthest.len());
        assert_eq!(got.farthest[0], sums.farthest[0]);
        assert_eq!(got.farthest[1].0, usize::MAX);
        assert_eq!(got.stats.distance_computations, 42);
        assert_eq!(got.stats.pruned_by_norm_bound, 9);
    }

    #[test]
    fn truncated_assign_payload_is_a_typed_error() {
        let sums = ClusterSums {
            sums: vec![1.0],
            counts: vec![1],
            cost: 0.0,
            farthest: vec![(0, 0.0)],
            stats: KernelStats::default(),
        };
        let bytes = encode_assign_result(1, &sums);
        for cut in 0..bytes.len() {
            assert!(decode_assign_result(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn sampled_and_keys_results_round_trip() {
        let mut rows = PointMatrix::new(2);
        rows.push(&[1.0, -2.0]).unwrap();
        let bytes = encode_sampled_result(&[5, 9], &rows);
        let (idx, got) = decode_sampled_result(&bytes).unwrap();
        assert_eq!(idx, vec![5, 9]);
        assert_eq!(got.as_slice(), rows.as_slice());

        let entries = vec![(-0.5, 3usize), (-1.25, 77)];
        let bytes = encode_keys_result(&entries);
        assert_eq!(decode_keys_result(&bytes).unwrap(), entries);
    }
}
