//! Property tests for the `SKS1` serving protocol, in the style of the
//! cluster runtime's `protocol_proptests`: adversarial bytes —
//! truncations, forged length prefixes, flipped bits, garbage, frames
//! from the *other* protocol — must decode to typed [`FrameError`]s,
//! never panic, and never allocate from a forged length. Valid frames
//! round-trip exactly.

use kmeans_cluster::protocol::{Message, WireError, MAX_FRAME_PAYLOAD};
use kmeans_cluster::{FrameError, WireMessage};
use kmeans_data::PointMatrix;
use kmeans_obs::HistogramSummary;
use kmeans_serve::{ServeMessage, ServeStats};
use proptest::collection::vec;
use proptest::prelude::*;

fn matrix(values: &[f64], dim: usize) -> PointMatrix {
    let rows = values.len() / dim;
    PointMatrix::from_flat(values[..rows * dim].to_vec(), dim)
        .unwrap_or_else(|_| PointMatrix::from_flat(vec![0.0; dim], dim).unwrap())
}

/// Number of distinct payload shapes [`build_message`] produces.
const SHAPES: usize = 14;

/// A strategy-driven random serve message (one of every payload shape).
fn build_message(shape: usize, floats: Vec<f64>, ints: Vec<u64>) -> ServeMessage {
    let f0 = floats.first().copied().unwrap_or(0.5);
    let get = |i: usize| ints.get(i).copied().unwrap_or(3);
    match shape % SHAPES {
        0 => ServeMessage::Hello,
        1 => ServeMessage::ModelInfo {
            revision: get(0),
            k: get(1),
            dim: get(2) as u32,
            cost: f0,
            init_name: "kmeans-par".into(),
            refiner_name: "lloyd".into(),
            batch_cap: get(3),
        },
        2 => ServeMessage::Predict {
            points: matrix(&floats, 3),
            // Exercise both the with- and without-deadline encodings.
            deadline_ms: if get(0) % 2 == 0 { Some(get(1)) } else { None },
        },
        3 => ServeMessage::Labels {
            revision: get(0),
            labels: ints.iter().map(|&i| i as u32).collect(),
            cost: f0,
        },
        4 => ServeMessage::Cost {
            points: matrix(&floats, 2),
            deadline_ms: if get(0) % 2 == 1 { Some(get(1)) } else { None },
        },
        5 => ServeMessage::CostReply {
            revision: get(0),
            n: get(1),
            cost: f0,
        },
        6 => ServeMessage::Stats(ServeStats {
            revision: get(0),
            requests: get(1),
            points: get(2),
            batches: get(3),
            max_batch_points: get(4),
            swaps: get(5),
            distance_computations: get(6),
            pruned_by_norm_bound: get(7),
            revision_requests: get(8),
            revision_points: get(9),
            revision_batches: get(10),
            revision_installed_ns: get(11),
            request_latency: HistogramSummary {
                count: get(12),
                sum_ns: get(13),
                p50_ns: get(14),
                p99_ns: get(15),
                p999_ns: get(16),
                max_ns: get(17),
            },
            batch_latency: HistogramSummary {
                count: get(18),
                sum_ns: get(19),
                p50_ns: get(20),
                p99_ns: get(21),
                p999_ns: get(22),
                max_ns: get(23),
            },
            shed_requests: get(24),
            shed_points: get(25),
            deadline_exceeded: get(26),
            drain_rejected: get(27),
            queued_points: get(28),
            queue_cap: get(29),
            draining: get(30) % 2 == 1,
        }),
        7 => ServeMessage::SwapModel {
            model: ints.iter().flat_map(|i| i.to_le_bytes()).collect(),
        },
        8 => ServeMessage::SwapOk {
            revision: get(0),
            k: get(1),
            dim: get(2) as u32,
        },
        9 => ServeMessage::Drain,
        10 => ServeMessage::DrainOk {
            queued_points: get(0),
        },
        11 => ServeMessage::Error(WireError::Overloaded {
            queued_points: get(0),
            cap: get(1),
        }),
        12 => ServeMessage::Error(if get(0) % 2 == 0 {
            WireError::DeadlineExceeded { budget_ms: get(1) }
        } else {
            WireError::Draining
        }),
        _ => ServeMessage::Error(WireError::DimensionMismatch {
            expected: get(0) % 4096,
            got: get(1) % 4096,
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_serve_messages_round_trip(
        shape in 0usize..14,
        floats in vec(-1e9f64..1e9, 1..40),
        ints in vec(any::<u64>(), 1..40),
    ) {
        let ints: Vec<u64> = ints.into_iter().map(|i| i % (1 << 40)).collect();
        let msg = build_message(shape, floats, ints);
        let frame = msg.encode_frame();
        let (decoded, used) = ServeMessage::decode_frame(&frame, MAX_FRAME_PAYLOAD).unwrap();
        prop_assert_eq!(used, frame.len());
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn truncated_serve_frames_never_panic(
        shape in 0usize..14,
        floats in vec(-1e3f64..1e3, 1..20),
        ints in vec(0u64..1000, 1..20),
        cut_frac in 0.0f64..1.0,
    ) {
        let msg = build_message(shape, floats, ints);
        let frame = msg.encode_frame();
        let cut = ((frame.len() as f64) * cut_frac) as usize;
        let result =
            ServeMessage::decode_frame(&frame[..cut.min(frame.len() - 1)], MAX_FRAME_PAYLOAD);
        prop_assert_eq!(result.unwrap_err(), FrameError::Truncated);
    }

    #[test]
    fn flipped_serve_bytes_are_detected(
        shape in 0usize..14,
        floats in vec(-1e3f64..1e3, 1..20),
        ints in vec(0u64..1000, 1..20),
        pos_frac in 0.0f64..1.0,
        flip in 1u64..256,
    ) {
        let msg = build_message(shape, floats, ints);
        let mut frame = msg.encode_frame();
        let pos = ((frame.len() as f64) * pos_frac) as usize % frame.len();
        frame[pos] ^= flip as u8;
        match ServeMessage::decode_frame(&frame, MAX_FRAME_PAYLOAD) {
            Err(_) => {}
            Ok((m, used)) => {
                prop_assert_eq!(used, frame.len());
                prop_assert_eq!(m, msg); // only possible if the flip was a no-op
            }
        }
    }

    #[test]
    fn garbage_never_panics_or_over_allocates(
        bytes in vec(any::<u64>(), 0..64),
    ) {
        let garbage: Vec<u8> = bytes.iter().flat_map(|b| b.to_le_bytes()).collect();
        let _ = ServeMessage::decode_frame(&garbage, 1024);
    }

    #[test]
    fn forged_length_prefixes_are_rejected_before_allocation(
        declared in 1025u64..u32::MAX as u64,
    ) {
        let mut frame = ServeMessage::Shutdown.encode_frame();
        frame[5..9].copy_from_slice(&(declared as u32).to_le_bytes());
        let err = ServeMessage::decode_frame(&frame, 1024).unwrap_err();
        prop_assert_eq!(err, FrameError::Oversized { len: declared, max: 1024 });
    }

    #[test]
    fn cluster_and_serve_vocabularies_never_cross(
        shape in 0usize..14,
        floats in vec(-1e3f64..1e3, 1..20),
        ints in vec(0u64..1000, 1..20),
    ) {
        // An SKS1 frame fed to the SKW1 decoder (and vice versa) is a
        // typed BadMagic, whatever the payload — the magic, not the tag
        // space, separates the protocols.
        let serve = build_message(shape, floats, ints).encode_frame();
        prop_assert_eq!(
            Message::decode_frame(&serve, MAX_FRAME_PAYLOAD).unwrap_err(),
            FrameError::BadMagic
        );
        let cluster = Message::ShutdownOk.encode_frame();
        prop_assert_eq!(
            ServeMessage::decode_frame(&cluster, MAX_FRAME_PAYLOAD).unwrap_err(),
            FrameError::BadMagic
        );
    }
}

#[test]
fn every_wire_error_kind_survives_the_serve_wire() {
    for err in [
        WireError::EmptyInput,
        WireError::InvalidK { k: 3, n: 2 },
        WireError::DimensionMismatch {
            expected: 4,
            got: 7,
        },
        WireError::InvalidConfig("zero rounds".into()),
        WireError::NonFiniteData { point: 9, dim: 1 },
        WireError::Data("swap image rejected".into()),
        WireError::Overloaded {
            queued_points: 300_000,
            cap: 262_144,
        },
        WireError::DeadlineExceeded { budget_ms: 250 },
        WireError::Draining,
    ] {
        let msg = ServeMessage::Error(err);
        let frame = msg.encode_frame();
        let (decoded, _) = ServeMessage::decode_frame(&frame, MAX_FRAME_PAYLOAD).unwrap();
        assert_eq!(decoded, msg);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn deadline_field_is_revision_tolerant(
        floats in vec(-1e3f64..1e3, 2..40),
        budget in 0u64..1_000_000,
    ) {
        // A deadline-free Predict/Cost must encode byte-identically to a
        // revision-1 frame (the trailing field simply absent), and a
        // revision-1 frame must decode as "no deadline" — both
        // directions of cross-revision traffic keep working.
        let m = matrix(&floats, 2);
        for (with, without) in [
            (
                ServeMessage::Predict { points: m.clone(), deadline_ms: Some(budget) },
                ServeMessage::Predict { points: m.clone(), deadline_ms: None },
            ),
            (
                ServeMessage::Cost { points: m.clone(), deadline_ms: Some(budget) },
                ServeMessage::Cost { points: m.clone(), deadline_ms: None },
            ),
        ] {
            let old_style = without.encode_frame();
            let new_style = with.encode_frame();
            // The deadline is exactly one trailing u64 of payload.
            prop_assert_eq!(new_style.len(), old_style.len() + 8);
            let (decoded, _) =
                ServeMessage::decode_frame(&old_style, MAX_FRAME_PAYLOAD).unwrap();
            prop_assert_eq!(decoded, without);
            let (decoded, _) =
                ServeMessage::decode_frame(&new_style, MAX_FRAME_PAYLOAD).unwrap();
            prop_assert_eq!(decoded, with);
        }
    }

    #[test]
    fn stats_overload_group_tolerates_absence_but_not_partiality(
        ints in vec(0u64..1000, 31..40),
        cut in 1usize..50,
    ) {
        // Dropping the whole trailing overload group (49 payload bytes:
        // six u64 counters + one bool) must decode as zeroed; dropping
        // only *part* of it must be a typed malformed/truncated frame,
        // never a misparse.
        let msg = build_message(6, vec![], ints);
        let full = msg.encode_frame();
        let stats = match &msg {
            ServeMessage::Stats(s) => *s,
            _ => unreachable!(),
        };
        // Rebuild the frame with the trailing `cut` payload bytes gone.
        let payload_len = full.len() - 4 - 1 - 4 - 8; // magic+tag+len+checksum
        let payload = &full[9..9 + payload_len];
        let shortened = &payload[..payload_len - cut];
        let mut frame = Vec::new();
        frame.extend_from_slice(&kmeans_serve::SERVE_MAGIC);
        frame.push(8);
        frame.extend_from_slice(&(shortened.len() as u32).to_le_bytes());
        frame.extend_from_slice(shortened);
        frame.extend_from_slice(&kmeans_cluster::wire::fnv1a(8, shortened).to_le_bytes());
        let result = ServeMessage::decode_frame(&frame, MAX_FRAME_PAYLOAD);
        if cut == 49 {
            let (decoded, _) = result.unwrap();
            let expected = ServeStats {
                shed_requests: 0,
                shed_points: 0,
                deadline_exceeded: 0,
                drain_rejected: 0,
                queued_points: 0,
                queue_cap: 0,
                draining: false,
                ..stats
            };
            prop_assert_eq!(decoded, ServeMessage::Stats(expected));
        } else {
            prop_assert!(result.is_err(), "partial trailing group decoded: cut={}", cut);
        }
    }
}
