//! Deterministic fault injection for the serving tier — the cluster
//! runtime's [`FaultTransport`] instantiated over the `SKS1` vocabulary.
//!
//! The wrapper machinery (scripted kills, mid-frame truncations, and
//! delays keyed by `(message tag, occurrence)`) is
//! `kmeans_cluster::fault`, generic over any
//! [`WireMessage`](kmeans_cluster::wire::WireMessage); this module
//! supplies the serve-side pieces: tag constants for scripting against
//! [`ServeMessage`] without constructing throwaway frames, and spawn
//! harnesses that wrap the *server* side of a session — so a scripted
//! crash looks to the client exactly like a serving replica dying
//! mid-reply, over a channel or a real socket.
//!
//! `tests/serve_failure_injection.rs` drives these harnesses: overload
//! shedding under a stalled batcher, drains that lose nothing, and a
//! replica-set client surviving scripted kills with byte-identical
//! answers.

use crate::engine::ServeEngine;
use crate::protocol::ServeMessage;
use crate::server::session;
use kmeans_cluster::fault::{FaultAction, FaultTransport};
use kmeans_cluster::transport::{loopback_pair, LoopbackTransport, TcpTransport};
use kmeans_cluster::ClusterError;
use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

/// Message-tag constants for scripting faults against the serve `SKS1`
/// vocabulary. Mirrors [`ServeMessage`]'s tag map (round-trip pinned by
/// a test).
pub mod tag {
    /// `Hello` — the handshake request.
    pub const HELLO: u8 = 1;
    /// `ModelInfo` — the handshake reply.
    pub const MODEL_INFO: u8 = 2;
    /// `Predict` — an assignment request.
    pub const PREDICT: u8 = 3;
    /// `Labels` — a predict reply.
    pub const LABELS: u8 = 4;
    /// `Cost` — a potential-only request.
    pub const COST: u8 = 5;
    /// `CostReply` — its reply.
    pub const COST_REPLY: u8 = 6;
    /// `FetchStats` — the statistics request.
    pub const FETCH_STATS: u8 = 7;
    /// `Stats` — its reply.
    pub const STATS: u8 = 8;
    /// `SwapModel` — a hot-swap request.
    pub const SWAP_MODEL: u8 = 9;
    /// `SwapOk` — its reply.
    pub const SWAP_OK: u8 = 10;
    /// `Error` — a typed failure reply.
    pub const ERROR: u8 = 11;
    /// `Shutdown` — the stop request.
    pub const SHUTDOWN: u8 = 12;
    /// `ShutdownOk` — its reply.
    pub const SHUTDOWN_OK: u8 = 13;
    /// `Drain` — the graceful-drain request.
    pub const DRAIN: u8 = 14;
    /// `DrainOk` — its reply.
    pub const DRAIN_OK: u8 = 15;
}

/// [`crate::server::spawn_loopback_serve`] with a fault script wrapped
/// around the server's side of the channel. Returns the client-side
/// transport and the session thread's handle (which ends in `Err` when a
/// send-path fault kills the session mid-reply).
pub fn spawn_loopback_serve_with_faults(
    engine: &ServeEngine,
    script: Vec<FaultAction>,
) -> (
    LoopbackTransport<ServeMessage>,
    std::thread::JoinHandle<Result<(), ClusterError>>,
) {
    let (client_side, server_side) = loopback_pair::<ServeMessage>();
    let mut faulty = FaultTransport::new(Box::new(server_side), script);
    let session_engine = engine.clone();
    let handle = std::thread::spawn(move || session(&mut faulty, &session_engine));
    (client_side, handle)
}

/// [`crate::server::spawn_tcp_serve`] with a fault script: serves one
/// session on an ephemeral localhost port through a
/// [`FaultTransport`], so scripted crashes happen over a real socket
/// (partial frame bytes, RST/EOF on the client side). Returns the bound
/// address and the session thread's handle.
pub fn spawn_tcp_serve_with_faults(
    engine: &ServeEngine,
    io_timeout: Option<Duration>,
    script: Vec<FaultAction>,
) -> std::io::Result<(
    SocketAddr,
    std::thread::JoinHandle<Result<(), ClusterError>>,
)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let session_engine = engine.clone();
    let handle = std::thread::spawn(move || {
        let (stream, _) = listener.accept()?;
        let transport = TcpTransport::<ServeMessage>::new(stream, io_timeout)?;
        let mut faulty = FaultTransport::new(Box::new(transport), script);
        session(&mut faulty, &session_engine)
    });
    Ok((addr, handle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ServeStats;
    use kmeans_cluster::wire::WireMessage as _;
    use kmeans_data::PointMatrix;

    #[test]
    fn tag_constants_match_the_protocol() {
        let m = PointMatrix::new(1);
        assert_eq!(ServeMessage::Hello.tag(), tag::HELLO);
        assert_eq!(
            ServeMessage::ModelInfo {
                revision: 0,
                k: 0,
                dim: 0,
                cost: 0.0,
                init_name: String::new(),
                refiner_name: String::new(),
                batch_cap: 0,
            }
            .tag(),
            tag::MODEL_INFO
        );
        assert_eq!(
            ServeMessage::Predict {
                points: m.clone(),
                deadline_ms: None,
            }
            .tag(),
            tag::PREDICT
        );
        assert_eq!(
            ServeMessage::Labels {
                revision: 0,
                labels: vec![],
                cost: 0.0,
            }
            .tag(),
            tag::LABELS
        );
        assert_eq!(
            ServeMessage::Cost {
                points: m,
                deadline_ms: None,
            }
            .tag(),
            tag::COST
        );
        assert_eq!(
            ServeMessage::CostReply {
                revision: 0,
                n: 0,
                cost: 0.0,
            }
            .tag(),
            tag::COST_REPLY
        );
        assert_eq!(ServeMessage::FetchStats.tag(), tag::FETCH_STATS);
        assert_eq!(ServeMessage::Stats(ServeStats::default()).tag(), tag::STATS);
        assert_eq!(
            ServeMessage::SwapModel { model: vec![] }.tag(),
            tag::SWAP_MODEL
        );
        assert_eq!(
            ServeMessage::SwapOk {
                revision: 0,
                k: 0,
                dim: 0,
            }
            .tag(),
            tag::SWAP_OK
        );
        assert_eq!(
            ServeMessage::Error(kmeans_cluster::protocol::WireError::Draining).tag(),
            tag::ERROR
        );
        assert_eq!(ServeMessage::Shutdown.tag(), tag::SHUTDOWN);
        assert_eq!(ServeMessage::ShutdownOk.tag(), tag::SHUTDOWN_OK);
        assert_eq!(ServeMessage::Drain.tag(), tag::DRAIN);
        assert_eq!(
            ServeMessage::DrainOk { queued_points: 0 }.tag(),
            tag::DRAIN_OK
        );
    }
}
