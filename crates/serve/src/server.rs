//! The serve session loop and TCP front door, in the style of the
//! cluster runtime's `Worker::serve`/`TcpWorkerServer`: a blocking
//! request/reply loop per connection, a thread per connection, and the
//! shared [`ServeEngine`] batching across all of them.

use crate::engine::ServeEngine;
use crate::protocol::ServeMessage;
use kmeans_cluster::protocol::WireError;
use kmeans_cluster::transport::{LoopbackTransport, TcpTransport, Transport};
use kmeans_cluster::ClusterError;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// Serves one client session over any transport: a blocking recv/reply
/// loop that ends cleanly on peer disconnect or `Shutdown`. Malformed
/// *conversation* (a reply-tagged message used as a request) draws a
/// typed [`ServeMessage::Error`] and the session continues; transport
/// failures propagate.
pub fn session<T: Transport<ServeMessage> + ?Sized>(
    transport: &mut T,
    engine: &ServeEngine,
) -> Result<(), ClusterError> {
    loop {
        let msg = match transport.recv() {
            Ok(msg) => msg,
            Err(ClusterError::Disconnected) => return Ok(()),
            Err(e) => return Err(e),
        };
        // Held from request receipt until the reply hits the wire, so a
        // drain-exit cannot race the flush of the final admitted reply.
        let flushing = engine.reply_guard();
        let reply = match msg {
            ServeMessage::Hello => {
                let version = engine.current();
                ServeMessage::ModelInfo {
                    revision: version.revision,
                    k: version.predictor().k() as u64,
                    dim: version.predictor().dim() as u32,
                    cost: version.cost,
                    init_name: version.init_name.clone(),
                    refiner_name: version.refiner_name.clone(),
                    batch_cap: engine.batch_cap(),
                }
            }
            ServeMessage::Predict {
                points,
                deadline_ms,
            } => match engine.assign_deadline(points, true, deadline_ms) {
                Ok(r) => ServeMessage::Labels {
                    revision: r.revision,
                    labels: r.labels,
                    cost: r.cost,
                },
                Err(e) => ServeMessage::Error(e),
            },
            ServeMessage::Cost {
                points,
                deadline_ms,
            } => {
                let n = points.len() as u64;
                match engine.assign_deadline(points, false, deadline_ms) {
                    Ok(r) => ServeMessage::CostReply {
                        revision: r.revision,
                        n,
                        cost: r.cost,
                    },
                    Err(e) => ServeMessage::Error(e),
                }
            }
            ServeMessage::FetchStats => ServeMessage::Stats(engine.stats()),
            ServeMessage::SwapModel { model } => match engine.swap_model_bytes(&model) {
                Ok((revision, k, dim)) => ServeMessage::SwapOk { revision, k, dim },
                Err(e) => ServeMessage::Error(e),
            },
            ServeMessage::Drain => ServeMessage::DrainOk {
                queued_points: engine.drain(),
            },
            ServeMessage::Shutdown => {
                transport.send(&ServeMessage::ShutdownOk)?;
                engine.request_shutdown();
                return Ok(());
            }
            other => ServeMessage::Error(WireError::InvalidConfig(format!(
                "server cannot handle message {other:?}"
            ))),
        };
        transport.send(&reply)?;
        drop(flushing);
    }
}

/// A bound TCP listener serving assignment sessions — split from the
/// serve loop so callers (tests, the CLI) can learn the bound address
/// before blocking.
pub struct TcpServeServer {
    listener: TcpListener,
}

impl TcpServeServer {
    /// Binds the listener (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        Ok(TcpServeServer {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts client connections, each served on its own thread against
    /// the shared engine (so concurrent clients batch together). With
    /// `once`, returns after the first session ends — the deterministic
    /// smoke-test mode. Otherwise loops until a session receives
    /// `Shutdown`, or until a `Drain` completes: a watcher thread polls
    /// [`ServeEngine::is_drained`] and stops the accept loop once every
    /// admitted request has been answered *and flushed* — zero admitted
    /// work is lost. A failed session is logged, not fatal (daemon
    /// mode). `io_timeout` bounds every socket read/write.
    pub fn serve(
        self,
        engine: ServeEngine,
        io_timeout: Option<Duration>,
        once: bool,
    ) -> Result<(), ClusterError> {
        let addr = self.listener.local_addr()?;
        if !once {
            // Drain watcher: a Drain request only flips engine state; this
            // thread turns "drained" into an accept-loop exit, using the
            // same self-poke the Shutdown path uses. It also exits (without
            // poking) once a Shutdown is observed, so it never outlives
            // the server by more than one poll tick.
            let watch_engine = engine.clone();
            std::thread::spawn(move || loop {
                if watch_engine.shutdown_requested() {
                    return;
                }
                if watch_engine.is_drained() {
                    watch_engine.request_shutdown();
                    let _ = TcpStream::connect(addr);
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            });
        }
        loop {
            let (stream, _) = self.listener.accept()?;
            // A Shutdown in some session set the flag, then poked the
            // listener with a bare connection to unblock this accept.
            if engine.shutdown_requested() {
                return Ok(());
            }
            let mut transport = TcpTransport::<ServeMessage>::new(stream, io_timeout)?;
            if once {
                return session(&mut transport, &engine);
            }
            let session_engine = engine.clone();
            std::thread::spawn(move || {
                let had_shutdown_request = || session_engine.shutdown_requested();
                if let Err(e) = session(&mut transport, &session_engine) {
                    eprintln!("skm serve: session ended with error: {e}");
                }
                // Unblock the accept loop so the flag is observed.
                if had_shutdown_request() {
                    let _ = TcpStream::connect(addr);
                }
            });
        }
    }
}

/// Spawns a TCP serve daemon on an ephemeral localhost port on a
/// background thread. The server runs until a client sends `Shutdown`.
/// Returns the bound address and the join handle.
pub fn spawn_tcp_serve(
    engine: ServeEngine,
    io_timeout: Option<Duration>,
) -> std::io::Result<(
    SocketAddr,
    std::thread::JoinHandle<Result<(), ClusterError>>,
)> {
    let server = TcpServeServer::bind("127.0.0.1:0")?;
    let addr = server.local_addr()?;
    let handle = std::thread::spawn(move || server.serve(engine, io_timeout, false));
    Ok((addr, handle))
}

/// Spawns an in-process loopback session on a background thread, serving
/// one client over a channel-backed transport — the deterministic test
/// harness. Returns the client-side transport and the join handle.
pub fn spawn_loopback_serve(
    engine: &ServeEngine,
) -> (
    LoopbackTransport<ServeMessage>,
    std::thread::JoinHandle<Result<(), ClusterError>>,
) {
    let (client_side, mut server_side) = kmeans_cluster::transport::loopback_pair();
    let session_engine = engine.clone();
    let handle = std::thread::spawn(move || session(&mut server_side, &session_engine));
    (client_side, handle)
}
