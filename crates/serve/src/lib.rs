//! **kmeans-serve** — the online assignment service: a long-lived,
//! std-only TCP server that loads a persisted `SKMMDL01` model,
//! micro-batches concurrent predict/cost queries through one prepared
//! assignment kernel, and hot-swaps models with zero downtime.
//!
//! Scalable K-Means++ (Bahmani et al., VLDB 2012) motivates clustering
//! at web scale — millions of users whose points must be *assigned*
//! continuously, not just clustered once. This crate is that serving
//! tier. Predict is stateless (a pure function of the model's centers),
//! so servers scale horizontally behind the same frame discipline the
//! distributed runtime already ships; what a long-lived server adds over
//! one-shot CLI predict is **amortization**: the assignment kernel's
//! `O(k·d + k log k)` preparation (norm-sorted candidate table, slack
//! constants) is paid once per model revision and reused by every
//! request, and concurrent requests coalesce into one kernel sweep.
//!
//! * [`protocol`] — the `SKS1` wire vocabulary ([`ServeMessage`]):
//!   Hello/ModelInfo, Predict→Labels, Cost→CostReply, FetchStats→Stats,
//!   SwapModel→SwapOk, Shutdown→ShutdownOk, plus typed `Error` replies.
//!   Frames share the cluster runtime's checksummed layout
//!   (`kmeans_cluster::wire`) under a distinct magic.
//! * [`engine`] — [`ServeEngine`]: the micro-batching queue, the
//!   per-revision [`PreparedPredictor`](kmeans_core::PreparedPredictor),
//!   and the atomic hot-swap (`RwLock<Arc<ModelVersion>>`; in-flight
//!   batches finish on the version they started with, every reply is
//!   revision-tagged), plus the overload-robustness machinery: a
//!   points-bounded admission queue that sheds excess load with typed
//!   errors, request deadline budgets, and graceful drain.
//! * [`server`] — [`TcpServeServer`] (thread per connection, shared
//!   engine), the transport-generic [`session`] loop, and the
//!   loopback/TCP spawn harnesses mirroring the cluster worker's.
//! * [`client`] — [`ServeClient`]: handshake + typed calls; a served
//!   failure surfaces as the same `KMeansError` a local call would.
//!   `connect_any` turns it into a replica-set client: bounded jittered
//!   backoff, transparent re-dial on disconnect/drain/overload, and
//!   chunked streaming of large predict inputs.
//! * [`fault`] — deterministic fault injection for the serve protocol:
//!   the cluster runtime's `FaultTransport` instantiated over `SKS1`
//!   frames, with scripted kills/truncations/delays at exact
//!   `(message tag, occurrence)` triggers.
//! * [`metrics`] — the `--metrics-listen` endpoint: a hand-rolled
//!   plain-HTTP server answering `GET /metrics` with Prometheus text
//!   exposition (request/batch latency quantiles, per-revision
//!   counters) straight off the engine — curl-readable mid-load.
//!
//! **The serving parity contract.** Served `predict`/`cost_of` are
//! bit-identical to `KMeansModel::predict`/`cost_of` on the same model —
//! for any batch size, client count, server thread count, and across
//! hot-swaps (each reply consistent with exactly one revision) — because
//! per-point labels/`d²` are pure functions of (point, centers) and
//! per-request costs are re-folded on the request's own shard grid.
//! `tests/serve_parity.rs` pins this over both loopback and real TCP.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod engine;
pub mod fault;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use client::{Prediction, ServeClient, ServedModelInfo};
pub use engine::{
    AssignReply, EngineConfig, ModelVersion, PauseGuard, ReplyGuard, ServeEngine,
    DEFAULT_MAX_BATCH_POINTS, DEFAULT_QUEUE_CAP_POINTS,
};
pub use fault::{spawn_loopback_serve_with_faults, spawn_tcp_serve_with_faults};
pub use metrics::{render_metrics, MetricsServer};
pub use protocol::{ServeMessage, ServeStats, SERVE_MAGIC};
pub use server::{session, spawn_loopback_serve, spawn_tcp_serve, TcpServeServer};
