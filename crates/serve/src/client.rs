//! The serve client: handshake, predict/cost/stats/swap/shutdown calls,
//! and the typed-error mapping that makes a served failure surface as
//! the same `KMeansError` a local call would produce.
//!
//! ## Replica-set failover
//!
//! [`ServeClient::connect_any`] turns the client into a replica-set
//! client: it dials the first reachable address from a list, and when a
//! call fails *retryably* — the connection dropped, or the server
//! answered [`WireError::Draining`] / [`WireError::Overloaded`] — it
//! re-dials the next replica under a bounded, jittered
//! [`RetryPolicy`], re-handshakes, and re-sends the request. Only
//! idempotent calls fail over (predict, cost, stats, info refresh):
//! assignment is a pure function of (point, centers), so a replayed
//! request returns the same answer. Mutating calls (`swap_model`,
//! `drain`, `shutdown`) never retry — replaying them against a
//! *different* replica would mutate the wrong server.

use crate::protocol::{ServeMessage, ServeStats};
use kmeans_cluster::protocol::WireError;
use kmeans_cluster::transport::{TcpTransport, Transport};
use kmeans_cluster::{ClusterError, RetryPolicy};
use kmeans_core::KMeansError;
use kmeans_data::{encode_model, ModelRecord, PointMatrix};
use std::net::TcpStream;
use std::time::Duration;

/// The server's model descriptor, captured at handshake (and refreshed
/// by [`ServeClient::refresh_info`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ServedModelInfo {
    /// Monotonic model revision.
    pub revision: u64,
    /// Number of clusters.
    pub k: u64,
    /// Center dimensionality.
    pub dim: u32,
    /// Training cost recorded in the model file.
    pub cost: f64,
    /// Initializer name recorded in the model file.
    pub init_name: String,
    /// Refiner name recorded in the model file.
    pub refiner_name: String,
    /// The server's per-batch point cap — the natural chunk size for
    /// [`ServeClient::predict_chunked`]. 0 when the server predates the
    /// field.
    pub batch_cap: u64,
}

/// A predict answer: labels plus the request's potential, all computed
/// under one model revision.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Revision the request's batch ran on.
    pub revision: u64,
    /// Nearest-center label per query point.
    pub labels: Vec<u32>,
    /// Potential of the query points, bit-identical to a local `cost_of`.
    pub cost: f64,
}

/// Produces a fresh transport for failover attempt `n` (1-based; 0 is
/// the initial connection).
pub type TransportSupplier<T> = Box<dyn FnMut(u32) -> Result<T, ClusterError> + Send>;

struct Failover<T> {
    supplier: TransportSupplier<T>,
    policy: RetryPolicy,
}

/// A call failure, kept typed long enough to classify retryability:
/// `Draining`/`Overloaded` and transport-level failures are worth a
/// different replica; everything else is the request's own fault.
enum CallError {
    Typed(WireError),
    Transport(ClusterError),
}

impl CallError {
    fn retryable(&self) -> bool {
        match self {
            CallError::Typed(WireError::Draining | WireError::Overloaded { .. }) => true,
            CallError::Typed(_) => false,
            CallError::Transport(
                ClusterError::Io(_) | ClusterError::Disconnected | ClusterError::Frame(_),
            ) => true,
            CallError::Transport(_) => false,
        }
    }

    fn into_cluster(self) -> ClusterError {
        match self {
            CallError::Typed(e) => ClusterError::KMeans(e.into()),
            CallError::Transport(e) => e,
        }
    }
}

/// A client session over any transport. Construct with
/// [`ServeClient::connect`] (TCP), [`ServeClient::connect_any`] (TCP
/// replica set with failover), or [`ServeClient::handshake`] (any
/// transport, e.g. loopback).
pub struct ServeClient<T: Transport<ServeMessage> = TcpTransport<ServeMessage>> {
    transport: T,
    info: ServedModelInfo,
    deadline_ms: Option<u64>,
    failover: Option<Failover<T>>,
}

impl<T: Transport<ServeMessage>> std::fmt::Debug for ServeClient<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeClient")
            .field("info", &self.info)
            .field("deadline_ms", &self.deadline_ms)
            .field("failover", &self.failover.is_some())
            .finish_non_exhaustive()
    }
}

impl ServeClient<TcpTransport<ServeMessage>> {
    /// Dials a serve endpoint and performs the Hello/ModelInfo handshake.
    /// `io_timeout` bounds every socket read/write.
    pub fn connect(addr: &str, io_timeout: Option<Duration>) -> Result<Self, ClusterError> {
        let stream = TcpStream::connect(addr)?;
        Self::handshake(TcpTransport::new(stream, io_timeout)?)
    }

    /// Dials the first reachable replica from `addrs` and enables
    /// failover: a retryable call failure re-dials the replicas (rotating
    /// through the list) under `policy`'s bounded, jittered backoff, then
    /// re-handshakes and re-sends. See the module docs for which calls
    /// fail over.
    pub fn connect_any(
        addrs: &[String],
        io_timeout: Option<Duration>,
        policy: RetryPolicy,
    ) -> Result<Self, ClusterError> {
        if addrs.is_empty() {
            return Err(ClusterError::Protocol("empty replica list".into()));
        }
        let addrs = addrs.to_vec();
        let n = addrs.len();
        let supplier: TransportSupplier<TcpTransport<ServeMessage>> =
            Box::new(move |attempt: u32| {
                // Start at a different replica each attempt so a dead
                // first replica doesn't eat every retry's budget.
                let mut last = None;
                for i in 0..n {
                    let addr = &addrs[(attempt as usize + i) % n];
                    let dialed = TcpStream::connect(addr.as_str())
                        .map_err(ClusterError::from)
                        .and_then(|s| TcpTransport::new(s, io_timeout));
                    match dialed {
                        Ok(t) => return Ok(t),
                        Err(e) => last = Some(e),
                    }
                }
                Err(last.expect("replica list is non-empty"))
            });
        Self::with_failover(supplier, policy)
    }
}

impl<T: Transport<ServeMessage>> ServeClient<T> {
    /// Performs the Hello/ModelInfo handshake over an established
    /// transport.
    pub fn handshake(mut transport: T) -> Result<Self, ClusterError> {
        let info = fetch_info(&mut transport)?;
        Ok(ServeClient {
            transport,
            info,
            deadline_ms: None,
            failover: None,
        })
    }

    /// Enables failover over transports produced by `supplier` (attempt
    /// 0 is the initial connection, made here). The transport-generic
    /// core of [`ServeClient::connect_any`], also used by chaos tests to
    /// fail over across in-process loopback replicas.
    pub fn with_failover(
        mut supplier: TransportSupplier<T>,
        policy: RetryPolicy,
    ) -> Result<Self, ClusterError> {
        let mut last = None;
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(policy.delay_for(attempt));
            }
            match supplier(attempt).and_then(|mut t| {
                let info = fetch_info(&mut t)?;
                Ok((t, info))
            }) {
                Ok((transport, info)) => {
                    return Ok(ServeClient {
                        transport,
                        info,
                        deadline_ms: None,
                        failover: Some(Failover { supplier, policy }),
                    })
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one connection attempt is made"))
    }

    /// The server's model descriptor as of the last handshake/refresh.
    pub fn info(&self) -> &ServedModelInfo {
        &self.info
    }

    /// Sets the deadline budget attached to subsequent predict/cost
    /// requests (`None` = no deadline). A request still queued when its
    /// budget expires draws [`WireError::DeadlineExceeded`] instead of
    /// an answer.
    pub fn set_deadline(&mut self, budget_ms: Option<u64>) {
        self.deadline_ms = budget_ms;
    }

    /// Re-queries the model descriptor (e.g. after a swap elsewhere).
    pub fn refresh_info(&mut self) -> Result<&ServedModelInfo, ClusterError> {
        match self.call(&ServeMessage::Hello, true)? {
            ServeMessage::ModelInfo {
                revision,
                k,
                dim,
                cost,
                init_name,
                refiner_name,
                batch_cap,
            } => {
                self.info = ServedModelInfo {
                    revision,
                    k,
                    dim,
                    cost,
                    init_name,
                    refiner_name,
                    batch_cap,
                };
                Ok(&self.info)
            }
            other => Err(unexpected("ModelInfo", &other)),
        }
    }

    /// Served predict: labels and the request's potential. Bit-identical
    /// to the local `KMeansModel::predict`/`cost_of` on the server's
    /// model (`tests/serve_parity.rs` pins this).
    pub fn predict(&mut self, points: &PointMatrix) -> Result<Prediction, ClusterError> {
        match self.call(
            &ServeMessage::Predict {
                points: points.clone(),
                deadline_ms: self.deadline_ms,
            },
            true,
        )? {
            ServeMessage::Labels {
                revision,
                labels,
                cost,
            } => {
                if labels.len() != points.len() {
                    return Err(ClusterError::Protocol(format!(
                        "predict reply carries {} labels for {} points",
                        labels.len(),
                        points.len()
                    )));
                }
                Ok(Prediction {
                    revision,
                    labels,
                    cost,
                })
            }
            other => Err(unexpected("Labels", &other)),
        }
    }

    /// Served predict of a large input, streamed as bounded chunks of at
    /// most `chunk_points` points so no single request exceeds the
    /// server's batch cap (pass [`ServedModelInfo::batch_cap`] when the
    /// server advertises one). The concatenated labels are byte-identical
    /// to one unchunked predict — per-point labels are pure functions of
    /// (point, centers) — and every chunk is checked to have run on the
    /// same model revision (a hot-swap mid-stream is a typed error, never
    /// silently mixed labels). The returned cost is the *sum of
    /// per-chunk potentials*: deterministic for a given chunk size, but
    /// folded at chunk boundaries rather than on the whole input's shard
    /// grid.
    pub fn predict_chunked(
        &mut self,
        points: &PointMatrix,
        chunk_points: usize,
    ) -> Result<Prediction, ClusterError> {
        let chunk = chunk_points.max(1);
        if points.len() <= chunk {
            return self.predict(points);
        }
        let dim = points.dim();
        let flat = points.as_slice();
        let mut labels = Vec::with_capacity(points.len());
        let mut cost = 0.0;
        let mut revision = None;
        for start in (0..points.len()).step_by(chunk) {
            let end = (start + chunk).min(points.len());
            let part = PointMatrix::from_flat(flat[start * dim..end * dim].to_vec(), dim)
                .expect("chunk of a valid matrix is a valid matrix");
            let p = self.predict(&part)?;
            match revision {
                None => revision = Some(p.revision),
                Some(rev) if rev != p.revision => {
                    return Err(ClusterError::Protocol(format!(
                        "model revision changed mid-stream ({} -> {}); \
                         chunked labels would mix models",
                        rev, p.revision
                    )));
                }
                Some(_) => {}
            }
            labels.extend_from_slice(&p.labels);
            cost += p.cost;
        }
        Ok(Prediction {
            revision: revision.expect("at least one chunk"),
            labels,
            cost,
        })
    }

    /// Served cost: the potential of `points` under the server's model,
    /// without shipping labels back. Returns `(revision, cost)`.
    pub fn cost_of(&mut self, points: &PointMatrix) -> Result<(u64, f64), ClusterError> {
        let sent = points.len() as u64;
        match self.call(
            &ServeMessage::Cost {
                points: points.clone(),
                deadline_ms: self.deadline_ms,
            },
            true,
        )? {
            ServeMessage::CostReply { revision, n, cost } => {
                if n != sent {
                    return Err(ClusterError::Protocol(format!(
                        "cost reply covers {n} points, sent {sent}"
                    )));
                }
                Ok((revision, cost))
            }
            other => Err(unexpected("CostReply", &other)),
        }
    }

    /// The server's cumulative serving statistics.
    pub fn fetch_stats(&mut self) -> Result<ServeStats, ClusterError> {
        match self.call(&ServeMessage::FetchStats, true)? {
            ServeMessage::Stats(s) => Ok(s),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Atomically installs `record` on the server (shipped as an
    /// `SKMMDL01` image, the same bytes `--save-model` writes). Returns
    /// the new revision and refreshes [`ServeClient::info`]. Never fails
    /// over — a replayed swap could land on a different replica.
    pub fn swap_model(&mut self, record: &ModelRecord) -> Result<u64, ClusterError> {
        let image = encode_model(record)
            .map_err(|e| ClusterError::KMeans(KMeansError::Data(e.to_string())))?;
        match self.call(&ServeMessage::SwapModel { model: image }, false)? {
            ServeMessage::SwapOk { revision, .. } => {
                self.refresh_info()?;
                Ok(revision)
            }
            other => Err(unexpected("SwapOk", &other)),
        }
    }

    /// Begins a graceful drain of the *connected* server (never fails
    /// over — draining a different replica than intended would degrade
    /// the wrong server). Returns the points the server still owes
    /// answers for. The server process exits once they are answered.
    pub fn drain(&mut self) -> Result<u64, ClusterError> {
        match self.call(&ServeMessage::Drain, false)? {
            ServeMessage::DrainOk { queued_points } => Ok(queued_points),
            other => Err(unexpected("DrainOk", &other)),
        }
    }

    /// Stops the server (its accept loop exits after acknowledging).
    /// Consumes the client. Never fails over.
    pub fn shutdown(mut self) -> Result<(), ClusterError> {
        match self.call(&ServeMessage::Shutdown, false)? {
            ServeMessage::ShutdownOk => Ok(()),
            other => Err(unexpected("ShutdownOk", &other)),
        }
    }

    /// Hands back the transport (for wire-accounting assertions).
    pub fn into_transport(self) -> T {
        self.transport
    }

    /// One request/reply exchange, with failover when enabled and the
    /// call is idempotent. Non-retryable failures (and every failure
    /// without failover) surface unchanged.
    fn call(&mut self, msg: &ServeMessage, idempotent: bool) -> Result<ServeMessage, ClusterError> {
        let first = match self.raw_roundtrip(msg) {
            Ok(reply) => return Ok(reply),
            Err(e) => e,
        };
        let policy = match &self.failover {
            Some(f) if idempotent && first.retryable() => f.policy,
            _ => return Err(first.into_cluster()),
        };
        let mut last = first;
        for attempt in 1..policy.attempts.max(1) {
            std::thread::sleep(policy.delay_for(attempt));
            match self.redial_and_retry(msg, attempt) {
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    let retryable = e.retryable();
                    last = e;
                    if !retryable {
                        break;
                    }
                }
            }
        }
        Err(last.into_cluster())
    }

    /// Re-dials via the failover supplier, re-handshakes (refreshing
    /// [`ServeClient::info`]), and re-sends `msg`.
    fn redial_and_retry(
        &mut self,
        msg: &ServeMessage,
        attempt: u32,
    ) -> Result<ServeMessage, CallError> {
        let failover = self.failover.as_mut().expect("failover checked by caller");
        let mut transport = (failover.supplier)(attempt).map_err(CallError::Transport)?;
        let info = fetch_info(&mut transport).map_err(CallError::Transport)?;
        self.transport = transport;
        self.info = info;
        self.raw_roundtrip(msg)
    }

    fn raw_roundtrip(&mut self, msg: &ServeMessage) -> Result<ServeMessage, CallError> {
        self.transport.send(msg).map_err(CallError::Transport)?;
        match self.transport.recv().map_err(CallError::Transport)? {
            ServeMessage::Error(e) => Err(CallError::Typed(e)),
            reply => Ok(reply),
        }
    }
}

fn fetch_info<T: Transport<ServeMessage>>(
    transport: &mut T,
) -> Result<ServedModelInfo, ClusterError> {
    transport.send(&ServeMessage::Hello)?;
    match transport.recv()? {
        ServeMessage::ModelInfo {
            revision,
            k,
            dim,
            cost,
            init_name,
            refiner_name,
            batch_cap,
        } => Ok(ServedModelInfo {
            revision,
            k,
            dim,
            cost,
            init_name,
            refiner_name,
            batch_cap,
        }),
        ServeMessage::Error(e) => Err(ClusterError::KMeans(e.into())),
        other => Err(unexpected("ModelInfo", &other)),
    }
}

fn unexpected(wanted: &str, got: &ServeMessage) -> ClusterError {
    ClusterError::Protocol(format!("expected {wanted}, server sent {got:?}"))
}
