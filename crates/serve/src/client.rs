//! The serve client: handshake, predict/cost/stats/swap/shutdown calls,
//! and the typed-error mapping that makes a served failure surface as
//! the same `KMeansError` a local call would produce.

use crate::protocol::{ServeMessage, ServeStats};
use kmeans_cluster::transport::{TcpTransport, Transport};
use kmeans_cluster::ClusterError;
use kmeans_core::KMeansError;
use kmeans_data::{encode_model, ModelRecord, PointMatrix};
use std::net::TcpStream;
use std::time::Duration;

/// The server's model descriptor, captured at handshake (and refreshed
/// by [`ServeClient::refresh_info`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ServedModelInfo {
    /// Monotonic model revision.
    pub revision: u64,
    /// Number of clusters.
    pub k: u64,
    /// Center dimensionality.
    pub dim: u32,
    /// Training cost recorded in the model file.
    pub cost: f64,
    /// Initializer name recorded in the model file.
    pub init_name: String,
    /// Refiner name recorded in the model file.
    pub refiner_name: String,
}

/// A predict answer: labels plus the request's potential, all computed
/// under one model revision.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Revision the request's batch ran on.
    pub revision: u64,
    /// Nearest-center label per query point.
    pub labels: Vec<u32>,
    /// Potential of the query points, bit-identical to a local `cost_of`.
    pub cost: f64,
}

/// A client session over any transport. Construct with
/// [`ServeClient::connect`] (TCP) or [`ServeClient::handshake`] (any
/// transport, e.g. loopback).
pub struct ServeClient<T: Transport<ServeMessage> = TcpTransport<ServeMessage>> {
    transport: T,
    info: ServedModelInfo,
}

impl<T: Transport<ServeMessage>> std::fmt::Debug for ServeClient<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeClient")
            .field("info", &self.info)
            .finish_non_exhaustive()
    }
}

impl ServeClient<TcpTransport<ServeMessage>> {
    /// Dials a serve endpoint and performs the Hello/ModelInfo handshake.
    /// `io_timeout` bounds every socket read/write.
    pub fn connect(addr: &str, io_timeout: Option<Duration>) -> Result<Self, ClusterError> {
        let stream = TcpStream::connect(addr)?;
        Self::handshake(TcpTransport::new(stream, io_timeout)?)
    }
}

impl<T: Transport<ServeMessage>> ServeClient<T> {
    /// Performs the Hello/ModelInfo handshake over an established
    /// transport.
    pub fn handshake(mut transport: T) -> Result<Self, ClusterError> {
        let info = fetch_info(&mut transport)?;
        Ok(ServeClient { transport, info })
    }

    /// The server's model descriptor as of the last handshake/refresh.
    pub fn info(&self) -> &ServedModelInfo {
        &self.info
    }

    /// Re-queries the model descriptor (e.g. after a swap elsewhere).
    pub fn refresh_info(&mut self) -> Result<&ServedModelInfo, ClusterError> {
        self.info = fetch_info(&mut self.transport)?;
        Ok(&self.info)
    }

    /// Served predict: labels and the request's potential. Bit-identical
    /// to the local `KMeansModel::predict`/`cost_of` on the server's
    /// model (`tests/serve_parity.rs` pins this).
    pub fn predict(&mut self, points: &PointMatrix) -> Result<Prediction, ClusterError> {
        match self.roundtrip(&ServeMessage::Predict {
            points: points.clone(),
        })? {
            ServeMessage::Labels {
                revision,
                labels,
                cost,
            } => {
                if labels.len() != points.len() {
                    return Err(ClusterError::Protocol(format!(
                        "predict reply carries {} labels for {} points",
                        labels.len(),
                        points.len()
                    )));
                }
                Ok(Prediction {
                    revision,
                    labels,
                    cost,
                })
            }
            other => Err(unexpected("Labels", &other)),
        }
    }

    /// Served cost: the potential of `points` under the server's model,
    /// without shipping labels back. Returns `(revision, cost)`.
    pub fn cost_of(&mut self, points: &PointMatrix) -> Result<(u64, f64), ClusterError> {
        let sent = points.len() as u64;
        match self.roundtrip(&ServeMessage::Cost {
            points: points.clone(),
        })? {
            ServeMessage::CostReply { revision, n, cost } => {
                if n != sent {
                    return Err(ClusterError::Protocol(format!(
                        "cost reply covers {n} points, sent {sent}"
                    )));
                }
                Ok((revision, cost))
            }
            other => Err(unexpected("CostReply", &other)),
        }
    }

    /// The server's cumulative serving statistics.
    pub fn fetch_stats(&mut self) -> Result<ServeStats, ClusterError> {
        match self.roundtrip(&ServeMessage::FetchStats)? {
            ServeMessage::Stats(s) => Ok(s),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Atomically installs `record` on the server (shipped as an
    /// `SKMMDL01` image, the same bytes `--save-model` writes). Returns
    /// the new revision and refreshes [`ServeClient::info`].
    pub fn swap_model(&mut self, record: &ModelRecord) -> Result<u64, ClusterError> {
        let image = encode_model(record)
            .map_err(|e| ClusterError::KMeans(KMeansError::Data(e.to_string())))?;
        match self.roundtrip(&ServeMessage::SwapModel { model: image })? {
            ServeMessage::SwapOk { revision, .. } => {
                self.refresh_info()?;
                Ok(revision)
            }
            other => Err(unexpected("SwapOk", &other)),
        }
    }

    /// Stops the server (its accept loop exits after acknowledging).
    /// Consumes the client.
    pub fn shutdown(mut self) -> Result<(), ClusterError> {
        match self.roundtrip(&ServeMessage::Shutdown)? {
            ServeMessage::ShutdownOk => Ok(()),
            other => Err(unexpected("ShutdownOk", &other)),
        }
    }

    /// Hands back the transport (for wire-accounting assertions).
    pub fn into_transport(self) -> T {
        self.transport
    }

    fn roundtrip(&mut self, msg: &ServeMessage) -> Result<ServeMessage, ClusterError> {
        self.transport.send(msg)?;
        match self.transport.recv()? {
            ServeMessage::Error(e) => Err(ClusterError::KMeans(e.into())),
            reply => Ok(reply),
        }
    }
}

fn fetch_info<T: Transport<ServeMessage>>(
    transport: &mut T,
) -> Result<ServedModelInfo, ClusterError> {
    transport.send(&ServeMessage::Hello)?;
    match transport.recv()? {
        ServeMessage::ModelInfo {
            revision,
            k,
            dim,
            cost,
            init_name,
            refiner_name,
        } => Ok(ServedModelInfo {
            revision,
            k,
            dim,
            cost,
            init_name,
            refiner_name,
        }),
        ServeMessage::Error(e) => Err(ClusterError::KMeans(e.into())),
        other => Err(unexpected("ModelInfo", &other)),
    }
}

fn unexpected(wanted: &str, got: &ServeMessage) -> ClusterError {
    ClusterError::Protocol(format!("expected {wanted}, server sent {got:?}"))
}
