//! The live metrics endpoint behind `skm serve --metrics-listen`: a
//! hand-rolled plain-HTTP server (std `TcpListener`, no framework) that
//! answers `GET /metrics` with the engine's counters and latency
//! summaries in the Prometheus text exposition format — readable by a
//! plain `curl` mid-load, scrapeable by any Prometheus-compatible
//! collector.
//!
//! The endpoint is read-only and isolated from the serving port: it
//! shares nothing with the `SKS1` conversation but the [`ServeEngine`]
//! handle, so a slow or misbehaving scraper can never stall a predict
//! batch. One request per connection (`Connection: close`), bounded
//! request reads, and a polling accept loop that exits when the engine
//! shuts down.

use crate::engine::ServeEngine;
use crate::protocol::ServeStats;
use kmeans_obs::PromText;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// Longest request head (request line + headers) the endpoint reads
/// before answering; anything longer is answered `431` and dropped.
const MAX_REQUEST_HEAD: usize = 8 * 1024;

/// Renders a [`ServeStats`] snapshot as a Prometheus text-exposition
/// document (format 0.0.4) — the body `GET /metrics` serves.
pub fn render_metrics(stats: &ServeStats) -> String {
    let mut p = PromText::new();
    p.gauge(
        "skm_serve_model_revision",
        "Revision of the currently installed model.",
        stats.revision as f64,
    );
    p.counter(
        "skm_serve_requests_total",
        "Predict/cost requests answered.",
        stats.requests,
    );
    p.counter(
        "skm_serve_points_total",
        "Points assigned across all requests.",
        stats.points,
    );
    p.counter(
        "skm_serve_batches_total",
        "Kernel batches executed.",
        stats.batches,
    );
    p.counter(
        "skm_serve_swaps_total",
        "Model hot-swaps performed.",
        stats.swaps,
    );
    p.counter(
        "skm_serve_distance_computations_total",
        "Kernel distance evaluations spent serving.",
        stats.distance_computations,
    );
    p.counter(
        "skm_serve_pruned_by_norm_bound_total",
        "Kernel candidates pruned by the norm/coordinate bounds.",
        stats.pruned_by_norm_bound,
    );
    p.gauge(
        "skm_serve_max_batch_points",
        "Largest kernel batch so far, in points.",
        stats.max_batch_points as f64,
    );
    p.gauge(
        "skm_serve_revision_requests",
        "Requests answered under the current revision.",
        stats.revision_requests as f64,
    );
    p.gauge(
        "skm_serve_revision_points",
        "Points assigned under the current revision.",
        stats.revision_points as f64,
    );
    p.gauge(
        "skm_serve_revision_batches",
        "Kernel batches executed under the current revision.",
        stats.revision_batches as f64,
    );
    p.summary_seconds(
        "skm_serve_request_latency_seconds",
        "Request latency, submit to reply (includes queue wait).",
        &stats.request_latency,
    );
    p.summary_seconds(
        "skm_serve_batch_latency_seconds",
        "Kernel batch sweep latency.",
        &stats.batch_latency,
    );
    p.counter(
        "skm_serve_shed_requests_total",
        "Requests rejected by admission control (queue full).",
        stats.shed_requests,
    );
    p.counter(
        "skm_serve_shed_points_total",
        "Points carried by shed requests (never touched the kernel).",
        stats.shed_points,
    );
    p.counter(
        "skm_serve_deadline_exceeded_total",
        "Requests whose deadline budget expired before batching.",
        stats.deadline_exceeded,
    );
    p.counter(
        "skm_serve_drain_rejected_total",
        "Requests rejected because the server was draining.",
        stats.drain_rejected,
    );
    p.gauge(
        "skm_serve_queued_points",
        "Points currently admitted but not yet answered.",
        stats.queued_points as f64,
    );
    p.gauge(
        "skm_serve_queue_cap_points",
        "The admission cap, in points.",
        stats.queue_cap as f64,
    );
    p.gauge(
        "skm_serve_draining",
        "1 while the server is draining (readiness down), else 0.",
        if stats.draining { 1.0 } else { 0.0 },
    );
    p.render()
}

/// The metrics endpoint: binds separately from the serve port, then
/// [`MetricsServer::serve`] answers scrapes until the engine shuts
/// down. Bind-then-serve split so callers learn the bound address (and
/// can print it) before blocking.
///
/// Besides `GET /metrics`, the endpoint answers the orchestration
/// probes: `GET /healthz` is liveness (200 while the process serves
/// scrapes, drain included) and `GET /readyz` is readiness (200 while
/// accepting new work, `503` once a drain begins — the signal a load
/// balancer uses to stop routing to a replica being rolled).
pub struct MetricsServer {
    listener: TcpListener,
    io_timeout: Duration,
}

/// Default bound on a scrape connection's socket reads/writes.
pub const DEFAULT_SCRAPE_IO_TIMEOUT: Duration = Duration::from_secs(5);

impl MetricsServer {
    /// Binds the endpoint (e.g. `"127.0.0.1:0"` for an ephemeral port)
    /// with the default scrape I/O timeout.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        Self::bind_with_timeout(addr, DEFAULT_SCRAPE_IO_TIMEOUT)
    }

    /// [`MetricsServer::bind`] with an explicit bound on each scrape
    /// connection's socket reads/writes.
    pub fn bind_with_timeout(addr: &str, io_timeout: Duration) -> std::io::Result<Self> {
        Ok(MetricsServer {
            listener: TcpListener::bind(addr)?,
            io_timeout,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves scrapes until `engine` requests shutdown. The accept loop
    /// polls (non-blocking accept + short sleep) so it notices the
    /// shutdown flag without needing a wake-up connection; each accepted
    /// connection gets one bounded-read request and one response.
    pub fn serve(self, engine: ServeEngine) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        loop {
            if engine.shutdown_requested() {
                return Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // Scrape failures (slow peer, disconnect) only drop
                    // this one response; the endpoint carries on.
                    let _ = handle_scrape(stream, &engine, self.io_timeout);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Spawns [`MetricsServer::serve`] on a background thread.
    pub fn spawn(self, engine: ServeEngine) -> std::thread::JoinHandle<std::io::Result<()>> {
        std::thread::spawn(move || self.serve(engine))
    }
}

fn handle_scrape(
    mut stream: TcpStream,
    engine: &ServeEngine,
    io_timeout: Duration,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(io_timeout))?;
    stream.set_write_timeout(Some(io_timeout))?;
    let head = match read_request_head(&mut stream)? {
        Some(head) => head,
        None => {
            return respond(
                &mut stream,
                "431 Request Header Fields Too Large",
                "request head too large\n",
            )
        }
    };
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "only GET is served\n",
        );
    }
    match path {
        "/metrics" | "/" => {
            let body = render_metrics(&engine.stats());
            respond(&mut stream, "200 OK", &body)
        }
        // Liveness: the process is up and answering — true even while
        // draining (the drain is the process finishing its work).
        "/healthz" => respond(&mut stream, "200 OK", "ok\n"),
        // Readiness: whether *new* work is being accepted. Flips to 503
        // the moment a drain begins, so load balancers stop routing here
        // while admitted work finishes.
        "/readyz" => {
            if engine.is_draining() {
                respond(&mut stream, "503 Service Unavailable", "draining\n")
            } else {
                respond(&mut stream, "200 OK", "ready\n")
            }
        }
        _ => respond(
            &mut stream,
            "404 Not Found",
            "try /metrics, /healthz, or /readyz\n",
        ),
    }
}

/// Reads until the blank line ending the request head, bounded by
/// [`MAX_REQUEST_HEAD`]. `None` means the bound was hit first.
fn read_request_head(stream: &mut TcpStream) -> std::io::Result<Option<String>> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") && !head.ends_with(b"\n\n") {
        if head.len() >= MAX_REQUEST_HEAD {
            return Ok(None);
        }
        match stream.read(&mut byte)? {
            0 => break, // peer closed after (or mid) request line
            _ => head.push(byte[0]),
        }
    }
    Ok(Some(String::from_utf8_lossy(&head).into_owned()))
}

fn respond(stream: &mut TcpStream, status: &str, body: &str) -> std::io::Result<()> {
    let response = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\
         \r\n\
         {body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmeans_core::model::KMeans;
    use kmeans_data::PointMatrix;
    use kmeans_par::{Executor, Parallelism};

    fn engine() -> (PointMatrix, ServeEngine) {
        let mut m = PointMatrix::new(2);
        for (cx, cy) in [(0.0, 0.0), (40.0, 0.0)] {
            for i in 0..40 {
                m.push(&[cx + (i % 5) as f64 * 0.2, cy + (i / 5) as f64 * 0.2])
                    .unwrap();
            }
        }
        let model = KMeans::params(2)
            .seed(9)
            .parallelism(Parallelism::Sequential)
            .fit(&m)
            .unwrap();
        let engine =
            ServeEngine::new(model.to_record(), Executor::new(Parallelism::Sequential)).unwrap();
        (m, engine)
    }

    #[test]
    fn exposition_contains_counters_and_latency_quantiles() {
        let (points, engine) = engine();
        engine.assign(points, true).unwrap();
        let text = render_metrics(&engine.stats());
        assert!(text.contains("# TYPE skm_serve_requests_total counter"));
        assert!(text.contains("skm_serve_requests_total 1"));
        assert!(text.contains("skm_serve_model_revision 1"));
        assert!(text.contains("skm_serve_request_latency_seconds{quantile=\"0.5\"}"));
        assert!(text.contains("skm_serve_request_latency_seconds{quantile=\"0.99\"}"));
        assert!(text.contains("skm_serve_request_latency_seconds_count 1"));
        assert!(text.contains("skm_serve_batch_latency_seconds_count 1"));
    }

    #[test]
    fn endpoint_answers_a_plain_http_get() {
        let (points, engine) = engine();
        engine.assign(points, true).unwrap();
        let server = MetricsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.spawn(engine.clone());
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(response.contains("skm_serve_requests_total 1"));
        assert!(response.contains("skm_serve_request_latency_seconds{quantile=\"0.99\"}"));

        // Unknown paths 404; non-GET 405; the loop exits on shutdown.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /nope HTTP/1.1\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 404"));

        engine.request_shutdown();
        handle.join().unwrap().unwrap();
    }

    fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn health_and_readiness_probes_track_drain() {
        let (_, engine) = engine();
        let server = MetricsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.spawn(engine.clone());
        assert!(http_get(addr, "/healthz").starts_with("HTTP/1.1 200"));
        assert!(http_get(addr, "/readyz").starts_with("HTTP/1.1 200"));
        engine.drain();
        // Liveness stays up through a drain; readiness flips to 503.
        assert!(http_get(addr, "/healthz").starts_with("HTTP/1.1 200"));
        assert!(http_get(addr, "/readyz").starts_with("HTTP/1.1 503"));
        let metrics = http_get(addr, "/metrics");
        assert!(metrics.contains("skm_serve_draining 1"));
        engine.request_shutdown();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn exposition_contains_overload_counters() {
        let (_, engine) = engine();
        let text = render_metrics(&engine.stats());
        assert!(text.contains("# TYPE skm_serve_shed_requests_total counter"));
        assert!(text.contains("skm_serve_shed_points_total 0"));
        assert!(text.contains("skm_serve_deadline_exceeded_total 0"));
        assert!(text.contains("skm_serve_drain_rejected_total 0"));
        assert!(text.contains("skm_serve_queued_points 0"));
        assert!(text.contains(&format!(
            "skm_serve_queue_cap_points {}",
            crate::engine::DEFAULT_QUEUE_CAP_POINTS
        )));
        assert!(text.contains("skm_serve_draining 0"));
    }
}
