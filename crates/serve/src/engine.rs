//! The batch assignment engine behind every serve session: one prepared
//! kernel per model revision, a micro-batching queue that funnels
//! concurrent requests through it, and the atomic hot-swap path.
//!
//! ## Batching and amortization
//!
//! Each connection handler submits its request to a shared queue and
//! blocks on a private reply channel. A single batcher thread drains the
//! queue, concatenates the pending requests into one matrix, and runs
//! one [`PreparedPredictor::assign`] sweep over the whole batch — the
//! kernel's `O(k·d + k log k)` preparation was paid once at model
//! install, and the per-batch sweep parallelizes across the executor's
//! threads. Per-point labels and `d²` are pure functions of (point,
//! centers), so slicing the batch outputs at request boundaries yields
//! exactly what each request would have gotten alone; per-request cost
//! is re-folded on the request's own shard grid
//! ([`PreparedPredictor::cost_from_d2`]), keeping served costs
//! bit-identical to a local `cost_of`.
//!
//! ## Hot-swap semantics
//!
//! The installed model lives behind `RwLock<Arc<ModelVersion>>`. A swap
//! prepares the replacement kernel *outside* the lock, then replaces the
//! `Arc` under a brief write lock and bumps the revision. The batcher
//! clones the `Arc` once per batch, so an in-flight batch finishes on
//! the version it started with and every reply is tagged with the
//! revision that computed it — no request ever mixes versions.
//!
//! ## Admission control and overload shedding
//!
//! The queue in front of the batcher is bounded in *points* (the unit
//! the kernel's work is linear in): [`EngineConfig::queue_cap`]. A
//! request that would push the admitted-but-unanswered total past the
//! cap is shed *synchronously* at submission with
//! [`WireError::Overloaded`] — it never reaches the queue, never
//! touches the kernel, and never perturbs the batching of admitted
//! requests, so accepted replies stay bit-identical to an unloaded
//! server. One exception keeps the engine live for any request size: a
//! request is always admitted when the queue is empty, even if it alone
//! exceeds the cap. The reservation is released when the reply is
//! handed back, so `queued_points` counts work the server still owes.
//!
//! A request may carry a deadline budget; the batcher checks it at
//! dequeue time and answers [`WireError::DeadlineExceeded`] instead of
//! spending a sweep on an answer the client has already abandoned.
//!
//! ## Graceful drain
//!
//! [`ServeEngine::drain`] flips the engine into drain mode: every
//! *new* submission is rejected with [`WireError::Draining`], while
//! already-admitted work completes and replies normally. Drain-mode
//! rejection double-checks after reserving queue space, so a submission
//! racing the flag flip either lands wholly before the drain (and is
//! honored) or is rejected with its reservation rolled back — admitted
//! work is never lost. [`ServeEngine::is_drained`] reports when the
//! last admitted point has been answered.

use crate::protocol::ServeStats;
use kmeans_cluster::protocol::WireError;
use kmeans_core::{KMeansError, PreparedPredictor};
use kmeans_data::{decode_model, ModelRecord, PointMatrix};
use kmeans_obs::{arg_u64, Clock, LatencyHistogram, MonotonicClock, Recorder};
use kmeans_par::Executor;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// Default cap on the points gathered into one kernel batch. Draining
/// stops at the cap, so a burst of large requests cannot starve later
/// arrivals behind one enormous sweep.
pub const DEFAULT_MAX_BATCH_POINTS: usize = 1 << 16;

/// Default admission cap, in points: four full batches of queued work
/// before new requests are shed.
pub const DEFAULT_QUEUE_CAP_POINTS: usize = 4 * DEFAULT_MAX_BATCH_POINTS;

/// Trace category of the engine's overload/drain instants.
const SERVE_CAT: &str = "serve";

/// Construction knobs for [`ServeEngine::with_config`].
pub struct EngineConfig {
    /// Cap on points gathered into one kernel batch.
    pub batch_cap: usize,
    /// Admission cap: the most points that may be admitted-but-unanswered
    /// before new requests are shed ([`WireError::Overloaded`]). A
    /// request arriving at an empty queue is always admitted.
    pub queue_cap: usize,
    /// Flight recorder for shed/drain/deadline instants
    /// ([`Recorder::disabled`] by default — zero overhead).
    pub recorder: Recorder,
    /// Clock the engine times requests and deadlines with. Swappable so
    /// chaos tests drive deadlines deterministically
    /// (`kmeans_obs::FakeClock`).
    pub clock: Arc<dyn Clock>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            batch_cap: DEFAULT_MAX_BATCH_POINTS,
            queue_cap: DEFAULT_QUEUE_CAP_POINTS,
            recorder: Recorder::disabled(),
            clock: Arc::new(MonotonicClock::new()),
        }
    }
}

/// One installed model: the prepared kernel plus the descriptor fields
/// served by `ModelInfo`.
#[derive(Debug)]
pub struct ModelVersion {
    /// Monotonic revision (1 = the model the engine started with).
    pub revision: u64,
    /// Training cost recorded in the model file.
    pub cost: f64,
    /// Initializer name recorded in the model file.
    pub init_name: String,
    /// Refiner name recorded in the model file.
    pub refiner_name: String,
    predictor: PreparedPredictor,
}

impl ModelVersion {
    fn build(record: ModelRecord, revision: u64, executor: &Executor) -> Result<Self, WireError> {
        if record.centers.is_empty() {
            return Err(KMeansError::EmptyInput.into());
        }
        Ok(ModelVersion {
            revision,
            cost: record.cost,
            init_name: record.init_name,
            refiner_name: record.refiner_name,
            predictor: PreparedPredictor::new(record.centers, executor.clone()),
        })
    }

    /// The prepared assignment engine of this version.
    pub fn predictor(&self) -> &PreparedPredictor {
        &self.predictor
    }
}

/// One request's batch result.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignReply {
    /// Revision of the model that computed this reply.
    pub revision: u64,
    /// Per-point labels (empty when the request asked for cost only).
    pub labels: Vec<u32>,
    /// Potential of the request's points, bit-identical to a local
    /// `cost_of` on the same points.
    pub cost: f64,
}

struct AssignJob {
    points: PointMatrix,
    want_labels: bool,
    /// `(absolute engine-clock ns, original budget in ms)` — checked by
    /// the batcher at dequeue.
    deadline: Option<(u64, u64)>,
    reply: Sender<Result<AssignReply, WireError>>,
}

/// Counter snapshot taken at each swap: the base the current revision's
/// per-revision counters are measured against.
#[derive(Clone, Copy, Default)]
struct RevisionBase {
    requests: u64,
    points: u64,
    batches: u64,
    installed_ns: u64,
}

struct Shared {
    current: RwLock<Arc<ModelVersion>>,
    executor: Executor,
    shutdown: AtomicBool,
    requests: AtomicU64,
    points: AtomicU64,
    batches: AtomicU64,
    max_batch_points: AtomicU64,
    swaps: AtomicU64,
    distance_computations: AtomicU64,
    pruned_by_norm_bound: AtomicU64,
    clock: Arc<dyn Clock>,
    request_hist: Mutex<LatencyHistogram>,
    batch_hist: Mutex<LatencyHistogram>,
    rev_base: Mutex<RevisionBase>,
    // Admission control / drain state.
    batch_cap: u64,
    queue_cap: u64,
    queued_points: AtomicU64,
    draining: AtomicBool,
    shed_requests: AtomicU64,
    shed_points: AtomicU64,
    deadline_exceeded: AtomicU64,
    drain_rejected: AtomicU64,
    recorder: Recorder,
    // Requests a session has received but whose replies are not yet
    // flushed to the peer; drain-exit waits for these to clear so the
    // last admitted reply reaches the socket before the process dies.
    busy_replies: AtomicU64,
    // Chaos-test hook: while true the batcher holds its current batch,
    // letting tests build a full queue deterministically.
    paused: Mutex<bool>,
    unpaused: Condvar,
}

/// Handle to one serving engine. Cheap to clone; every session holds a
/// clone and submits through the shared micro-batch queue.
#[derive(Clone)]
pub struct ServeEngine {
    shared: Arc<Shared>,
    jobs: Sender<AssignJob>,
}

impl ServeEngine {
    /// Installs `record` as revision 1 and starts the batcher thread,
    /// with the default configuration.
    pub fn new(record: ModelRecord, executor: Executor) -> Result<Self, KMeansError> {
        Self::with_config(record, executor, EngineConfig::default())
    }

    /// Like [`ServeEngine::new`] with an explicit cap on points per
    /// kernel batch.
    pub fn with_batch_cap(
        record: ModelRecord,
        executor: Executor,
        max_batch_points: usize,
    ) -> Result<Self, KMeansError> {
        Self::with_config(
            record,
            executor,
            EngineConfig {
                batch_cap: max_batch_points,
                ..EngineConfig::default()
            },
        )
    }

    /// Like [`ServeEngine::new`] with full control over batching,
    /// admission, tracing, and the clock.
    pub fn with_config(
        record: ModelRecord,
        executor: Executor,
        config: EngineConfig,
    ) -> Result<Self, KMeansError> {
        let version = ModelVersion::build(record, 1, &executor).map_err(KMeansError::from)?;
        let batch_cap = config.batch_cap.max(1);
        let shared = Arc::new(Shared {
            current: RwLock::new(Arc::new(version)),
            executor,
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            points: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch_points: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            distance_computations: AtomicU64::new(0),
            pruned_by_norm_bound: AtomicU64::new(0),
            clock: config.clock,
            request_hist: Mutex::new(LatencyHistogram::new()),
            batch_hist: Mutex::new(LatencyHistogram::new()),
            rev_base: Mutex::new(RevisionBase::default()),
            batch_cap: batch_cap as u64,
            queue_cap: config.queue_cap.max(1) as u64,
            queued_points: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            shed_requests: AtomicU64::new(0),
            shed_points: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            drain_rejected: AtomicU64::new(0),
            recorder: config.recorder,
            busy_replies: AtomicU64::new(0),
            paused: Mutex::new(false),
            unpaused: Condvar::new(),
        });
        let (tx, rx) = channel::<AssignJob>();
        let batcher_shared = Arc::clone(&shared);
        std::thread::spawn(move || batcher(batcher_shared, rx, batch_cap));
        Ok(ServeEngine { shared, jobs: tx })
    }

    /// The currently installed model version (the batcher may still be
    /// finishing a batch on an older one).
    pub fn current(&self) -> Arc<ModelVersion> {
        Arc::clone(&self.shared.current.read().expect("model lock poisoned"))
    }

    /// Assigns `points` through the batch queue and waits for the reply —
    /// the path every session request takes. With `want_labels` false the
    /// reply's label vector is left empty (cost queries skip the payload).
    pub fn assign(&self, points: PointMatrix, want_labels: bool) -> Result<AssignReply, WireError> {
        self.assign_deadline(points, want_labels, None)
    }

    /// [`ServeEngine::assign`] with an optional deadline budget in
    /// milliseconds, measured from admission: if the request is still
    /// queued when the budget expires, the batcher answers
    /// [`WireError::DeadlineExceeded`] without running the sweep.
    /// Requests that would overflow the admission queue are shed here
    /// with [`WireError::Overloaded`]; during a drain new requests get
    /// [`WireError::Draining`].
    pub fn assign_deadline(
        &self,
        points: PointMatrix,
        want_labels: bool,
        deadline_ms: Option<u64>,
    ) -> Result<AssignReply, WireError> {
        let s = &self.shared;
        let n = points.len() as u64;
        if s.draining.load(Ordering::SeqCst) {
            return Err(self.reject_draining());
        }
        // Reserve queue space, or shed. The reservation is released when
        // the reply is handed back (admitted-but-unanswered accounting).
        // `queued == 0` always admits, so one request larger than the cap
        // cannot wedge an idle server.
        let mut queued = s.queued_points.load(Ordering::SeqCst);
        loop {
            if queued != 0 && queued.saturating_add(n) > s.queue_cap {
                s.shed_requests.fetch_add(1, Ordering::Relaxed);
                s.shed_points.fetch_add(n, Ordering::Relaxed);
                let cap = s.queue_cap;
                s.recorder.instant("serve:shed", SERVE_CAT, || {
                    vec![
                        arg_u64("queued_points", queued),
                        arg_u64("request_points", n),
                        arg_u64("cap", cap),
                    ]
                });
                return Err(WireError::Overloaded {
                    queued_points: queued,
                    cap,
                });
            }
            match s.queued_points.compare_exchange(
                queued,
                queued + n,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(actual) => queued = actual,
            }
        }
        // Double-check after reserving: a drain that raced the
        // reservation must not strand points in the queue counter (the
        // drain watcher waits for it to reach zero).
        if s.draining.load(Ordering::SeqCst) {
            s.queued_points.fetch_sub(n, Ordering::SeqCst);
            return Err(self.reject_draining());
        }
        let t0 = s.clock.now_ns();
        let deadline = deadline_ms.map(|ms| (t0.saturating_add(ms.saturating_mul(1_000_000)), ms));
        let (tx, rx) = channel();
        if self
            .jobs
            .send(AssignJob {
                points,
                want_labels,
                deadline,
                reply: tx,
            })
            .is_err()
        {
            s.queued_points.fetch_sub(n, Ordering::SeqCst);
            return Err(WireError::Data("assignment engine is gone".into()));
        }
        let reply = match rx.recv() {
            Ok(reply) => reply,
            Err(_) => {
                // The batcher releases the reservation before every
                // reply; a dropped reply sender means it never got there.
                s.queued_points.fetch_sub(n, Ordering::SeqCst);
                return Err(WireError::Data(
                    "assignment engine dropped the request".into(),
                ));
            }
        };
        // Submit → reply covers queue wait plus the batch sweep — the
        // latency a session actually observes.
        let dur = s.clock.now_ns().saturating_sub(t0);
        s.request_hist
            .lock()
            .expect("request histogram lock poisoned")
            .record(dur);
        reply
    }

    fn reject_draining(&self) -> WireError {
        self.shared.drain_rejected.fetch_add(1, Ordering::Relaxed);
        self.shared
            .recorder
            .instant("serve:drain-reject", SERVE_CAT, Vec::new);
        WireError::Draining
    }

    /// Flips the engine into drain mode (idempotent): new submissions are
    /// rejected with [`WireError::Draining`], admitted work completes.
    /// Returns the points admitted-but-unanswered at the flip.
    pub fn drain(&self) -> u64 {
        self.shared.draining.store(true, Ordering::SeqCst);
        let queued = self.shared.queued_points.load(Ordering::SeqCst);
        self.shared.recorder.instant("serve:drain", SERVE_CAT, || {
            vec![arg_u64("queued_points", queued)]
        });
        queued
    }

    /// Whether a drain has begun (readiness should report down).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Whether a drain has begun *and* every admitted request has been
    /// answered *and* every received reply has been flushed to its peer
    /// ([`ServeEngine::reply_guard`]) — the point at which the server
    /// process may exit without losing work.
    pub fn is_drained(&self) -> bool {
        self.is_draining()
            && self.shared.queued_points.load(Ordering::SeqCst) == 0
            && self.shared.busy_replies.load(Ordering::SeqCst) == 0
    }

    /// RAII marker a session holds from receiving a request until its
    /// reply is flushed to the peer; [`ServeEngine::is_drained`] stays
    /// false while any are live, so drain-exit cannot cut off a reply
    /// that the engine has finished but the socket has not.
    pub fn reply_guard(&self) -> ReplyGuard {
        self.shared.busy_replies.fetch_add(1, Ordering::SeqCst);
        ReplyGuard {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Points currently admitted but not yet answered.
    pub fn queued_points(&self) -> u64 {
        self.shared.queued_points.load(Ordering::SeqCst)
    }

    /// The admission cap, in points.
    pub fn queue_cap(&self) -> u64 {
        self.shared.queue_cap
    }

    /// The per-batch point cap — the natural chunk size for a client
    /// streaming a large input (advertised in `ModelInfo`).
    pub fn batch_cap(&self) -> u64 {
        self.shared.batch_cap
    }

    /// Chaos-test hook (in the spirit of `kmeans_cluster::fault`): holds
    /// the batcher before its next batch until the guard drops, so tests
    /// can fill the admission queue deterministically and observe
    /// overload/deadline behavior without timing races.
    pub fn pause(&self) -> PauseGuard {
        *self.shared.paused.lock().expect("pause lock poisoned") = true;
        PauseGuard {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Decodes an `SKMMDL01` image and atomically installs it, returning
    /// `(revision, k, dim)` of the new model. Disk loads and wire swaps
    /// share this validation path.
    pub fn swap_model_bytes(&self, image: &[u8]) -> Result<(u64, u64, u32), WireError> {
        let record = decode_model(image).map_err(|e| WireError::Data(e.to_string()))?;
        self.swap_record(record)
    }

    /// Atomically installs a decoded model record (see module docs for
    /// the swap semantics), returning `(revision, k, dim)`.
    pub fn swap_record(&self, record: ModelRecord) -> Result<(u64, u64, u32), WireError> {
        // Prepare outside the lock: a slow kernel build must not block
        // readers (the batcher's Arc clone) any longer than the pointer
        // swap itself.
        let mut version = ModelVersion::build(record, 0, &self.shared.executor)?;
        let k = version.predictor.k() as u64;
        let dim = version.predictor.dim() as u32;
        let mut current = self.shared.current.write().expect("model lock poisoned");
        version.revision = current.revision + 1;
        let revision = version.revision;
        *current = Arc::new(version);
        drop(current);
        self.shared.swaps.fetch_add(1, Ordering::Relaxed);
        // Rebase the per-revision counters: a swap is a timestamped
        // revision boundary, and everything counted after it belongs to
        // the new revision. (In-flight batches finishing on the old
        // version may land just after the base — the same benign skew
        // the cumulative counters already have.)
        let s = &self.shared;
        *s.rev_base.lock().expect("revision base lock poisoned") = RevisionBase {
            requests: s.requests.load(Ordering::Relaxed),
            points: s.points.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            installed_ns: s.clock.now_ns(),
        };
        Ok((revision, k, dim))
    }

    /// Cumulative serving statistics, plus the current revision's
    /// rebased counters and the request/batch latency summaries.
    pub fn stats(&self) -> ServeStats {
        let s = &self.shared;
        let base = *s.rev_base.lock().expect("revision base lock poisoned");
        let requests = s.requests.load(Ordering::Relaxed);
        let points = s.points.load(Ordering::Relaxed);
        let batches = s.batches.load(Ordering::Relaxed);
        ServeStats {
            revision: self.current().revision,
            requests,
            points,
            batches,
            max_batch_points: s.max_batch_points.load(Ordering::Relaxed),
            swaps: s.swaps.load(Ordering::Relaxed),
            distance_computations: s.distance_computations.load(Ordering::Relaxed),
            pruned_by_norm_bound: s.pruned_by_norm_bound.load(Ordering::Relaxed),
            revision_requests: requests.saturating_sub(base.requests),
            revision_points: points.saturating_sub(base.points),
            revision_batches: batches.saturating_sub(base.batches),
            revision_installed_ns: base.installed_ns,
            request_latency: s
                .request_hist
                .lock()
                .expect("request histogram lock poisoned")
                .summary(),
            batch_latency: s
                .batch_hist
                .lock()
                .expect("batch histogram lock poisoned")
                .summary(),
            shed_requests: s.shed_requests.load(Ordering::Relaxed),
            shed_points: s.shed_points.load(Ordering::Relaxed),
            deadline_exceeded: s.deadline_exceeded.load(Ordering::Relaxed),
            drain_rejected: s.drain_rejected.load(Ordering::Relaxed),
            queued_points: s.queued_points.load(Ordering::SeqCst),
            queue_cap: s.queue_cap,
            draining: s.draining.load(Ordering::SeqCst),
        }
    }

    /// Asks the accept loop to exit (set by a `Shutdown` request).
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// Marks one in-flight session reply (see [`ServeEngine::reply_guard`]);
/// dropping it records the reply as flushed.
pub struct ReplyGuard {
    shared: Arc<Shared>,
}

impl Drop for ReplyGuard {
    fn drop(&mut self) {
        self.shared.busy_replies.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Holds the batcher paused (see [`ServeEngine::pause`]); dropping it
/// resumes batching.
pub struct PauseGuard {
    shared: Arc<Shared>,
}

impl Drop for PauseGuard {
    fn drop(&mut self) {
        *self.shared.paused.lock().expect("pause lock poisoned") = false;
        self.shared.unpaused.notify_all();
    }
}

/// Releases a job's admission reservation and hands back its reply.
/// Every admitted job leaves the engine through here exactly once.
fn finish(shared: &Shared, job: AssignJob, reply: Result<AssignReply, WireError>) {
    shared
        .queued_points
        .fetch_sub(job.points.len() as u64, Ordering::SeqCst);
    // A client that disconnected mid-request just drops its receiver;
    // the batch carries on for everyone else.
    let _ = job.reply.send(reply);
}

fn batcher(shared: Arc<Shared>, rx: Receiver<AssignJob>, cap: usize) {
    // recv() fails only when every engine handle (and with them all job
    // senders) is gone — the engine's natural end of life.
    while let Ok(first) = rx.recv() {
        // Chaos-test hook: hold the batch here while paused, letting
        // tests fill the queue behind a stalled batcher.
        {
            let mut paused = shared.paused.lock().expect("pause lock poisoned");
            while *paused {
                paused = shared.unpaused.wait(paused).expect("pause lock poisoned");
            }
        }
        let mut jobs = vec![first];
        let mut total = jobs[0].points.len();
        while total < cap {
            match rx.try_recv() {
                Ok(job) => {
                    total += job.points.len();
                    jobs.push(job);
                }
                Err(_) => break,
            }
        }
        let version = Arc::clone(&shared.current.read().expect("model lock poisoned"));
        let dim = version.predictor.dim();
        let now = shared.clock.now_ns();
        let mut valid = Vec::with_capacity(jobs.len());
        for job in jobs {
            if let Some((abs_ns, budget_ms)) = job.deadline {
                if now > abs_ns {
                    // The budget expired while the request sat in the
                    // queue: answer typed, spend no kernel work on it.
                    shared.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                    shared
                        .recorder
                        .instant("serve:deadline-exceeded", SERVE_CAT, || {
                            vec![arg_u64("budget_ms", budget_ms)]
                        });
                    finish(&shared, job, Err(WireError::DeadlineExceeded { budget_ms }));
                    continue;
                }
            }
            if job.points.dim() != dim {
                let err = KMeansError::DimensionMismatch {
                    expected: dim,
                    got: job.points.dim(),
                };
                finish(&shared, job, Err(err.into()));
            } else {
                valid.push(job);
            }
        }
        if valid.is_empty() {
            continue;
        }
        let mut flat = Vec::with_capacity(valid.iter().map(|j| j.points.as_slice().len()).sum());
        for job in &valid {
            flat.extend_from_slice(job.points.as_slice());
        }
        let batch = PointMatrix::from_flat(flat, dim).expect("concatenation of same-dim matrices");
        let batch_points = batch.len();
        let t0 = shared.clock.now_ns();
        let (labels, d2, kstats) = version
            .predictor
            .assign(&batch)
            .expect("dimensionality checked per job");
        let sweep_ns = shared.clock.now_ns().saturating_sub(t0);
        shared
            .batch_hist
            .lock()
            .expect("batch histogram lock poisoned")
            .record(sweep_ns);
        // Account the batch before any reply goes out: a client that
        // reads its reply and immediately fetches stats must see its own
        // request counted.
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .max_batch_points
            .fetch_max(batch_points as u64, Ordering::Relaxed);
        shared
            .distance_computations
            .fetch_add(kstats.distance_computations, Ordering::Relaxed);
        shared
            .pruned_by_norm_bound
            .fetch_add(kstats.pruned_by_norm_bound, Ordering::Relaxed);
        let mut offset = 0;
        for job in valid {
            let n = job.points.len();
            let cost = version.predictor.cost_from_d2(&d2[offset..offset + n]);
            let reply = AssignReply {
                revision: version.revision,
                labels: if job.want_labels {
                    labels[offset..offset + n].to_vec()
                } else {
                    Vec::new()
                },
                cost,
            };
            offset += n;
            shared.requests.fetch_add(1, Ordering::Relaxed);
            shared.points.fetch_add(n as u64, Ordering::Relaxed);
            finish(&shared, job, Ok(reply));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmeans_core::model::KMeans;
    use kmeans_par::Parallelism;

    fn fitted_record(seed: u64) -> (PointMatrix, ModelRecord) {
        let mut m = PointMatrix::new(2);
        for (cx, cy) in [(0.0, 0.0), (40.0, 0.0), (0.0, 40.0)] {
            for i in 0..40 {
                m.push(&[cx + (i % 5) as f64 * 0.2, cy + (i / 5) as f64 * 0.2])
                    .unwrap();
            }
        }
        let model = KMeans::params(3)
            .seed(seed)
            .parallelism(Parallelism::Sequential)
            .fit(&m)
            .unwrap();
        (m, model.to_record())
    }

    #[test]
    fn engine_matches_local_predict_bitwise() {
        let (points, record) = fitted_record(1);
        let local = kmeans_core::KMeansModel::from_record(
            record.clone(),
            Executor::new(Parallelism::Sequential),
        );
        let engine = ServeEngine::new(record, Executor::new(Parallelism::Sequential)).unwrap();
        let reply = engine.assign(points.clone(), true).unwrap();
        assert_eq!(reply.revision, 1);
        assert_eq!(reply.labels, local.predict(&points).unwrap());
        assert_eq!(
            reply.cost.to_bits(),
            local.cost_of(&points).unwrap().to_bits()
        );
        let cost_only = engine.assign(points.clone(), false).unwrap();
        assert!(cost_only.labels.is_empty());
        assert_eq!(cost_only.cost.to_bits(), reply.cost.to_bits());
        let stats = engine.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.points, 2 * points.len() as u64);
        assert!(stats.batches >= 1);
    }

    #[test]
    fn dimension_mismatch_is_typed_and_session_survivable() {
        let (_, record) = fitted_record(2);
        let engine = ServeEngine::new(record, Executor::new(Parallelism::Sequential)).unwrap();
        let wrong = PointMatrix::from_flat(vec![1.0, 2.0, 3.0], 3).unwrap();
        let err = engine.assign(wrong, true).unwrap_err();
        assert!(matches!(err, WireError::DimensionMismatch { .. }));
        // The engine still answers afterwards.
        let ok = PointMatrix::from_flat(vec![1.0, 2.0], 2).unwrap();
        assert!(engine.assign(ok, true).is_ok());
    }

    #[test]
    fn swap_bumps_revision_and_changes_answers() {
        let (points, record) = fitted_record(3);
        let (_, other) = fitted_record(4);
        let engine =
            ServeEngine::new(record.clone(), Executor::new(Parallelism::Sequential)).unwrap();
        assert_eq!(engine.current().revision, 1);
        let before = engine.assign(points.clone(), true).unwrap();
        assert_eq!(before.revision, 1);
        let (rev, k, dim) = engine
            .swap_model_bytes(&kmeans_data::encode_model(&other).unwrap())
            .unwrap();
        assert_eq!(rev, 2);
        assert_eq!(k, 3);
        assert_eq!(dim, 2);
        let after = engine.assign(points, true).unwrap();
        assert_eq!(after.revision, 2);
        assert_eq!(engine.stats().swaps, 1);
        // Garbage image is rejected without disturbing the installed model.
        assert!(matches!(
            engine.swap_model_bytes(b"not a model"),
            Err(WireError::Data(_))
        ));
        assert_eq!(engine.current().revision, 2);
    }

    fn spin_until(deadline: std::time::Duration, mut f: impl FnMut() -> bool) {
        let start = std::time::Instant::now();
        while !f() {
            assert!(start.elapsed() < deadline, "condition not reached in time");
            std::thread::yield_now();
        }
    }

    #[test]
    fn overload_sheds_typed_while_admitted_replies_stay_bit_identical() {
        let (points, record) = fitted_record(5);
        let n = points.len();
        let local = kmeans_core::KMeansModel::from_record(
            record.clone(),
            Executor::new(Parallelism::Sequential),
        );
        let engine = ServeEngine::with_config(
            record,
            Executor::new(Parallelism::Sequential),
            EngineConfig {
                queue_cap: n,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let guard = engine.pause();
        // Fill the queue exactly to the cap behind the stalled batcher.
        let admitted = {
            let engine = engine.clone();
            let points = points.clone();
            std::thread::spawn(move || engine.assign(points, true))
        };
        spin_until(std::time::Duration::from_secs(10), || {
            engine.queued_points() == n as u64
        });
        // The next request is shed synchronously, typed, without ever
        // touching the queue or the kernel.
        let shed = engine.assign(points.clone(), true).unwrap_err();
        assert_eq!(
            shed,
            WireError::Overloaded {
                queued_points: n as u64,
                cap: n as u64,
            }
        );
        let stats = engine.stats();
        assert_eq!(stats.shed_requests, 1);
        assert_eq!(stats.shed_points, n as u64);
        assert_eq!(stats.queue_cap, n as u64);
        drop(guard);
        // The admitted request completes bit-identically to local predict
        // — shedding never perturbed it.
        let reply = admitted.join().unwrap().unwrap();
        assert_eq!(reply.labels, local.predict(&points).unwrap());
        assert_eq!(
            reply.cost.to_bits(),
            local.cost_of(&points).unwrap().to_bits()
        );
        assert_eq!(engine.queued_points(), 0);
    }

    #[test]
    fn oversized_request_is_admitted_when_queue_is_empty() {
        let (points, record) = fitted_record(6);
        let engine = ServeEngine::with_config(
            record,
            Executor::new(Parallelism::Sequential),
            EngineConfig {
                queue_cap: 1,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        // points.len() >> 1, but the queue is empty: always admitted.
        assert!(engine.assign(points, true).is_ok());
    }

    #[test]
    fn drain_completes_admitted_work_and_rejects_new() {
        let (points, record) = fitted_record(7);
        let engine = ServeEngine::new(record, Executor::new(Parallelism::Sequential)).unwrap();
        let guard = engine.pause();
        let admitted = {
            let engine = engine.clone();
            let points = points.clone();
            std::thread::spawn(move || engine.assign(points, true))
        };
        spin_until(std::time::Duration::from_secs(10), || {
            engine.queued_points() > 0
        });
        let queued = engine.drain();
        assert_eq!(queued, points.len() as u64);
        assert!(engine.is_draining());
        assert!(!engine.is_drained());
        // New work is rejected typed while the drain runs.
        assert_eq!(
            engine.assign(points, true).unwrap_err(),
            WireError::Draining
        );
        // Drain is idempotent.
        assert_eq!(engine.drain(), queued);
        drop(guard);
        assert!(admitted.join().unwrap().is_ok());
        spin_until(std::time::Duration::from_secs(10), || engine.is_drained());
        let stats = engine.stats();
        assert_eq!(stats.drain_rejected, 1);
        assert!(stats.draining);
        assert_eq!(stats.queued_points, 0);
    }

    #[test]
    fn expired_deadline_is_typed_and_skips_the_kernel() {
        let (points, record) = fitted_record(8);
        let clock = kmeans_obs::FakeClock::new(0);
        let engine = ServeEngine::with_config(
            record,
            Executor::new(Parallelism::Sequential),
            EngineConfig {
                clock: Arc::new(clock.clone()),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        // An unexpired budget answers normally.
        let ok = engine
            .assign_deadline(points.clone(), true, Some(1_000))
            .unwrap();
        assert!(!ok.labels.is_empty());
        // Stall the batcher, admit a deadlined request, and expire its
        // budget before the batcher dequeues it.
        let guard = engine.pause();
        let late = {
            let engine = engine.clone();
            let points = points.clone();
            std::thread::spawn(move || engine.assign_deadline(points, true, Some(5)))
        };
        spin_until(std::time::Duration::from_secs(10), || {
            engine.queued_points() > 0
        });
        clock.advance(6_000_000);
        drop(guard);
        assert_eq!(
            late.join().unwrap().unwrap_err(),
            WireError::DeadlineExceeded { budget_ms: 5 }
        );
        let stats = engine.stats();
        assert_eq!(stats.deadline_exceeded, 1);
        // The expired request never ran a sweep or counted as answered.
        assert_eq!(stats.requests, 1);
        assert_eq!(engine.queued_points(), 0);
    }
}
