//! The batch assignment engine behind every serve session: one prepared
//! kernel per model revision, a micro-batching queue that funnels
//! concurrent requests through it, and the atomic hot-swap path.
//!
//! ## Batching and amortization
//!
//! Each connection handler submits its request to a shared queue and
//! blocks on a private reply channel. A single batcher thread drains the
//! queue, concatenates the pending requests into one matrix, and runs
//! one [`PreparedPredictor::assign`] sweep over the whole batch — the
//! kernel's `O(k·d + k log k)` preparation was paid once at model
//! install, and the per-batch sweep parallelizes across the executor's
//! threads. Per-point labels and `d²` are pure functions of (point,
//! centers), so slicing the batch outputs at request boundaries yields
//! exactly what each request would have gotten alone; per-request cost
//! is re-folded on the request's own shard grid
//! ([`PreparedPredictor::cost_from_d2`]), keeping served costs
//! bit-identical to a local `cost_of`.
//!
//! ## Hot-swap semantics
//!
//! The installed model lives behind `RwLock<Arc<ModelVersion>>`. A swap
//! prepares the replacement kernel *outside* the lock, then replaces the
//! `Arc` under a brief write lock and bumps the revision. The batcher
//! clones the `Arc` once per batch, so an in-flight batch finishes on
//! the version it started with and every reply is tagged with the
//! revision that computed it — no request ever mixes versions.

use crate::protocol::ServeStats;
use kmeans_cluster::protocol::WireError;
use kmeans_core::{KMeansError, PreparedPredictor};
use kmeans_data::{decode_model, ModelRecord, PointMatrix};
use kmeans_obs::{Clock, LatencyHistogram, MonotonicClock};
use kmeans_par::Executor;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, RwLock};

/// Default cap on the points gathered into one kernel batch. Draining
/// stops at the cap, so a burst of large requests cannot starve later
/// arrivals behind one enormous sweep.
pub const DEFAULT_MAX_BATCH_POINTS: usize = 1 << 16;

/// One installed model: the prepared kernel plus the descriptor fields
/// served by `ModelInfo`.
#[derive(Debug)]
pub struct ModelVersion {
    /// Monotonic revision (1 = the model the engine started with).
    pub revision: u64,
    /// Training cost recorded in the model file.
    pub cost: f64,
    /// Initializer name recorded in the model file.
    pub init_name: String,
    /// Refiner name recorded in the model file.
    pub refiner_name: String,
    predictor: PreparedPredictor,
}

impl ModelVersion {
    fn build(record: ModelRecord, revision: u64, executor: &Executor) -> Result<Self, WireError> {
        if record.centers.is_empty() {
            return Err(KMeansError::EmptyInput.into());
        }
        Ok(ModelVersion {
            revision,
            cost: record.cost,
            init_name: record.init_name,
            refiner_name: record.refiner_name,
            predictor: PreparedPredictor::new(record.centers, executor.clone()),
        })
    }

    /// The prepared assignment engine of this version.
    pub fn predictor(&self) -> &PreparedPredictor {
        &self.predictor
    }
}

/// One request's batch result.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignReply {
    /// Revision of the model that computed this reply.
    pub revision: u64,
    /// Per-point labels (empty when the request asked for cost only).
    pub labels: Vec<u32>,
    /// Potential of the request's points, bit-identical to a local
    /// `cost_of` on the same points.
    pub cost: f64,
}

struct AssignJob {
    points: PointMatrix,
    want_labels: bool,
    reply: Sender<Result<AssignReply, WireError>>,
}

/// Counter snapshot taken at each swap: the base the current revision's
/// per-revision counters are measured against.
#[derive(Clone, Copy, Default)]
struct RevisionBase {
    requests: u64,
    points: u64,
    batches: u64,
    installed_ns: u64,
}

struct Shared {
    current: RwLock<Arc<ModelVersion>>,
    executor: Executor,
    shutdown: AtomicBool,
    requests: AtomicU64,
    points: AtomicU64,
    batches: AtomicU64,
    max_batch_points: AtomicU64,
    swaps: AtomicU64,
    distance_computations: AtomicU64,
    pruned_by_norm_bound: AtomicU64,
    clock: MonotonicClock,
    request_hist: Mutex<LatencyHistogram>,
    batch_hist: Mutex<LatencyHistogram>,
    rev_base: Mutex<RevisionBase>,
}

/// Handle to one serving engine. Cheap to clone; every session holds a
/// clone and submits through the shared micro-batch queue.
#[derive(Clone)]
pub struct ServeEngine {
    shared: Arc<Shared>,
    jobs: Sender<AssignJob>,
}

impl ServeEngine {
    /// Installs `record` as revision 1 and starts the batcher thread,
    /// with the default batch cap.
    pub fn new(record: ModelRecord, executor: Executor) -> Result<Self, KMeansError> {
        Self::with_batch_cap(record, executor, DEFAULT_MAX_BATCH_POINTS)
    }

    /// Like [`ServeEngine::new`] with an explicit cap on points per
    /// kernel batch.
    pub fn with_batch_cap(
        record: ModelRecord,
        executor: Executor,
        max_batch_points: usize,
    ) -> Result<Self, KMeansError> {
        let version = ModelVersion::build(record, 1, &executor).map_err(KMeansError::from)?;
        let shared = Arc::new(Shared {
            current: RwLock::new(Arc::new(version)),
            executor,
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            points: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch_points: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            distance_computations: AtomicU64::new(0),
            pruned_by_norm_bound: AtomicU64::new(0),
            clock: MonotonicClock::new(),
            request_hist: Mutex::new(LatencyHistogram::new()),
            batch_hist: Mutex::new(LatencyHistogram::new()),
            rev_base: Mutex::new(RevisionBase::default()),
        });
        let (tx, rx) = channel::<AssignJob>();
        let batcher_shared = Arc::clone(&shared);
        std::thread::spawn(move || batcher(batcher_shared, rx, max_batch_points.max(1)));
        Ok(ServeEngine { shared, jobs: tx })
    }

    /// The currently installed model version (the batcher may still be
    /// finishing a batch on an older one).
    pub fn current(&self) -> Arc<ModelVersion> {
        Arc::clone(&self.shared.current.read().expect("model lock poisoned"))
    }

    /// Assigns `points` through the batch queue and waits for the reply —
    /// the path every session request takes. With `want_labels` false the
    /// reply's label vector is left empty (cost queries skip the payload).
    pub fn assign(&self, points: PointMatrix, want_labels: bool) -> Result<AssignReply, WireError> {
        let t0 = self.shared.clock.now_ns();
        let (tx, rx) = channel();
        self.jobs
            .send(AssignJob {
                points,
                want_labels,
                reply: tx,
            })
            .map_err(|_| WireError::Data("assignment engine is gone".into()))?;
        let reply = rx
            .recv()
            .map_err(|_| WireError::Data("assignment engine dropped the request".into()))?;
        // Submit → reply covers queue wait plus the batch sweep — the
        // latency a session actually observes.
        let dur = self.shared.clock.now_ns().saturating_sub(t0);
        self.shared
            .request_hist
            .lock()
            .expect("request histogram lock poisoned")
            .record(dur);
        reply
    }

    /// Decodes an `SKMMDL01` image and atomically installs it, returning
    /// `(revision, k, dim)` of the new model. Disk loads and wire swaps
    /// share this validation path.
    pub fn swap_model_bytes(&self, image: &[u8]) -> Result<(u64, u64, u32), WireError> {
        let record = decode_model(image).map_err(|e| WireError::Data(e.to_string()))?;
        self.swap_record(record)
    }

    /// Atomically installs a decoded model record (see module docs for
    /// the swap semantics), returning `(revision, k, dim)`.
    pub fn swap_record(&self, record: ModelRecord) -> Result<(u64, u64, u32), WireError> {
        // Prepare outside the lock: a slow kernel build must not block
        // readers (the batcher's Arc clone) any longer than the pointer
        // swap itself.
        let mut version = ModelVersion::build(record, 0, &self.shared.executor)?;
        let k = version.predictor.k() as u64;
        let dim = version.predictor.dim() as u32;
        let mut current = self.shared.current.write().expect("model lock poisoned");
        version.revision = current.revision + 1;
        let revision = version.revision;
        *current = Arc::new(version);
        drop(current);
        self.shared.swaps.fetch_add(1, Ordering::Relaxed);
        // Rebase the per-revision counters: a swap is a timestamped
        // revision boundary, and everything counted after it belongs to
        // the new revision. (In-flight batches finishing on the old
        // version may land just after the base — the same benign skew
        // the cumulative counters already have.)
        let s = &self.shared;
        *s.rev_base.lock().expect("revision base lock poisoned") = RevisionBase {
            requests: s.requests.load(Ordering::Relaxed),
            points: s.points.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            installed_ns: s.clock.now_ns(),
        };
        Ok((revision, k, dim))
    }

    /// Cumulative serving statistics, plus the current revision's
    /// rebased counters and the request/batch latency summaries.
    pub fn stats(&self) -> ServeStats {
        let s = &self.shared;
        let base = *s.rev_base.lock().expect("revision base lock poisoned");
        let requests = s.requests.load(Ordering::Relaxed);
        let points = s.points.load(Ordering::Relaxed);
        let batches = s.batches.load(Ordering::Relaxed);
        ServeStats {
            revision: self.current().revision,
            requests,
            points,
            batches,
            max_batch_points: s.max_batch_points.load(Ordering::Relaxed),
            swaps: s.swaps.load(Ordering::Relaxed),
            distance_computations: s.distance_computations.load(Ordering::Relaxed),
            pruned_by_norm_bound: s.pruned_by_norm_bound.load(Ordering::Relaxed),
            revision_requests: requests.saturating_sub(base.requests),
            revision_points: points.saturating_sub(base.points),
            revision_batches: batches.saturating_sub(base.batches),
            revision_installed_ns: base.installed_ns,
            request_latency: s
                .request_hist
                .lock()
                .expect("request histogram lock poisoned")
                .summary(),
            batch_latency: s
                .batch_hist
                .lock()
                .expect("batch histogram lock poisoned")
                .summary(),
        }
    }

    /// Asks the accept loop to exit (set by a `Shutdown` request).
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

fn batcher(shared: Arc<Shared>, rx: Receiver<AssignJob>, cap: usize) {
    // recv() fails only when every engine handle (and with them all job
    // senders) is gone — the engine's natural end of life.
    while let Ok(first) = rx.recv() {
        let mut jobs = vec![first];
        let mut total = jobs[0].points.len();
        while total < cap {
            match rx.try_recv() {
                Ok(job) => {
                    total += job.points.len();
                    jobs.push(job);
                }
                Err(_) => break,
            }
        }
        let version = Arc::clone(&shared.current.read().expect("model lock poisoned"));
        let dim = version.predictor.dim();
        let mut valid = Vec::with_capacity(jobs.len());
        for job in jobs {
            if job.points.dim() != dim {
                let _ = job.reply.send(Err(KMeansError::DimensionMismatch {
                    expected: dim,
                    got: job.points.dim(),
                }
                .into()));
            } else {
                valid.push(job);
            }
        }
        if valid.is_empty() {
            continue;
        }
        let mut flat = Vec::with_capacity(valid.iter().map(|j| j.points.as_slice().len()).sum());
        for job in &valid {
            flat.extend_from_slice(job.points.as_slice());
        }
        let batch = PointMatrix::from_flat(flat, dim).expect("concatenation of same-dim matrices");
        let batch_points = batch.len();
        let t0 = shared.clock.now_ns();
        let (labels, d2, kstats) = version
            .predictor
            .assign(&batch)
            .expect("dimensionality checked per job");
        let sweep_ns = shared.clock.now_ns().saturating_sub(t0);
        shared
            .batch_hist
            .lock()
            .expect("batch histogram lock poisoned")
            .record(sweep_ns);
        // Account the batch before any reply goes out: a client that
        // reads its reply and immediately fetches stats must see its own
        // request counted.
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .max_batch_points
            .fetch_max(batch_points as u64, Ordering::Relaxed);
        shared
            .distance_computations
            .fetch_add(kstats.distance_computations, Ordering::Relaxed);
        shared
            .pruned_by_norm_bound
            .fetch_add(kstats.pruned_by_norm_bound, Ordering::Relaxed);
        let mut offset = 0;
        for job in valid {
            let n = job.points.len();
            let cost = version.predictor.cost_from_d2(&d2[offset..offset + n]);
            let reply = AssignReply {
                revision: version.revision,
                labels: if job.want_labels {
                    labels[offset..offset + n].to_vec()
                } else {
                    Vec::new()
                },
                cost,
            };
            offset += n;
            shared.requests.fetch_add(1, Ordering::Relaxed);
            shared.points.fetch_add(n as u64, Ordering::Relaxed);
            // A client that disconnected mid-request just drops its
            // receiver; the batch carries on for everyone else.
            let _ = job.reply.send(Ok(reply));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmeans_core::model::KMeans;
    use kmeans_par::Parallelism;

    fn fitted_record(seed: u64) -> (PointMatrix, ModelRecord) {
        let mut m = PointMatrix::new(2);
        for (cx, cy) in [(0.0, 0.0), (40.0, 0.0), (0.0, 40.0)] {
            for i in 0..40 {
                m.push(&[cx + (i % 5) as f64 * 0.2, cy + (i / 5) as f64 * 0.2])
                    .unwrap();
            }
        }
        let model = KMeans::params(3)
            .seed(seed)
            .parallelism(Parallelism::Sequential)
            .fit(&m)
            .unwrap();
        (m, model.to_record())
    }

    #[test]
    fn engine_matches_local_predict_bitwise() {
        let (points, record) = fitted_record(1);
        let local = kmeans_core::KMeansModel::from_record(
            record.clone(),
            Executor::new(Parallelism::Sequential),
        );
        let engine = ServeEngine::new(record, Executor::new(Parallelism::Sequential)).unwrap();
        let reply = engine.assign(points.clone(), true).unwrap();
        assert_eq!(reply.revision, 1);
        assert_eq!(reply.labels, local.predict(&points).unwrap());
        assert_eq!(
            reply.cost.to_bits(),
            local.cost_of(&points).unwrap().to_bits()
        );
        let cost_only = engine.assign(points.clone(), false).unwrap();
        assert!(cost_only.labels.is_empty());
        assert_eq!(cost_only.cost.to_bits(), reply.cost.to_bits());
        let stats = engine.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.points, 2 * points.len() as u64);
        assert!(stats.batches >= 1);
    }

    #[test]
    fn dimension_mismatch_is_typed_and_session_survivable() {
        let (_, record) = fitted_record(2);
        let engine = ServeEngine::new(record, Executor::new(Parallelism::Sequential)).unwrap();
        let wrong = PointMatrix::from_flat(vec![1.0, 2.0, 3.0], 3).unwrap();
        let err = engine.assign(wrong, true).unwrap_err();
        assert!(matches!(err, WireError::DimensionMismatch { .. }));
        // The engine still answers afterwards.
        let ok = PointMatrix::from_flat(vec![1.0, 2.0], 2).unwrap();
        assert!(engine.assign(ok, true).is_ok());
    }

    #[test]
    fn swap_bumps_revision_and_changes_answers() {
        let (points, record) = fitted_record(3);
        let (_, other) = fitted_record(4);
        let engine =
            ServeEngine::new(record.clone(), Executor::new(Parallelism::Sequential)).unwrap();
        assert_eq!(engine.current().revision, 1);
        let before = engine.assign(points.clone(), true).unwrap();
        assert_eq!(before.revision, 1);
        let (rev, k, dim) = engine
            .swap_model_bytes(&kmeans_data::encode_model(&other).unwrap())
            .unwrap();
        assert_eq!(rev, 2);
        assert_eq!(k, 3);
        assert_eq!(dim, 2);
        let after = engine.assign(points, true).unwrap();
        assert_eq!(after.revision, 2);
        assert_eq!(engine.stats().swaps, 1);
        // Garbage image is rejected without disturbing the installed model.
        assert!(matches!(
            engine.swap_model_bytes(b"not a model"),
            Err(WireError::Data(_))
        ));
        assert_eq!(engine.current().revision, 2);
    }
}
