//! The serving wire vocabulary: `SKS1` frames carrying predict/cost
//! queries and their model-revision-tagged answers.
//!
//! The frame layout, checksum, cap enforcement, and codec primitives are
//! the shared machinery of `kmeans_cluster::wire`; this module only
//! supplies the vocabulary — a distinct magic (`SKS1` vs. the cluster
//! runtime's `SKW1`, so a serve client that dials a worker port fails
//! with `BadMagic` instead of mis-parsing), the tag map, and per-tag
//! payload codecs. Typed failures reuse the cluster protocol's
//! [`WireError`], so a served error surfaces as the *same*
//! `KMeansError` a local call would produce.
//!
//! Conversation shape (client drives; one reply per request):
//!
//! | request | reply |
//! |---------|-------|
//! | [`ServeMessage::Hello`] | [`ServeMessage::ModelInfo`] |
//! | [`ServeMessage::Predict`] | [`ServeMessage::Labels`] (labels + request cost) |
//! | [`ServeMessage::Cost`] | [`ServeMessage::CostReply`] |
//! | [`ServeMessage::FetchStats`] | [`ServeMessage::Stats`] |
//! | [`ServeMessage::SwapModel`] | [`ServeMessage::SwapOk`] |
//! | [`ServeMessage::Drain`] | [`ServeMessage::DrainOk`] |
//! | [`ServeMessage::Shutdown`] | [`ServeMessage::ShutdownOk`] |
//!
//! Any request may instead draw an [`ServeMessage::Error`] reply; the
//! session stays open.
//!
//! ## Frame-revision tolerance
//!
//! Fields added after the vocabulary first shipped are encoded as
//! *trailing groups*, following the cluster protocol's `Partials`
//! precedent: a decoder that finds the payload exhausted where a newer
//! group would start treats the group as absent (deadline → "no
//! deadline", `ModelInfo` batch cap → 0, overload counters → zeroed) —
//! so revision-1 frames from an older peer still decode, while a
//! *partial* group remains a malformed frame.

use kmeans_cluster::protocol::WireError;
use kmeans_cluster::wire::{Dec, Enc, FrameError, WireMessage};
use kmeans_data::PointMatrix;
use kmeans_obs::HistogramSummary;

/// Frame magic of the serving vocabulary.
pub const SERVE_MAGIC: [u8; 4] = *b"SKS1";

/// A server's cumulative accounting, shipped as the reply to
/// [`ServeMessage::FetchStats`].
///
/// The fields after `pruned_by_norm_bound` are encoded as a trailing
/// group: decoders accept frames without them (older servers) as zeroed
/// values, so a new client degrades gracefully against an old server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Revision of the model currently installed.
    pub revision: u64,
    /// Predict/cost requests answered.
    pub requests: u64,
    /// Points assigned across all requests.
    pub points: u64,
    /// Kernel batches executed (requests ÷ batches = amortization).
    pub batches: u64,
    /// Largest single batch, in points.
    pub max_batch_points: u64,
    /// Model hot-swaps performed.
    pub swaps: u64,
    /// Kernel distance evaluations spent serving.
    pub distance_computations: u64,
    /// Kernel candidates pruned by the norm/coordinate bounds.
    pub pruned_by_norm_bound: u64,
    /// Requests answered under the currently installed revision (the
    /// cumulative counters above never reset; these rebase at each
    /// swap).
    pub revision_requests: u64,
    /// Points assigned under the currently installed revision.
    pub revision_points: u64,
    /// Kernel batches executed under the currently installed revision.
    pub revision_batches: u64,
    /// Engine-monotonic timestamp (ns since engine start) at which the
    /// current revision was installed — 0 for the initial model.
    pub revision_installed_ns: u64,
    /// Request latency (submit → reply) summary, in nanoseconds.
    pub request_latency: HistogramSummary,
    /// Kernel batch sweep latency summary, in nanoseconds.
    pub batch_latency: HistogramSummary,
    /// Requests rejected by admission control (queue full). Second
    /// trailing group, with everything below — older servers decode as
    /// zeroes.
    pub shed_requests: u64,
    /// Points carried by shed requests (they never touched the kernel).
    pub shed_points: u64,
    /// Requests whose deadline budget expired before batching.
    pub deadline_exceeded: u64,
    /// Requests rejected because the server was draining.
    pub drain_rejected: u64,
    /// Points currently admitted but not yet answered.
    pub queued_points: u64,
    /// The admission cap, in points (`--queue-cap`).
    pub queue_cap: u64,
    /// Whether the server is draining (readiness is down; admitted work
    /// still completes).
    pub draining: bool,
}

/// One message of the serve conversation (see module docs for the
/// request/reply pairing).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeMessage {
    /// Client → server: request the model descriptor.
    Hello,
    /// Server → client: the currently installed model.
    ModelInfo {
        /// Monotonic model revision (1 = the model the server loaded).
        revision: u64,
        /// Number of clusters.
        k: u64,
        /// Center dimensionality.
        dim: u32,
        /// Training cost recorded in the model file.
        cost: f64,
        /// Initializer name recorded in the model file.
        init_name: String,
        /// Refiner name recorded in the model file.
        refiner_name: String,
        /// The engine's per-batch point cap — the natural chunk size for
        /// a client streaming a large input. Trailing field: 0 when the
        /// server predates it.
        batch_cap: u64,
    },
    /// Client → server: assign these points. Replies [`ServeMessage::Labels`].
    Predict {
        /// The query points.
        points: PointMatrix,
        /// Optional deadline budget in milliseconds, counted from
        /// admission: if the request is still queued when the budget
        /// expires, the server answers
        /// [`WireError::DeadlineExceeded`] instead of running the sweep.
        /// Trailing field — revision-1 frames decode as `None`.
        deadline_ms: Option<u64>,
    },
    /// Server → client: labels plus the request's potential, all computed
    /// under one model revision.
    Labels {
        /// Revision the batch ran on.
        revision: u64,
        /// Nearest-center label per query point.
        labels: Vec<u32>,
        /// Potential of the query points (`Σ d²`), bit-identical to a
        /// local `cost_of` on the same points.
        cost: f64,
    },
    /// Client → server: potential only (no label payload back). Replies
    /// [`ServeMessage::CostReply`].
    Cost {
        /// The query points.
        points: PointMatrix,
        /// Optional deadline budget in milliseconds (see
        /// [`ServeMessage::Predict::deadline_ms`]).
        deadline_ms: Option<u64>,
    },
    /// Server → client: the request's potential.
    CostReply {
        /// Revision the batch ran on.
        revision: u64,
        /// Number of points costed.
        n: u64,
        /// Potential of the query points.
        cost: f64,
    },
    /// Client → server: request cumulative serving statistics.
    FetchStats,
    /// Server → client: reply to [`ServeMessage::FetchStats`].
    Stats(ServeStats),
    /// Client → server: atomically install a new model. The payload is a
    /// complete `SKMMDL01` image — the same bytes `skm fit --save-model`
    /// writes — so wire and disk share one validation path.
    SwapModel {
        /// `SKMMDL01` image of the replacement model.
        model: Vec<u8>,
    },
    /// Server → client: the swap landed; later batches run the new model.
    SwapOk {
        /// Revision assigned to the installed model.
        revision: u64,
        /// Its cluster count.
        k: u64,
        /// Its dimensionality.
        dim: u32,
    },
    /// Server → client: a typed failure (the session stays open).
    Error(WireError),
    /// Client → server: stop the server. Replies
    /// [`ServeMessage::ShutdownOk`], then the accept loop exits.
    Shutdown,
    /// Server → client: shutdown acknowledged.
    ShutdownOk,
    /// Client → server: begin a graceful drain. Already-admitted work
    /// completes and replies; new requests draw
    /// [`WireError::Draining`]; readiness flips; the server process
    /// exits once the admission queue is empty. Idempotent.
    Drain,
    /// Server → client: the drain has begun.
    DrainOk {
        /// Points admitted but not yet answered at the moment the drain
        /// was accepted — the work the server will still complete.
        queued_points: u64,
    },
}

fn encode_hist_summary(e: &mut Enc, s: &HistogramSummary) {
    e.u64(s.count);
    e.u64(s.sum_ns);
    e.u64(s.p50_ns);
    e.u64(s.p99_ns);
    e.u64(s.p999_ns);
    e.u64(s.max_ns);
}

fn decode_hist_summary(d: &mut Dec<'_>) -> Result<HistogramSummary, FrameError> {
    Ok(HistogramSummary {
        count: d.u64()?,
        sum_ns: d.u64()?,
        p50_ns: d.u64()?,
        p99_ns: d.u64()?,
        p999_ns: d.u64()?,
        max_ns: d.u64()?,
    })
}

fn encode_wire_error(e: &mut Enc, err: &WireError) {
    match err {
        WireError::EmptyInput => e.u8(1),
        WireError::InvalidK { k, n } => {
            e.u8(2);
            e.u64(*k);
            e.u64(*n);
        }
        WireError::DimensionMismatch { expected, got } => {
            e.u8(3);
            e.u64(*expected);
            e.u64(*got);
        }
        WireError::InvalidConfig(m) => {
            e.u8(4);
            e.text(m);
        }
        WireError::NonFiniteData { point, dim } => {
            e.u8(5);
            e.u64(*point);
            e.u64(*dim);
        }
        WireError::Data(m) => {
            e.u8(6);
            e.text(m);
        }
        WireError::Overloaded { queued_points, cap } => {
            e.u8(7);
            e.u64(*queued_points);
            e.u64(*cap);
        }
        WireError::DeadlineExceeded { budget_ms } => {
            e.u8(8);
            e.u64(*budget_ms);
        }
        WireError::Draining => e.u8(9),
    }
}

fn decode_wire_error(d: &mut Dec<'_>) -> Result<WireError, FrameError> {
    let kind = d.u8()?;
    Ok(match kind {
        1 => WireError::EmptyInput,
        2 => WireError::InvalidK {
            k: d.u64()?,
            n: d.u64()?,
        },
        3 => WireError::DimensionMismatch {
            expected: d.u64()?,
            got: d.u64()?,
        },
        4 => WireError::InvalidConfig(d.text()?),
        5 => WireError::NonFiniteData {
            point: d.u64()?,
            dim: d.u64()?,
        },
        6 => WireError::Data(d.text()?),
        7 => WireError::Overloaded {
            queued_points: d.u64()?,
            cap: d.u64()?,
        },
        8 => WireError::DeadlineExceeded {
            budget_ms: d.u64()?,
        },
        9 => WireError::Draining,
        _ => return Err(FrameError::Malformed("unknown error kind")),
    })
}

impl WireMessage for ServeMessage {
    const MAGIC: [u8; 4] = SERVE_MAGIC;

    fn tag(&self) -> u8 {
        match self {
            ServeMessage::Hello => 1,
            ServeMessage::ModelInfo { .. } => 2,
            ServeMessage::Predict { .. } => 3,
            ServeMessage::Labels { .. } => 4,
            ServeMessage::Cost { .. } => 5,
            ServeMessage::CostReply { .. } => 6,
            ServeMessage::FetchStats => 7,
            ServeMessage::Stats(_) => 8,
            ServeMessage::SwapModel { .. } => 9,
            ServeMessage::SwapOk { .. } => 10,
            ServeMessage::Error(_) => 11,
            ServeMessage::Shutdown => 12,
            ServeMessage::ShutdownOk => 13,
            ServeMessage::Drain => 14,
            ServeMessage::DrainOk { .. } => 15,
        }
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            ServeMessage::Hello
            | ServeMessage::FetchStats
            | ServeMessage::Shutdown
            | ServeMessage::ShutdownOk
            | ServeMessage::Drain => {}
            ServeMessage::ModelInfo {
                revision,
                k,
                dim,
                cost,
                init_name,
                refiner_name,
                batch_cap,
            } => {
                e.u64(*revision);
                e.u64(*k);
                e.u32(*dim);
                e.f64(*cost);
                e.text(init_name);
                e.text(refiner_name);
                // Trailing field (decoders accept its absence as 0).
                e.u64(*batch_cap);
            }
            ServeMessage::Predict {
                points,
                deadline_ms,
            }
            | ServeMessage::Cost {
                points,
                deadline_ms,
            } => {
                e.matrix(points);
                // Trailing field: present only when a deadline is set, so
                // a deadline-free frame is byte-identical to revision 1.
                if let Some(ms) = deadline_ms {
                    e.u64(*ms);
                }
            }
            ServeMessage::Labels {
                revision,
                labels,
                cost,
            } => {
                e.u64(*revision);
                e.u32s(labels);
                e.f64(*cost);
            }
            ServeMessage::CostReply { revision, n, cost } => {
                e.u64(*revision);
                e.u64(*n);
                e.f64(*cost);
            }
            ServeMessage::Stats(s) => {
                e.u64(s.revision);
                e.u64(s.requests);
                e.u64(s.points);
                e.u64(s.batches);
                e.u64(s.max_batch_points);
                e.u64(s.swaps);
                e.u64(s.distance_computations);
                e.u64(s.pruned_by_norm_bound);
                // Trailing group (decoders accept its absence).
                e.u64(s.revision_requests);
                e.u64(s.revision_points);
                e.u64(s.revision_batches);
                e.u64(s.revision_installed_ns);
                encode_hist_summary(&mut e, &s.request_latency);
                encode_hist_summary(&mut e, &s.batch_latency);
                // Second trailing group: overload/drain accounting.
                e.u64(s.shed_requests);
                e.u64(s.shed_points);
                e.u64(s.deadline_exceeded);
                e.u64(s.drain_rejected);
                e.u64(s.queued_points);
                e.u64(s.queue_cap);
                e.u8(u8::from(s.draining));
            }
            ServeMessage::SwapModel { model } => e.bytes(model),
            ServeMessage::SwapOk { revision, k, dim } => {
                e.u64(*revision);
                e.u64(*k);
                e.u32(*dim);
            }
            ServeMessage::Error(err) => encode_wire_error(&mut e, err),
            ServeMessage::DrainOk { queued_points } => e.u64(*queued_points),
        }
        e.into_bytes()
    }

    fn decode_payload(tag: u8, payload: &[u8]) -> Result<Self, FrameError> {
        let mut d = Dec::new(payload);
        let msg = match tag {
            1 => ServeMessage::Hello,
            2 => ServeMessage::ModelInfo {
                revision: d.u64()?,
                k: d.u64()?,
                dim: d.u32()?,
                cost: d.f64()?,
                init_name: d.text()?,
                refiner_name: d.text()?,
                batch_cap: if d.remaining() > 0 { d.u64()? } else { 0 },
            },
            3 => ServeMessage::Predict {
                points: d.matrix()?,
                deadline_ms: if d.remaining() > 0 {
                    Some(d.u64()?)
                } else {
                    None
                },
            },
            4 => ServeMessage::Labels {
                revision: d.u64()?,
                labels: d.u32s()?,
                cost: d.f64()?,
            },
            5 => ServeMessage::Cost {
                points: d.matrix()?,
                deadline_ms: if d.remaining() > 0 {
                    Some(d.u64()?)
                } else {
                    None
                },
            },
            6 => ServeMessage::CostReply {
                revision: d.u64()?,
                n: d.u64()?,
                cost: d.f64()?,
            },
            7 => ServeMessage::FetchStats,
            8 => {
                let mut s = ServeStats {
                    revision: d.u64()?,
                    requests: d.u64()?,
                    points: d.u64()?,
                    batches: d.u64()?,
                    max_batch_points: d.u64()?,
                    swaps: d.u64()?,
                    distance_computations: d.u64()?,
                    pruned_by_norm_bound: d.u64()?,
                    ..ServeStats::default()
                };
                // Backward-compatible trailing group: absent (an older
                // server) decodes as zeroed; a *partial* group is still
                // a malformed frame (the field reads below fail).
                if d.remaining() > 0 {
                    s.revision_requests = d.u64()?;
                    s.revision_points = d.u64()?;
                    s.revision_batches = d.u64()?;
                    s.revision_installed_ns = d.u64()?;
                    s.request_latency = decode_hist_summary(&mut d)?;
                    s.batch_latency = decode_hist_summary(&mut d)?;
                    // Second trailing group (overload/drain accounting),
                    // same absent-vs-partial rule as the first.
                    if d.remaining() > 0 {
                        s.shed_requests = d.u64()?;
                        s.shed_points = d.u64()?;
                        s.deadline_exceeded = d.u64()?;
                        s.drain_rejected = d.u64()?;
                        s.queued_points = d.u64()?;
                        s.queue_cap = d.u64()?;
                        s.draining = d.u8()? != 0;
                    }
                }
                ServeMessage::Stats(s)
            }
            9 => ServeMessage::SwapModel { model: d.bytes()? },
            10 => ServeMessage::SwapOk {
                revision: d.u64()?,
                k: d.u64()?,
                dim: d.u32()?,
            },
            11 => ServeMessage::Error(decode_wire_error(&mut d)?),
            12 => ServeMessage::Shutdown,
            13 => ServeMessage::ShutdownOk,
            14 => ServeMessage::Drain,
            15 => ServeMessage::DrainOk {
                queued_points: d.u64()?,
            },
            other => return Err(FrameError::UnknownTag(other)),
        };
        d.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmeans_cluster::protocol::{Message, MAX_FRAME_PAYLOAD};

    fn sample_messages() -> Vec<ServeMessage> {
        let m = PointMatrix::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2).unwrap();
        vec![
            ServeMessage::Hello,
            ServeMessage::ModelInfo {
                revision: 3,
                k: 10,
                dim: 2,
                cost: 12.5,
                init_name: "kmeans-par".into(),
                refiner_name: "lloyd".into(),
                batch_cap: 65536,
            },
            ServeMessage::Predict {
                points: m.clone(),
                deadline_ms: None,
            },
            ServeMessage::Predict {
                points: m.clone(),
                deadline_ms: Some(250),
            },
            ServeMessage::Labels {
                revision: 3,
                labels: vec![0, 7, 7],
                cost: 0.25,
            },
            ServeMessage::Cost {
                points: m.clone(),
                deadline_ms: None,
            },
            ServeMessage::Cost {
                points: m,
                deadline_ms: Some(1),
            },
            ServeMessage::CostReply {
                revision: 4,
                n: 2,
                cost: 1.75,
            },
            ServeMessage::FetchStats,
            ServeMessage::Stats(ServeStats {
                revision: 2,
                requests: 100,
                points: 5000,
                batches: 40,
                max_batch_points: 512,
                swaps: 1,
                distance_computations: 123,
                pruned_by_norm_bound: 456,
                revision_requests: 60,
                revision_points: 3000,
                revision_batches: 25,
                revision_installed_ns: 1_234_567,
                request_latency: HistogramSummary {
                    count: 100,
                    sum_ns: 9_999,
                    p50_ns: 64,
                    p99_ns: 1023,
                    p999_ns: 2047,
                    max_ns: 1999,
                },
                batch_latency: HistogramSummary::default(),
                shed_requests: 7,
                shed_points: 7000,
                deadline_exceeded: 2,
                drain_rejected: 3,
                queued_points: 640,
                queue_cap: 262_144,
                draining: true,
            }),
            ServeMessage::SwapModel {
                model: vec![1, 2, 3, 4, 5],
            },
            ServeMessage::SwapOk {
                revision: 2,
                k: 10,
                dim: 2,
            },
            ServeMessage::Error(WireError::DimensionMismatch {
                expected: 2,
                got: 3,
            }),
            ServeMessage::Error(WireError::Data("model image rejected".into())),
            ServeMessage::Error(WireError::Overloaded {
                queued_points: 70_000,
                cap: 65_536,
            }),
            ServeMessage::Error(WireError::DeadlineExceeded { budget_ms: 250 }),
            ServeMessage::Error(WireError::Draining),
            ServeMessage::Shutdown,
            ServeMessage::ShutdownOk,
            ServeMessage::Drain,
            ServeMessage::DrainOk { queued_points: 640 },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in sample_messages() {
            let frame = msg.encode_frame();
            let (decoded, used) = ServeMessage::decode_frame(&frame, MAX_FRAME_PAYLOAD).unwrap();
            assert_eq!(decoded, msg);
            assert_eq!(used, frame.len());
            let mut cursor = std::io::Cursor::new(&frame);
            let (decoded, used) = ServeMessage::read_frame(&mut cursor, MAX_FRAME_PAYLOAD).unwrap();
            assert_eq!(decoded, msg);
            assert_eq!(used, frame.len());
        }
    }

    #[test]
    fn legacy_stats_frames_decode_with_zeroed_trailing_group() {
        // A tag-8 frame carrying only the original eight counters (an
        // older server) must decode, with the per-revision and latency
        // fields zeroed.
        let mut e = Enc::new();
        for v in [2u64, 100, 5000, 40, 512, 1, 123, 456] {
            e.u64(v);
        }
        let payload = e.into_bytes();
        let mut frame = Vec::new();
        frame.extend_from_slice(&SERVE_MAGIC);
        frame.push(8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&kmeans_cluster::wire::fnv1a(8, &payload).to_le_bytes());
        let (decoded, used) = ServeMessage::decode_frame(&frame, MAX_FRAME_PAYLOAD).unwrap();
        assert_eq!(used, frame.len());
        match decoded {
            ServeMessage::Stats(s) => {
                assert_eq!(s.revision, 2);
                assert_eq!(s.requests, 100);
                assert_eq!(s.pruned_by_norm_bound, 456);
                assert_eq!(s.revision_requests, 0);
                assert_eq!(s.revision_installed_ns, 0);
                assert_eq!(s.request_latency, HistogramSummary::default());
                assert_eq!(s.batch_latency, HistogramSummary::default());
                assert_eq!(s.shed_requests, 0);
                assert_eq!(s.queue_cap, 0);
                assert!(!s.draining);
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn stats_frames_without_the_overload_group_decode_zeroed() {
        // A tag-8 frame carrying groups 0 and 1 but not the overload
        // group (a server from before admission control) must decode
        // with the overload counters zeroed and `draining == false`.
        let mut e = Enc::new();
        for v in [2u64, 100, 5000, 40, 512, 1, 123, 456] {
            e.u64(v);
        }
        for v in [60u64, 3000, 25, 1_234_567] {
            e.u64(v);
        }
        encode_hist_summary(&mut e, &HistogramSummary::default());
        encode_hist_summary(&mut e, &HistogramSummary::default());
        let payload = e.into_bytes();
        let mut frame = Vec::new();
        frame.extend_from_slice(&SERVE_MAGIC);
        frame.push(8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&kmeans_cluster::wire::fnv1a(8, &payload).to_le_bytes());
        match ServeMessage::decode_frame(&frame, MAX_FRAME_PAYLOAD)
            .unwrap()
            .0
        {
            ServeMessage::Stats(s) => {
                assert_eq!(s.revision_requests, 60);
                assert_eq!(s.shed_requests, 0);
                assert_eq!(s.shed_points, 0);
                assert_eq!(s.deadline_exceeded, 0);
                assert_eq!(s.drain_rejected, 0);
                assert_eq!(s.queued_points, 0);
                assert_eq!(s.queue_cap, 0);
                assert!(!s.draining);
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn legacy_predict_and_model_info_frames_decode_without_new_fields() {
        // Revision-1 Predict/Cost frames carry only the matrix; they must
        // decode as "no deadline". Likewise a ModelInfo without the
        // trailing batch cap decodes as cap 0.
        let m = PointMatrix::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2).unwrap();
        for tag in [3u8, 5] {
            let mut e = Enc::new();
            e.matrix(&m);
            let payload = e.into_bytes();
            let mut frame = Vec::new();
            frame.extend_from_slice(&SERVE_MAGIC);
            frame.push(tag);
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&payload);
            frame.extend_from_slice(&kmeans_cluster::wire::fnv1a(tag, &payload).to_le_bytes());
            match ServeMessage::decode_frame(&frame, MAX_FRAME_PAYLOAD)
                .unwrap()
                .0
            {
                ServeMessage::Predict {
                    points,
                    deadline_ms,
                } => {
                    assert_eq!(points, m);
                    assert_eq!(deadline_ms, None);
                }
                ServeMessage::Cost {
                    points,
                    deadline_ms,
                } => {
                    assert_eq!(points, m);
                    assert_eq!(deadline_ms, None);
                }
                other => panic!("decoded {other:?}"),
            }
        }
        let mut e = Enc::new();
        e.u64(3);
        e.u64(10);
        e.u32(2);
        e.f64(12.5);
        e.text("kmeans-par");
        e.text("lloyd");
        let payload = e.into_bytes();
        let mut frame = Vec::new();
        frame.extend_from_slice(&SERVE_MAGIC);
        frame.push(2);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&kmeans_cluster::wire::fnv1a(2, &payload).to_le_bytes());
        match ServeMessage::decode_frame(&frame, MAX_FRAME_PAYLOAD)
            .unwrap()
            .0
        {
            ServeMessage::ModelInfo {
                batch_cap,
                revision,
                ..
            } => {
                assert_eq!(revision, 3);
                assert_eq!(batch_cap, 0);
            }
            other => panic!("decoded {other:?}"),
        }
        // A deadline-free Predict encodes byte-identically to revision 1
        // (the field is simply omitted), so old servers accept it.
        let modern = ServeMessage::Predict {
            points: m,
            deadline_ms: None,
        };
        let mut e = Enc::new();
        if let ServeMessage::Predict { points, .. } = &modern {
            e.matrix(points);
        }
        assert_eq!(modern.encode_payload(), e.into_bytes());
    }

    #[test]
    fn corrupted_frames_are_typed_errors() {
        let frame = ServeMessage::FetchStats.encode_frame();
        let mut bad = frame.clone();
        bad[0] = b'X';
        assert_eq!(
            ServeMessage::decode_frame(&bad, MAX_FRAME_PAYLOAD).unwrap_err(),
            FrameError::BadMagic
        );
        for cut in 0..frame.len() {
            assert_eq!(
                ServeMessage::decode_frame(&frame[..cut], MAX_FRAME_PAYLOAD).unwrap_err(),
                FrameError::Truncated,
                "cut {cut}"
            );
        }
        let msg = ServeMessage::Labels {
            revision: 1,
            labels: vec![1, 2, 3],
            cost: 0.5,
        };
        let mut flipped = msg.encode_frame();
        let mid = flipped.len() - 10;
        flipped[mid] ^= 0xff;
        assert!(matches!(
            ServeMessage::decode_frame(&flipped, MAX_FRAME_PAYLOAD).unwrap_err(),
            FrameError::Checksum { .. }
        ));
    }

    #[test]
    fn cluster_frames_are_rejected_by_magic() {
        // A serve endpoint that receives a distributed-runtime frame (or
        // vice versa) fails closed on the magic instead of mis-parsing a
        // same-tag message from the other vocabulary.
        let worker_frame = Message::Hello { rows: 5, dim: 2 }.encode_frame();
        assert_eq!(
            ServeMessage::decode_frame(&worker_frame, MAX_FRAME_PAYLOAD).unwrap_err(),
            FrameError::BadMagic
        );
        let serve_frame = ServeMessage::Hello.encode_frame();
        assert_eq!(
            Message::decode_frame(&serve_frame, MAX_FRAME_PAYLOAD).unwrap_err(),
            FrameError::BadMagic
        );
    }
}
