//! Time sources for the recorder: a real monotonic clock for production
//! and a scripted fake for deterministic tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond counter. The origin is arbitrary but fixed for
/// the clock's lifetime; only differences between readings are
/// meaningful.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since this clock's origin. Must never go backwards.
    fn now_ns(&self) -> u64;
}

/// The production clock: [`Instant`]-based, origin at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // Saturates after ~584 years of process uptime — acceptable.
        self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

/// A scripted clock for tests: time advances only when the test says so,
/// making every span duration and histogram bucket assertion exact.
/// Clones share the same underlying counter, so a test can hand one
/// clone to a [`Recorder`](crate::Recorder) and keep another to drive it.
#[derive(Debug, Clone, Default)]
pub struct FakeClock {
    now: Arc<AtomicU64>,
}

impl FakeClock {
    /// A fake clock starting at `start_ns`.
    pub fn new(start_ns: u64) -> Self {
        FakeClock {
            now: Arc::new(AtomicU64::new(start_ns)),
        }
    }

    /// Advances the clock by `delta_ns`.
    pub fn advance(&self, delta_ns: u64) {
        self.now.fetch_add(delta_ns, Ordering::SeqCst);
    }

    /// Jumps the clock to `now_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `now_ns` is behind the current reading — the [`Clock`]
    /// contract is monotonic, and a test scripting time backwards is a
    /// bug worth failing loudly on.
    pub fn set(&self, now_ns: u64) {
        let prev = self.now.swap(now_ns, Ordering::SeqCst);
        assert!(
            prev <= now_ns,
            "FakeClock set backwards: {prev} -> {now_ns}"
        );
    }
}

impl Clock for FakeClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_is_scripted_and_shared() {
        let c = FakeClock::new(100);
        let handle = c.clone();
        assert_eq!(c.now_ns(), 100);
        handle.advance(50);
        assert_eq!(c.now_ns(), 150);
        handle.set(1_000);
        assert_eq!(c.now_ns(), 1_000);
    }

    #[test]
    #[should_panic(expected = "set backwards")]
    fn fake_clock_rejects_time_travel() {
        let c = FakeClock::new(10);
        c.set(5);
    }
}
