//! Prometheus text-exposition rendering (version 0.0.4 of the format):
//! the hand-rolled backend of `skm serve --metrics-listen`.
//!
//! Only the subset the serving tier needs: counters, gauges, and
//! summaries (quantile-labeled samples plus `_sum`/`_count`, the
//! rendering of a [`HistogramSummary`]). A plain `curl ADDR/metrics`
//! reads the output; no client library is required on either side.

use crate::hist::HistogramSummary;
use std::fmt::Write as _;

/// An append-only Prometheus text-exposition document.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty document.
    pub fn new() -> Self {
        PromText::default()
    }

    /// Appends a counter metric (monotonically increasing total).
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Appends a gauge metric (a value that can go up and down).
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Appends a latency summary in **seconds** (the Prometheus base
    /// unit) from a nanosecond [`HistogramSummary`]: `quantile`-labeled
    /// samples for p50/p99/p999 plus the `_sum` and `_count` series.
    pub fn summary_seconds(&mut self, name: &str, help: &str, s: &HistogramSummary) {
        self.header(name, help, "summary");
        for (q, ns) in [("0.5", s.p50_ns), ("0.99", s.p99_ns), ("0.999", s.p999_ns)] {
            let _ = writeln!(self.out, "{name}{{quantile=\"{q}\"}} {}", ns_to_s(ns));
        }
        let _ = writeln!(self.out, "{name}_sum {}", ns_to_s(s.sum_ns));
        let _ = writeln!(self.out, "{name}_count {}", s.count);
    }

    /// The finished exposition body.
    pub fn render(self) -> String {
        self.out
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }
}

/// Nanoseconds as decimal seconds, rendered without float noise.
fn ns_to_s(ns: u64) -> String {
    format!("{}.{:09}", ns / 1_000_000_000, ns % 1_000_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_with_headers() {
        let mut p = PromText::new();
        p.counter("skm_serve_requests_total", "Requests answered.", 42);
        p.gauge("skm_serve_model_revision", "Installed revision.", 3.0);
        let text = p.render();
        assert!(text.contains("# HELP skm_serve_requests_total Requests answered.\n"));
        assert!(text.contains("# TYPE skm_serve_requests_total counter\n"));
        assert!(text.contains("\nskm_serve_requests_total 42\n"));
        assert!(text.contains("# TYPE skm_serve_model_revision gauge\n"));
        assert!(text.contains("\nskm_serve_model_revision 3\n"));
    }

    #[test]
    fn summaries_render_quantiles_in_seconds() {
        let s = HistogramSummary {
            count: 10,
            sum_ns: 2_500_000_000,
            p50_ns: 1_500,
            p99_ns: 2_000_000,
            p999_ns: 3_000_000_000,
            max_ns: 4_000_000_000,
        };
        let mut p = PromText::new();
        p.summary_seconds("skm_serve_request_latency_seconds", "Request latency.", &s);
        let text = p.render();
        assert!(text.contains("# TYPE skm_serve_request_latency_seconds summary\n"));
        assert!(text.contains("skm_serve_request_latency_seconds{quantile=\"0.5\"} 0.000001500\n"));
        assert!(text.contains("skm_serve_request_latency_seconds{quantile=\"0.99\"} 0.002000000\n"));
        assert!(
            text.contains("skm_serve_request_latency_seconds{quantile=\"0.999\"} 3.000000000\n")
        );
        assert!(text.contains("skm_serve_request_latency_seconds_sum 2.500000000\n"));
        assert!(text.contains("skm_serve_request_latency_seconds_count 10\n"));
    }
}
