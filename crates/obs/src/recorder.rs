//! The [`Recorder`]: structured spans and named counters behind a
//! [`Clock`], cheap enough to be always-compiled.
//!
//! ## Zero cost when disabled
//!
//! [`Recorder::disabled`] (the `Default`) holds no state at all —
//! `inner` is `None`. Every recording call starts with one branch on
//! that `Option` and returns immediately: no clock read, no lock, no
//! allocation. Argument lists are built through `FnOnce` closures, so a
//! disabled recorder never even constructs them. Instrumentation
//! therefore rides permanently in the hot paths (no feature flags), and
//! results are untouched either way — the recorder only ever *reads*
//! the values flowing past it.

use crate::clock::{Clock, MonotonicClock};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// One argument value attached to a span or instant event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned counter-like value.
    U64(u64),
    /// A floating-point value.
    F64(f64),
    /// A short string (stage name, backend kind, address…).
    Str(String),
}

impl std::fmt::Display for ArgValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgValue::U64(v) => write!(f, "{v}"),
            ArgValue::F64(v) => write!(f, "{v}"),
            ArgValue::Str(s) => write!(f, "{s}"),
        }
    }
}

/// One recorded event: a completed span (`dur_ns > 0` possible) or an
/// instant marker (`dur_ns == 0`, e.g. a recovery event).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Event name (e.g. the round kind: `assign`, `tracker_update`).
    pub name: String,
    /// Category (one per tier: `round`, `cluster`, `serve`, `fit`).
    pub cat: String,
    /// Start, in the recorder clock's nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
    /// Structured arguments (wire bytes, row counts, kernel counters…).
    pub args: Vec<(String, ArgValue)>,
}

/// An opaque span-start token. [`Recorder::start`] on a disabled
/// recorder hands back an empty token, and the matching
/// [`Recorder::span`] is a no-op — the token is how "start a timer"
/// stays free when observability is off.
#[derive(Debug, Clone, Copy)]
pub struct SpanStart(Option<u64>);

struct Inner {
    clock: Box<dyn Clock>,
    events: Mutex<Vec<SpanEvent>>,
    counters: Mutex<BTreeMap<String, u64>>,
}

/// The flight recorder. Cheap to clone (an `Arc` under the hood);
/// clones share one event log, so a coordinator and the backend wrapper
/// instrumenting it append to the same timeline.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Recorder {
    /// The no-op recorder: records nothing, costs one branch per call.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// An enabled recorder over the given clock.
    pub fn with_clock(clock: impl Clock + 'static) -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                clock: Box::new(clock),
                events: Mutex::new(Vec::new()),
                counters: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// An enabled recorder on the real monotonic clock.
    pub fn monotonic() -> Self {
        Self::with_clock(MonotonicClock::new())
    }

    /// Whether this recorder records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The clock's current reading, when enabled.
    pub fn now_ns(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.clock.now_ns())
    }

    /// Starts a span timer. Free when disabled.
    pub fn start(&self) -> SpanStart {
        SpanStart(self.inner.as_ref().map(|i| i.clock.now_ns()))
    }

    /// Completes the span opened by `start`. `args` is only invoked when
    /// the recorder is enabled, so building the argument list costs
    /// nothing when it is not.
    pub fn span(
        &self,
        start: SpanStart,
        name: &str,
        cat: &str,
        args: impl FnOnce() -> Vec<(String, ArgValue)>,
    ) {
        let (Some(inner), Some(start_ns)) = (self.inner.as_ref(), start.0) else {
            return;
        };
        let end_ns = inner.clock.now_ns();
        inner
            .events
            .lock()
            .expect("recorder poisoned")
            .push(SpanEvent {
                name: name.to_string(),
                cat: cat.to_string(),
                start_ns,
                dur_ns: end_ns.saturating_sub(start_ns),
                args: args(),
            });
    }

    /// Records an instant event (a zero-duration marker — recovery
    /// steps, revision boundaries). Same laziness as [`Recorder::span`].
    pub fn instant(&self, name: &str, cat: &str, args: impl FnOnce() -> Vec<(String, ArgValue)>) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let now = inner.clock.now_ns();
        inner
            .events
            .lock()
            .expect("recorder poisoned")
            .push(SpanEvent {
                name: name.to_string(),
                cat: cat.to_string(),
                start_ns: now,
                dur_ns: 0,
                args: args(),
            });
    }

    /// Adds `delta` to the named counter.
    pub fn add(&self, counter: &str, delta: u64) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let mut counters = inner.counters.lock().expect("recorder poisoned");
        *counters.entry(counter.to_string()).or_insert(0) += delta;
    }

    /// A snapshot of every recorded event, in recording order.
    pub fn events(&self) -> Vec<SpanEvent> {
        match self.inner.as_ref() {
            Some(inner) => inner.events.lock().expect("recorder poisoned").clone(),
            None => Vec::new(),
        }
    }

    /// Takes (and clears) the recorded events — the shape the worker's
    /// per-frame `--log` output wants.
    pub fn drain(&self) -> Vec<SpanEvent> {
        match self.inner.as_ref() {
            Some(inner) => std::mem::take(&mut *inner.events.lock().expect("recorder poisoned")),
            None => Vec::new(),
        }
    }

    /// A snapshot of every counter, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        match self.inner.as_ref() {
            Some(inner) => inner
                .counters
                .lock()
                .expect("recorder poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            None => Vec::new(),
        }
    }
}

/// Convenience: a `u64` argument pair.
pub fn arg_u64(name: &str, v: u64) -> (String, ArgValue) {
    (name.to_string(), ArgValue::U64(v))
}

/// Convenience: an `f64` argument pair.
pub fn arg_f64(name: &str, v: f64) -> (String, ArgValue) {
    (name.to_string(), ArgValue::F64(v))
}

/// Convenience: a string argument pair.
pub fn arg_str(name: &str, v: &str) -> (String, ArgValue) {
    (name.to_string(), ArgValue::Str(v.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::FakeClock;

    #[test]
    fn disabled_recorder_records_nothing_and_never_builds_args() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        let s = r.start();
        r.span(s, "x", "test", || {
            panic!("args built on a disabled recorder")
        });
        r.instant("y", "test", || panic!("args built on a disabled recorder"));
        r.add("c", 5);
        assert!(r.events().is_empty());
        assert!(r.counters().is_empty());
        assert_eq!(r.now_ns(), None);
    }

    #[test]
    fn spans_are_deterministic_under_a_fake_clock() {
        let clock = FakeClock::new(1_000);
        let r = Recorder::with_clock(clock.clone());
        let s = r.start();
        clock.advance(250);
        r.span(s, "round", "test", || vec![arg_u64("rows", 7)]);
        clock.advance(10);
        r.instant("marker", "test", Vec::new);
        let events = r.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "round");
        assert_eq!(events[0].start_ns, 1_000);
        assert_eq!(events[0].dur_ns, 250);
        assert_eq!(events[0].args, vec![arg_u64("rows", 7)]);
        assert_eq!(events[1].start_ns, 1_260);
        assert_eq!(events[1].dur_ns, 0);
    }

    #[test]
    fn clones_share_one_log_and_drain_empties_it() {
        let r = Recorder::with_clock(FakeClock::new(0));
        let clone = r.clone();
        clone.instant("a", "test", Vec::new);
        r.instant("b", "test", Vec::new);
        clone.add("frames", 1);
        clone.add("frames", 2);
        assert_eq!(r.counters(), vec![("frames".to_string(), 3)]);
        let drained = r.drain();
        assert_eq!(drained.len(), 2);
        assert!(clone.events().is_empty());
    }
}
