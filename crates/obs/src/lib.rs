//! **kmeans-obs** — the workspace's flight recorder: structured spans
//! and counters, fixed-bucket latency histograms, Chrome trace-event
//! export, and Prometheus text exposition. `std`-only, zero external
//! dependencies, like every other crate here.
//!
//! The source paper's whole argument is *round accounting* — Bahmani et
//! al. (PVLDB 2012) sell k-means|| on needing `r ≈ 5` rounds where
//! k-means++ needs `k` — and the distributed runtime's costs are
//! likewise dominated by coordinator round trips. This crate turns those
//! costs from post-hoc benchmark artifacts into per-run observable
//! facts, without ever touching the results they describe:
//!
//! * [`recorder`] — the [`Recorder`]: monotonic spans and named
//!   counters behind a [`Clock`] trait. The default recorder is
//!   **disabled** and truly cheap (one `Option` branch per call, no
//!   allocation, no time read); an enabled recorder reads the clock and
//!   appends to an in-memory event log. Instrumented code paths *read*
//!   results and *never* change them — instrumented fits stay
//!   bit-identical to uninstrumented ones (pinned by
//!   `tests/obs_parity.rs`).
//! * [`clock`] — [`MonotonicClock`] (production) and the scripted
//!   [`FakeClock`] (tests), so every timing assertion can be
//!   deterministic.
//! * [`hist`] — [`LatencyHistogram`]: fixed-bucket log2 histograms with
//!   nearest-rank p50/p99/p999 extraction, plus the exact
//!   [`percentile_nearest_rank`] over sorted samples (graduated from the
//!   serve bench).
//! * [`trace`] — Chrome trace-event JSON (`chrome://tracing`,
//!   [perfetto](https://ui.perfetto.dev)) writer and a minimal parser
//!   for `skm trace summarize` and round-trip tests.
//! * [`prom`] — hand-rolled Prometheus text-exposition rendering for
//!   `skm serve --metrics-listen`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod clock;
pub mod hist;
pub mod prom;
pub mod recorder;
pub mod trace;

pub use clock::{Clock, FakeClock, MonotonicClock};
pub use hist::{percentile_nearest_rank, HistogramSummary, LatencyHistogram};
pub use prom::PromText;
pub use recorder::{arg_f64, arg_str, arg_u64, ArgValue, Recorder, SpanEvent, SpanStart};
pub use trace::{json_escape, parse_chrome_trace, write_chrome_trace};
