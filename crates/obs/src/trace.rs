//! Chrome trace-event JSON: the export format `skm fit --trace` writes
//! (loadable in `chrome://tracing` and [perfetto](https://ui.perfetto.dev))
//! and the minimal parser behind `skm trace summarize` and the
//! round-trip tests.
//!
//! Writer output shape (the "JSON object format" of the trace-event
//! spec): `{"traceEvents": [...]}` where each event is a complete-span
//! record — `"ph": "X"` with microsecond `ts`/`dur` — or an instant
//! (`"ph": "i"`). Span arguments travel in `"args"`. Timestamps are
//! rendered with nanosecond precision (three decimal places of a
//! microsecond); round-trips are exact for any timestamp below 2⁵³ ns
//! (~104 days), far beyond any real trace.

use crate::recorder::{ArgValue, SpanEvent};
use std::io::Write;

/// Writes `events` as one Chrome trace-event JSON document.
///
/// # Errors
///
/// Propagates I/O failures from `w`.
pub fn write_chrome_trace(w: &mut impl Write, events: &[SpanEvent]) -> std::io::Result<()> {
    writeln!(w, "{{\"traceEvents\": [")?;
    for (i, ev) in events.iter().enumerate() {
        let ph = if ev.dur_ns == 0 { "i" } else { "X" };
        write!(
            w,
            "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"{}\", \"ts\": {}, \"dur\": {}, \
             \"pid\": 1, \"tid\": 1",
            json_escape(&ev.name),
            json_escape(&ev.cat),
            ph,
            format_us(ev.start_ns),
            format_us(ev.dur_ns),
        )?;
        if ph == "i" {
            // Instant events need a scope for the viewers.
            write!(w, ", \"s\": \"t\"")?;
        }
        write!(w, ", \"args\": {{")?;
        for (j, (name, value)) in ev.args.iter().enumerate() {
            if j > 0 {
                write!(w, ", ")?;
            }
            write!(w, "\"{}\": ", json_escape(name))?;
            match value {
                ArgValue::U64(v) => write!(w, "{v}")?,
                ArgValue::F64(v) => {
                    if v.is_finite() {
                        write!(w, "{v:?}")?;
                    } else {
                        // JSON has no NaN/Inf literal; ship the name.
                        write!(w, "\"{v}\"")?;
                    }
                }
                ArgValue::Str(s) => write!(w, "\"{}\"", json_escape(s))?,
            }
        }
        write!(w, "}}}}")?;
        writeln!(w, "{}", if i + 1 < events.len() { "," } else { "" })?;
    }
    writeln!(w, "]}}")
}

/// Nanoseconds as a microsecond decimal with exactly three fractional
/// digits (the trace-event `ts`/`dur` unit is microseconds).
fn format_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Escapes a string for a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses a Chrome trace-event JSON document (either the
/// `{"traceEvents": [...]}` object form this crate writes or a bare
/// event array) back into [`SpanEvent`]s. Unknown fields are ignored;
/// events without a `name` are rejected. Numeric `args` parse to
/// [`ArgValue::U64`] when they are non-negative integers, otherwise
/// [`ArgValue::F64`].
///
/// # Errors
///
/// Returns a description of the first structural problem (not valid
/// JSON, no event array, an event that is not an object…).
pub fn parse_chrome_trace(text: &str) -> Result<Vec<SpanEvent>, String> {
    let value = Json::parse(text)?;
    let events_value = match &value {
        Json::Object(fields) => fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .ok_or("top-level object has no \"traceEvents\" array")?,
        Json::Array(_) => &value,
        _ => return Err("trace is neither an object nor an event array".into()),
    };
    let Json::Array(items) = events_value else {
        return Err("\"traceEvents\" is not an array".into());
    };
    let mut events = Vec::with_capacity(items.len());
    for item in items {
        let Json::Object(fields) = item else {
            return Err("trace event is not an object".into());
        };
        let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let name = match get("name") {
            Some(Json::String(s)) => s.clone(),
            _ => return Err("trace event has no string \"name\"".into()),
        };
        let cat = match get("cat") {
            Some(Json::String(s)) => s.clone(),
            _ => String::new(),
        };
        let num = |v: Option<&Json>| -> u64 {
            match v {
                Some(Json::Number(n)) if *n >= 0.0 => (*n * 1000.0).round() as u64,
                Some(Json::UInt(u)) => u.saturating_mul(1000),
                _ => 0,
            }
        };
        let start_ns = num(get("ts"));
        let dur_ns = num(get("dur"));
        let mut args = Vec::new();
        if let Some(Json::Object(arg_fields)) = get("args") {
            for (k, v) in arg_fields {
                let parsed = match v {
                    Json::UInt(u) => ArgValue::U64(*u),
                    Json::Number(n) => {
                        if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 {
                            ArgValue::U64(*n as u64)
                        } else {
                            ArgValue::F64(*n)
                        }
                    }
                    Json::String(s) => ArgValue::Str(s.clone()),
                    Json::Bool(b) => ArgValue::Str(b.to_string()),
                    Json::Null => ArgValue::Str("null".into()),
                    _ => continue,
                };
                args.push((k.clone(), parsed));
            }
        }
        events.push(SpanEvent {
            name,
            cat,
            start_ns,
            dur_ns,
            args,
        });
    }
    Ok(events)
}

/// A minimal JSON value — just enough for trace documents. Unsigned
/// integer tokens keep their own variant so `u64` span arguments (wire
/// bytes, kernel counters) round-trip exactly above 2⁵³.
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    UInt(u64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number")?;
    if let Ok(u) = token.parse::<u64>() {
        return Ok(Json::UInt(u));
    }
    token
        .parse::<f64>()
        .ok()
        .map(Json::Number)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".into());
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&hex) {
                            // Surrogate pair: the low half must follow.
                            if bytes.get(*pos..*pos + 2) != Some(b"\\u") {
                                return Err("lone high surrogate".into());
                            }
                            *pos += 2;
                            let low = bytes
                                .get(*pos..*pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            *pos += 4;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("bad low surrogate".into());
                            }
                            0x10000 + ((hex - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            hex
                        };
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    _ => return Err(format!("bad escape '\\{}'", esc as char)),
                }
            }
            _ => {
                // Re-decode the UTF-8 sequence starting at b.
                let len = match b {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    0xF0..=0xF7 => 4,
                    _ => return Err("bad UTF-8 in string".into()),
                };
                let start = *pos - 1;
                let end = start + len;
                let chunk = bytes.get(start..end).ok_or("truncated UTF-8")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|_| "bad UTF-8 in string")?);
                *pos = end;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{arg_f64, arg_str, arg_u64};

    fn sample_events() -> Vec<SpanEvent> {
        vec![
            SpanEvent {
                name: "assign".into(),
                cat: "round".into(),
                start_ns: 1_234_567,
                dur_ns: 89_012,
                args: vec![
                    arg_u64("rows", 4096),
                    arg_u64("wire_bytes", 123_456),
                    arg_f64("phi", 12.5),
                    arg_str("backend", "distributed"),
                ],
            },
            SpanEvent {
                name: "recover:redial \"w0\"\n\\".into(),
                cat: "cluster".into(),
                start_ns: 2_000_000,
                dur_ns: 0,
                args: vec![arg_str("addr", "127.0.0.1:7401\t\"quoted\"")],
            },
        ]
    }

    #[test]
    fn trace_round_trips_through_write_and_parse() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &events).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = parse_chrome_trace(&text).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn bare_array_form_parses_too() {
        let text = r#"[{"name": "x", "ts": 1.5, "dur": 2, "args": {"n": 3}}]"#;
        let parsed = parse_chrome_trace(text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].name, "x");
        assert_eq!(parsed[0].start_ns, 1500);
        assert_eq!(parsed[0].dur_ns, 2000);
        assert_eq!(parsed[0].args, vec![arg_u64("n", 3)]);
    }

    #[test]
    fn escapes_cover_the_json_control_set() {
        assert_eq!(json_escape("a\"b\\c\nd\te\r"), "a\\\"b\\\\c\\nd\\te\\r");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        // Non-ASCII passes through unescaped (JSON is UTF-8).
        assert_eq!(json_escape("φ≈5"), "φ≈5");
    }

    #[test]
    fn malformed_documents_are_typed_errors() {
        assert!(parse_chrome_trace("").is_err());
        assert!(parse_chrome_trace("{\"traceEvents\": 5}").is_err());
        assert!(parse_chrome_trace("{\"other\": []}").is_err());
        assert!(parse_chrome_trace("[{\"ts\": 1}]").is_err());
        assert!(parse_chrome_trace("[{\"name\": \"x\"}] junk").is_err());
        assert!(parse_chrome_trace("[{\"name\": \"unterminated]").is_err());
    }

    #[test]
    fn surrogate_pairs_and_unicode_escapes_decode() {
        let text = "[{\"name\": \"\\u0041\\ud83d\\ude00\"}]";
        let parsed = parse_chrome_trace(text).unwrap();
        assert_eq!(parsed[0].name, "A😀");
    }
}
