//! Fixed-bucket log2 latency histograms with nearest-rank quantile
//! extraction, plus the exact percentile-over-sorted-samples function
//! the serve bench graduated into the library.

/// Number of log2 buckets: one per power of two a `u64` can hold, so
/// any nanosecond value lands in exactly one bucket.
pub const BUCKETS: usize = 64;

/// A streaming latency histogram: 64 fixed log2 buckets (bucket `i`
/// holds values `v` with `floor(log2(v)) == i`; 0 and 1 share bucket 0),
/// plus exact count/sum/min/max. Constant memory, O(1) record, O(64)
/// quantile — the shape a serving tier can afford per request.
///
/// [`LatencyHistogram::quantile`] is nearest-rank over the bucket
/// counts: it returns the upper bound of the bucket containing the
/// ranked sample (clamped to the observed maximum), so it is exact to
/// within one log2 bucket of the true sorted-sample percentile — pinned
/// against the brute-force oracle in `tests/obs_proptests.rs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket index of one value.
fn bucket_of(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        63 - v.leading_zeros() as usize
    }
}

/// The largest value bucket `i` can hold.
fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample (nanoseconds by convention; any `u64` works).
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Nearest-rank quantile, `q ∈ [0, 1]`: the upper bound of the
    /// bucket holding the sample of rank `⌈q·count⌉` (rank clamped to at
    /// least 1), itself clamped to the observed maximum. Returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The compact wire/exposition summary of this histogram.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum_ns: self.sum,
            p50_ns: self.quantile(0.50),
            p99_ns: self.quantile(0.99),
            p999_ns: self.quantile(0.999),
            max_ns: self.max,
        }
    }
}

/// The fixed-size digest of a [`LatencyHistogram`] — what travels in
/// `SKS1` `Stats` frames and renders into Prometheus exposition. All
/// fields are nanoseconds except `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum_ns: u64,
    /// Median (nearest-rank, bucket-resolution).
    pub p50_ns: u64,
    /// 99th percentile (nearest-rank, bucket-resolution).
    pub p99_ns: u64,
    /// 99.9th percentile (nearest-rank, bucket-resolution).
    pub p999_ns: u64,
    /// Largest recorded sample (exact).
    pub max_ns: u64,
}

/// Exact percentile over **sorted** samples, `p ∈ [0, 1]`: the sample at
/// index `round((len − 1) · p)`. This is the serve bench's percentile
/// function, graduated into the library so the bench, the serving tier,
/// and the tests share one definition.
///
/// # Panics
///
/// Panics if `sorted` is empty — a percentile of nothing is a caller
/// bug, not a value.
pub fn percentile_nearest_rank<T: Copy>(sorted: &[T], p: f64) -> T {
    assert!(!sorted.is_empty(), "percentile of an empty sample set");
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_upper(0), 1);
        assert_eq!(bucket_upper(1), 3);
        assert_eq!(bucket_upper(63), u64::MAX);
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX] {
            assert!(v <= bucket_upper(bucket_of(v)), "{v}");
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn quantile_is_within_one_bucket_of_the_oracle() {
        let samples: Vec<u64> = (1..=1000).map(|i| i * 37 % 4096).collect();
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            // The sample at the same nearest-rank position the histogram
            // targets; the histogram answer is that sample's log2 bucket
            // upper bound (clamped to max) — never below it, never more
            // than one bucket (2×) above it.
            let rank = ((q * sorted.len() as f64).ceil() as u64).clamp(1, sorted.len() as u64);
            let exact = sorted[rank as usize - 1];
            let approx = h.quantile(q);
            assert!(
                approx >= exact && approx <= exact.saturating_mul(2).max(1) && approx <= h.max(),
                "q={q}: exact {exact}, approx {approx}"
            );
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), *sorted.last().unwrap());
        assert_eq!(h.min(), Some(sorted[0]));
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for v in [1u64, 5, 9, 100, 7000] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 900, 65000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn percentile_matches_the_bench_formula() {
        let sorted: Vec<u64> = (0..100).collect();
        assert_eq!(percentile_nearest_rank(&sorted, 0.0), 0);
        assert_eq!(percentile_nearest_rank(&sorted, 0.5), 50);
        assert_eq!(percentile_nearest_rank(&sorted, 0.99), 98);
        assert_eq!(percentile_nearest_rank(&sorted, 1.0), 99);
        assert_eq!(percentile_nearest_rank(&[42u64], 0.999), 42);
    }
}
