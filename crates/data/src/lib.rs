//! Dense point storage, synthetic dataset generators, and CSV I/O.
//!
//! This crate is the data substrate for the *Scalable K-Means++*
//! reproduction. The paper evaluates on three datasets (§4.1):
//!
//! 1. **GaussMixture** — synthetic; `k` centers drawn from a spherical
//!    Gaussian `N(0, R·I)` in 15 dimensions (`R ∈ {1, 10, 100}`), with
//!    unit-variance Gaussian clusters around each center and `n = 10 000`
//!    sampled points. Implemented faithfully in [`synth::GaussMixture`].
//! 2. **Spam** — UCI Spambase, 4 601 points × 58 dimensions. The raw file
//!    is not redistributable/offline-fetchable, so [`synth::SpamLike`]
//!    generates a statistical stand-in with the properties that drive the
//!    paper's results (zero-inflated frequency features plus a few
//!    heavy-tailed "capital run length" dimensions that dominate the
//!    clustering potential). See DESIGN.md §2 for the substitution argument.
//! 3. **KDDCup1999** — 4.8 M points × 42 dimensions of network-connection
//!    records, dominated by a few massive DoS traffic classes with rare
//!    attack classes far away in feature space. [`synth::KddLike`]
//!    reproduces that structure at any scale.
//!
//! Storage is a flat row-major [`PointMatrix`] (`Vec<f64>`), the layout the
//! distance kernels in `kmeans-core` are written against. Datasets larger
//! than memory are served block by block through the [`ChunkedSource`]
//! abstraction ([`chunked`], [`blockfile`]) — the out-of-core axis that
//! makes the paper's `O(log n)`-passes story (§3, Algorithm 2) real for
//! data that never fits in RAM.
//!
//! Paper-section map of the public modules:
//!
//! | module | paper anchor |
//! |--------|--------------|
//! | [`matrix`] | the point set `X ⊂ R^d` of §2 |
//! | [`dataset`] | §5 evaluation datasets (points + ground-truth labels) |
//! | [`synth`] | §5.1 GaussMixture / Spam / KDDCup1999 workloads |
//! | [`io`] | CSV/LIBSVM interchange for the §5 datasets |
//! | [`chunked`], [`blockfile`] | the "data does not fit in main memory" premise of §1 |
//! | [`shard`] | §3.5's input partitions `X′ ⊆ X`: per-worker shard files + manifest |
//! | [`modelfile`] | persisted fit results (`SKMMDL01`) feeding the online serving tier |
//! | [`checkpoint`] | distributed-fit round journal (`SKMCKPT1`) for restartable jobs |
//! | [`transform`] | feature scaling ahead of clustering (engineering extension) |

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod blockfile;
pub mod checkpoint;
pub mod chunked;
pub mod dataset;
pub mod error;
pub mod io;
pub mod matrix;
pub mod modelfile;
pub mod shard;
pub mod synth;
pub mod transform;

pub use blockfile::{
    csv_to_block_file, is_block_file, write_block_file, BlockFileSource, BlockFileWriter,
};
pub use checkpoint::{
    decode_checkpoint, encode_checkpoint, is_checkpoint_file, load_checkpoint_file,
    save_checkpoint_file, CheckpointMeta, CheckpointRecord,
};
pub use chunked::{ChunkedSource, CsvSource, InMemorySource, Residency};
pub use dataset::Dataset;
pub use error::DataError;
pub use matrix::PointMatrix;
pub use modelfile::{
    decode_model, encode_model, is_model_file, load_model_file, save_model_file, ModelRecord,
};
pub use shard::{shard_block_file, ShardEntry, ShardManifest};
