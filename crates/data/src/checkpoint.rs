//! The `SKMCKPT1` binary checkpoint file: a journal of distributed-round
//! results written by the coordinator after every `RoundBackend` round,
//! so an interrupted `skm fit --distributed --checkpoint FILE` job can be
//! restarted and resumed bit-identically.
//!
//! This crate stores the *container*: a fixed job header (the fingerprint
//! of the fit configuration) followed by opaque journal records. The
//! semantic encoding of each record payload — what a sampling round or an
//! assignment round returned — lives in `kmeans-cluster`, which owns the
//! round vocabulary. The split keeps `kmeans-data` free of any dependency
//! on the driver layer while reusing its file-format discipline.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size   field
//! 0       8      magic  b"SKMCKPT1"
//! 8       8      seed          (u64)  — the fit's configured seed
//! 16      8      k             (u64)
//! 24      8      global_n      (u64)
//! 32      8      shard_size    (u64)
//! 40      4      dim           (u32)
//! 44      4      reserved (must be 0)
//! 48      8      record count R (u64)
//! 56      …      R records, each:
//!                  kind        (u8)   — round kind, assigned by kmeans-cluster
//!                  fingerprint (u64)  — FNV-1a of the round's arguments
//!                  len         (u64)  — payload byte length
//!                  payload     (len bytes, opaque)
//! end−8   8      FNV-1a 64 checksum over bytes [8, end−8)
//! ```
//!
//! Decoding follows the same defensive discipline as `SKMBLK01` and
//! `SKMMDL01`: every field is untrusted, size arithmetic is checked,
//! record lengths are validated against the remaining bytes *before* any
//! allocation, the trailing checksum covers everything after the magic,
//! and every malformed input maps to a typed [`DataError::Format`] —
//! never a panic and never an allocation from a forged count.

use crate::error::DataError;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

/// File magic identifying the format (see module docs).
pub const CHECKPOINT_FILE_MAGIC: [u8; 8] = *b"SKMCKPT1";
/// Fixed-size header length; journal records start here.
const HEADER_BYTES: usize = 56;
/// Per-record fixed overhead: kind (1) + fingerprint (8) + len (8).
const RECORD_OVERHEAD: usize = 17;

/// The job identity a checkpoint belongs to. Resume refuses a journal
/// whose meta does not match the restarted fit exactly — replaying
/// another job's round results would silently corrupt the output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// The fit's configured RNG seed.
    pub seed: u64,
    /// Number of clusters.
    pub k: u64,
    /// Total rows across all workers.
    pub global_n: u64,
    /// Accumulation shard size (the alignment grid).
    pub shard_size: u64,
    /// Point dimensionality.
    pub dim: u32,
}

/// One journaled round result: an opaque payload plus the round `kind`
/// and an argument `fingerprint`, both assigned by the layer that owns
/// the round vocabulary. On resume the driver recomputes the fingerprint
/// of the round it is about to run and refuses a mismatch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointRecord {
    /// Round kind discriminant.
    pub kind: u8,
    /// FNV-1a fingerprint of the round's arguments.
    pub fingerprint: u64,
    /// Encoded round result.
    pub payload: Vec<u8>,
}

/// 64-bit FNV-1a over a byte slice (the same hash the `SKW1` frame
/// checksum and the other `SKM*` file formats use).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes a checkpoint as one complete `SKMCKPT1` byte image — the
/// exact bytes [`save_checkpoint_file`] writes.
///
/// # Errors
///
/// Rejects record counts or payload lengths beyond what the checked
/// size arithmetic can express (practically unreachable).
pub fn encode_checkpoint(
    meta: &CheckpointMeta,
    records: &[CheckpointRecord],
) -> Result<Vec<u8>, DataError> {
    let mut body = HEADER_BYTES
        .checked_add(8)
        .ok_or_else(|| DataError::Format("checkpoint size overflow".into()))?;
    for rec in records {
        body = body
            .checked_add(RECORD_OVERHEAD)
            .and_then(|b| b.checked_add(rec.payload.len()))
            .ok_or_else(|| DataError::Format("checkpoint size overflow".into()))?;
    }
    let count = u64::try_from(records.len())
        .map_err(|_| DataError::Format("checkpoint record count exceeds u64".into()))?;
    let mut out = Vec::with_capacity(body);
    out.extend_from_slice(&CHECKPOINT_FILE_MAGIC);
    out.extend_from_slice(&meta.seed.to_le_bytes());
    out.extend_from_slice(&meta.k.to_le_bytes());
    out.extend_from_slice(&meta.global_n.to_le_bytes());
    out.extend_from_slice(&meta.shard_size.to_le_bytes());
    out.extend_from_slice(&meta.dim.to_le_bytes());
    out.extend_from_slice(&[0u8; 4]);
    out.extend_from_slice(&count.to_le_bytes());
    debug_assert_eq!(out.len(), HEADER_BYTES);
    for rec in records {
        let len = u64::try_from(rec.payload.len())
            .map_err(|_| DataError::Format("checkpoint record exceeds u64".into()))?;
        out.push(rec.kind);
        out.extend_from_slice(&rec.fingerprint.to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&rec.payload);
    }
    let checksum = fnv1a(&out[8..]);
    out.extend_from_slice(&checksum.to_le_bytes());
    Ok(out)
}

/// Decodes a complete `SKMCKPT1` byte image.
///
/// # Errors
///
/// Every malformed input — wrong magic, truncation, checksum mismatch,
/// nonzero reserved bytes, forged record count or length, trailing
/// garbage — is a typed [`DataError::Format`].
pub fn decode_checkpoint(
    bytes: &[u8],
) -> Result<(CheckpointMeta, Vec<CheckpointRecord>), DataError> {
    let fail = |what: &str| DataError::Format(format!("checkpoint file: {what}"));
    if bytes.len() < HEADER_BYTES + 8 {
        return Err(fail("shorter than header"));
    }
    if bytes[..8] != CHECKPOINT_FILE_MAGIC {
        return Err(fail("bad magic"));
    }
    let end = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[end..].try_into().expect("8 bytes"));
    let computed = fnv1a(&bytes[8..end]);
    if stored != computed {
        return Err(fail("checksum mismatch"));
    }
    let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
    let meta = CheckpointMeta {
        seed: u64_at(8),
        k: u64_at(16),
        global_n: u64_at(24),
        shard_size: u64_at(32),
        dim: u32::from_le_bytes(bytes[40..44].try_into().expect("4 bytes")),
    };
    if bytes[44..48] != [0u8; 4] {
        return Err(fail("nonzero reserved bytes"));
    }
    let count = u64_at(48);
    let count = usize::try_from(count).map_err(|_| fail("record count exceeds usize"))?;
    let mut records = Vec::new();
    let mut cursor = HEADER_BYTES;
    for _ in 0..count {
        if end - cursor < RECORD_OVERHEAD {
            return Err(fail("truncated record header"));
        }
        let kind = bytes[cursor];
        let fingerprint = u64_at(cursor + 1);
        let len = u64_at(cursor + 9);
        let len = usize::try_from(len).map_err(|_| fail("record length exceeds usize"))?;
        cursor += RECORD_OVERHEAD;
        if end - cursor < len {
            return Err(fail("record length exceeds file"));
        }
        records.push(CheckpointRecord {
            kind,
            fingerprint,
            payload: bytes[cursor..cursor + len].to_vec(),
        });
        cursor += len;
    }
    if cursor != end {
        return Err(fail("trailing bytes after records"));
    }
    Ok((meta, records))
}

/// Writes a checkpoint file atomically: the image goes to `<path>.tmp`
/// first and is renamed over `path`, so a crash mid-write leaves either
/// the previous complete checkpoint or none — never a torn file.
pub fn save_checkpoint_file(
    path: impl AsRef<Path>,
    meta: &CheckpointMeta,
    records: &[CheckpointRecord],
) -> Result<(), DataError> {
    let path = path.as_ref();
    let bytes = encode_checkpoint(meta, records)?;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads and decodes a checkpoint file.
pub fn load_checkpoint_file(
    path: impl AsRef<Path>,
) -> Result<(CheckpointMeta, Vec<CheckpointRecord>), DataError> {
    let mut bytes = Vec::new();
    File::open(path.as_ref())?.read_to_end(&mut bytes)?;
    decode_checkpoint(&bytes)
}

/// Cheap sniff: does this file start with the `SKMCKPT1` magic?
pub fn is_checkpoint_file(path: impl AsRef<Path>) -> bool {
    let mut magic = [0u8; 8];
    match File::open(path.as_ref()) {
        Ok(mut f) => f.read_exact(&mut magic).is_ok() && magic == CHECKPOINT_FILE_MAGIC,
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (CheckpointMeta, Vec<CheckpointRecord>) {
        let meta = CheckpointMeta {
            seed: 42,
            k: 6,
            global_n: 192,
            shard_size: 16,
            dim: 3,
        };
        let records = vec![
            CheckpointRecord {
                kind: 1,
                fingerprint: 0xdead_beef,
                payload: vec![1, 2, 3, 4, 5],
            },
            CheckpointRecord {
                kind: 2,
                fingerprint: 7,
                payload: vec![],
            },
            CheckpointRecord {
                kind: 9,
                fingerprint: u64::MAX,
                payload: (0..=255u8).collect(),
            },
        ];
        (meta, records)
    }

    #[test]
    fn round_trips() {
        let (meta, records) = sample();
        let bytes = encode_checkpoint(&meta, &records).unwrap();
        let (got_meta, got_records) = decode_checkpoint(&bytes).unwrap();
        assert_eq!(got_meta, meta);
        assert_eq!(got_records, records);
    }

    #[test]
    fn empty_journal_round_trips() {
        let (meta, _) = sample();
        let bytes = encode_checkpoint(&meta, &[]).unwrap();
        let (got_meta, got_records) = decode_checkpoint(&bytes).unwrap();
        assert_eq!(got_meta, meta);
        assert!(got_records.is_empty());
    }

    #[test]
    fn every_truncation_is_rejected() {
        let (meta, records) = sample();
        let bytes = encode_checkpoint(&meta, &records).unwrap();
        for len in 0..bytes.len() {
            assert!(
                decode_checkpoint(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_rejected_or_detected() {
        let (meta, records) = sample();
        let bytes = encode_checkpoint(&meta, &records).unwrap();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            let decoded = decode_checkpoint(&bad);
            assert!(decoded.is_err(), "flip at byte {i} decoded");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let (meta, records) = sample();
        let mut bytes = encode_checkpoint(&meta, &records).unwrap();
        bytes.push(0);
        assert!(decode_checkpoint(&bytes).is_err());
    }

    #[test]
    fn forged_record_length_is_rejected_without_allocation() {
        let (meta, records) = sample();
        let mut bytes = encode_checkpoint(&meta, &records).unwrap();
        // Forge the first record's length to a huge value and re-seal the
        // checksum so only the length check can catch it.
        let off = HEADER_BYTES + 9;
        bytes[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let end = bytes.len() - 8;
        let checksum = fnv1a(&bytes[8..end]);
        bytes[end..].copy_from_slice(&checksum.to_le_bytes());
        assert!(decode_checkpoint(&bytes).is_err());
    }

    #[test]
    fn file_round_trip_and_sniff() {
        let dir = std::env::temp_dir().join(format!("skm-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("job.ckpt");
        let (meta, records) = sample();
        save_checkpoint_file(&path, &meta, &records).unwrap();
        assert!(is_checkpoint_file(&path));
        let (got_meta, got_records) = load_checkpoint_file(&path).unwrap();
        assert_eq!(got_meta, meta);
        assert_eq!(got_records, records);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
