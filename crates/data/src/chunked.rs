//! Out-of-core datasets: the [`ChunkedSource`] abstraction.
//!
//! The whole point of k-means|| (Algorithm 2 of the paper) is that seeding
//! needs only `O(log n)` *full passes* over data that does not fit in one
//! machine's memory — each round of the algorithm is one scan. Everything
//! upstream of this module nevertheless required the dataset as an
//! in-memory [`PointMatrix`]. A [`ChunkedSource`] removes that assumption:
//! it yields the dataset as a sequence of aligned row *blocks*, so the
//! multi-pass algorithms in `kmeans-core` / `kmeans-streaming` can stream
//! block-resident data with a bounded memory footprint while keeping the
//! workspace's bit-reproducibility guarantees (see
//! `docs/ARCHITECTURE.md`).
//!
//! Implementations in this crate:
//!
//! * [`InMemorySource`] — adapter over a [`PointMatrix`]; the parity
//!   baseline (everything is "resident").
//! * [`CsvSource`] — block reader over a CSV file, indexed by byte offset
//!   at open time; exactly one block of parsed floats is resident at a
//!   time.
//! * [`BlockFileSource`](crate::blockfile::BlockFileSource) — binary block
//!   file reader with a configurable memory budget and an LRU block cache
//!   (see [`crate::blockfile`]).
//!
//! Residency accounting: every source reports a [`Residency`] snapshot —
//! the peak number of feature bytes it ever materialized at once — which
//! is what the out-of-core tests assert against the configured budget.

use crate::error::DataError;
use crate::io::LabelColumn;
use crate::matrix::PointMatrix;
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, Seek, SeekFrom};
use std::ops::Range;
use std::path::Path;
use std::sync::Mutex;

/// A dataset exposed as a sequence of row-aligned blocks.
///
/// Blocks partition the row index space `[0, len)`: block `b` covers rows
/// `[b · block_rows, min((b+1) · block_rows, len))` — every block holds
/// exactly `block_rows` rows except possibly the last. Callers drive full
/// passes by reading blocks `0..num_blocks()` in order into a reused
/// buffer, so at most one block of feature data is materialized per pass
/// on the caller's side.
///
/// Implementations must be `Send + Sync` (the `KMeans` builder stores a
/// shared handle); internal reader state uses interior mutability.
///
/// ```
/// use kmeans_data::{ChunkedSource, InMemorySource, PointMatrix};
/// let m = PointMatrix::from_flat((0..10).map(f64::from).collect(), 2).unwrap();
/// let source = InMemorySource::new(m, 2).unwrap();
/// assert_eq!(source.len(), 5);
/// assert_eq!(source.num_blocks(), 3);
/// assert_eq!(source.block_range(2), 4..5); // the short tail block
/// let mut buf = source.block_buffer();
/// source.read_block(1, &mut buf).unwrap();
/// assert_eq!(buf.row(0), &[4.0, 5.0]);
/// ```
pub trait ChunkedSource: fmt::Debug + Send + Sync {
    /// Total number of rows.
    fn len(&self) -> usize;

    /// Whether the source holds no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of each row.
    fn dim(&self) -> usize;

    /// Rows per block (every block except possibly the last).
    fn block_rows(&self) -> usize;

    /// Number of blocks covering all rows.
    fn num_blocks(&self) -> usize {
        self.len().div_ceil(self.block_rows())
    }

    /// The global row range of block `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block >= num_blocks()`.
    fn block_range(&self, block: usize) -> Range<usize> {
        let start = block * self.block_rows();
        assert!(start < self.len(), "block {block} out of range");
        start..(start + self.block_rows()).min(self.len())
    }

    /// Reads block `block` into `out`, replacing its previous contents.
    ///
    /// `out` must have the source's dimensionality (create it with
    /// [`ChunkedSource::block_buffer`]); on success it holds exactly
    /// `block_range(block).len()` rows.
    fn read_block(&self, block: usize, out: &mut PointMatrix) -> Result<(), DataError>;

    /// A correctly-dimensioned, block-sized reusable read buffer.
    fn block_buffer(&self) -> PointMatrix {
        PointMatrix::with_capacity(self.dim(), self.block_rows())
    }

    /// Memory-residency accounting snapshot (see [`Residency`]).
    fn residency(&self) -> Residency {
        Residency::default()
    }
}

/// Memory-residency accounting for a [`ChunkedSource`].
///
/// `peak_bytes` is the invariant the out-of-core tests assert: for a
/// budgeted reader it never exceeds `budget_bytes`, while the total
/// dataset size may be far larger.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Residency {
    /// Maximum feature bytes the source ever materialized at once
    /// (internal cache plus the block being handed to the caller).
    pub peak_bytes: u64,
    /// Blocks decoded from the backing store (cache misses included).
    pub loads: u64,
    /// Block reads served from the source's internal cache.
    pub hits: u64,
    /// The configured memory budget, if the source enforces one.
    pub budget_bytes: Option<u64>,
}

/// Checks the shared `read_block` buffer contract.
pub(crate) fn check_block_buffer(dim: usize, out: &PointMatrix) -> Result<(), DataError> {
    if out.dim() != dim {
        return Err(DataError::DimensionMismatch {
            expected: dim,
            got: out.dim(),
        });
    }
    Ok(())
}

/// [`ChunkedSource`] adapter over an in-memory [`PointMatrix`].
///
/// The parity baseline: chunked algorithms running on an `InMemorySource`
/// must produce bit-identical results to the in-memory entry points on the
/// wrapped matrix (asserted in `tests/chunked_parity.rs`), for *any* block
/// size. Its [`Residency`] reports the full matrix as permanently
/// resident, which is exactly what the abstraction exists to avoid.
#[derive(Clone, Debug)]
pub struct InMemorySource {
    matrix: PointMatrix,
    block_rows: usize,
}

impl InMemorySource {
    /// Wraps a matrix, serving it in blocks of `block_rows` rows.
    ///
    /// Fails with [`DataError::InvalidParam`] if `block_rows == 0` or the
    /// matrix is empty.
    pub fn new(matrix: PointMatrix, block_rows: usize) -> Result<Self, DataError> {
        if block_rows == 0 {
            return Err(DataError::InvalidParam(
                "block_rows must be positive".into(),
            ));
        }
        if matrix.is_empty() {
            return Err(DataError::Empty);
        }
        Ok(InMemorySource { matrix, block_rows })
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &PointMatrix {
        &self.matrix
    }
}

impl ChunkedSource for InMemorySource {
    fn len(&self) -> usize {
        self.matrix.len()
    }

    fn dim(&self) -> usize {
        self.matrix.dim()
    }

    fn block_rows(&self) -> usize {
        self.block_rows
    }

    fn read_block(&self, block: usize, out: &mut PointMatrix) -> Result<(), DataError> {
        check_block_buffer(self.dim(), out)?;
        let range = self.block_range(block);
        out.clear();
        let dim = self.dim();
        out.extend_from_flat(&self.matrix.as_slice()[range.start * dim..range.end * dim])
    }

    fn residency(&self) -> Residency {
        let bytes = (self.matrix.len() * self.matrix.dim() * std::mem::size_of::<f64>()) as u64;
        Residency {
            peak_bytes: bytes,
            loads: 0,
            hits: 0,
            budget_bytes: None,
        }
    }
}

/// Block reader over a CSV file (the `kmeans-data` CSV conventions: plain
/// comma-separated floats, optional auto-detected header row, optional
/// integer label in the last column which is *dropped* — chunked fits
/// consume features only).
///
/// Opening performs one streaming pass that counts data rows, fixes the
/// dimensionality, and records the byte offset of each block's first row;
/// `read_block` then seeks and parses exactly one block. Only one block of
/// parsed floats is ever resident, so `peak_bytes ≈ block_rows · dim · 8`
/// regardless of file size.
pub struct CsvSource {
    file: Mutex<File>,
    stats: Mutex<Residency>,
    /// Byte offset and 1-based line number of each block's first data row.
    offsets: Vec<(u64, usize)>,
    rows: usize,
    dim: usize,
    block_rows: usize,
    labels: LabelColumn,
}

impl fmt::Debug for CsvSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CsvSource")
            .field("rows", &self.rows)
            .field("dim", &self.dim)
            .field("block_rows", &self.block_rows)
            .finish()
    }
}

impl CsvSource {
    /// Opens a CSV file as a chunked source with `block_rows` rows per
    /// block. With [`LabelColumn::Last`] the final column is parsed and
    /// discarded (validated as numeric, not returned).
    pub fn open(
        path: impl AsRef<Path>,
        block_rows: usize,
        labels: LabelColumn,
    ) -> Result<Self, DataError> {
        if block_rows == 0 {
            return Err(DataError::InvalidParam(
                "block_rows must be positive".into(),
            ));
        }
        let mut reader = BufReader::new(File::open(&path)?);
        let mut line = String::new();
        let mut byte_pos = 0u64;
        let mut line_no = 0usize;
        let mut rows = 0usize;
        let mut dim: Option<usize> = None;
        let mut offsets: Vec<(u64, usize)> = Vec::new();
        let mut scratch: Vec<f64> = Vec::new();
        loop {
            line.clear();
            let read = reader.read_line(&mut line)?;
            if read == 0 {
                break;
            }
            line_no += 1;
            let line_start = byte_pos;
            byte_pos += read as u64;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if !parse_cells(trimmed, &mut scratch) {
                // Only the first data-bearing line may be non-numeric
                // (header); label/shape violations are never headers.
                if rows == 0 && dim.is_none() {
                    continue;
                }
                return Err(DataError::Parse {
                    line: line_no,
                    message: format!("unparseable numeric row: {trimmed:.40}"),
                });
            }
            let d = validate_row(&scratch, labels, line_no, dim)?;
            if rows.is_multiple_of(block_rows) {
                offsets.push((line_start, line_no));
            }
            dim = Some(d);
            rows += 1;
        }
        let dim = dim.ok_or(DataError::Empty)?;
        Ok(CsvSource {
            file: Mutex::new(File::open(&path)?),
            stats: Mutex::new(Residency::default()),
            offsets,
            rows,
            dim,
            block_rows,
            labels,
        })
    }
}

/// Parses one CSV row's cells into the reused `scratch` buffer (cleared
/// first; no per-row allocation on the streaming hot path). Returns
/// `false` when any cell is not a float — the only condition that makes
/// the first line a header candidate, exactly like [`crate::io::read_csv`].
pub(crate) fn parse_cells(trimmed: &str, scratch: &mut Vec<f64>) -> bool {
    scratch.clear();
    for cell in trimmed.split(',') {
        match cell.trim().parse::<f64>() {
            Ok(v) => scratch.push(v),
            Err(_) => return false,
        }
    }
    true
}

/// Validates one parsed row: feature count against `expect`, and — with
/// [`LabelColumn::Last`] — the trailing label under the same contract as
/// [`crate::io::read_csv`] (the chunked and in-memory readers must agree
/// on which files are valid). Returns the feature dimensionality;
/// `scratch[..features]` excludes the label.
pub(crate) fn validate_row(
    scratch: &[f64],
    labels: LabelColumn,
    line_no: usize,
    expect: Option<usize>,
) -> Result<usize, DataError> {
    let features = match labels {
        LabelColumn::None => scratch.len(),
        LabelColumn::Last => scratch.len().saturating_sub(1),
    };
    if features == 0 {
        return Err(DataError::Parse {
            line: line_no,
            message: "row has no feature columns".into(),
        });
    }
    if labels == LabelColumn::Last {
        let lab = scratch[features];
        if lab < 0.0 || lab.fract() != 0.0 || lab > u32::MAX as f64 {
            return Err(DataError::Parse {
                line: line_no,
                message: format!("label {lab} is not a non-negative integer"),
            });
        }
    }
    if let Some(d) = expect {
        if features != d {
            return Err(DataError::Parse {
                line: line_no,
                message: format!("row has {features} features, expected {d}"),
            });
        }
    }
    Ok(features)
}

impl ChunkedSource for CsvSource {
    fn len(&self) -> usize {
        self.rows
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn block_rows(&self) -> usize {
        self.block_rows
    }

    fn read_block(&self, block: usize, out: &mut PointMatrix) -> Result<(), DataError> {
        check_block_buffer(self.dim, out)?;
        let range = self.block_range(block);
        let (byte_offset, first_line) = self.offsets[block];
        let mut file = self.file.lock().expect("CsvSource reader poisoned");
        file.seek(SeekFrom::Start(byte_offset))?;
        let mut reader = BufReader::new(&mut *file);
        let mut line = String::new();
        let mut row = Vec::with_capacity(self.dim);
        out.clear();
        let mut remaining = range.len();
        // Real file line numbers for error reports, indexed from the
        // block's recorded first data row (blank lines counted like open).
        let mut line_no = first_line - 1;
        while remaining > 0 {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Err(DataError::Format(format!(
                    "csv block {block} truncated: {remaining} rows missing"
                )));
            }
            line_no += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if !parse_cells(trimmed, &mut row) {
                return Err(DataError::Parse {
                    line: line_no,
                    message: format!("unparseable numeric row: {trimmed:.40}"),
                });
            }
            let features = validate_row(&row, self.labels, line_no, Some(self.dim))?;
            out.extend_from_flat(&row[..features])?;
            remaining -= 1;
        }
        let mut stats = self.stats.lock().expect("CsvSource stats poisoned");
        stats.loads += 1;
        let resident = (out.len() * self.dim * std::mem::size_of::<f64>()) as u64;
        stats.peak_bytes = stats.peak_bytes.max(resident);
        Ok(())
    }

    fn residency(&self) -> Residency {
        *self.stats.lock().expect("CsvSource stats poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(n: usize, dim: usize) -> PointMatrix {
        PointMatrix::from_flat((0..n * dim).map(|i| i as f64 * 0.5).collect(), dim).unwrap()
    }

    #[test]
    fn in_memory_blocks_partition_the_rows() {
        let m = matrix(10, 3);
        let source = InMemorySource::new(m.clone(), 4).unwrap();
        assert_eq!(source.num_blocks(), 3);
        let mut buf = source.block_buffer();
        let mut seen = 0usize;
        for b in 0..source.num_blocks() {
            source.read_block(b, &mut buf).unwrap();
            let range = source.block_range(b);
            assert_eq!(buf.len(), range.len());
            for (off, row) in buf.rows().enumerate() {
                assert_eq!(row, m.row(range.start + off));
                seen += 1;
            }
        }
        assert_eq!(seen, 10);
    }

    #[test]
    fn in_memory_rejects_bad_construction() {
        assert!(InMemorySource::new(matrix(3, 2), 0).is_err());
        assert!(InMemorySource::new(PointMatrix::new(2), 4).is_err());
    }

    #[test]
    fn read_block_checks_buffer_dim() {
        let source = InMemorySource::new(matrix(4, 2), 2).unwrap();
        let mut wrong = PointMatrix::new(3);
        assert!(matches!(
            source.read_block(0, &mut wrong),
            Err(DataError::DimensionMismatch {
                expected: 2,
                got: 3
            })
        ));
    }

    #[test]
    fn in_memory_residency_reports_full_matrix() {
        let source = InMemorySource::new(matrix(10, 3), 4).unwrap();
        assert_eq!(source.residency().peak_bytes, 10 * 3 * 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_range_out_of_bounds_panics() {
        let source = InMemorySource::new(matrix(4, 1), 2).unwrap();
        source.block_range(2);
    }

    fn temp_csv(name: &str, contents: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("kmeans_chunked_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn csv_source_round_trips_blocks() {
        let path = temp_csv("basic.csv", "a,b\n1,2\n\n3,4\n5,6\n7,8\n9,10\n");
        let source = CsvSource::open(&path, 2, LabelColumn::None).unwrap();
        assert_eq!(source.len(), 5);
        assert_eq!(source.dim(), 2);
        assert_eq!(source.num_blocks(), 3);
        let mut buf = source.block_buffer();
        source.read_block(1, &mut buf).unwrap();
        assert_eq!(buf.row(0), &[5.0, 6.0]);
        assert_eq!(buf.row(1), &[7.0, 8.0]);
        source.read_block(2, &mut buf).unwrap();
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.row(0), &[9.0, 10.0]);
        // Residency: at most one block of floats, plus accounting.
        let r = source.residency();
        assert_eq!(r.loads, 2);
        assert!(r.peak_bytes <= (2 * 2 * 8) as u64);
    }

    #[test]
    fn csv_source_drops_label_column() {
        let path = temp_csv("labeled.csv", "1,2,0\n3,4,1\n");
        let source = CsvSource::open(&path, 8, LabelColumn::Last).unwrap();
        assert_eq!(source.dim(), 2);
        let mut buf = source.block_buffer();
        source.read_block(0, &mut buf).unwrap();
        assert_eq!(buf.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn csv_source_validates_labels_like_read_csv() {
        // The chunked and in-memory readers must agree on which files are
        // valid: labels that read_csv rejects are rejected here too.
        for bad in ["1,2,1.5\n", "1,2,-1\n", "1,2,nan\n"] {
            let path = temp_csv("bad_label.csv", bad);
            assert!(
                matches!(
                    CsvSource::open(&path, 4, LabelColumn::Last),
                    Err(DataError::Parse { line: 1, .. })
                ),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn csv_source_rejects_garbage() {
        let path = temp_csv("ragged.csv", "1,2\n3,4,5\n");
        assert!(matches!(
            CsvSource::open(&path, 4, LabelColumn::None),
            Err(DataError::Parse { line: 2, .. })
        ));
        let path = temp_csv("empty.csv", "header,only\n");
        assert!(matches!(
            CsvSource::open(&path, 4, LabelColumn::None),
            Err(DataError::Empty)
        ));
        let path = temp_csv("ok.csv", "1,2\n");
        assert!(CsvSource::open(&path, 0, LabelColumn::None).is_err());
    }
}
