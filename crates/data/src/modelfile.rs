//! The `SKMMDL01` binary model file: persisted k-means fit results
//! (centers plus summary accounting), the on-disk half of the serving
//! story — `skm fit --save-model` writes one, `skm serve`/`skm predict`
//! load it.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size     field
//! 0       8        magic  b"SKMMDL01"
//! 8       4        dim                    (u32, > 0)
//! 12      4        k                      (u32, > 0)
//! 16      8        cost                   (f64)
//! 24      8        seed_cost              (f64)
//! 32      8        distance_computations  (u64)
//! 40      8        pruned_by_norm_bound   (u64)
//! 48      8        iterations             (u64)
//! 56      4        init rounds            (u32)
//! 60      4        init passes            (u32)
//! 64      8        init candidates        (u64)
//! 72      1        converged              (u8, 0 or 1)
//! 73      1        init_name length  li   (u8)
//! 74      1        refiner_name length lr (u8)
//! 75      5        reserved (must be 0)
//! 80      li       init_name (UTF-8)
//! 80+li   lr       refiner_name (UTF-8)
//! …       k·dim·8  centers, row-major f64
//! end−8   8        FNV-1a 64 checksum over bytes [8, end−8)
//! ```
//!
//! Deliberately **not** persisted: training labels and per-iteration
//! history (both are `O(n)` training artifacts, useless to a serving
//! tier) and the executor configuration (an execution-environment
//! choice, not a property of the model).
//!
//! Decoding follows the same defensive discipline as `SKMBLK01` and the
//! `SKW1` wire protocol: every header field is untrusted, size arithmetic
//! is checked, the trailing checksum covers everything after the magic,
//! and every malformed input maps to a typed [`DataError::Format`] —
//! never a panic and never an allocation from a forged count.

use crate::error::DataError;
use crate::matrix::PointMatrix;
use std::fs::File;
use std::io::Read;
use std::path::Path;

/// File magic identifying the format (see module docs).
pub const MODEL_FILE_MAGIC: [u8; 8] = *b"SKMMDL01";
/// Fixed-size header length; the variable tail (names, centers,
/// checksum) starts here.
const HEADER_BYTES: usize = 80;

/// The raw, storage-level view of a fitted model — what `SKMMDL01`
/// round-trips. `kmeans-core` converts between this and its
/// `KMeansModel` (which layers the executor and `'static` stage names on
/// top).
#[derive(Clone, Debug, PartialEq)]
pub struct ModelRecord {
    /// Final centers (`k × dim`, both positive).
    pub centers: PointMatrix,
    /// Final training potential.
    pub cost: f64,
    /// Potential of the seed centers before refinement.
    pub seed_cost: f64,
    /// Distance evaluations spent by the refiner.
    pub distance_computations: u64,
    /// Candidates pruned by the assignment kernel's bounds.
    pub pruned_by_norm_bound: u64,
    /// Refinement iterations executed.
    pub iterations: u64,
    /// Seeding rounds executed.
    pub init_rounds: u32,
    /// Seeding passes over the data.
    pub init_passes: u32,
    /// Intermediate candidates the seeding produced.
    pub init_candidates: u64,
    /// Whether the refiner converged.
    pub converged: bool,
    /// Stable name of the initializer (≤ 255 bytes of UTF-8).
    pub init_name: String,
    /// Stable name of the refiner (≤ 255 bytes of UTF-8).
    pub refiner_name: String,
}

/// 64-bit FNV-1a over a byte slice (the same hash the `SKW1` frame
/// checksum uses).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes a model record as one complete `SKMMDL01` byte image — the
/// exact bytes [`save_model_file`] writes and the `SwapModel` control
/// frame ships.
///
/// # Errors
///
/// Rejects empty center sets, `dim`/`k` beyond `u32`, and stage names
/// longer than 255 bytes.
pub fn encode_model(record: &ModelRecord) -> Result<Vec<u8>, DataError> {
    let k = record.centers.len();
    let dim = record.centers.dim();
    if k == 0 || dim == 0 {
        return Err(DataError::Empty);
    }
    let k_u32 =
        u32::try_from(k).map_err(|_| DataError::InvalidParam(format!("k {k} exceeds u32")))?;
    let dim_u32 = u32::try_from(dim)
        .map_err(|_| DataError::InvalidParam(format!("dim {dim} exceeds u32")))?;
    let name_len = |name: &str, what: &str| -> Result<u8, DataError> {
        u8::try_from(name.len())
            .map_err(|_| DataError::InvalidParam(format!("{what} name exceeds 255 bytes")))
    };
    let li = name_len(&record.init_name, "initializer")?;
    let lr = name_len(&record.refiner_name, "refiner")?;
    let mut out = Vec::with_capacity(HEADER_BYTES + li as usize + lr as usize + k * dim * 8 + 8);
    out.extend_from_slice(&MODEL_FILE_MAGIC);
    out.extend_from_slice(&dim_u32.to_le_bytes());
    out.extend_from_slice(&k_u32.to_le_bytes());
    out.extend_from_slice(&record.cost.to_le_bytes());
    out.extend_from_slice(&record.seed_cost.to_le_bytes());
    out.extend_from_slice(&record.distance_computations.to_le_bytes());
    out.extend_from_slice(&record.pruned_by_norm_bound.to_le_bytes());
    out.extend_from_slice(&record.iterations.to_le_bytes());
    out.extend_from_slice(&record.init_rounds.to_le_bytes());
    out.extend_from_slice(&record.init_passes.to_le_bytes());
    out.extend_from_slice(&record.init_candidates.to_le_bytes());
    out.push(record.converged as u8);
    out.push(li);
    out.push(lr);
    out.extend_from_slice(&[0u8; 5]);
    debug_assert_eq!(out.len(), HEADER_BYTES);
    out.extend_from_slice(record.init_name.as_bytes());
    out.extend_from_slice(record.refiner_name.as_bytes());
    for &v in record.centers.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    let checksum = fnv1a(&out[8..]);
    out.extend_from_slice(&checksum.to_le_bytes());
    Ok(out)
}

/// Decodes a complete `SKMMDL01` byte image (inverse of
/// [`encode_model`]). Every field is validated before any
/// length-dependent allocation.
pub fn decode_model(bytes: &[u8]) -> Result<ModelRecord, DataError> {
    if bytes.len() < 8 || bytes[..8] != MODEL_FILE_MAGIC {
        return Err(DataError::Format("bad magic (expected SKMMDL01)".into()));
    }
    if bytes.len() < HEADER_BYTES + 8 {
        return Err(DataError::Format(format!(
            "model image of {} bytes is shorter than the {}-byte minimum",
            bytes.len(),
            HEADER_BYTES + 8
        )));
    }
    let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4"));
    let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8"));
    let f64_at = |off: usize| f64::from_le_bytes(bytes[off..off + 8].try_into().expect("8"));
    let dim = u32_at(8) as usize;
    let k = u32_at(12) as usize;
    if dim == 0 || k == 0 {
        return Err(DataError::Format(format!(
            "header declares dim={dim}, k={k} (both must be positive)"
        )));
    }
    let converged = match bytes[72] {
        0 => false,
        1 => true,
        other => {
            return Err(DataError::Format(format!(
                "converged flag must be 0 or 1, got {other}"
            )))
        }
    };
    let li = bytes[73] as usize;
    let lr = bytes[74] as usize;
    if bytes[75..80].iter().any(|&b| b != 0) {
        return Err(DataError::Format(
            "reserved header bytes must be zero".into(),
        ));
    }
    // Untrusted sizes: checked arithmetic, exact-length match (a model
    // image has no legitimate trailing bytes).
    let center_bytes = (k as u64)
        .checked_mul(dim as u64)
        .and_then(|v| v.checked_mul(8))
        .ok_or_else(|| DataError::Format("header implies an impossibly large center set".into()))?;
    let expected = (HEADER_BYTES as u64)
        .checked_add(li as u64 + lr as u64)
        .and_then(|v| v.checked_add(center_bytes))
        .and_then(|v| v.checked_add(8))
        .ok_or_else(|| DataError::Format("header implies an impossibly large image".into()))?;
    if bytes.len() as u64 != expected {
        return Err(DataError::Format(format!(
            "model image is {} bytes, header implies {expected}",
            bytes.len()
        )));
    }
    let declared = u64_at(bytes.len() - 8);
    let computed = fnv1a(&bytes[8..bytes.len() - 8]);
    if declared != computed {
        return Err(DataError::Format(format!(
            "checksum mismatch: declared {declared:#x}, computed {computed:#x}"
        )));
    }
    let names_at = HEADER_BYTES;
    let text = |range: std::ops::Range<usize>, what: &str| -> Result<String, DataError> {
        String::from_utf8(bytes[range].to_vec())
            .map_err(|_| DataError::Format(format!("{what} name is not UTF-8")))
    };
    let init_name = text(names_at..names_at + li, "initializer")?;
    let refiner_name = text(names_at + li..names_at + li + lr, "refiner")?;
    let centers_at = names_at + li + lr;
    let flat: Vec<f64> = bytes[centers_at..bytes.len() - 8]
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8")))
        .collect();
    let centers = PointMatrix::from_flat(flat, dim)
        .map_err(|_| DataError::Format("ragged center payload".into()))?;
    debug_assert_eq!(centers.len(), k);
    Ok(ModelRecord {
        centers,
        cost: f64_at(16),
        seed_cost: f64_at(24),
        distance_computations: u64_at(32),
        pruned_by_norm_bound: u64_at(40),
        iterations: u64_at(48),
        init_rounds: u32_at(56),
        init_passes: u32_at(60),
        init_candidates: u64_at(64),
        converged,
        init_name,
        refiner_name,
    })
}

/// Writes a model record to `path` as one `SKMMDL01` file.
pub fn save_model_file(path: impl AsRef<Path>, record: &ModelRecord) -> Result<(), DataError> {
    let bytes = encode_model(record)?;
    std::fs::write(path, bytes)?;
    Ok(())
}

/// Loads a `SKMMDL01` file. Model images are small (`k·dim·8` bytes plus
/// a fixed header — centers, not data), so the file is read whole.
pub fn load_model_file(path: impl AsRef<Path>) -> Result<ModelRecord, DataError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    decode_model(&bytes)
}

/// Returns whether `path` starts with the model-file magic (used by the
/// CLI to auto-detect centers-CSV vs. model-file inputs, like
/// [`crate::blockfile::is_block_file`] for block files).
pub fn is_model_file(path: impl AsRef<Path>) -> bool {
    let Ok(mut file) = File::open(path) else {
        return false;
    };
    let mut magic = [0u8; 8];
    file.read_exact(&mut magic).is_ok() && magic == MODEL_FILE_MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> ModelRecord {
        ModelRecord {
            centers: PointMatrix::from_flat(vec![1.0, 2.0, -3.5, 0.25, 1e300, -0.0], 3).unwrap(),
            cost: 123.456,
            seed_cost: 234.5,
            distance_computations: 42,
            pruned_by_norm_bound: 17,
            iterations: 9,
            init_rounds: 5,
            init_passes: 6,
            init_candidates: 11,
            converged: true,
            init_name: "kmeans-par".into(),
            refiner_name: "lloyd".into(),
        }
    }

    #[test]
    fn round_trips_bitwise() {
        let r = record();
        let bytes = encode_model(&r).unwrap();
        let back = decode_model(&bytes).unwrap();
        assert_eq!(back, r);
        assert_eq!(
            back.centers
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            r.centers
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn file_round_trip_and_magic_detection() {
        let dir = std::env::temp_dir().join("kmeans_modelfile_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.skmm");
        let r = record();
        save_model_file(&path, &r).unwrap();
        assert!(is_model_file(&path));
        assert!(!crate::blockfile::is_block_file(&path));
        assert_eq!(load_model_file(&path).unwrap(), r);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn corrupted_images_are_typed_errors() {
        let bytes = encode_model(&record()).unwrap();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(decode_model(&bad), Err(DataError::Format(_))));
        // Truncation at every prefix length.
        for cut in 0..bytes.len() {
            assert!(
                matches!(decode_model(&bytes[..cut]), Err(DataError::Format(_))),
                "cut {cut}"
            );
        }
        // Any flipped payload byte fails the checksum (or a field check).
        for pos in 8..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[pos] ^= 0xff;
            assert!(
                matches!(decode_model(&flipped), Err(DataError::Format(_))),
                "flip at {pos} accepted"
            );
        }
        // Trailing garbage is rejected (exact-length contract).
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(decode_model(&padded), Err(DataError::Format(_))));
    }

    #[test]
    fn adversarial_header_sizes_cannot_over_allocate() {
        // A header promising 2^61 center rows in a tiny image must be
        // rejected by checked arithmetic, not absorbed into a Vec.
        let mut bytes = encode_model(&record()).unwrap();
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes()); // dim
        bytes[12..16].copy_from_slice(&u32::MAX.to_le_bytes()); // k
        assert!(matches!(decode_model(&bytes), Err(DataError::Format(_))));
    }

    #[test]
    fn zero_k_and_zero_dim_are_rejected() {
        let bytes = encode_model(&record()).unwrap();
        for off in [8usize, 12] {
            let mut bad = bytes.clone();
            bad[off..off + 4].copy_from_slice(&0u32.to_le_bytes());
            assert!(matches!(decode_model(&bad), Err(DataError::Format(_))));
        }
        let empty = ModelRecord {
            centers: PointMatrix::new(2),
            ..record()
        };
        assert!(matches!(encode_model(&empty), Err(DataError::Empty)));
    }
}
