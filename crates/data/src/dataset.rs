//! Datasets: a point matrix plus optional ground-truth labels.

use crate::error::DataError;
use crate::matrix::PointMatrix;

/// A named collection of points with optional ground-truth cluster labels.
///
/// Labels are available for all synthetic generators (the generating mixture
/// component) and are used only for *evaluation* (NMI/purity in
/// `kmeans-core::metrics`) — never by the clustering algorithms themselves.
#[derive(Clone, Debug)]
pub struct Dataset {
    name: String,
    points: PointMatrix,
    labels: Option<Vec<u32>>,
}

impl Dataset {
    /// Creates an unlabeled dataset.
    pub fn new(name: impl Into<String>, points: PointMatrix) -> Self {
        Dataset {
            name: name.into(),
            points,
            labels: None,
        }
    }

    /// Creates a labeled dataset; the label count must match the point count.
    pub fn with_labels(
        name: impl Into<String>,
        points: PointMatrix,
        labels: Vec<u32>,
    ) -> Result<Self, DataError> {
        if labels.len() != points.len() {
            return Err(DataError::LabelCountMismatch {
                points: points.len(),
                labels: labels.len(),
            });
        }
        Ok(Dataset {
            name: name.into(),
            points,
            labels: Some(labels),
        })
    }

    /// The dataset's name (used in experiment reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The points.
    pub fn points(&self) -> &PointMatrix {
        &self.points
    }

    /// Ground-truth labels, if any.
    pub fn labels(&self) -> Option<&[u32]> {
        self.labels.as_deref()
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the dataset has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.points.dim()
    }

    /// Number of distinct ground-truth labels (0 if unlabeled).
    pub fn n_classes(&self) -> usize {
        match &self.labels {
            None => 0,
            Some(l) => {
                let mut seen: Vec<u32> = l.clone();
                seen.sort_unstable();
                seen.dedup();
                seen.len()
            }
        }
    }

    /// Builds a new dataset from the rows at `indices` (labels follow).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        Dataset {
            name: self.name.clone(),
            points: self.points.select(indices),
            labels: self
                .labels
                .as_ref()
                .map(|l| indices.iter().map(|&i| l[i]).collect()),
        }
    }

    /// Decomposes the dataset into its parts.
    pub fn into_parts(self) -> (String, PointMatrix, Option<Vec<u32>>) {
        (self.name, self.points, self.labels)
    }
}

/// A synthetic dataset along with the ground truth that generated it.
#[derive(Clone, Debug)]
pub struct SyntheticDataset {
    /// The generated points (with component labels).
    pub dataset: Dataset,
    /// The true component centers used by the generator.
    pub true_centers: PointMatrix,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_points() -> PointMatrix {
        PointMatrix::from_flat(vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0], 2).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let d = Dataset::new("toy", small_points());
        assert_eq!(d.name(), "toy");
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
        assert!(!d.is_empty());
        assert!(d.labels().is_none());
        assert_eq!(d.n_classes(), 0);
    }

    #[test]
    fn labels_must_match_len() {
        assert!(Dataset::with_labels("t", small_points(), vec![0, 1]).is_err());
        let d = Dataset::with_labels("t", small_points(), vec![0, 1, 0]).unwrap();
        assert_eq!(d.labels().unwrap(), &[0, 1, 0]);
        assert_eq!(d.n_classes(), 2);
    }

    #[test]
    fn select_carries_labels() {
        let d = Dataset::with_labels("t", small_points(), vec![5, 6, 7]).unwrap();
        let s = d.select(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.points().row(0), &[2.0, 2.0]);
        assert_eq!(s.labels().unwrap(), &[7, 5]);
    }

    #[test]
    fn into_parts_round_trip() {
        let d = Dataset::with_labels("t", small_points(), vec![1, 2, 3]).unwrap();
        let (name, points, labels) = d.into_parts();
        assert_eq!(name, "t");
        assert_eq!(points.len(), 3);
        assert_eq!(labels.unwrap(), vec![1, 2, 3]);
    }
}
