//! Minimal CSV reader/writer for numeric datasets.
//!
//! Hand-rolled on purpose (no external parser dependency): the format we
//! need is plain comma-separated floats with an optional final label column
//! and an optional header row — the shape of the UCI files the paper uses.
//! Reading is buffered and allocation-light (one reused line buffer).

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::matrix::PointMatrix;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// How to interpret the last column when reading.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LabelColumn {
    /// All columns are features.
    None,
    /// The last column is an integer class label.
    Last,
}

/// Reads a dataset from a CSV file.
///
/// A header row is auto-detected: if the first non-empty line contains any
/// cell that does not parse as a float, it is treated as a header and
/// skipped.
pub fn read_csv(path: impl AsRef<Path>, labels: LabelColumn) -> Result<Dataset, DataError> {
    let file = File::open(&path)?;
    let name = path
        .as_ref()
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "csv".to_string());
    read_csv_from(BufReader::new(file), &name, labels)
}

/// Reads a dataset from any buffered reader (exposed for tests and piping).
///
/// Parsing and per-row validation are shared with
/// [`CsvSource`](crate::CsvSource) (`parse_cells` / `validate_row`), so
/// the in-memory and chunked CSV readers accept exactly the same files
/// and report identical errors — message and line number — on the same
/// malformed input (pinned by this module's tests).
pub fn read_csv_from(
    reader: impl Read,
    name: &str,
    labels: LabelColumn,
) -> Result<Dataset, DataError> {
    use crate::chunked::{parse_cells, validate_row};

    let mut reader = BufReader::new(reader);
    let mut line = String::new();
    let mut line_no = 0usize;
    let mut points: Option<PointMatrix> = None;
    let mut label_vec: Vec<u32> = Vec::new();
    let mut row: Vec<f64> = Vec::new();
    let mut dim: Option<usize> = None;

    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if !parse_cells(trimmed, &mut row) {
            // Only the first data-bearing line may be non-numeric
            // (header); label/shape violations are never headers.
            if points.is_none() {
                continue;
            }
            return Err(DataError::Parse {
                line: line_no,
                message: format!("unparseable numeric row: {trimmed:.40}"),
            });
        }
        let features = validate_row(&row, labels, line_no, dim)?;
        dim = Some(features);
        let matrix = points.get_or_insert_with(|| PointMatrix::new(features));
        matrix
            .push(&row[..features])
            .expect("validate_row pinned the dimensionality");
        if labels == LabelColumn::Last {
            // validate_row checked the trailing cell is a u32-ranged
            // non-negative integer.
            label_vec.push(row[features] as u32);
        }
    }

    let points = points.ok_or(DataError::Empty)?;
    match labels {
        LabelColumn::None => Ok(Dataset::new(name, points)),
        LabelColumn::Last => Dataset::with_labels(name, points, label_vec),
    }
}

/// Writes a dataset as CSV. Labels, when present, become the final column.
pub fn write_csv(path: impl AsRef<Path>, dataset: &Dataset) -> Result<(), DataError> {
    let file = File::create(path)?;
    write_csv_to(BufWriter::new(file), dataset)
}

/// Writes a dataset as CSV to any writer.
pub fn write_csv_to(mut writer: impl Write, dataset: &Dataset) -> Result<(), DataError> {
    let labels = dataset.labels();
    for (i, row) in dataset.points().rows().enumerate() {
        let mut first = true;
        for &v in row {
            if !first {
                writer.write_all(b",")?;
            }
            first = false;
            // Ryu-style shortest formatting is what `{}` gives for f64.
            write!(writer, "{v}")?;
        }
        if let Some(l) = labels {
            write!(writer, ",{}", l[i])?;
        }
        writer.write_all(b"\n")?;
    }
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset() -> Dataset {
        let points = PointMatrix::from_flat(vec![1.5, -2.0, 0.0, 3.25, 1e10, -0.5], 2).unwrap();
        Dataset::with_labels("toy", points, vec![0, 1, 1]).unwrap()
    }

    #[test]
    fn round_trip_with_labels() {
        let original = toy_dataset();
        let mut buf = Vec::new();
        write_csv_to(&mut buf, &original).unwrap();
        let read = read_csv_from(buf.as_slice(), "toy", LabelColumn::Last).unwrap();
        assert_eq!(read.points(), original.points());
        assert_eq!(read.labels(), original.labels());
    }

    #[test]
    fn round_trip_without_labels() {
        let points = PointMatrix::from_flat(vec![0.125, 7.0], 2).unwrap();
        let original = Dataset::new("x", points);
        let mut buf = Vec::new();
        write_csv_to(&mut buf, &original).unwrap();
        let read = read_csv_from(buf.as_slice(), "x", LabelColumn::None).unwrap();
        assert_eq!(read.points(), original.points());
        assert!(read.labels().is_none());
    }

    #[test]
    fn header_rows_are_skipped() {
        let csv = "alpha,beta\n1.0,2.0\n3.0,4.0\n";
        let d = read_csv_from(csv.as_bytes(), "h", LabelColumn::None).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.points().row(0), &[1.0, 2.0]);
    }

    #[test]
    fn blank_lines_are_ignored() {
        let csv = "1,2\n\n3,4\n\n";
        let d = read_csv_from(csv.as_bytes(), "b", LabelColumn::None).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn mid_file_garbage_is_an_error() {
        let csv = "1,2\nnot,numbers\n";
        let err = read_csv_from(csv.as_bytes(), "g", LabelColumn::None).unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn ragged_rows_are_an_error() {
        let csv = "1,2\n3,4,5\n";
        let err = read_csv_from(csv.as_bytes(), "r", LabelColumn::None).unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn bad_labels_are_an_error() {
        let csv = "1,2,0.5\n";
        let err = read_csv_from(csv.as_bytes(), "l", LabelColumn::Last).unwrap_err();
        assert!(matches!(err, DataError::Parse { .. }), "{err}");
        let csv = "1,2,-1\n";
        assert!(read_csv_from(csv.as_bytes(), "l", LabelColumn::Last).is_err());
    }

    #[test]
    fn empty_input_is_an_error() {
        let err = read_csv_from("".as_bytes(), "e", LabelColumn::None).unwrap_err();
        assert!(matches!(err, DataError::Empty));
        // Header only, no data.
        let err = read_csv_from("a,b\n".as_bytes(), "e", LabelColumn::None).unwrap_err();
        assert!(matches!(err, DataError::Empty));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("kmeans_data_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.csv");
        let original = toy_dataset();
        write_csv(&path, &original).unwrap();
        let read = read_csv(&path, LabelColumn::Last).unwrap();
        assert_eq!(read.points(), original.points());
        assert_eq!(read.name(), "toy");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_csv("/nonexistent/nope.csv", LabelColumn::None).unwrap_err();
        assert!(matches!(err, DataError::Io(_)));
    }

    /// The two CSV readers share one parse/validate path
    /// (`parse_cells`/`validate_row`), so any malformed file must produce
    /// the *identical* error — same message, same 1-based line number —
    /// from `read_csv_from` and from `CsvSource::open` on the same bytes.
    #[test]
    fn reader_errors_match_csv_source_exactly() {
        use crate::chunked::CsvSource;
        let dir = std::env::temp_dir().join("kmeans_io_error_parity");
        std::fs::create_dir_all(&dir).unwrap();
        let cases: &[(&str, LabelColumn)] = &[
            // Mid-file garbage after a valid row (header rule not in play).
            ("1,2\nnot,numbers\n", LabelColumn::None),
            // Ragged row (dimensionality fixed by line 1).
            ("1,2\n3,4,5\n", LabelColumn::None),
            ("head,er\n1,2\n\n3\n", LabelColumn::None),
            // Label violations: fractional, negative, non-finite.
            ("1,2,0.5\n", LabelColumn::Last),
            ("1,2,0\n7,8,-1\n", LabelColumn::Last),
            ("1,2,nan\n", LabelColumn::Last),
            // A single cell with a label column leaves no features.
            ("5\n", LabelColumn::Last),
            // Empty / header-only inputs.
            ("", LabelColumn::None),
            ("alpha,beta\n", LabelColumn::None),
        ];
        for (i, (contents, labels)) in cases.iter().enumerate() {
            let mem_err = read_csv_from(contents.as_bytes(), "parity", *labels).unwrap_err();
            let path = dir.join(format!("case_{i}.csv"));
            std::fs::write(&path, contents).unwrap();
            let chunked_err = CsvSource::open(&path, 4, *labels).unwrap_err();
            assert_eq!(
                mem_err.to_string(),
                chunked_err.to_string(),
                "case {i} ({contents:?}): messages diverge"
            );
            match (&mem_err, &chunked_err) {
                (DataError::Parse { line: a, .. }, DataError::Parse { line: b, .. }) => {
                    assert_eq!(a, b, "case {i}: line numbers diverge")
                }
                (DataError::Empty, DataError::Empty) => {}
                other => panic!("case {i}: error kinds diverge: {other:?}"),
            }
            std::fs::remove_file(&path).unwrap();
        }
    }
}

/// Reads a dataset in LIBSVM/SVMlight sparse format:
/// `label index:value index:value ...` per line, 1-based feature indices.
///
/// The dimensionality is the largest feature index seen (or `min_dim` if
/// larger); absent features are zero. Labels are parsed as integers
/// (truncated from float labels like `+1.0`); negative labels are mapped
/// to distinct non-negative classes by sign (`-1 → 0`, `+1 → 1`) when the
/// label set is exactly `{-1, +1}`, otherwise labels must be non-negative.
pub fn read_libsvm_from(
    reader: impl Read,
    name: &str,
    min_dim: usize,
) -> Result<Dataset, DataError> {
    let mut reader = BufReader::new(reader);
    let mut line = String::new();
    let mut line_no = 0usize;
    let mut rows: Vec<Vec<(usize, f64)>> = Vec::new();
    let mut raw_labels: Vec<i64> = Vec::new();
    let mut max_index = min_dim;

    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let label_tok = parts.next().expect("non-empty line has a token");
        let label: f64 = label_tok.parse().map_err(|_| DataError::Parse {
            line: line_no,
            message: format!("bad label '{label_tok}'"),
        })?;
        if label.fract() != 0.0 {
            return Err(DataError::Parse {
                line: line_no,
                message: format!("non-integer label {label}"),
            });
        }
        let mut row: Vec<(usize, f64)> = Vec::new();
        for pair in parts {
            let (idx_s, val_s) = pair.split_once(':').ok_or_else(|| DataError::Parse {
                line: line_no,
                message: format!("expected index:value, got '{pair}'"),
            })?;
            let idx: usize = idx_s.parse().map_err(|_| DataError::Parse {
                line: line_no,
                message: format!("bad feature index '{idx_s}'"),
            })?;
            if idx == 0 {
                return Err(DataError::Parse {
                    line: line_no,
                    message: "feature indices are 1-based".into(),
                });
            }
            let val: f64 = val_s.parse().map_err(|_| DataError::Parse {
                line: line_no,
                message: format!("bad feature value '{val_s}'"),
            })?;
            max_index = max_index.max(idx);
            row.push((idx, val));
        }
        rows.push(row);
        raw_labels.push(label as i64);
    }
    if rows.is_empty() || max_index == 0 {
        return Err(DataError::Empty);
    }

    // Map labels to u32: the common {-1,+1} binary convention, else
    // require non-negative.
    let mut distinct: Vec<i64> = raw_labels.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let labels: Vec<u32> = if distinct == vec![-1, 1] {
        raw_labels.iter().map(|&l| (l > 0) as u32).collect()
    } else if let Some(&bad) = distinct.iter().find(|&&l| l < 0 || l > u32::MAX as i64) {
        return Err(DataError::Parse {
            line: 0,
            message: format!("label {bad} out of range (expected {{-1,+1}} or >= 0)"),
        });
    } else {
        raw_labels.iter().map(|&l| l as u32).collect()
    };

    let mut points = PointMatrix::with_capacity(max_index, rows.len());
    let mut dense = vec![0.0f64; max_index];
    for row in rows {
        dense.iter_mut().for_each(|v| *v = 0.0);
        for (idx, val) in row {
            dense[idx - 1] = val;
        }
        points.push(&dense)?;
    }
    Dataset::with_labels(name, points, labels)
}

/// Reads a LIBSVM-format file (see [`read_libsvm_from`]).
pub fn read_libsvm(path: impl AsRef<Path>, min_dim: usize) -> Result<Dataset, DataError> {
    let file = File::open(&path)?;
    let name = path
        .as_ref()
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "libsvm".to_string());
    read_libsvm_from(BufReader::new(file), &name, min_dim)
}

#[cfg(test)]
mod libsvm_tests {
    use super::*;

    #[test]
    fn parses_sparse_rows_densely() {
        let text = "1 1:0.5 3:2.0\n0 2:-1.5\n# comment\n\n2 1:1 2:2 3:3\n";
        let d = read_libsvm_from(text.as_bytes(), "t", 0).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 3);
        assert_eq!(d.points().row(0), &[0.5, 0.0, 2.0]);
        assert_eq!(d.points().row(1), &[0.0, -1.5, 0.0]);
        assert_eq!(d.points().row(2), &[1.0, 2.0, 3.0]);
        assert_eq!(d.labels().unwrap(), &[1, 0, 2]);
    }

    #[test]
    fn binary_plus_minus_one_labels() {
        let text = "-1 1:1\n+1 2:1\n-1 1:2\n";
        let d = read_libsvm_from(text.as_bytes(), "t", 0).unwrap();
        assert_eq!(d.labels().unwrap(), &[0, 1, 0]);
    }

    #[test]
    fn min_dim_pads_features() {
        let text = "0 1:1\n";
        let d = read_libsvm_from(text.as_bytes(), "t", 5).unwrap();
        assert_eq!(d.dim(), 5);
        assert_eq!(d.points().row(0), &[1.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(matches!(
            read_libsvm_from("x 1:1\n".as_bytes(), "t", 0).unwrap_err(),
            DataError::Parse { line: 1, .. }
        ));
        assert!(matches!(
            read_libsvm_from("0 1-1\n".as_bytes(), "t", 0).unwrap_err(),
            DataError::Parse { .. }
        ));
        assert!(matches!(
            read_libsvm_from("0 0:1\n".as_bytes(), "t", 0).unwrap_err(),
            DataError::Parse { .. }
        ));
        assert!(matches!(
            read_libsvm_from("0 1:abc\n".as_bytes(), "t", 0).unwrap_err(),
            DataError::Parse { .. }
        ));
        assert!(matches!(
            read_libsvm_from("1.5 1:1\n".as_bytes(), "t", 0).unwrap_err(),
            DataError::Parse { .. }
        ));
        assert!(matches!(
            read_libsvm_from("-3 1:1\n".as_bytes(), "t", 0).unwrap_err(),
            DataError::Parse { .. }
        ));
        assert!(matches!(
            read_libsvm_from("".as_bytes(), "t", 0).unwrap_err(),
            DataError::Empty
        ));
        // Rows with no features at all (all-zero dim) are Empty.
        assert!(matches!(
            read_libsvm_from("0\n1\n".as_bytes(), "t", 0).unwrap_err(),
            DataError::Empty
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("kmeans_libsvm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.svm");
        std::fs::write(&path, "0 1:1.25\n1 2:3\n").unwrap();
        let d = read_libsvm(&path, 0).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.name(), "toy");
        std::fs::remove_file(path).unwrap();
    }
}
